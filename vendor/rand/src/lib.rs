//! Offline vendored shim for the subset of the `rand` crate API this
//! workspace uses: the [`RngCore`] and [`SeedableRng`] traits and a
//! deterministic [`rngs::StdRng`].
//!
//! The container this repo builds in has no network access to a crates.io
//! mirror, so the real `rand` cannot be fetched. Everything in the
//! workspace only needs seeded, deterministic, statistically-solid random
//! streams — not compatibility with upstream `rand`'s exact output — so
//! `StdRng` here is ChaCha12 (the same core algorithm upstream uses),
//! implemented from scratch.

/// The core trait every random number generator implements.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, spreading it over the full seed
    /// with SplitMix64 (the standard seed-expansion construction).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic ChaCha12-based generator (mirrors upstream `StdRng`'s
    /// choice of core algorithm; the output stream is not bit-compatible).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        /// ChaCha state words 4..12 hold the key, 13..16 the counter/nonce.
        key: [u32; 8],
        counter: u64,
        buf: [u8; 64],
        /// Next unread byte in `buf`; 64 means exhausted.
        pos: usize,
    }

    const CHACHA_CONST: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

    #[inline(always)]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    impl StdRng {
        fn refill(&mut self) {
            let mut state = [0u32; 16];
            state[..4].copy_from_slice(&CHACHA_CONST);
            state[4..12].copy_from_slice(&self.key);
            state[12] = self.counter as u32;
            state[13] = (self.counter >> 32) as u32;
            state[14] = 0;
            state[15] = 0;
            let input = state;
            for _ in 0..6 {
                // 12 rounds: 6 double-rounds of column + diagonal
                quarter_round(&mut state, 0, 4, 8, 12);
                quarter_round(&mut state, 1, 5, 9, 13);
                quarter_round(&mut state, 2, 6, 10, 14);
                quarter_round(&mut state, 3, 7, 11, 15);
                quarter_round(&mut state, 0, 5, 10, 15);
                quarter_round(&mut state, 1, 6, 11, 12);
                quarter_round(&mut state, 2, 7, 8, 13);
                quarter_round(&mut state, 3, 4, 9, 14);
            }
            for (i, word) in state.iter_mut().enumerate() {
                *word = word.wrapping_add(input[i]);
                self.buf[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
            }
            self.counter = self.counter.wrapping_add(1);
            self.pos = 0;
        }

        #[inline]
        fn take(&mut self, n: usize) -> &[u8] {
            debug_assert!(n <= 64);
            if self.pos + n > 64 {
                self.refill();
            }
            let out = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (i, word) in key.iter_mut().enumerate() {
                *word = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
            }
            Self {
                key,
                counter: 0,
                buf: [0u8; 64],
                pos: 64,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            u32::from_le_bytes(self.take(4).try_into().unwrap())
        }

        fn next_u64(&mut self) -> u64 {
            u64::from_le_bytes(self.take(8).try_into().unwrap())
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut filled = 0;
            while filled < dest.len() {
                if self.pos == 64 {
                    self.refill();
                }
                let n = (dest.len() - filled).min(64 - self.pos);
                dest[filled..filled + n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
                self.pos += n;
                filled += n;
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn deterministic_across_instances() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn different_seeds_diverge() {
            let mut a = StdRng::seed_from_u64(1);
            let mut b = StdRng::seed_from_u64(2);
            assert_ne!(
                (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
                (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
            );
        }

        #[test]
        fn fill_bytes_matches_stream() {
            let mut a = StdRng::seed_from_u64(9);
            let mut b = StdRng::seed_from_u64(9);
            let mut buf = [0u8; 24];
            a.fill_bytes(&mut buf);
            let mut expect = [0u8; 24];
            for chunk in expect.chunks_mut(8) {
                chunk.copy_from_slice(&b.next_u64().to_le_bytes());
            }
            assert_eq!(buf, expect);
        }

        #[test]
        fn fill_bytes_large_and_unaligned() {
            let mut rng = StdRng::seed_from_u64(3);
            let mut buf = vec![0u8; 1000];
            rng.fill_bytes(&mut buf);
            // not all zero, not all equal
            assert!(buf.iter().any(|&b| b != 0));
            assert!(buf.windows(2).any(|w| w[0] != w[1]));
        }
    }
}
