//! Offline vendored shim for the subset of the `proptest` API this
//! workspace uses: [`Strategy`] with `prop_map`, `any::<T>()`, numeric
//! range strategies, tuple strategies, `prop::collection::vec`, the
//! [`proptest!`] test macro and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of deterministic seeded cases and panics on the first failure,
//! printing the case number so a failure is reproducible (the stream is
//! seeded from the test function's name).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Run-time configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// Derives the per-test RNG from the test's name so every test gets an
/// independent deterministic stream.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::seed_from_u64(h)
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (no shrinking, so this is just
    /// function composition).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples a uniformly random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Strategy producing any value of `T` (see [`any`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point: uniform values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // full-width inclusive range
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use rand::RngCore;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    /// `vec(element, len_range)`: vectors whose length is uniform in
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element,
            min_len: len.start,
            max_len: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_len - self.min_len) as u64;
            let n = self.min_len + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::` namespace alias, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Expands to an early return from the per-case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` seeded iterations.
#[macro_export]
macro_rules! proptest {
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let run = move || $body;
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(err) = outcome {
                        eprintln!(
                            "proptest case {}/{} of {} failed",
                            case + 1,
                            config.cases,
                            stringify!($name)
                        );
                        ::std::panic::resume_unwind(err);
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Mirrors `proptest::prelude`: everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in any::<u8>()) {
            prop_assert!((3..10).contains(&x));
            let _ = y;
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn prop_map_composes(v in (0u64..5).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 10);
        }

        #[test]
        fn assume_skips(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::rng_for_test("t");
        let mut b = crate::rng_for_test("t");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
