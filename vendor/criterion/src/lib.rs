//! Offline vendored shim for the subset of the `criterion` API this
//! workspace's benches use. It is a real micro-benchmark harness — it
//! warms up, runs the configured number of samples, and prints
//! mean/min/max per benchmark — just without criterion's statistics,
//! plotting, and baseline machinery.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies a parameterized benchmark as `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure under test; drives the timed loop.
pub struct Bencher {
    samples: u32,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, once per sample after one warm-up call.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        black_box(f());
        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.results.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, results: &[Duration], throughput: Option<Throughput>) {
    if results.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = results.iter().sum();
    let mean = total / results.len() as u32;
    let min = *results.iter().min().unwrap();
    let max = *results.iter().max().unwrap();
    let mut line = format!(
        "{name:<40} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
    if let Some(tp) = throughput {
        let per_sec = |units: u64| units as f64 / mean.as_secs_f64();
        match tp {
            Throughput::Bytes(b) => {
                line.push_str(&format!("  thrpt: {:.2} MiB/s", per_sec(b) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.2} elem/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    /// Accepted for API compatibility; the shim's run length is governed
    /// by `sample_size` alone.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs `f` as a benchmark named by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        let name = format!("{}/{}", self.name, id);
        report(&name, &b.results, self.throughput);
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Runs `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: 10,
            results: Vec::new(),
        };
        f(&mut b);
        report(id, &b.results, None);
        self.benchmarks_run += 1;
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a real
            // filter argument is not supported by this shim and ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::new("sum", 8usize), &8usize, |b, &n| {
            b.iter(|| (0..n as u64).sum::<u64>());
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn harness_runs_and_counts() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(c.benchmarks_run, 2);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
