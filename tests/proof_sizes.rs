//! The paper's headline constants, checked against reality: serialized
//! proof sizes must equal `PLAIN_PROOF_BYTES` / `PRIVATE_PROOF_BYTES`
//! exactly, and `verify_private` must reject a proof tampered in *each*
//! individual component, both in memory and on the wire.

use dsaudit::algebra::field::Field;
use dsaudit::algebra::{Fr, Gt};
use dsaudit::core::challenge::Challenge;
use dsaudit::core::file::EncodedFile;
use dsaudit::core::keys::{keygen, PublicKey};
use dsaudit::core::params::AuditParams;
use dsaudit::core::proof::{PlainProof, PrivateProof, PLAIN_PROOF_BYTES, PRIVATE_PROOF_BYTES};
use dsaudit::core::prove::Prover;
use dsaudit::core::verify::{verify_plain, verify_private, FileMeta};
use rand::SeedableRng;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0x512e5)
}

struct Session {
    pk: PublicKey,
    meta: FileMeta,
    ch: Challenge,
    proof: PrivateProof,
    plain: PlainProof,
}

fn session() -> Session {
    let mut rng = rng();
    let params = AuditParams::new(6, 5).unwrap();
    let (sk, pk) = keygen(&mut rng, &params);
    let file = EncodedFile::encode(&mut rng, &[0xabu8; 2500], params);
    let tags = dsaudit::core::tag::generate_tags(&sk, &file);
    let meta = FileMeta {
        name: file.name,
        num_chunks: file.num_chunks(),
        k: params.k,
    };
    let prover = Prover::new(&pk, &file, &tags);
    let ch = Challenge::random(&mut rng);
    let proof = prover.prove_private(&mut rng, &ch);
    let plain = prover.prove_plain(&ch);
    Session {
        pk,
        meta,
        ch,
        proof,
        plain,
    }
}

/// `PLAIN_PROOF_BYTES` and `PRIVATE_PROOF_BYTES` are not aspirational:
/// they equal the actual serialized lengths (96 and 288 — the sizes the
/// paper reports on-chain per audit).
#[test]
fn headline_constants_match_serialized_sizes() {
    let s = session();

    assert_eq!(s.plain.to_bytes().len(), PLAIN_PROOF_BYTES);
    assert_eq!(PLAIN_PROOF_BYTES, 96);
    assert!(verify_plain(&s.pk, &s.meta, &s.ch, &s.plain));

    assert_eq!(s.proof.to_bytes().len(), PRIVATE_PROOF_BYTES);
    assert_eq!(PRIVATE_PROOF_BYTES, 288);
    assert!(verify_private(&s.pk, &s.meta, &s.ch, &s.proof));
}

#[test]
fn tampered_sigma_rejected() {
    let s = session();
    assert!(verify_private(&s.pk, &s.meta, &s.ch, &s.proof), "sanity");
    let mut bad = s.proof;
    bad.sigma = bad.sigma.mul(Fr::from_u64(2)).to_affine();
    assert!(!verify_private(&s.pk, &s.meta, &s.ch, &bad));
}

#[test]
fn tampered_y_prime_rejected() {
    let s = session();
    let mut bad = s.proof;
    bad.y_prime += Fr::one();
    assert!(!verify_private(&s.pk, &s.meta, &s.ch, &bad));
}

#[test]
fn tampered_psi_rejected() {
    let s = session();
    let mut bad = s.proof;
    bad.psi = bad.psi.mul(Fr::from_u64(3)).to_affine();
    assert!(!verify_private(&s.pk, &s.meta, &s.ch, &bad));
}

#[test]
fn tampered_r_commit_rejected() {
    let s = session();
    let mut bad = s.proof;
    bad.r_commit = bad.r_commit.mul(&Gt::generator());
    assert!(!verify_private(&s.pk, &s.meta, &s.ch, &bad));
}

/// Wire-level tampering: flipping a byte in each component's range of
/// the 288-byte encoding either fails to decode or fails to verify.
#[test]
fn wire_tampering_in_each_component_rejected() {
    let s = session();
    let good = s.proof.to_bytes();
    // one offset inside each component: sigma, y', psi, R
    for offset in [5usize, 40, 70, 150] {
        let mut bytes = good;
        bytes[offset] ^= 0x01;
        match PrivateProof::from_bytes(&bytes) {
            Err(_) => {} // malformed encoding: rejected at decode
            Ok(p) => assert!(
                !verify_private(&s.pk, &s.meta, &s.ch, &p),
                "byte {offset} flipped but proof still verified"
            ),
        }
    }
}
