//! The paper's headline constants, checked against reality: serialized
//! proof sizes must equal `PLAIN_PROOF_BYTES` / `PRIVATE_PROOF_BYTES`
//! exactly, and verification must reject a proof tampered in *each*
//! individual component, both in memory and on the wire.

use dsaudit::algebra::field::Field;
use dsaudit::algebra::{Fr, Gt};
use dsaudit::core::{PLAIN_PROOF_BYTES, PRIVATE_PROOF_BYTES};
use dsaudit::prelude::*;
use rand::SeedableRng;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0x512e5)
}

struct Session {
    pk: PublicKey,
    meta: FileMeta,
    ch: Challenge,
    proof: PrivateProof,
    plain: PlainProof,
}

fn session() -> Session {
    let mut rng = rng();
    let params = AuditParams::new(6, 5).unwrap();
    let owner = DataOwner::generate(&mut rng, params);
    let bundle = owner.outsource(&mut rng, &[0xabu8; 2500]);
    let provider = StorageProvider::ingest(&mut rng, bundle).unwrap();
    let meta = provider.meta();
    let ch = Challenge::random(&mut rng);
    let proof = provider.respond(&mut rng, &ch);
    let plain = provider.respond_plain(&ch);
    Session {
        pk: provider.public_key().clone(),
        meta,
        ch,
        proof,
        plain,
    }
}

fn accepts(s: &Session, proof: &PrivateProof) -> bool {
    dsaudit::core::verify_private(&s.pk, &s.meta, &s.ch, proof)
        .expect("valid meta")
        .accepted()
}

/// `PLAIN_PROOF_BYTES` and `PRIVATE_PROOF_BYTES` are not aspirational:
/// they equal the actual serialized lengths (96 and 288 — the sizes the
/// paper reports on-chain per audit).
#[test]
fn headline_constants_match_serialized_sizes() {
    let s = session();

    assert_eq!(s.plain.to_bytes().len(), PLAIN_PROOF_BYTES);
    assert_eq!(PLAIN_PROOF_BYTES, 96);
    assert!(dsaudit::core::verify_plain(&s.pk, &s.meta, &s.ch, &s.plain)
        .unwrap()
        .accepted());

    assert_eq!(s.proof.to_bytes().len(), PRIVATE_PROOF_BYTES);
    assert_eq!(PRIVATE_PROOF_BYTES, 288);
    assert!(accepts(&s, &s.proof));
}

#[test]
fn tampered_sigma_rejected() {
    let s = session();
    assert!(accepts(&s, &s.proof), "sanity");
    let mut bad = s.proof;
    bad.sigma = bad.sigma.mul(Fr::from_u64(2)).to_affine();
    assert!(!accepts(&s, &bad));
}

#[test]
fn tampered_y_prime_rejected() {
    let s = session();
    let mut bad = s.proof;
    bad.y_prime += Fr::one();
    assert!(!accepts(&s, &bad));
}

#[test]
fn tampered_psi_rejected() {
    let s = session();
    let mut bad = s.proof;
    bad.psi = bad.psi.mul(Fr::from_u64(3)).to_affine();
    assert!(!accepts(&s, &bad));
}

#[test]
fn tampered_r_commit_rejected() {
    let s = session();
    let mut bad = s.proof;
    bad.r_commit = bad.r_commit.mul(&Gt::generator());
    assert!(!accepts(&s, &bad));
}

/// Wire-level tampering: flipping a byte in each component's range of
/// the 288-byte encoding either fails to decode (with a typed error)
/// or fails to verify — the documented error-path behavior of the
/// public API on malformed external input.
#[test]
fn wire_tampering_in_each_component_rejected() {
    let s = session();
    let good = s.proof.to_bytes();
    // one offset inside each component: sigma, y', psi, R
    for offset in [5usize, 40, 70, 150] {
        let mut bytes = good;
        bytes[offset] ^= 0x01;
        match PrivateProof::decode(&bytes) {
            Err(e) => {
                // malformed encoding: rejected at decode, with context
                assert!(matches!(
                    e,
                    DsAuditError::Malformed {
                        ty: "PrivateProof",
                        ..
                    }
                ));
            }
            Ok(p) => assert!(
                !accepts(&s, &p),
                "byte {offset} flipped but proof still verified"
            ),
        }
    }
}
