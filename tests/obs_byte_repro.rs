//! Byte-reproducibility under observability.
//!
//! The obs layer mirrors statistics; it must never *become* them. This
//! gate runs the deterministic scenarios — the network simulator and
//! the node soak — once with obs disabled and once with a
//! virtual-clock registry installed, and asserts the rendered reports
//! are byte-identical. It also asserts the telemetry itself is
//! reproducible: two traced runs export identical artifacts.
//!
//! Everything lives in ONE `#[test]` because the obs sink is
//! process-global state; a single test owns the whole
//! install/run/uninstall sequence so the cargo test harness cannot
//! interleave another installation.

use std::sync::Arc;

use dsaudit_obs::export::{export_jsonl, export_prometheus, export_span_tree};
use dsaudit_obs::Registry;

fn sim_config() -> dsaudit_sim::SimConfig {
    dsaudit_sim::SimConfig {
        seed: 0x0b5_0b5,
        epochs: 4,
        providers: 6,
        owners: 1,
        file_bytes: 240,
        erasure_k: 2,
        erasure_n: 3,
        shards: 1,
        faults: dsaudit_sim::FaultRates {
            corrupt: 0.05,
            drop: 0.0,
            withhold: 0.0,
            transport: 0.1,
        },
        ..dsaudit_sim::SimConfig::default()
    }
}

fn soak_config() -> dsaudit_node::SoakConfig {
    dsaudit_node::SoakConfig {
        sessions: 40,
        ..dsaudit_node::SoakConfig::default()
    }
}

fn run_sim_text() -> String {
    dsaudit_sim::Simulation::new(sim_config()).run().to_text()
}

fn run_soak_json() -> String {
    dsaudit_node::run_soak(&soak_config()).to_json()
}

/// Runs `f` with a fresh virtual-clock registry installed, returning
/// the closure's output plus the three exported trace artifacts.
fn traced<T>(f: impl FnOnce() -> T) -> (T, [String; 3]) {
    let reg = Arc::new(Registry::new_virtual());
    dsaudit_obs::install(Arc::clone(&reg));
    let out = f();
    let back = dsaudit_obs::uninstall().expect("registry stays installed during the run");
    assert!(Arc::ptr_eq(&reg, &back));
    let snap = back.snapshot();
    (
        out,
        [export_jsonl(&snap), export_span_tree(&snap), export_prometheus(&snap)],
    )
}

#[test]
fn reports_are_byte_identical_with_obs_enabled() {
    // Baselines with obs disabled (the shipped configuration).
    assert!(!dsaudit_obs::is_enabled());
    let sim_base = run_sim_text();
    let soak_base = run_soak_json();

    // Same scenarios traced on the virtual clock: reports must not
    // move by a byte, and the telemetry must actually have content.
    let (sim_traced, sim_art) = traced(run_sim_text);
    assert_eq!(
        sim_base, sim_traced,
        "enabling obs changed the sim report"
    );
    let (soak_traced, soak_art) = traced(run_soak_json);
    assert_eq!(
        soak_base, soak_traced,
        "enabling obs changed the node-soak report"
    );
    assert!(
        sim_art[0].contains("\"kind\":\"counter\",\"name\":\"sim.audits\""),
        "sim trace records no audits:\n{}",
        sim_art[0]
    );
    assert!(
        soak_art[2].contains("node_session_issued"),
        "soak trace records no sessions:\n{}",
        soak_art[2]
    );

    // The trace itself is deterministic: tracing the same scenario
    // twice exports byte-identical artifacts (virtual clock, seeded
    // RNG, sorted registries).
    let (_, sim_art2) = traced(run_sim_text);
    assert_eq!(sim_art, sim_art2, "sim trace is not reproducible");
    let (_, soak_art2) = traced(run_soak_json);
    assert_eq!(soak_art, soak_art2, "node-soak trace is not reproducible");

    // And a disabled re-run still matches the baseline (install/
    // uninstall leaves no residue in the instrumented code).
    assert_eq!(sim_base, run_sim_text());
}
