//! Table II's qualitative claims as executable assertions: both
//! solutions achieve on-chain privacy, but the main protocol dominates
//! the strawman on every off-chain cost axis while keeping proofs small.

use std::time::Instant;

use dsaudit::chain::beacon::{Beacon, TrustedBeacon};
use dsaudit::prelude::*;
use dsaudit::snark::strawman::StrawmanAudit;
use rand::SeedableRng;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0x7ab1e2)
}

#[test]
fn both_schemes_audit_the_same_1kb_file() {
    let mut rng = rng();
    let data: Vec<u8> = (0..1024).map(|i| (i % 251) as u8).collect();

    // strawman (unpadded MiMC circuit)
    let strawman = StrawmanAudit::commit(&mut rng, &data, None).unwrap();
    let (sproof, stats) = strawman.respond(&mut rng, 1, None).unwrap();
    assert!(strawman.verify_response(&sproof));

    // main protocol, through the role handles
    let params = AuditParams::new(8, 16).unwrap();
    let owner = DataOwner::generate(&mut rng, params);
    let pk = owner.public_key().clone();
    let bundle = owner.outsource(&mut rng, &data);
    let provider = StorageProvider::ingest(&mut rng, bundle).unwrap();
    let meta = provider.meta();
    let auditor = Auditor::new();
    let ch = auditor.challenge_from_beacon(&TrustedBeacon::new(b"strawman").randomness(0));
    let t0 = Instant::now();
    let mproof = provider.respond(&mut rng, &ch);
    let main_prove = t0.elapsed();
    assert!(auditor
        .verify_private(&pk, &meta, &ch, &mproof)
        .unwrap()
        .accepted());

    // Table II's orderings hold on this machine:
    // 1. proof sizes: 288 B (main) < 384 B (strawman)
    assert!(mproof.to_bytes().len() < stats.proof_bytes);
    // 2. the strawman's prover is at least an order of magnitude slower
    assert!(
        stats.prove_time > main_prove * 10,
        "strawman {:?} vs main {:?}",
        stats.prove_time,
        main_prove
    );
    // 3. strawman parameters dwarf the main pk
    assert!(stats.param_bytes > pk.serialized_len(true) * 10);
}

#[test]
fn merkle_baseline_leaks_but_main_does_not() {
    // The deployed-DSN baseline posts raw leaf bytes on chain; the main
    // protocol's 288-byte response contains no data bytes at all.
    let data = b"this exact substring must never appear in an on-chain proof!!";
    let (audit, tree, leaves) = dsaudit::merkle::audit::MerkleAudit::commit(data, 16);
    let idx = audit.challenge_index(b"round1");
    let baseline = dsaudit::merkle::audit::honest_response(&tree, &leaves, idx);
    // the baseline's on-chain bytes literally contain file data
    assert!(data
        .windows(8)
        .any(|w| baseline
            .leaf_data
            .windows(8)
            .any(|l| l == w)));

    // main protocol proof bytes share no 8-byte window with the data
    let mut rng = rng();
    let params = AuditParams::new(4, 8).unwrap();
    let owner = DataOwner::generate(&mut rng, params);
    let bundle = owner.outsource(&mut rng, data);
    let provider = StorageProvider::ingest(&mut rng, bundle).unwrap();
    let ch = Challenge::random(&mut rng);
    let proof_bytes = provider.respond(&mut rng, &ch).to_bytes();
    assert!(!data
        .windows(8)
        .any(|w| proof_bytes.windows(8).any(|p| p == w)));
}

#[test]
fn padded_strawman_profile_scales_with_constraints() {
    // the padding knob reproduces the paper's cost scaling: 4x the
    // constraints => roughly >=2x the proving time (FFT + MSM growth)
    let mut rng = rng();
    let data = [3u8; 512];
    let small = StrawmanAudit::commit(&mut rng, &data, Some(4096)).unwrap();
    let (_, small_stats) = small.respond(&mut rng, 0, Some(4096)).unwrap();
    let big = StrawmanAudit::commit(&mut rng, &data, Some(16384)).unwrap();
    let (_, big_stats) = big.respond(&mut rng, 0, Some(16384)).unwrap();
    assert!(big_stats.prove_time > small_stats.prove_time);
    assert!(big_stats.param_bytes > small_stats.param_bytes * 3);
}
