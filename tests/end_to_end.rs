//! Cross-crate integration: the full pipeline from raw bytes through
//! the storage network, the audit protocol and the on-chain contract.

use dsaudit::chain::beacon::TrustedBeacon;
use dsaudit::chain::chain::Blockchain;
use dsaudit::contract::harness::{run_round, setup_session, AgreementTerms};
use dsaudit::core::params::AuditParams;
use dsaudit::storage::StorageNetwork;
use rand::SeedableRng;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0xe2e)
}

/// Upload through the DSN, then audit the *ciphertext shares* a provider
/// holds — auditing is storage-layer-agnostic by design.
#[test]
fn dsn_upload_then_audit_share() {
    let mut rng = rng();
    // storage layer
    let mut dsn = StorageNetwork::new(12, 3, 10);
    let data: Vec<u8> = (0..40_000).map(|i| (i * 7 % 251) as u8).collect();
    let key = [9u8; 32];
    let manifest = dsn.upload(key, [2u8; 12], &data);
    assert_eq!(dsn.download(&manifest, key).unwrap(), data);

    // audit layer over one share's bytes (the provider's actual holdings)
    let params = AuditParams::new(8, 16).unwrap();
    let (sk, pk) = dsaudit::core::keys::keygen(&mut rng, &params);
    let share_bytes: Vec<u8> = {
        // reconstruct what provider 0 stores via download of one share:
        // use the systematic share = first third of the ciphertext
        let mut ct = data.clone();
        dsaudit::crypto::ChaCha20::new(key, manifest.nonce).encrypt(&mut ct);
        ct[..ct.len() / 3].to_vec()
    };
    let file = dsaudit::core::file::EncodedFile::encode(&mut rng, &share_bytes, params);
    let tags = dsaudit::core::tag::generate_tags(&sk, &file);
    let meta = dsaudit::core::verify::FileMeta {
        name: file.name,
        num_chunks: file.num_chunks(),
        k: params.k,
    };
    let prover = dsaudit::core::prove::Prover::new(&pk, &file, &tags);
    let ch = dsaudit::core::challenge::Challenge::random(&mut rng);
    let proof = prover.prove_private(&mut rng, &ch);
    assert!(dsaudit::core::verify::verify_private(&pk, &meta, &ch, &proof));
}

/// The contract pays out correctly across a mixed honest/dishonest run.
#[test]
fn contract_settles_mixed_run() {
    let mut rng = rng();
    let mut chain = Blockchain::new(Box::new(TrustedBeacon::new(b"mixed")));
    let params = AuditParams::new(4, 8).unwrap(); // k >= d: full coverage
    let terms = AgreementTerms {
        num_audits: 3,
        ..AgreementTerms::default()
    };
    let mut session = setup_session(
        &mut rng,
        &mut chain,
        "mixed",
        &[0x42u8; 800],
        params,
        None,
        terms,
    );
    assert!(run_round(&mut rng, &mut chain, &session, true));
    // drop everything -> guaranteed fail
    for i in 0..session.provider_state.file.num_chunks() {
        session.provider_state.file.drop_chunk(i);
    }
    assert!(!run_round(&mut rng, &mut chain, &session, true));
    assert!(!run_round(&mut rng, &mut chain, &session, false)); // timeout
    // one pass + two fails settled; contract completed
    let events: Vec<String> = chain
        .all_events()
        .iter()
        .map(|e| e.name.clone())
        .collect();
    assert_eq!(events.iter().filter(|n| *n == "pass").count(), 1);
    assert_eq!(events.iter().filter(|n| *n == "fail").count(), 2);
    assert!(events.contains(&"completed".to_string()));
}

/// 288-byte proofs decoded from the wire verify identically.
#[test]
fn wire_roundtrip_preserves_verification() {
    let mut rng = rng();
    let params = AuditParams::new(6, 5).unwrap();
    let (sk, pk) = dsaudit::core::keys::keygen(&mut rng, &params);
    let file = dsaudit::core::file::EncodedFile::encode(&mut rng, &[5u8; 3000], params);
    let tags = dsaudit::core::tag::generate_tags(&sk, &file);
    let meta = dsaudit::core::verify::FileMeta {
        name: file.name,
        num_chunks: file.num_chunks(),
        k: params.k,
    };
    let prover = dsaudit::core::prove::Prover::new(&pk, &file, &tags);
    let ch = dsaudit::core::challenge::Challenge::random(&mut rng);
    let proof = prover.prove_private(&mut rng, &ch);
    let bytes = proof.to_bytes();
    assert_eq!(bytes.len(), 288);
    let decoded = dsaudit::core::proof::PrivateProof::from_bytes(&bytes).unwrap();
    assert!(dsaudit::core::verify::verify_private(&pk, &meta, &ch, &decoded));
}

/// Beacon-driven challenges from the chain expand identically for
/// prover and verifier (determinism across the wire).
#[test]
fn challenge_determinism_across_actors() {
    let mut beacon = TrustedBeacon::new(b"shared");
    use dsaudit::chain::beacon::Beacon;
    let bytes = beacon.randomness(5);
    let c1 = dsaudit::core::challenge::Challenge::from_beacon(&bytes);
    let c2 = dsaudit::core::challenge::Challenge::from_beacon(&bytes);
    assert_eq!(c1.expand(1000, 300), c2.expand(1000, 300));
}
