//! Cross-crate integration: the full pipeline from raw bytes through
//! the storage network, the role-oriented audit protocol and the
//! on-chain contract.

use dsaudit::chain::beacon::{Beacon, TrustedBeacon};
use dsaudit::chain::chain::Blockchain;
use dsaudit::contract::harness::{run_round, setup_session, AgreementTerms};
use dsaudit::prelude::*;
use dsaudit::storage::StorageNetwork;
use rand::SeedableRng;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0xe2e)
}

/// Upload through the DSN, then audit the *ciphertext shares* a provider
/// holds — auditing is storage-layer-agnostic by design.
#[test]
fn dsn_upload_then_audit_share() {
    let mut rng = rng();
    // storage layer
    let mut dsn = StorageNetwork::new(12, 3, 10);
    let data: Vec<u8> = (0..40_000).map(|i| (i * 7 % 251) as u8).collect();
    let key = [9u8; 32];
    let manifest = dsn.upload(key, [2u8; 12], &data).expect("upload succeeds");
    assert_eq!(dsn.download(&manifest, key).unwrap(), data);

    // audit layer over one share's bytes (the provider's actual holdings)
    let params = AuditParams::new(8, 16).unwrap();
    let owner = DataOwner::generate(&mut rng, params);
    let share_bytes: Vec<u8> = {
        // reconstruct what provider 0 stores via download of one share:
        // use the systematic share = first third of the ciphertext
        let mut ct = data.clone();
        dsaudit::crypto::ChaCha20::new(key, manifest.nonce).encrypt(&mut ct);
        ct[..ct.len() / 3].to_vec()
    };
    // the share streams from the network: encode it through the reader
    // path rather than an in-memory slice copy
    let bundle = owner
        .outsource_reader(&mut rng, &mut &share_bytes[..])
        .expect("in-memory reader");
    let provider = StorageProvider::ingest(&mut rng, bundle).expect("honest bundle");
    let auditor = Auditor::new();
    let session = auditor
        .begin_session(provider.public_key(), provider.meta())
        .unwrap();
    let mut beacon = TrustedBeacon::new(b"end-to-end");
    let round = session.challenge_from_beacon(&beacon.randomness(0));
    let response = provider.respond_round(&mut rng, &round.round_challenge());
    let (_, verdict) = round
        .submit(response)
        .map_err(|(_, e)| e)
        .unwrap()
        .verify()
        .unwrap();
    assert!(verdict.accepted());
}

/// The contract pays out correctly across a mixed honest/dishonest run.
#[test]
fn contract_settles_mixed_run() {
    let mut rng = rng();
    let mut chain = Blockchain::new(Box::new(TrustedBeacon::new(b"mixed")));
    let params = AuditParams::new(4, 8).unwrap(); // k >= d: full coverage
    let terms = AgreementTerms {
        num_audits: 3,
        ..AgreementTerms::default()
    };
    let mut session = setup_session(
        &mut rng,
        &mut chain,
        "mixed",
        &[0x42u8; 800],
        params,
        None,
        terms,
    );
    assert!(run_round(&mut rng, &mut chain, &session, true));
    // drop everything -> guaranteed fail
    for i in 0..session.provider_state.file().num_chunks() {
        session.provider_state.drop_chunk(i);
    }
    assert!(!run_round(&mut rng, &mut chain, &session, true));
    assert!(!run_round(&mut rng, &mut chain, &session, false)); // timeout
    // one pass + two fails settled; contract completed
    let events: Vec<String> = chain
        .all_events()
        .iter()
        .map(|e| e.name.clone())
        .collect();
    assert_eq!(events.iter().filter(|n| *n == "pass").count(), 1);
    assert_eq!(events.iter().filter(|n| *n == "fail").count(), 2);
    assert!(events.contains(&"completed".to_string()));
}

/// 288-byte proofs decoded from the wire verify identically.
#[test]
fn wire_roundtrip_preserves_verification() {
    let mut rng = rng();
    let params = AuditParams::new(6, 5).unwrap();
    let owner = DataOwner::generate(&mut rng, params);
    let bundle = owner.outsource(&mut rng, &[5u8; 3000]);
    let provider = StorageProvider::ingest(&mut rng, bundle).unwrap();
    let meta = provider.meta();
    let auditor = Auditor::new();
    let ch = auditor.challenge_from_beacon(&TrustedBeacon::new(b"wire-roundtrip").randomness(0));
    let proof = provider.respond(&mut rng, &ch);
    let bytes = proof.encode();
    assert_eq!(bytes.len(), 288);
    let decoded = PrivateProof::decode(&bytes).unwrap();
    assert!(auditor
        .verify_private(provider.public_key(), &meta, &ch, &decoded)
        .unwrap()
        .accepted());
}

/// Beacon-driven challenges from the chain expand identically for
/// prover and verifier (determinism across the wire).
#[test]
fn challenge_determinism_across_actors() {
    let mut beacon = TrustedBeacon::new(b"shared");
    let bytes = beacon.randomness(5);
    let c1 = Challenge::from_beacon(&bytes);
    let c2 = Challenge::from_beacon(&bytes);
    assert_eq!(c1.expand(1000, 300), c2.expand(1000, 300));
}
