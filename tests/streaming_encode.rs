//! The streaming-encode acceptance criteria: a 64 MiB reader encodes
//! byte-for-byte identically to the in-memory path, while the encoder
//! only ever asks the source for one chunk's worth of bytes at a time
//! (peak transient allocation O(chunk), not O(file)).

use dsaudit::algebra::field::Field;
use dsaudit::algebra::Fr;
use dsaudit::chain::beacon::{Beacon, TrustedBeacon};
use dsaudit::prelude::*;
use std::io::Read;

/// A deterministic pseudo-random source of `len` bytes that also
/// records the largest single read request, so the test can prove the
/// encoder never buffers more than one chunk from the source.
struct SyntheticSource {
    len: usize,
    pos: usize,
    max_request: usize,
}

impl SyntheticSource {
    fn new(len: usize) -> Self {
        Self {
            len,
            pos: 0,
            max_request: 0,
        }
    }

    fn byte_at(i: usize) -> u8 {
        // cheap LCG-style mix, stable across both encode paths
        ((i.wrapping_mul(2654435761) >> 16) % 251) as u8
    }
}

impl Read for SyntheticSource {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.max_request = self.max_request.max(buf.len());
        let n = buf.len().min(self.len - self.pos);
        for (j, b) in buf[..n].iter_mut().enumerate() {
            *b = Self::byte_at(self.pos + j);
        }
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn streaming_encode_of_64mib_matches_in_memory_byte_for_byte() {
    const LEN: usize = 64 * 1024 * 1024;
    let params = AuditParams::default(); // s = 50: 1550-byte chunks
    let name = Fr::from_u64(0x64513b);

    let streamed = EncodedFile::encode_reader_with_name(
        name,
        &mut SyntheticSource::new(LEN),
        params,
    )
    .expect("synthetic source cannot fail");

    let data: Vec<u8> = (0..LEN).map(SyntheticSource::byte_at).collect();
    let in_memory = EncodedFile::encode_with_name(name, &data, params);

    assert_eq!(streamed.byte_len, in_memory.byte_len);
    assert_eq!(streamed.num_chunks(), in_memory.num_chunks());
    assert_eq!(
        streamed, in_memory,
        "streaming and in-memory encode must agree on all 64 MiB"
    );
}

#[test]
fn streaming_encode_requests_at_most_one_chunk_at_a_time() {
    let params = AuditParams::new(16, 8).unwrap(); // 496-byte chunks
    let mut source = SyntheticSource::new(1024 * 1024);
    let file = EncodedFile::encode_reader_with_name(Fr::from_u64(1), &mut source, params)
        .expect("synthetic source cannot fail");
    assert_eq!(file.byte_len, 1024 * 1024);
    assert!(
        source.max_request <= params.chunk_bytes(),
        "encoder asked for {} bytes at once; chunk is only {}",
        source.max_request,
        params.chunk_bytes()
    );
}

#[test]
fn streaming_outsource_is_auditable_end_to_end() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0x57eea);
    let params = AuditParams::new(8, 6).unwrap();
    let owner = DataOwner::generate(&mut rng, params);
    let bundle = owner
        .outsource_reader(&mut rng, &mut SyntheticSource::new(200_000))
        .expect("synthetic source cannot fail");
    let provider = StorageProvider::ingest(&mut rng, bundle).expect("honest bundle");
    let auditor = Auditor::new();
    let session = auditor
        .begin_session(provider.public_key(), provider.meta())
        .unwrap();
    let mut beacon = TrustedBeacon::new(b"streaming");
    let round = session.challenge_from_beacon(&beacon.randomness(0));
    let response = provider.respond_round(&mut rng, &round.round_challenge());
    let (_, verdict) = round
        .submit(response)
        .map_err(|(_, e)| e)
        .unwrap()
        .verify()
        .unwrap();
    assert!(verdict.accepted(), "streamed files audit like any other");
}
