//! Scalability scenario (§VII-D / Fig. 10): many data owners auditing
//! on one chain, driven in lockstep rounds, with chain-growth and
//! provider-load accounting — plus a beacon-bias vignette (§V-E).
//!
//! ```text
//! cargo run --release --example multi_user
//! ```

use dsaudit::chain::beacon::{CommitRevealBeacon, VdfBeacon};
use dsaudit::chain::cost::{ChainCapacity, CostModel};
use dsaudit::contract::harness::AgreementTerms;
use dsaudit::contract::registry::AuditNetwork;
use dsaudit::core::params::AuditParams;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);

    // --- a small live network (simulation); the cost model then scales ---
    let users = 6;
    let params = AuditParams::new(8, 6).expect("valid");
    let terms = AgreementTerms {
        num_audits: 2,
        ..AgreementTerms::default()
    };
    println!("setting up {users} audit contracts on one chain...");
    let mut net = AuditNetwork::new(&mut rng, users, 3_000, params, terms);
    for round in 1..=2 {
        let stats = net.run_round_all(&mut rng);
        println!(
            "round {round}: {}/{} passed; chain = {} bytes, cumulative gas = {}",
            stats.passes, stats.rounds, stats.chain_bytes, stats.total_gas
        );
        assert_eq!(stats.passes, stats.rounds);
    }

    // --- scale-out projections (Fig. 10) ---
    println!("\nprojected annual chain growth (daily audits):");
    let cap = ChainCapacity::default();
    for n in [1_000usize, 5_000, 10_000] {
        println!(
            "  {n:>6} users -> {:.2} GB/year",
            cap.annual_growth_bytes(n, 288) as f64 / 1e9
        );
    }
    let m = CostModel::fig6_effective();
    println!(
        "per-user yearly auditing fee (daily): ${:.0}",
        m.contract_fee_usd(365, 1.0, 288, 7.2)
    );

    // --- beacon bias: why challenge randomness matters (§V-E) ---
    println!("\nrandomness-beacon hardening:");
    let cr = CommitRevealBeacon::new(4, b"players");
    let bias = cr.last_revealer_bias(300);
    println!(
        "  commit-reveal alone: last revealer wins a coin-flip predicate {:.0}% of rounds (honest: 50%)",
        bias * 100.0
    );
    let vdf_beacon = VdfBeacon::new(cr, 50);
    let (out, proof) = vdf_beacon.run_round_with_proof(0);
    println!(
        "  with sloth-VDF finisher: output {:02x}{:02x}... computable only after the reveal deadline ({} sequential sqrt steps, publicly verifiable)",
        out[0], out[1], proof.steps
    );
}
