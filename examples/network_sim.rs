//! The full network under load: a seeded discrete-event simulation of
//! erasure-coded, multi-provider audits end to end.
//!
//! 16 providers form a DHT; 4 owners upload 3-of-6 erasure-coded files;
//! every share carries its own authenticator vector and its own Fig. 2
//! audit contract on one shared chain. Each epoch, providers churn
//! (join / leave / crash) and misbehave (corrupt / drop / withhold
//! shares), per-shard auditors settle all proofs with batched pairing
//! products, failed audits trigger DHT-proximity repair, and the
//! contracts migrate to the shares' new holders.
//!
//! ```text
//! cargo run --release --example network_sim
//! ```

use dsaudit::sim::{ChurnRates, FaultRates, SimConfig, Simulation};

fn main() {
    let cfg = SimConfig {
        seed: 0x5ca1e,
        epochs: 12,
        providers: 16,
        owners: 4,
        files_per_owner: 1,
        file_bytes: 480,
        erasure_k: 3,
        erasure_n: 6,
        shards: 4,
        churn: ChurnRates {
            join_rate: 0.5,
            leave_prob: 0.01,
            crash_prob: 0.01,
        },
        faults: FaultRates {
            corrupt: 0.02,
            drop: 0.01,
            withhold: 0.01,
            transport: 0.02,
        },
        ..SimConfig::default()
    };
    println!(
        "simulating {} epochs: {} providers, {} owners, {}-of-{} erasure, churn + faults on\n",
        cfg.epochs, cfg.providers, cfg.owners, cfg.erasure_k, cfg.erasure_n
    );
    let report = Simulation::new(cfg).run();
    print!("{}", report.to_text());

    assert_eq!(report.false_accepts, 0, "no faulty share may pass an audit");
    assert_eq!(report.false_rejects, 0, "no healthy share may fail one");
    assert_eq!(
        report.detected_faults, report.injected_faults,
        "every injected fault is caught by a contract-settled audit"
    );
    assert_eq!(report.files_lost, 0);
    assert_eq!(report.files_intact as usize, report.files);
    println!(
        "\nall {} injected faults detected and repaired; every file intact; pass rate {:.2}%",
        report.injected_faults,
        report.pass_rate() * 100.0
    );
}
