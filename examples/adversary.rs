//! The §V-C on-chain privacy attack, live.
//!
//! An off-chain adversary passively reads audit trails from the public
//! blockchain. Against the *non-private* HLA response it interpolates
//! the challenge polynomial from `s` trails and then solves a linear
//! system to recover **every raw block** of the victim's file. Against
//! the paper's private (Sigma-masked) response the identical pipeline
//! produces garbage.
//!
//! ```text
//! cargo run --release --example adversary
//! ```

use dsaudit::core::attack::{
    interpolate_pk_from_private, recover_blocks, PlainTrail, PrivateTrail,
};
use dsaudit::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let s = 8;
    let params = AuditParams::new(s, 64).expect("valid");
    let owner = DataOwner::generate(&mut rng, params);

    let secret = b"TOP SECRET: merger documents, Q3 financials, passport scans.....";
    let bundle = owner.outsource(&mut rng, secret);
    let file = bundle.file.clone();
    let d = file.num_chunks();
    let prover = StorageProvider::ingest(&mut rng, bundle).expect("honest bundle");
    println!(
        "victim stores {} bytes as {} chunks of s = {} blocks; contract audits daily\n",
        secret.len(),
        d,
        s
    );

    // ---- phase 1: the adversary records non-private audit trails ----
    println!("== attack on the NON-PRIVATE response (Eq. 1 trails) ==");
    let mut groups = Vec::new();
    for g in 0..d {
        let mut trails = Vec::new();
        for t in 0..s {
            let mut beacon = [0u8; 48];
            beacon[0] = g as u8; // same (C1, C2) within a group
            beacon[32] = t as u8 + 1; // fresh r each round
            let ch = Challenge::from_beacon(&beacon);
            trails.push(PlainTrail {
                challenge: ch,
                proof: prover.respond_plain(&ch),
            });
        }
        groups.push(trails);
    }
    println!(
        "observed {} trails ({} groups x {} rounds) from the public chain",
        d * s,
        d,
        s
    );
    let blocks = recover_blocks(&groups, d, s, params.k).expect("attack succeeds");
    let mut recovered = Vec::new();
    for (i, chunk) in blocks.iter().enumerate() {
        let real = file.chunk(i);
        assert_eq!(chunk, real, "chunk {i}");
        for b in chunk {
            let bytes = b.to_bytes_be();
            recovered.extend_from_slice(&bytes[1..]); // 31 payload bytes
        }
    }
    recovered.truncate(secret.len());
    println!(
        "RECOVERED PLAINTEXT: {:?}\n",
        String::from_utf8_lossy(&recovered)
    );
    assert_eq!(&recovered, secret);

    // ---- phase 2: same pipeline against the private protocol ----
    println!("== same attack on the PRIVATE response (the paper's protocol) ==");
    let mut trails = Vec::new();
    for t in 0..s {
        let mut beacon = [0u8; 48];
        beacon[32] = t as u8 + 1;
        let ch = Challenge::from_beacon(&beacon);
        trails.push(PrivateTrail {
            challenge: ch,
            proof: prover.respond(&mut rng, &ch),
        });
    }
    let garbage = interpolate_pk_from_private(&trails, s).expect("interpolates to *something*");
    // compare against the true polynomial coefficients
    let ch0 = trails[0].challenge;
    let set = ch0.expand(d, params.k);
    let mut truth = vec![dsaudit::algebra::Fr::zero(); s];
    use dsaudit::algebra::field::Field;
    for (i, c) in &set {
        for (j, m) in file.chunk(*i as usize).iter().enumerate() {
            truth[j] += *c * *m;
        }
    }
    let hits = garbage
        .coeffs()
        .iter()
        .zip(&truth)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "interpolated 'polynomial' matches the real one in {hits}/{s} coefficients \
         (each trail carries a fresh uniform mask z; y' reveals nothing)"
    );
    assert_eq!(hits, 0);
    println!("attack defeated: the 288-byte private proof leaks no data");
}
