//! The paper's motivating scenario (§I-A): a user backs up a photo
//! collection to the decentralized storage network, audits it through
//! the on-chain contract, and gets compensated automatically when the
//! provider silently drops data.
//!
//! Exercises the full stack: ChaCha20 encryption + 3-of-10 erasure
//! coding + DHT placement (storage layer), the Fig. 2 contract state
//! machine (chain layer) and the HLA audit protocol (core).
//!
//! ```text
//! cargo run --release --example archive_backup
//! ```

use dsaudit::chain::beacon::TrustedBeacon;
use dsaudit::chain::chain::Blockchain;
use dsaudit::contract::harness::{run_round, setup_session, AgreementTerms};
use dsaudit::core::params::AuditParams;
use dsaudit::storage::StorageNetwork;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // --- storage layer: encrypt, erasure-code, distribute ---
    let photos: Vec<u8> = (0..150_000).map(|i| ((i * 31) % 251) as u8).collect();
    let mut dsn = StorageNetwork::new(20, 3, 10); // 20 providers, 3-of-10 code
    let key = [7u8; 32];
    let mut manifest = dsn.upload(key, [1u8; 12], &photos).expect("upload succeeds");
    println!(
        "uploaded {} bytes as {} shares across the DHT (content id {:?})",
        photos.len(),
        manifest.placements.len(),
        manifest.content_id
    );

    // storage survives provider churn thanks to the erasure code
    let drop_list: Vec<_> = manifest.placements[..5].to_vec();
    for (_, provider, share_key) in &drop_list {
        dsn.provider_mut(provider).unwrap().drop_share(share_key);
    }
    println!(
        "5 of 10 shares lost to churn; live = {}; repairing...",
        dsn.live_shares(&manifest)
    );
    let repaired = dsn
        .repair(&mut manifest, &[])
        .expect("enough shares survive");
    println!(
        "repair re-placed {} shares on DHT-nearest free providers; download intact: {}",
        repaired.len(),
        dsn.download(&manifest, key).expect("decodable") == photos
    );

    // --- audit layer: contract + periodic auditing of one provider ---
    let mut chain = Blockchain::new(Box::new(TrustedBeacon::new(b"archive")));
    let params = AuditParams::new(16, 40).expect("valid"); // small file -> small k
    let terms = AgreementTerms {
        num_audits: 4,
        ..AgreementTerms::default()
    };
    let mut session = setup_session(
        &mut rng,
        &mut chain,
        "photo-archive",
        &photos,
        params,
        None,
        terms,
    );
    println!("\ncontract deployed; deposits locked; auditing begins");

    // two honest rounds: the provider earns micro-payments
    for round in 1..=2 {
        let passed = run_round(&mut rng, &mut chain, &session, true);
        println!("round {round}: {}", if passed { "pass -> provider paid" } else { "fail" });
        assert!(passed);
    }

    // The provider silently drops a third of the archive. With k = 40
    // challenged chunks the detection probability per round is
    // 1 - (2/3)^40 > 99.9999% (this is the §VI-A confidence math: k
    // trades audit cost against detection probability).
    let d = session.provider_state.file().num_chunks();
    for i in (0..d).step_by(3) {
        session.provider_state.drop_chunk(i);
    }
    println!("\nprovider silently drops {} of {} chunks to reclaim space...", d.div_ceil(3), d);

    let owner_before = chain.balance(session.owner);
    let passed = run_round(&mut rng, &mut chain, &session, true);
    println!(
        "round 3: {} -> owner compensated {} wei from the provider's deposit",
        if passed { "pass" } else { "FAIL DETECTED" },
        chain.balance(session.owner) - owner_before
    );
    assert!(!passed, "data loss must be detected");

    // timeout behaves the same way
    let passed = run_round(&mut rng, &mut chain, &session, false);
    println!("round 4 (provider unresponsive): {}", if passed { "pass" } else { "timeout -> fail" });
    assert!(!passed);

    println!(
        "\ncontract complete after {} blocks; total chain size {} bytes; total gas {}",
        chain.blocks.len(),
        chain.total_size_bytes(),
        chain.total_gas_used()
    );
}
