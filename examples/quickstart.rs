//! Quickstart: one complete audit round, end to end, in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dsaudit::core::challenge::Challenge;
use dsaudit::core::file::EncodedFile;
use dsaudit::core::keys::keygen;
use dsaudit::core::params::AuditParams;
use dsaudit::core::prove::Prover;
use dsaudit::core::tag::{generate_tags, verify_tags_batch};
use dsaudit::core::verify::{verify_private, FileMeta};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // 1. The data owner picks parameters and generates keys.
    //    s = 50 blocks per chunk, k = 300 challenged chunks per audit
    //    (95% detection confidence at 1% corruption).
    let params = AuditParams::default();
    let (sk, pk) = keygen(&mut rng, &params);

    // 2. Encode the (already encrypted) archive into auditable chunks
    //    and compute one homomorphic authenticator per chunk.
    let archive: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
    let file = EncodedFile::encode(&mut rng, &archive, params);
    let tags = generate_tags(&sk, &file);
    println!(
        "encoded {} bytes into {} chunks; extra storage for tags: {:.1}% of the data",
        archive.len(),
        file.num_chunks(),
        100.0 * 32.0 / params.chunk_bytes() as f64,
    );

    // 3. The storage provider validates the authenticators before
    //    acknowledging the contract.
    assert!(verify_tags_batch(&mut rng, &pk, &file, &tags));
    println!("provider validated all authenticators");

    // 4. One audit round: the contract's beacon produces 48 bytes of
    //    randomness; the provider answers with a 288-byte private proof.
    let meta = FileMeta {
        name: file.name,
        num_chunks: file.num_chunks(),
        k: params.k,
    };
    let challenge = Challenge::random(&mut rng);
    let prover = Prover::new(&pk, &file, &tags);
    let proof = prover.prove_private(&mut rng, &challenge);
    println!("proof posted on chain: {} bytes", proof.to_bytes().len());

    // 5. The smart contract verifies in constant time.
    let ok = verify_private(&pk, &meta, &challenge, &proof);
    println!("on-chain verification: {}", if ok { "PASS" } else { "FAIL" });
    assert!(ok);
}
