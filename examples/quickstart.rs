//! Quickstart: one complete audit round through the three role handles.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dsaudit::chain::beacon::{Beacon, TrustedBeacon};
use dsaudit::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), DsAuditError> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // 1. The data owner picks parameters and generates keys.
    //    s = 50 blocks per chunk, k = 300 challenged chunks per audit
    //    (95% detection confidence at 1% corruption).
    let params = AuditParams::default();
    let owner = DataOwner::generate(&mut rng, params);

    // 2. Encode the (already encrypted) archive into auditable chunks
    //    and compute one homomorphic authenticator per chunk. The
    //    archive streams through `encode_reader`, so a file handle of
    //    any size works without buffering it in memory.
    let archive: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
    let bundle = owner.outsource_reader(&mut rng, &mut &archive[..])?;
    println!(
        "encoded {} bytes into {} chunks; extra storage for tags: {:.1}% of the data",
        archive.len(),
        bundle.file.num_chunks(),
        100.0 * 32.0 / params.chunk_bytes() as f64,
    );

    // 3. The storage provider validates the authenticators before
    //    acknowledging the contract — `ingest` refuses forged bundles
    //    with a typed error.
    let provider = StorageProvider::ingest(&mut rng, bundle)?;
    println!("provider validated all authenticators");

    // 4. One audit round through the typed session: the contract's
    //    beacon produces 48 bytes of randomness; the provider answers
    //    with a 288-byte private proof for exactly this round.
    let auditor = Auditor::new();
    let session = auditor.begin_session(provider.public_key(), provider.meta())?;
    let mut beacon = TrustedBeacon::new(b"quickstart");
    let round = session.challenge_from_beacon(&beacon.randomness(0));
    let response = provider.respond_round(&mut rng, &round.round_challenge());
    println!(
        "proof posted on chain: {} bytes (round {})",
        response.proof.to_bytes().len(),
        response.round
    );

    // 5. The smart contract verifies in constant time; the verdict
    //    distinguishes a bad proof from bad input.
    let (session, verdict) = round.submit(response).map_err(|(_, e)| e)?.verify()?;
    println!("on-chain verification: {verdict}");
    assert!(verdict.accepted());
    assert_eq!(session.tally(), (1, 0));
    Ok(())
}
