//! Property-based tests on the audit protocol's invariants, driven
//! through the role-oriented API.

use dsaudit_core::{
    AuditParams, Auditor, Challenge, DataOwner, EncodedFile, PlainProof, PrivateProof,
    StorageProvider,
};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    // pairing-based cases are expensive; keep the counts modest
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Completeness: any file content, any challenge, honest proofs of
    /// both kinds verify; serialized forms verify identically.
    #[test]
    fn completeness_over_random_files(
        data in prop::collection::vec(any::<u8>(), 1..1500),
        seed in any::<u64>(),
        beacon in any::<[u8; 48]>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let params = AuditParams::new(4, 3).expect("valid");
        let owner = DataOwner::generate(&mut rng, params);
        let bundle = owner.outsource(&mut rng, &data);
        prop_assert_eq!(bundle.file.decode(), data, "encode/decode roundtrip");
        let provider = StorageProvider::ingest(&mut rng, bundle)
            .expect("honest bundle must ingest");
        let meta = provider.meta();
        let auditor = Auditor::new();
        let ch = auditor.challenge_from_beacon(&beacon);

        let plain = provider.respond_plain(&ch);
        prop_assert!(auditor
            .verify_plain(provider.public_key(), &meta, &ch, &plain)
            .expect("valid meta")
            .accepted());
        let private = provider.respond(&mut rng, &ch);
        prop_assert!(auditor
            .verify_private(provider.public_key(), &meta, &ch, &private)
            .expect("valid meta")
            .accepted());

        // wire roundtrips
        let p2 = PlainProof::from_bytes(&plain.to_bytes()).expect("decode");
        prop_assert_eq!(p2, plain);
        let q2 = PrivateProof::from_bytes(&private.to_bytes()).expect("decode");
        prop_assert!(auditor
            .verify_private(provider.public_key(), &meta, &ch, &q2)
            .expect("valid meta")
            .accepted());
    }

    /// Soundness probe: randomly corrupting any single block makes the
    /// audit fail whenever the containing chunk is challenged.
    #[test]
    fn corruption_detected_when_challenged(
        seed in any::<u64>(),
        chunk_sel in any::<u16>(),
        block_sel in 0usize..4,
        beacon in any::<[u8; 48]>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let params = AuditParams::new(4, 3).expect("valid");
        let owner = DataOwner::generate(&mut rng, params);
        let bundle = owner.outsource(&mut rng, &[7u8; 1200]);
        let mut provider = StorageProvider::ingest(&mut rng, bundle).expect("honest");
        let meta = provider.meta();
        let target = chunk_sel as usize % meta.num_chunks;
        provider.corrupt_block(target, block_sel);
        let auditor = Auditor::new();
        let ch = Challenge::from_beacon(&beacon);
        let challenged = ch
            .expand(meta.num_chunks, meta.k)
            .iter()
            .any(|(i, _)| *i as usize == target);
        let verdict = auditor
            .verify_private(
                provider.public_key(),
                &meta,
                &ch,
                &provider.respond(&mut rng, &ch),
            )
            .expect("valid meta");
        prop_assert_eq!(verdict.accepted(), !challenged);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Challenge expansion: k distinct in-range indices for any beacon.
    #[test]
    fn challenge_expansion_invariants(beacon in any::<[u8; 48]>(), d in 1usize..2000, k in 1usize..400) {
        let ch = Challenge::from_beacon(&beacon);
        let set = ch.expand(d, k);
        prop_assert_eq!(set.len(), k.min(d));
        let mut idx: Vec<u64> = set.iter().map(|(i, _)| *i).collect();
        idx.sort_unstable();
        idx.dedup();
        prop_assert_eq!(idx.len(), k.min(d), "indices must be distinct");
        prop_assert!(idx.iter().all(|&i| (i as usize) < d));
    }

    /// File encoding is injective and size-formula exact — and the
    /// streaming path agrees with the in-memory path on every input.
    #[test]
    fn encoding_shape(data in prop::collection::vec(any::<u8>(), 0..4000), s in 1usize..32) {
        let params = AuditParams::new(s, 1).expect("valid");
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let f = EncodedFile::encode(&mut rng, &data, params);
        let n_blocks = data.len().div_ceil(31).max(1);
        prop_assert_eq!(f.num_chunks(), n_blocks.div_ceil(s));
        prop_assert_eq!(&f.decode(), &data);
        let streamed = EncodedFile::encode_reader_with_name(f.name, &mut &data[..], params)
            .expect("in-memory reader");
        prop_assert_eq!(streamed, f, "streaming encode must match in-memory");
    }
}
