//! Property-based tests on the audit protocol's invariants.

use dsaudit_core::challenge::Challenge;
use dsaudit_core::file::EncodedFile;
use dsaudit_core::keys::keygen;
use dsaudit_core::params::AuditParams;
use dsaudit_core::proof::{PlainProof, PrivateProof};
use dsaudit_core::prove::Prover;
use dsaudit_core::tag::generate_tags;
use dsaudit_core::verify::{verify_plain, verify_private, FileMeta};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    // pairing-based cases are expensive; keep the counts modest
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Completeness: any file content, any challenge, honest proofs of
    /// both kinds verify; serialized forms verify identically.
    #[test]
    fn completeness_over_random_files(
        data in prop::collection::vec(any::<u8>(), 1..1500),
        seed in any::<u64>(),
        beacon in any::<[u8; 48]>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let params = AuditParams::new(4, 3).expect("valid");
        let (sk, pk) = keygen(&mut rng, &params);
        let file = EncodedFile::encode(&mut rng, &data, params);
        prop_assert_eq!(file.decode(), data, "encode/decode roundtrip");
        let tags = generate_tags(&sk, &file);
        let meta = FileMeta { name: file.name, num_chunks: file.num_chunks(), k: params.k };
        let prover = Prover::new(&pk, &file, &tags);
        let ch = Challenge::from_beacon(&beacon);

        let plain = prover.prove_plain(&ch);
        prop_assert!(verify_plain(&pk, &meta, &ch, &plain));
        let private = prover.prove_private(&mut rng, &ch);
        prop_assert!(verify_private(&pk, &meta, &ch, &private));

        // wire roundtrips
        let p2 = PlainProof::from_bytes(&plain.to_bytes()).expect("decode");
        prop_assert_eq!(p2, plain);
        let q2 = PrivateProof::from_bytes(&private.to_bytes()).expect("decode");
        prop_assert!(verify_private(&pk, &meta, &ch, &q2));
    }

    /// Soundness probe: randomly corrupting any single block makes the
    /// audit fail whenever the containing chunk is challenged.
    #[test]
    fn corruption_detected_when_challenged(
        seed in any::<u64>(),
        chunk_sel in any::<u16>(),
        block_sel in 0usize..4,
        beacon in any::<[u8; 48]>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let params = AuditParams::new(4, 3).expect("valid");
        let (sk, pk) = keygen(&mut rng, &params);
        let file = EncodedFile::encode(&mut rng, &[7u8; 1200], params);
        let tags = generate_tags(&sk, &file);
        let meta = FileMeta { name: file.name, num_chunks: file.num_chunks(), k: params.k };
        let mut bad = file.clone();
        let target = chunk_sel as usize % file.num_chunks();
        bad.corrupt_block(target, block_sel);
        let prover = Prover::new(&pk, &bad, &tags);
        let ch = Challenge::from_beacon(&beacon);
        let challenged = ch
            .expand(meta.num_chunks, meta.k)
            .iter()
            .any(|(i, _)| *i as usize == target);
        let ok = verify_private(&pk, &meta, &ch, &prover.prove_private(&mut rng, &ch));
        prop_assert_eq!(ok, !challenged);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Challenge expansion: k distinct in-range indices for any beacon.
    #[test]
    fn challenge_expansion_invariants(beacon in any::<[u8; 48]>(), d in 1usize..2000, k in 1usize..400) {
        let ch = Challenge::from_beacon(&beacon);
        let set = ch.expand(d, k);
        prop_assert_eq!(set.len(), k.min(d));
        let mut idx: Vec<u64> = set.iter().map(|(i, _)| *i).collect();
        idx.sort_unstable();
        idx.dedup();
        prop_assert_eq!(idx.len(), k.min(d), "indices must be distinct");
        prop_assert!(idx.iter().all(|&i| (i as usize) < d));
    }

    /// File encoding is injective and size-formula exact.
    #[test]
    fn encoding_shape(data in prop::collection::vec(any::<u8>(), 0..4000), s in 1usize..32) {
        let params = AuditParams::new(s, 1).expect("valid");
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let f = EncodedFile::encode(&mut rng, &data, params);
        let n_blocks = data.len().div_ceil(31).max(1);
        prop_assert_eq!(f.num_chunks(), n_blocks.div_ceil(s));
        prop_assert_eq!(f.decode(), data);
    }
}
