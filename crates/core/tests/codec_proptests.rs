//! Adversarial wire-format tests for every [`Codec`] type.
//!
//! Three properties, enforced per type:
//!
//! 1. **Round-trip**: `decode(encode(x)) == x` for random values.
//! 2. **Truncation**: every strict prefix of a valid encoding decodes
//!    to a typed [`DsAuditError`] — never a panic, never a value.
//! 3. **Bit-flip**: flipping any single bit at any byte offset either
//!    decodes to a typed error or to a *different* value — never a
//!    panic, and never the original (canonical encodings are injective).
//!
//! This is the test bed behind the "no panic reachable from the public
//! API on malformed wire bytes" guarantee.

use dsaudit_algebra::field::Field;
use dsaudit_algebra::g1::{G1Affine, G1Projective};
use dsaudit_algebra::pairing::Gt;
use dsaudit_algebra::Fr;
use dsaudit_core::{
    AuditParams, Challenge, Codec, DataOwner, PlainProof, PrivateProof, PublicKey, SecretKey,
};
use proptest::prelude::*;
use rand::SeedableRng;

/// Checks all three adversarial properties for one value.
///
/// No `Debug` bound: secret types (e.g. [`SecretKey`]) deliberately
/// don't implement it, so failure messages name the type and offset but
/// never format the value.
fn check_wire_hardness<T: Codec + PartialEq>(value: &T) {
    let bytes = value.encode();
    assert_eq!(bytes.len(), value.encoded_len(), "encoded_len must be exact");
    assert!(
        &T::decode(&bytes).expect("canonical encoding must decode") == value,
        "{}: round-trip identity violated",
        T::TYPE_NAME
    );

    // truncation at every prefix length (including empty)
    for cut in 0..bytes.len() {
        match T::decode(&bytes[..cut]) {
            Err(_) => {}
            Ok(_) => panic!(
                "{}: truncation to {cut}/{} bytes decoded to a value",
                T::TYPE_NAME,
                bytes.len()
            ),
        }
    }

    // single-bit flip at every byte offset
    for offset in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[offset] ^= 1 << (offset % 8);
        match T::decode(&flipped) {
            Err(_) => {} // typed rejection is fine
            Ok(v) => assert!(
                &v != value,
                "{}: bit flip at byte {offset} decoded back to the original",
                T::TYPE_NAME
            ),
        }
    }
}

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn fr_wire_hardness(seed in any::<u64>()) {
        let mut rng = rng(seed);
        check_wire_hardness(&Fr::random(&mut rng));
    }

    #[test]
    fn g1_wire_hardness(seed in any::<u64>()) {
        let mut rng = rng(seed);
        check_wire_hardness(&G1Projective::random(&mut rng).to_affine());
    }

    #[test]
    fn gt_wire_hardness(seed in any::<u64>()) {
        let mut rng = rng(seed);
        check_wire_hardness(&Gt::generator().pow(Fr::random(&mut rng)));
    }

    #[test]
    fn secret_key_wire_hardness(seed in any::<u64>()) {
        let mut rng = rng(seed);
        check_wire_hardness(&SecretKey::random(&mut rng));
    }

    #[test]
    fn challenge_wire_hardness(beacon in any::<[u8; 48]>()) {
        check_wire_hardness(&Challenge::from_beacon(&beacon));
    }

    #[test]
    fn plain_proof_wire_hardness(seed in any::<u64>()) {
        let mut rng = rng(seed);
        check_wire_hardness(&PlainProof {
            sigma: G1Projective::random(&mut rng).to_affine(),
            y: Fr::random(&mut rng),
            psi: G1Projective::random(&mut rng).to_affine(),
        });
    }

    #[test]
    fn private_proof_wire_hardness(seed in any::<u64>()) {
        let mut rng = rng(seed);
        check_wire_hardness(&PrivateProof {
            sigma: G1Projective::random(&mut rng).to_affine(),
            y_prime: Fr::random(&mut rng),
            psi: G1Projective::random(&mut rng).to_affine(),
            r_commit: Gt::generator().pow(Fr::random(&mut rng)),
        });
    }

    #[test]
    fn tag_vector_wire_hardness(seed in any::<u64>(), n in 0usize..6) {
        let mut rng = rng(seed);
        let tags: Vec<G1Affine> = (0..n)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        check_wire_hardness(&tags);
    }
}

/// The public key's encoding embeds a pairing-checked consistency proof,
/// so the full bit-flip sweep is one deterministic (seeded) case rather
/// than a proptest — each of the ~388 offsets that decodes structurally
/// still has to run a pairing before rejection.
#[test]
fn public_key_wire_hardness() {
    let mut rng = rng(0x9c0dec);
    let params = AuditParams::new(2, 2).unwrap();
    let owner = DataOwner::generate(&mut rng, params);
    check_wire_hardness(owner.public_key());
}

// Decoding attacker-chosen *random* bytes (not derived from a valid
// encoding) never panics for any codec type.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = Fr::decode(&bytes);
        let _ = G1Affine::decode(&bytes);
        let _ = Gt::decode(&bytes);
        let _ = SecretKey::decode(&bytes);
        let _ = Challenge::decode(&bytes);
        let _ = PlainProof::decode(&bytes);
        let _ = PrivateProof::decode(&bytes);
        let _ = Vec::<G1Affine>::decode(&bytes);
        let _ = PublicKey::decode(&bytes);
    }
}
