//! Proof generation on the storage-provider side (§V-D step 1).

use std::time::{Duration, Instant};

use dsaudit_algebra::curve::Projective;
use dsaudit_algebra::field::Field;
use dsaudit_algebra::g1::G1Affine;
use dsaudit_algebra::endo::msm_g1;
use dsaudit_algebra::poly::DensePoly;
use dsaudit_algebra::Fr;
use dsaudit_crypto::prf::h_prime;

use crate::challenge::Challenge;
use crate::error::DsAuditError;
use crate::file::EncodedFile;
use crate::keys::PublicKey;
use crate::proof::{PlainProof, PrivateProof};

/// Storage-provider state for one stored file: the data plus its
/// authenticators (extra storage `1/s` of the file size).
#[derive(Clone, Debug)]
pub struct Prover<'a> {
    /// Public key of the owning contract.
    pub pk: &'a PublicKey,
    /// The stored (encoded) file.
    pub file: &'a EncodedFile,
    /// Per-chunk authenticators received from the data owner.
    pub tags: &'a [G1Affine],
}

/// Wall-clock split of one proof generation, for the Fig. 8 ablation.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProveTimings {
    /// Finite-field work: challenge-weighted coefficients, evaluation,
    /// quotient division.
    pub field_ops: Duration,
    /// Elliptic-curve work: the two MSMs.
    pub curve_ops: Duration,
    /// GT work: the privacy commitment `R = e(g1, eps)^z` (zero for the
    /// plain variant).
    pub gt_ops: Duration,
}

impl ProveTimings {
    /// Total prove time.
    pub fn total(&self) -> Duration {
        self.field_ops + self.curve_ops + self.gt_ops
    }
}

impl<'a> Prover<'a> {
    /// Creates a prover after sanity-checking dimensions.
    ///
    /// # Errors
    /// [`DsAuditError::DimensionMismatch`] when the tag count does not
    /// match the file's chunk count, or the chunk size exceeds what the
    /// public key's commitment key supports.
    pub fn new(
        pk: &'a PublicKey,
        file: &'a EncodedFile,
        tags: &'a [G1Affine],
    ) -> Result<Self, DsAuditError> {
        if tags.len() != file.num_chunks() {
            return Err(DsAuditError::DimensionMismatch {
                what: "authenticators per chunk",
                expected: file.num_chunks(),
                got: tags.len(),
            });
        }
        if file.params.s > pk.s() {
            return Err(DsAuditError::DimensionMismatch {
                what: "chunk size vs. commitment key",
                expected: pk.s(),
                got: file.params.s,
            });
        }
        Ok(Self { pk, file, tags })
    }

    /// Expands the challenge and computes the shared pieces:
    /// `(sigma, P_k coefficients)`.
    fn aggregate(&self, challenge: &Challenge) -> (dsaudit_algebra::g1::G1Projective, Vec<Fr>) {
        let d = self.file.num_chunks();
        let k = self.file.params.k;
        let set = challenge.expand(d, k);
        // sigma = prod_i sigma_i^{c_i}
        let bases: Vec<G1Affine> = set.iter().map(|(i, _)| self.tags[*i as usize]).collect();
        let coeffs: Vec<Fr> = set.iter().map(|(_, c)| *c).collect();
        let sigma = msm_g1(&bases, &coeffs);
        // P_k coefficients: p_j = sum_i c_i m_{i,j}
        let s = self.file.params.s;
        let mut pk_coeffs = vec![Fr::zero(); s];
        for (i, c) in &set {
            for (j, m) in self.file.chunk(*i as usize).iter().enumerate() {
                pk_coeffs[j] += *c * *m;
            }
        }
        (sigma, pk_coeffs)
    }

    /// KZG opening: quotient witness `psi` and evaluation `y = P_k(r)`.
    fn open(&self, pk_coeffs: Vec<Fr>, r: Fr) -> (Fr, Vec<Fr>) {
        let poly = DensePoly::from_coeffs(pk_coeffs);
        let (quot, y) = poly.divide_by_linear(r);
        (y, quot.coeffs().to_vec())
    }

    /// Produces the non-private response `(sigma, y, psi)` — Eq. (1).
    ///
    /// Both aggregation MSMs (`sigma` over the challenged tags, `psi`
    /// over the commitment key) run through the signed-digit Pippenger in
    /// `dsaudit_algebra::msm`, and the two results share one batched
    /// affine conversion.
    pub fn prove_plain(&self, challenge: &Challenge) -> PlainProof {
        let _span = dsaudit_obs::span("core.prove_plain");
        dsaudit_obs::counter_inc("core.proofs_plain");
        let (sigma, pk_coeffs) = self.aggregate(challenge);
        let (y, quot) = self.open(pk_coeffs, challenge.r);
        let psi = msm_g1(&self.pk.alpha_powers_g1[..quot.len()], &quot);
        let affine = Projective::batch_to_affine(&[sigma, psi]);
        PlainProof {
            sigma: affine[0],
            y,
            psi: affine[1],
        }
    }

    /// Produces the privacy-assured response `(sigma, y', psi, R)` —
    /// the paper's main protocol (§V-D, verified by Eq. (2)).
    pub fn prove_private<R: rand::RngCore + ?Sized>(
        &self,
        rng: &mut R,
        challenge: &Challenge,
    ) -> PrivateProof {
        self.prove_private_instrumented(rng, challenge).0
    }

    /// Instrumented variant returning the field/curve/GT time split used
    /// by the Fig. 8 reproduction.
    pub fn prove_private_instrumented<R: rand::RngCore + ?Sized>(
        &self,
        rng: &mut R,
        challenge: &Challenge,
    ) -> (PrivateProof, ProveTimings) {
        let _span = dsaudit_obs::span("core.prove_private");
        dsaudit_obs::counter_inc("core.proofs_private");
        let mut t = ProveTimings::default();

        let t0 = Instant::now();
        let d = self.file.num_chunks();
        let k = self.file.params.k;
        let set = challenge.expand(d, k);
        let s = self.file.params.s;
        let mut pk_coeffs = vec![Fr::zero(); s];
        for (i, c) in &set {
            for (j, m) in self.file.chunk(*i as usize).iter().enumerate() {
                pk_coeffs[j] += *c * *m;
            }
        }
        let (y, quot) = self.open(pk_coeffs, challenge.r);
        t.field_ops += t0.elapsed();

        let t1 = Instant::now();
        let bases: Vec<G1Affine> = set.iter().map(|(i, _)| self.tags[*i as usize]).collect();
        let coeffs: Vec<Fr> = set.iter().map(|(_, c)| *c).collect();
        let sigma = msm_g1(&bases, &coeffs);
        let psi = msm_g1(&self.pk.alpha_powers_g1[..quot.len()], &quot);
        t.curve_ops += t1.elapsed();

        let t2 = Instant::now();
        let z = Fr::random(rng);
        let r_commit = self.pk.e_g1_eps.pow(z);
        t.gt_ops += t2.elapsed();

        let t3 = Instant::now();
        let zeta = h_prime(&r_commit);
        let y_prime = zeta * y + z;
        t.field_ops += t3.elapsed();

        let affine = Projective::batch_to_affine(&[sigma, psi]);
        (
            PrivateProof {
                sigma: affine[0],
                y_prime,
                psi: affine[1],
                r_commit,
            },
            t,
        )
    }

    /// Instrumented plain prover (the "w/o on-chain privacy" series).
    pub fn prove_plain_instrumented(&self, challenge: &Challenge) -> (PlainProof, ProveTimings) {
        let mut t = ProveTimings::default();
        let t0 = Instant::now();
        let d = self.file.num_chunks();
        let k = self.file.params.k;
        let set = challenge.expand(d, k);
        let s = self.file.params.s;
        let mut pk_coeffs = vec![Fr::zero(); s];
        for (i, c) in &set {
            for (j, m) in self.file.chunk(*i as usize).iter().enumerate() {
                pk_coeffs[j] += *c * *m;
            }
        }
        let (y, quot) = self.open(pk_coeffs, challenge.r);
        t.field_ops += t0.elapsed();
        let t1 = Instant::now();
        let bases: Vec<G1Affine> = set.iter().map(|(i, _)| self.tags[*i as usize]).collect();
        let coeffs: Vec<Fr> = set.iter().map(|(_, c)| *c).collect();
        let sigma = msm_g1(&bases, &coeffs);
        let psi = msm_g1(&self.pk.alpha_powers_g1[..quot.len()], &quot);
        t.curve_ops += t1.elapsed();
        let affine = Projective::batch_to_affine(&[sigma, psi]);
        (
            PlainProof {
                sigma: affine[0],
                y,
                psi: affine[1],
            },
            t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::keygen;
    use crate::params::AuditParams;
    use crate::tag::generate_tags;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x9407e)
    }

    #[test]
    fn proofs_deterministic_given_challenge() {
        let mut rng = rng();
        let params = AuditParams::new(5, 4).unwrap();
        let (sk, pk) = keygen(&mut rng, &params);
        let file = EncodedFile::encode(&mut rng, &[42u8; 800], params);
        let tags = generate_tags(&sk, &file);
        let prover = Prover::new(&pk, &file, &tags).unwrap();
        let ch = Challenge::random(&mut rng);
        assert_eq!(prover.prove_plain(&ch), prover.prove_plain(&ch));
    }

    #[test]
    fn private_proof_masks_evaluation() {
        let mut rng = rng();
        let params = AuditParams::new(5, 4).unwrap();
        let (sk, pk) = keygen(&mut rng, &params);
        let file = EncodedFile::encode(&mut rng, &[7u8; 800], params);
        let tags = generate_tags(&sk, &file);
        let prover = Prover::new(&pk, &file, &tags).unwrap();
        let ch = Challenge::random(&mut rng);
        let plain = prover.prove_plain(&ch);
        let priv1 = prover.prove_private(&mut rng, &ch);
        let priv2 = prover.prove_private(&mut rng, &ch);
        // same sigma/psi, but y' differs per proof thanks to fresh z
        assert_eq!(priv1.sigma, plain.sigma);
        assert_eq!(priv1.psi, plain.psi);
        assert_ne!(priv1.y_prime, plain.y);
        assert_ne!(priv1.y_prime, priv2.y_prime);
        assert_ne!(priv1.r_commit, priv2.r_commit);
    }

    #[test]
    fn mismatched_tags_is_a_typed_error() {
        let mut rng = rng();
        let params = AuditParams::new(5, 4).unwrap();
        let (sk, pk) = keygen(&mut rng, &params);
        let file = EncodedFile::encode(&mut rng, &[7u8; 800], params);
        let mut tags = generate_tags(&sk, &file);
        tags.pop();
        assert_eq!(
            Prover::new(&pk, &file, &tags).err(),
            Some(DsAuditError::DimensionMismatch {
                what: "authenticators per chunk",
                expected: file.num_chunks(),
                got: file.num_chunks() - 1,
            })
        );
    }
}
