//! The on-chain privacy attack of §V-C — and why the main protocol
//! resists it.
//!
//! A passive adversary reads audit trails (challenges + proofs) off the
//! public blockchain. With the *non-private* response, each trail reveals
//! one evaluation `y_t = P_k(r_t)` of the degree-(s-1) challenge
//! polynomial. After `s` trails sharing the same challenged set, Lagrange
//! interpolation recovers `P_k(x)` entirely — i.e. the challenge-weighted
//! combinations `sum_i c_i m_{i,j}` of the victim's blocks. With `u >= d`
//! such recovered combinations under different coefficient vectors, a
//! d x d linear solve recovers **every raw block** of the file.
//!
//! Against the private response `y' = zeta P_k(r) + z`, the same pipeline
//! collapses: each trail carries a fresh uniform mask `z`, making `y'`
//! marginally uniform and the "interpolated" polynomial garbage (witness
//! indistinguishability, Theorem 2).

use dsaudit_algebra::field::Field;
use dsaudit_algebra::poly::DensePoly;
use dsaudit_algebra::Fr;

use crate::challenge::Challenge;
use crate::proof::{PlainProof, PrivateProof};

/// One observed audit trail: the public challenge and the posted proof.
#[derive(Clone, Copy, Debug)]
pub struct PlainTrail {
    /// On-chain challenge.
    pub challenge: Challenge,
    /// On-chain response.
    pub proof: PlainProof,
}

/// One observed private audit trail.
#[derive(Clone, Copy, Debug)]
pub struct PrivateTrail {
    /// On-chain challenge.
    pub challenge: Challenge,
    /// On-chain response.
    pub proof: PrivateProof,
}

/// Interpolates `P_k(x)` from `>= s` plain trails whose challenges share
/// the index/coefficient seeds (same `C1`, `C2`) but differ in `r`.
///
/// Returns `None` if fewer than `s` distinct evaluation points are
/// available or the seeds are inconsistent.
pub fn interpolate_pk(trails: &[PlainTrail], s: usize) -> Option<DensePoly> {
    if trails.is_empty() {
        return None;
    }
    let (c1, c2) = (trails[0].challenge.c1, trails[0].challenge.c2);
    let mut points: Vec<(Fr, Fr)> = Vec::new();
    for t in trails {
        if t.challenge.c1 != c1 || t.challenge.c2 != c2 {
            return None;
        }
        if points.iter().any(|(x, _)| *x == t.challenge.r) {
            continue;
        }
        points.push((t.challenge.r, t.proof.y));
    }
    if points.len() < s {
        return None;
    }
    points.truncate(s);
    Some(DensePoly::interpolate(&points))
}

/// Solves a dense linear system `A x = b` over `Fr` by Gaussian
/// elimination with partial (nonzero) pivoting. Returns `None` for
/// singular systems.
///
/// # Panics
/// Panics if `a` is not square or does not match `b` in size.
pub fn solve_linear_system(mut a: Vec<Vec<Fr>>, mut b: Vec<Fr>) -> Option<Vec<Fr>> {
    let n = b.len();
    assert!(a.len() == n && a.iter().all(|row| row.len() == n));
    for col in 0..n {
        let pivot = (col..n).find(|&row| !a[row][col].is_zero())?;
        a.swap(col, pivot);
        b.swap(col, pivot);
        let inv = a[col][col].inverse().expect("pivot nonzero");
        for x in a[col][col..].iter_mut() {
            *x *= inv;
        }
        b[col] *= inv;
        let pivot_row: Vec<Fr> = a[col][col..].to_vec();
        for row in 0..n {
            if row != col && !a[row][col].is_zero() {
                let factor = a[row][col];
                for (x, v) in a[row][col..].iter_mut().zip(&pivot_row) {
                    *x -= factor * *v;
                }
                let v = b[col];
                b[row] -= factor * v;
            }
        }
    }
    Some(b)
}

/// Full block-recovery attack: given `u >= d` groups of plain trails
/// (each group sharing `(C1, C2)` and containing `>= s` distinct `r`),
/// recovers the complete block matrix `m_{i,j}` of a `d`-chunk file.
///
/// `d` is the number of chunks, `s` the chunk size, `k` the per-audit
/// challenge count; recovery needs the challenge sets to jointly
/// determine all chunks (guaranteed when `k >= d`, the small-file regime
/// the paper highlights as the worst case).
pub fn recover_blocks(
    groups: &[Vec<PlainTrail>],
    d: usize,
    s: usize,
    k: usize,
) -> Option<Vec<Vec<Fr>>> {
    if groups.len() < d {
        return None;
    }
    // Interpolate each group's P_k and record its coefficient vector of
    // challenge weights per chunk.
    let mut weight_rows: Vec<Vec<Fr>> = Vec::with_capacity(groups.len());
    let mut polys: Vec<DensePoly> = Vec::with_capacity(groups.len());
    for g in groups {
        let poly = interpolate_pk(g, s)?;
        let set = g[0].challenge.expand(d, k);
        let mut row = vec![Fr::zero(); d];
        for (i, c) in set {
            row[i as usize] = c;
        }
        weight_rows.push(row);
        polys.push(poly);
    }
    // For each block position j, solve: sum_i w_{g,i} m_{i,j} = q_{g,j}
    let a: Vec<Vec<Fr>> = weight_rows[..d].to_vec();
    // Solve column-by-column, then transpose into row-major blocks.
    let mut cols: Vec<Vec<Fr>> = Vec::with_capacity(s);
    for j in 0..s {
        let b: Vec<Fr> = polys[..d]
            .iter()
            .map(|p| p.coeffs().get(j).copied().unwrap_or_else(Fr::zero))
            .collect();
        cols.push(solve_linear_system(a.clone(), b)?);
    }
    let blocks: Vec<Vec<Fr>> = (0..d)
        .map(|i| cols.iter().map(|c| c[i]).collect())
        .collect();
    Some(blocks)
}

/// The same interpolation pipeline applied to *private* trails (treating
/// `y'` as if it were an evaluation). Returns the garbage polynomial the
/// adversary would obtain — tests assert it bears no relation to the
/// data, demonstrating the privacy layer's effect.
pub fn interpolate_pk_from_private(trails: &[PrivateTrail], s: usize) -> Option<DensePoly> {
    if trails.len() < s {
        return None;
    }
    let mut points: Vec<(Fr, Fr)> = Vec::new();
    for t in trails {
        if points.iter().any(|(x, _)| *x == t.challenge.r) {
            continue;
        }
        points.push((t.challenge.r, t.proof.y_prime));
    }
    if points.len() < s {
        return None;
    }
    points.truncate(s);
    Some(DensePoly::interpolate(&points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::EncodedFile;
    use crate::keys::keygen;
    use crate::params::AuditParams;
    use crate::prove::Prover;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xa77ac4)
    }

    #[test]
    fn linear_solver_roundtrip() {
        let mut rng = rng();
        let n = 6;
        let a: Vec<Vec<Fr>> = (0..n)
            .map(|_| (0..n).map(|_| Fr::random(&mut rng)).collect())
            .collect();
        let x: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let b: Vec<Fr> = (0..n)
            .map(|row| (0..n).fold(Fr::zero(), |acc, col| acc + a[row][col] * x[col]))
            .collect();
        assert_eq!(solve_linear_system(a, b).unwrap(), x);
    }

    #[test]
    fn singular_system_returns_none() {
        let zero_row = vec![vec![Fr::zero(); 2]; 2];
        assert!(solve_linear_system(zero_row, vec![Fr::one(), Fr::one()]).is_none());
    }

    /// End-to-end §V-C attack: full file recovery from public trails.
    #[test]
    fn full_attack_recovers_blocks_from_plain_trails() {
        let mut rng = rng();
        let s = 4;
        let params = AuditParams::new(s, 16).unwrap(); // k >= d: worst case
        let (sk, pk) = keygen(&mut rng, &params);
        let data: Vec<u8> = (0..500).map(|i| (i * 11 % 256) as u8).collect();
        let file = EncodedFile::encode(&mut rng, &data, params);
        let d = file.num_chunks();
        let tags = crate::tag::generate_tags(&sk, &file);
        let prover = Prover::new(&pk, &file, &tags).unwrap();

        // Adversary observes u = d challenge groups; in each, s audits
        // share (C1, C2) and differ only in r — the paper's observation
        // model (eclipse-accelerated in the worst case).
        let mut groups = Vec::new();
        for g in 0..d {
            let mut beacon = [0u8; 48];
            beacon[0] = g as u8;
            let mut trails = Vec::new();
            for t in 0..s {
                let mut b = beacon;
                b[32] = t as u8 + 1; // varies only the r seed
                let ch = Challenge::from_beacon(&b);
                trails.push(PlainTrail {
                    challenge: ch,
                    proof: prover.prove_plain(&ch),
                });
            }
            groups.push(trails);
        }

        let recovered = recover_blocks(&groups, d, s, params.k).expect("attack must succeed");
        assert_eq!(recovered.len(), d);
        for (i, rec) in recovered.iter().enumerate() {
            assert_eq!(*rec, file.chunk(i), "chunk {i} not recovered");
        }
    }

    #[test]
    fn private_trails_resist_the_attack() {
        let mut rng = rng();
        let s = 4;
        let params = AuditParams::new(s, 16).unwrap();
        let (sk, pk) = keygen(&mut rng, &params);
        let data: Vec<u8> = (0..500).map(|i| (i * 13 % 256) as u8).collect();
        let file = EncodedFile::encode(&mut rng, &data, params);
        let tags = crate::tag::generate_tags(&sk, &file);
        let prover = Prover::new(&pk, &file, &tags).unwrap();

        // Same observation model, but against the main (private) protocol.
        let mut trails = Vec::new();
        for t in 0..s {
            let mut b = [0u8; 48];
            b[32] = t as u8 + 1;
            let ch = Challenge::from_beacon(&b);
            trails.push(PrivateTrail {
                challenge: ch,
                proof: prover.prove_private(&mut rng, &ch),
            });
        }
        let garbage = interpolate_pk_from_private(&trails, s).unwrap();

        // the true P_k for this challenge group
        let ch0 = trails[0].challenge;
        let set = ch0.expand(file.num_chunks(), params.k);
        let mut true_coeffs = vec![Fr::zero(); s];
        for (i, c) in &set {
            for (j, m) in file.chunk(*i as usize).iter().enumerate() {
                true_coeffs[j] += *c * *m;
            }
        }
        let true_pk = DensePoly::from_coeffs(true_coeffs);
        assert_ne!(
            garbage, true_pk,
            "private trails must not interpolate to the true polynomial"
        );
        // and not even a single coefficient should match
        let matching = garbage
            .coeffs()
            .iter()
            .zip(true_pk.coeffs())
            .filter(|(a, b)| a == b)
            .count();
        assert_eq!(matching, 0, "masked trails leaked a coefficient");
    }

    #[test]
    fn interpolation_needs_enough_points() {
        let mut rng = rng();
        let s = 4;
        let params = AuditParams::new(s, 8).unwrap();
        let (sk, pk) = keygen(&mut rng, &params);
        let file = EncodedFile::encode(&mut rng, &[1u8; 300], params);
        let tags = crate::tag::generate_tags(&sk, &file);
        let prover = Prover::new(&pk, &file, &tags).unwrap();
        let mut trails = Vec::new();
        for t in 0..s - 1 {
            let mut b = [0u8; 48];
            b[32] = t as u8;
            let ch = Challenge::from_beacon(&b);
            trails.push(PlainTrail {
                challenge: ch,
                proof: prover.prove_plain(&ch),
            });
        }
        assert!(interpolate_pk(&trails, s).is_none());
    }

    #[test]
    fn mixed_seed_groups_rejected() {
        let mut rng = rng();
        let s = 3;
        let params = AuditParams::new(s, 8).unwrap();
        let (sk, pk) = keygen(&mut rng, &params);
        let file = EncodedFile::encode(&mut rng, &[2u8; 300], params);
        let tags = crate::tag::generate_tags(&sk, &file);
        let prover = Prover::new(&pk, &file, &tags).unwrap();
        let mut trails = Vec::new();
        for t in 0..s {
            let mut b = [0u8; 48];
            b[0] = t as u8; // different C1 per trail: inconsistent group
            b[32] = t as u8;
            let ch = Challenge::from_beacon(&b);
            trails.push(PlainTrail {
                challenge: ch,
                proof: prover.prove_plain(&ch),
            });
        }
        assert!(interpolate_pk(&trails, s).is_none());
    }
}
