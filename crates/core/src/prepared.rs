//! Process-wide cache of prepared G2 points.
//!
//! The verifier pairs against the same three G2 points on every audit of
//! a public key: the canonical generator `g2`, `pk.eps`, and `pk.delta`.
//! Preparing a point ([`G2Prepared`]) runs the whole Miller-loop curve
//! arithmetic once and stores the line-coefficient sequence (~17 KB);
//! serving it from this cache makes repeated rounds pay only the sparse
//! accumulator work. Mirrors the `(name, i)` chi cache from
//! [`crate::verify::chi_cache`]: same locking discipline, same
//! compute-outside-the-lock policy, same hit/miss counters for tests and
//! the bench harness.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use dsaudit_algebra::g2::G2Affine;
use dsaudit_algebra::pairing::G2Prepared;

/// Upper bound on resident entries (~17 KB each, so ~70 MB at the cap) —
/// far beyond any realistic audit population (two fixed points per
/// registered key). On overflow a single arbitrary entry is evicted, so
/// an adversary flooding the cache with throwaway points degrades it
/// gradually instead of wiping every verifier's hot entries at once.
const MAX_ENTRIES: usize = 1 << 12;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn map() -> &'static Mutex<HashMap<[u8; 64], Arc<G2Prepared>>> {
    static MAP: OnceLock<Mutex<HashMap<[u8; 64], Arc<G2Prepared>>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The prepared form of `q`, served from the cache when warm. Misses
/// prepare outside the lock (two racing verifiers may both prepare a
/// fresh entry, which is benign — preparation is deterministic).
pub fn prepared(q: &G2Affine) -> Arc<G2Prepared> {
    let key = q.to_compressed();
    if let Some(p) = map().lock().expect("prepared cache lock").get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(p);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let p = Arc::new(G2Prepared::from_affine(q));
    let mut m = map().lock().expect("prepared cache lock");
    if m.len() >= MAX_ENTRIES {
        if let Some(victim) = m.keys().next().copied() {
            m.remove(&victim);
        }
    }
    m.insert(key, Arc::clone(&p));
    p
}

/// `(hits, misses)` counters since process start, for tests and the
/// bench harness.
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsaudit_algebra::g2::G2Projective;
    use dsaudit_algebra::pairing::{multi_pairing_prepared, pairing};
    use dsaudit_algebra::Fr;
    use dsaudit_algebra::field::Field;
    use dsaudit_algebra::g1::G1Projective;
    use rand::SeedableRng;

    #[test]
    fn cache_hits_on_repeated_lookup_and_matches_fresh() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x62ca);
        let p = G1Projective::random(&mut rng).to_affine();
        let q = G2Projective::random(&mut rng).to_affine();
        let first = prepared(&q);
        let (h1, _) = stats();
        let second = prepared(&q);
        let (h2, _) = stats();
        assert!(h2 > h1, "second lookup must hit");
        let e = multi_pairing_prepared(&[(&p, first.as_ref())]);
        assert_eq!(e, multi_pairing_prepared(&[(&p, second.as_ref())]));
        assert_eq!(e, pairing(&p, &q));
        // identity points cache and pair correctly too
        let id = prepared(&G2Affine::identity());
        assert!(
            multi_pairing_prepared(&[(&p, id.as_ref())]).is_identity()
        );
        let _ = Fr::random(&mut rng);
    }
}
