//! Proof wire formats and their exact on-chain sizes.
//!
//! * [`PlainProof`] — the non-private HLA+KZG response `(sigma, y, psi)`:
//!   **96 bytes** (the "w/o on-chain privacy" series of Figs. 5, 8, 9).
//! * [`PrivateProof`] — the paper's main proof `(sigma, y', psi, R)`:
//!   **288 bytes** = 3 x 32 B (two compressed G1 points and one scalar)
//!   plus 192 B (torus-compressed GT element), exactly the size the
//!   paper reports per audit.
//!
//! Both serialize through the canonical [`Codec`]; decoding malformed
//! wire bytes yields typed [`DsAuditError`]s naming the offending field.

use dsaudit_algebra::g1::G1Affine;
use dsaudit_algebra::pairing::Gt;
use dsaudit_algebra::Fr;

use crate::codec::{ByteReader, Codec};
use crate::error::DsAuditError;

/// Byte length of a serialized [`PlainProof`].
pub const PLAIN_PROOF_BYTES: usize = 96;
/// Byte length of a serialized [`PrivateProof`].
pub const PRIVATE_PROOF_BYTES: usize = 288;

/// Non-private audit response (internal baseline; leaks `P_k(r)`, see
/// §V-C and [`crate::attack`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlainProof {
    /// Aggregated authenticator `sigma = prod sigma_i^{c_i}`.
    pub sigma: G1Affine,
    /// The polynomial evaluation `y = P_k(r)` — the leaky part.
    pub y: Fr,
    /// KZG quotient witness `psi = g1^{(P_k(alpha) - P_k(r))/(alpha - r)}`.
    pub psi: G1Affine,
}

/// Privacy-assured audit response (§V-D): the evaluation is masked as
/// `y' = zeta * P_k(r) + z` with commitment `R = e(g1, eps)^z` and
/// Fiat–Shamir challenge `zeta = H'(R)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrivateProof {
    /// Aggregated authenticator.
    pub sigma: G1Affine,
    /// Masked evaluation `y' = zeta * P_k(r) + z`.
    pub y_prime: Fr,
    /// KZG quotient witness.
    pub psi: G1Affine,
    /// Sigma-protocol commitment `R = e(g1, eps)^z`.
    pub r_commit: Gt,
}

impl PlainProof {
    /// Serializes to the 96-byte wire format.
    pub fn to_bytes(&self) -> [u8; PLAIN_PROOF_BYTES] {
        let mut out = [0u8; PLAIN_PROOF_BYTES];
        out.copy_from_slice(&self.encode());
        out
    }

    /// Parses the 96-byte wire format.
    ///
    /// # Errors
    /// Typed [`DsAuditError`] on bad length or malformed elements.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DsAuditError> {
        Self::decode(bytes)
    }
}

/// `sigma (32 B) || y (32 B) || psi (32 B)` — the 96-byte Eq. (1) wire
/// format.
impl Codec for PlainProof {
    const TYPE_NAME: &'static str = "PlainProof";

    fn encoded_len(&self) -> usize {
        PLAIN_PROOF_BYTES
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.sigma.encode_into(out);
        self.y.encode_into(out);
        self.psi.encode_into(out);
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, DsAuditError> {
        let sigma_bytes = r.array::<32>("sigma")?;
        let sigma =
            G1Affine::from_compressed(&sigma_bytes).ok_or_else(|| r.malformed("sigma"))?;
        let y_bytes = r.array::<32>("y")?;
        let y = Fr::from_bytes_be(&y_bytes).ok_or_else(|| r.malformed("y"))?;
        let psi_bytes = r.array::<32>("psi")?;
        let psi = G1Affine::from_compressed(&psi_bytes).ok_or_else(|| r.malformed("psi"))?;
        Ok(Self { sigma, y, psi })
    }
}

impl PrivateProof {
    /// Serializes to the 288-byte wire format.
    pub fn to_bytes(&self) -> [u8; PRIVATE_PROOF_BYTES] {
        let mut out = [0u8; PRIVATE_PROOF_BYTES];
        out.copy_from_slice(&self.encode());
        out
    }

    /// Parses the 288-byte wire format.
    ///
    /// # Errors
    /// Typed [`DsAuditError`] on bad length or malformed elements.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DsAuditError> {
        Self::decode(bytes)
    }
}

/// `sigma (32 B) || y' (32 B) || psi (32 B) || R (192 B)` — the
/// 288-byte on-chain format of the paper's main proof.
impl Codec for PrivateProof {
    const TYPE_NAME: &'static str = "PrivateProof";

    fn encoded_len(&self) -> usize {
        PRIVATE_PROOF_BYTES
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.sigma.encode_into(out);
        self.y_prime.encode_into(out);
        self.psi.encode_into(out);
        self.r_commit.encode_into(out);
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, DsAuditError> {
        let sigma_bytes = r.array::<32>("sigma")?;
        let sigma =
            G1Affine::from_compressed(&sigma_bytes).ok_or_else(|| r.malformed("sigma"))?;
        let y_bytes = r.array::<32>("y_prime")?;
        let y_prime = Fr::from_bytes_be(&y_bytes).ok_or_else(|| r.malformed("y_prime"))?;
        let psi_bytes = r.array::<32>("psi")?;
        let psi = G1Affine::from_compressed(&psi_bytes).ok_or_else(|| r.malformed("psi"))?;
        let gt_bytes = r.array::<192>("r_commit")?;
        let r_commit =
            Gt::from_compressed(&gt_bytes).ok_or_else(|| r.malformed("r_commit"))?;
        Ok(Self {
            sigma,
            y_prime,
            psi,
            r_commit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsaudit_algebra::field::Field;
    use dsaudit_algebra::g1::G1Projective;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x9f)
    }

    #[test]
    fn plain_roundtrip() {
        let mut rng = rng();
        let p = PlainProof {
            sigma: G1Projective::random(&mut rng).to_affine(),
            y: Fr::random(&mut rng),
            psi: G1Projective::random(&mut rng).to_affine(),
        };
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), 96);
        assert_eq!(PlainProof::from_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn private_roundtrip_is_288_bytes() {
        let mut rng = rng();
        let p = PrivateProof {
            sigma: G1Projective::random(&mut rng).to_affine(),
            y_prime: Fr::random(&mut rng),
            psi: G1Projective::random(&mut rng).to_affine(),
            r_commit: Gt::generator().pow(Fr::random(&mut rng)),
        };
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), 288, "the paper's headline proof size");
        assert_eq!(PrivateProof::from_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn wrong_length_rejected_with_typed_errors() {
        let mut rng = rng();
        let plain = PlainProof {
            sigma: G1Projective::random(&mut rng).to_affine(),
            y: Fr::random(&mut rng),
            psi: G1Projective::random(&mut rng).to_affine(),
        };
        let bytes = plain.to_bytes();
        assert!(matches!(
            PlainProof::from_bytes(&bytes[..95]),
            Err(DsAuditError::Truncated {
                ty: "PlainProof",
                field: "psi",
                expected: 32,
                got: 31,
            })
        ));
        // one byte too many is trailing garbage, not a bigger proof
        let good = PrivateProof {
            sigma: G1Projective::random(&mut rng).to_affine(),
            y_prime: Fr::random(&mut rng),
            psi: G1Projective::random(&mut rng).to_affine(),
            r_commit: Gt::generator().pow(Fr::random(&mut rng)),
        };
        let mut bytes = good.to_bytes().to_vec();
        bytes.push(0);
        assert_eq!(
            PrivateProof::from_bytes(&bytes),
            Err(DsAuditError::Malformed {
                ty: "PrivateProof",
                field: "trailing bytes"
            })
        );
    }

    #[test]
    fn garbage_rejected() {
        let bytes = [0x3fu8; 96];
        assert!(PlainProof::from_bytes(&bytes).is_err());
    }
}
