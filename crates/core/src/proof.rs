//! Proof wire formats and their exact on-chain sizes.
//!
//! * [`PlainProof`] — the non-private HLA+KZG response `(sigma, y, psi)`:
//!   **96 bytes** (the "w/o on-chain privacy" series of Figs. 5, 8, 9).
//! * [`PrivateProof`] — the paper's main proof `(sigma, y', psi, R)`:
//!   **288 bytes** = 3 x 32 B (two compressed G1 points and one scalar)
//!   plus 192 B (torus-compressed GT element), exactly the size the
//!   paper reports per audit.

use dsaudit_algebra::g1::G1Affine;
use dsaudit_algebra::pairing::Gt;
use dsaudit_algebra::Fr;

/// Byte length of a serialized [`PlainProof`].
pub const PLAIN_PROOF_BYTES: usize = 96;
/// Byte length of a serialized [`PrivateProof`].
pub const PRIVATE_PROOF_BYTES: usize = 288;

/// Non-private audit response (internal baseline; leaks `P_k(r)`, see
/// §V-C and [`crate::attack`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlainProof {
    /// Aggregated authenticator `sigma = prod sigma_i^{c_i}`.
    pub sigma: G1Affine,
    /// The polynomial evaluation `y = P_k(r)` — the leaky part.
    pub y: Fr,
    /// KZG quotient witness `psi = g1^{(P_k(alpha) - P_k(r))/(alpha - r)}`.
    pub psi: G1Affine,
}

/// Privacy-assured audit response (§V-D): the evaluation is masked as
/// `y' = zeta * P_k(r) + z` with commitment `R = e(g1, eps)^z` and
/// Fiat–Shamir challenge `zeta = H'(R)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrivateProof {
    /// Aggregated authenticator.
    pub sigma: G1Affine,
    /// Masked evaluation `y' = zeta * P_k(r) + z`.
    pub y_prime: Fr,
    /// KZG quotient witness.
    pub psi: G1Affine,
    /// Sigma-protocol commitment `R = e(g1, eps)^z`.
    pub r_commit: Gt,
}

/// Errors from proof (de)serialization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProofDecodeError {
    /// Input had the wrong length.
    Length {
        /// Required byte length.
        expected: usize,
        /// Byte length actually supplied.
        got: usize,
    },
    /// A group element failed its curve/format check.
    Malformed,
}

impl std::fmt::Display for ProofDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofDecodeError::Length { expected, got } => {
                write!(f, "proof has {got} bytes, expected {expected}")
            }
            ProofDecodeError::Malformed => write!(f, "malformed group element in proof"),
        }
    }
}

impl std::error::Error for ProofDecodeError {}

impl PlainProof {
    /// Serializes to the 96-byte wire format.
    pub fn to_bytes(&self) -> [u8; PLAIN_PROOF_BYTES] {
        let mut out = [0u8; PLAIN_PROOF_BYTES];
        out[..32].copy_from_slice(&self.sigma.to_compressed());
        out[32..64].copy_from_slice(&self.y.to_bytes_be());
        out[64..].copy_from_slice(&self.psi.to_compressed());
        out
    }

    /// Parses the 96-byte wire format.
    ///
    /// # Errors
    /// Returns [`ProofDecodeError`] on bad length or malformed elements.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ProofDecodeError> {
        if bytes.len() != PLAIN_PROOF_BYTES {
            return Err(ProofDecodeError::Length {
                expected: PLAIN_PROOF_BYTES,
                got: bytes.len(),
            });
        }
        let sigma = G1Affine::from_compressed(bytes[..32].try_into().expect("sliced"))
            .ok_or(ProofDecodeError::Malformed)?;
        let y = Fr::from_bytes_be(bytes[32..64].try_into().expect("sliced"))
            .ok_or(ProofDecodeError::Malformed)?;
        let psi = G1Affine::from_compressed(bytes[64..].try_into().expect("sliced"))
            .ok_or(ProofDecodeError::Malformed)?;
        Ok(Self { sigma, y, psi })
    }
}

impl PrivateProof {
    /// Serializes to the 288-byte wire format.
    pub fn to_bytes(&self) -> [u8; PRIVATE_PROOF_BYTES] {
        let mut out = [0u8; PRIVATE_PROOF_BYTES];
        out[..32].copy_from_slice(&self.sigma.to_compressed());
        out[32..64].copy_from_slice(&self.y_prime.to_bytes_be());
        out[64..96].copy_from_slice(&self.psi.to_compressed());
        out[96..].copy_from_slice(&self.r_commit.to_compressed());
        out
    }

    /// Parses the 288-byte wire format.
    ///
    /// # Errors
    /// Returns [`ProofDecodeError`] on bad length or malformed elements.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ProofDecodeError> {
        if bytes.len() != PRIVATE_PROOF_BYTES {
            return Err(ProofDecodeError::Length {
                expected: PRIVATE_PROOF_BYTES,
                got: bytes.len(),
            });
        }
        let sigma = G1Affine::from_compressed(bytes[..32].try_into().expect("sliced"))
            .ok_or(ProofDecodeError::Malformed)?;
        let y_prime = Fr::from_bytes_be(bytes[32..64].try_into().expect("sliced"))
            .ok_or(ProofDecodeError::Malformed)?;
        let psi = G1Affine::from_compressed(bytes[64..96].try_into().expect("sliced"))
            .ok_or(ProofDecodeError::Malformed)?;
        let r_commit = Gt::from_compressed(bytes[96..].try_into().expect("sliced"))
            .ok_or(ProofDecodeError::Malformed)?;
        Ok(Self {
            sigma,
            y_prime,
            psi,
            r_commit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsaudit_algebra::field::Field;
    use dsaudit_algebra::g1::G1Projective;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x9f)
    }

    #[test]
    fn plain_roundtrip() {
        let mut rng = rng();
        let p = PlainProof {
            sigma: G1Projective::random(&mut rng).to_affine(),
            y: Fr::random(&mut rng),
            psi: G1Projective::random(&mut rng).to_affine(),
        };
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), 96);
        assert_eq!(PlainProof::from_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn private_roundtrip_is_288_bytes() {
        let mut rng = rng();
        let p = PrivateProof {
            sigma: G1Projective::random(&mut rng).to_affine(),
            y_prime: Fr::random(&mut rng),
            psi: G1Projective::random(&mut rng).to_affine(),
            r_commit: Gt::generator().pow(Fr::random(&mut rng)),
        };
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), 288, "the paper's headline proof size");
        assert_eq!(PrivateProof::from_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn wrong_length_rejected() {
        assert!(matches!(
            PlainProof::from_bytes(&[0u8; 95]),
            Err(ProofDecodeError::Length { .. })
        ));
        assert!(matches!(
            PrivateProof::from_bytes(&[0u8; 289]),
            Err(ProofDecodeError::Length { .. })
        ));
    }

    #[test]
    fn garbage_rejected() {
        let bytes = [0x3fu8; 96];
        assert!(PlainProof::from_bytes(&bytes).is_err());
    }
}
