//! The typed audit-session state machine connecting the three roles.
//!
//! One [`AuditSession`] tracks the audit of one file by one
//! [`Auditor`] and moves through the round lifecycle as
//! **distinct types**, so invalid call orders do not compile:
//!
//! ```text
//! AuditSession --challenge_from_beacon()--> ChallengedRound --submit()--> ProvenRound
//!      ^                                                          |
//!      +------------------------- verify() -----------------------+
//! ```
//!
//! * proving before a challenge exists: impossible — only a
//!   [`ChallengedRound`] exposes the challenge to respond to;
//! * verifying before a response arrives: impossible — only a
//!   [`ProvenRound`] has `verify()`;
//! * submitting a response for the wrong round: a typed
//!   [`DsAuditError::RoundMismatch`], because every challenge and
//!   response carries its round counter.
//!
//! The runtime errors that remain are exactly the ones a distributed
//! deployment needs to report (stale responses racing a settled round),
//! while everything that is a plain programming error is unrepresentable.

#![deny(missing_docs)]

use crate::auditor::Auditor;
use crate::challenge::Challenge;
use crate::error::{DsAuditError, Verdict};
use crate::keys::PublicKey;
use crate::proof::PrivateProof;
use crate::verify::FileMeta;

/// A challenge stamped with the round it belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundChallenge {
    /// Zero-based round counter of the issuing session.
    pub round: u64,
    /// The beacon-derived challenge.
    pub challenge: Challenge,
}

/// A proof stamped with the round it answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundResponse {
    /// The round this proof responds to.
    pub round: u64,
    /// The privacy-assured proof.
    pub proof: PrivateProof,
}

/// An idle audit session: no round in flight. Created by
/// [`Auditor::begin_session`], which validates the metadata once.
pub struct AuditSession<'a> {
    auditor: &'a Auditor,
    pk: &'a PublicKey,
    meta: FileMeta,
    round: u64,
    passes: u64,
    failures: u64,
}

impl<'a> AuditSession<'a> {
    pub(crate) fn new(auditor: &'a Auditor, pk: &'a PublicKey, meta: FileMeta) -> Self {
        Self {
            auditor,
            pk,
            meta,
            round: 0,
            passes: 0,
            failures: 0,
        }
    }

    /// The file metadata under audit.
    pub fn meta(&self) -> &FileMeta {
        &self.meta
    }

    /// The next round to be challenged (also: rounds completed so far).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// `(passes, failures)` over the completed rounds.
    pub fn tally(&self) -> (u64, u64) {
        (self.passes, self.failures)
    }

    /// Opens the next round from 48 bytes of beacon randomness.
    ///
    /// This is the only way to open a round: round challenges are a
    /// pure function of the chain's public randomness, never of
    /// auditor-local RNG state, so every verifier replaying the beacon
    /// derives the same challenge sequence.
    pub fn challenge_from_beacon(self, beacon: &[u8; 48]) -> ChallengedRound<'a> {
        let challenge = Challenge::from_beacon(beacon);
        ChallengedRound {
            session: self,
            challenge,
        }
    }
}

/// A round with its challenge published, waiting for the provider's
/// response.
pub struct ChallengedRound<'a> {
    session: AuditSession<'a>,
    challenge: Challenge,
}

impl<'a> ChallengedRound<'a> {
    /// The round-stamped challenge to hand to the provider (see
    /// [`crate::StorageProvider::respond_round`]).
    pub fn round_challenge(&self) -> RoundChallenge {
        RoundChallenge {
            round: self.session.round,
            challenge: self.challenge,
        }
    }

    /// This round's counter value.
    pub fn round(&self) -> u64 {
        self.session.round
    }

    /// Accepts the provider's response if it answers *this* round.
    ///
    /// # Errors
    /// [`DsAuditError::RoundMismatch`] when the response was produced
    /// for a different round — the round stays open, so a late or
    /// replayed response cannot consume it.
    // The Err variant intentionally carries `Self` back to the caller:
    // a failed submission must not consume the open round.
    #[allow(clippy::result_large_err)]
    pub fn submit(self, response: RoundResponse) -> Result<ProvenRound<'a>, (Self, DsAuditError)> {
        if response.round != self.session.round {
            let err = DsAuditError::RoundMismatch {
                expected: self.session.round,
                got: response.round,
            };
            return Err((self, err));
        }
        Ok(ProvenRound {
            session: self.session,
            challenge: self.challenge,
            proof: response.proof,
        })
    }

    /// Accepts a raw 288-byte wire response (round number + proof are
    /// checked/decoded).
    ///
    /// # Errors
    /// Typed decode errors for malformed bytes, or
    /// [`DsAuditError::RoundMismatch`]; either way the round stays
    /// open.
    #[allow(clippy::result_large_err)]
    pub fn submit_bytes(
        self,
        round: u64,
        proof_bytes: &[u8],
    ) -> Result<ProvenRound<'a>, (Self, DsAuditError)> {
        let proof = match PrivateProof::from_bytes(proof_bytes) {
            Ok(p) => p,
            Err(e) => return Err((self, e)),
        };
        self.submit(RoundResponse { round, proof })
    }

    /// Closes the round without a response (provider timeout): counts a
    /// failure and returns the idle session.
    pub fn timeout(self) -> AuditSession<'a> {
        let mut session = self.session;
        session.failures += 1;
        session.round += 1;
        session
    }
}

/// A round with a response on file, ready for the pairing check.
pub struct ProvenRound<'a> {
    session: AuditSession<'a>,
    challenge: Challenge,
    proof: PrivateProof,
}

impl std::fmt::Debug for AuditSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditSession")
            .field("meta", &self.meta)
            .field("round", &self.round)
            .field("passes", &self.passes)
            .field("failures", &self.failures)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for ChallengedRound<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChallengedRound")
            .field("round", &self.session.round)
            .field("challenge", &self.challenge)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for ProvenRound<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProvenRound")
            .field("round", &self.session.round)
            .field("challenge", &self.challenge)
            .field("proof", &self.proof)
            .finish_non_exhaustive()
    }
}

impl<'a> ProvenRound<'a> {
    /// The proof awaiting verification.
    pub fn proof(&self) -> &PrivateProof {
        &self.proof
    }

    /// Runs Eq. (2) and settles the round, returning the idle session
    /// (advanced to the next round) and the verdict.
    ///
    /// # Errors
    /// Propagates verification-input errors; the round is consumed
    /// either way (metadata was validated when the session opened, so
    /// this is unreachable in practice).
    pub fn verify(self) -> Result<(AuditSession<'a>, Verdict), DsAuditError> {
        let mut session = self.session;
        let verdict =
            session
                .auditor
                .verify_private(session.pk, &session.meta, &self.challenge, &self.proof)?;
        if verdict.accepted() {
            session.passes += 1;
        } else {
            session.failures += 1;
        }
        session.round += 1;
        Ok((session, verdict))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owner::DataOwner;
    use crate::params::AuditParams;
    use crate::provider::StorageProvider;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x5e5510)
    }

    /// A stand-in beacon output for round `round` (distinct per round,
    /// deterministic — what a chain beacon would publish).
    fn beacon(round: u64) -> [u8; 48] {
        let mut out = [0u8; 48];
        out[..8].copy_from_slice(&round.to_le_bytes());
        out[8] = 0xb3;
        out
    }

    fn actors() -> (rand::rngs::StdRng, StorageProvider) {
        let mut rng = rng();
        let params = AuditParams::new(4, 3).unwrap();
        let owner = DataOwner::generate(&mut rng, params);
        let bundle = owner.outsource(&mut rng, &[11u8; 700]);
        let provider = StorageProvider::ingest(&mut rng, bundle).unwrap();
        (rng, provider)
    }

    #[test]
    fn full_round_trip_through_the_state_machine() {
        let (mut rng, provider) = actors();
        let auditor = Auditor::new();
        let mut session = auditor
            .begin_session(provider.public_key(), provider.meta())
            .unwrap();
        for expected_round in 0..3u64 {
            assert_eq!(session.round(), expected_round);
            let round = session.challenge_from_beacon(&beacon(expected_round));
            let response = provider.respond_round(&mut rng, &round.round_challenge());
            let proven = round.submit(response).map_err(|(_, e)| e).unwrap();
            let (next, verdict) = proven.verify().unwrap();
            assert!(verdict.accepted(), "honest provider passes round {expected_round}");
            session = next;
        }
        assert_eq!(session.tally(), (3, 0));
    }

    #[test]
    fn mismatched_round_is_typed_and_keeps_the_round_open() {
        let (mut rng, provider) = actors();
        let auditor = Auditor::new();
        let session = auditor
            .begin_session(provider.public_key(), provider.meta())
            .unwrap();
        let round = session.challenge_from_beacon(&beacon(0));
        let mut response = provider.respond_round(&mut rng, &round.round_challenge());
        response.round += 7; // a replayed/future response
        let (round, err) = round.submit(response).expect_err("round mismatch");
        assert_eq!(
            err,
            DsAuditError::RoundMismatch {
                expected: 0,
                got: 7
            }
        );
        // the round is still open: the correct response settles it
        let good = provider.respond_round(&mut rng, &round.round_challenge());
        let (session, verdict) = round.submit(good).map_err(|(_, e)| e).unwrap().verify().unwrap();
        assert!(verdict.accepted());
        assert_eq!(session.round(), 1);
    }

    #[test]
    fn malformed_wire_response_keeps_the_round_open() {
        let (mut rng, provider) = actors();
        let auditor = Auditor::new();
        let session = auditor
            .begin_session(provider.public_key(), provider.meta())
            .unwrap();
        let round = session.challenge_from_beacon(&beacon(0));
        let (round, err) = round
            .submit_bytes(0, &[0xffu8; 100])
            .expect_err("garbage must not settle the round");
        assert!(matches!(
            err,
            DsAuditError::Malformed { ty: "PrivateProof", .. } | DsAuditError::Truncated { .. }
        ));
        let wire = provider
            .respond_round(&mut rng, &round.round_challenge());
        let bytes = wire.proof.to_bytes();
        let (session, verdict) = round
            .submit_bytes(0, &bytes)
            .map_err(|(_, e)| e)
            .unwrap()
            .verify()
            .unwrap();
        assert!(verdict.accepted());
        assert_eq!(session.tally(), (1, 0));
    }

    #[test]
    fn timeout_counts_a_failure_and_advances() {
        let (_, provider) = actors();
        let auditor = Auditor::new();
        let session = auditor
            .begin_session(provider.public_key(), provider.meta())
            .unwrap();
        let session = session.challenge_from_beacon(&beacon(0)).timeout();
        assert_eq!(session.round(), 1);
        assert_eq!(session.tally(), (0, 1));
    }

    #[test]
    fn bad_meta_cannot_open_a_session() {
        let (_, provider) = actors();
        let auditor = Auditor::new();
        let mut meta = provider.meta();
        meta.num_chunks = 0;
        assert!(matches!(
            auditor.begin_session(provider.public_key(), meta),
            Err(DsAuditError::BadMeta(_))
        ));
    }
}
