//! Data-parallel helpers, re-exported from `dsaudit-algebra`.
//!
//! The shim originally lived here; it moved down to the algebra crate so
//! the MSM window loop can use it without a dependency cycle (`core`
//! depends on `algebra`, never the other way around). Existing callers
//! keep importing from `crate::par`.

pub use dsaudit_algebra::par::{num_threads, par_map, par_map_chunks};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_par_map_works() {
        assert_eq!(par_map(4, |i| i * 2), vec![0, 2, 4, 6]);
        assert!(num_threads() >= 1);
        assert_eq!(
            par_map_chunks(5, 2, |r| r.map(|i| i + 1).collect()),
            vec![1, 2, 3, 4, 5]
        );
    }
}
