//! Tiny data-parallel helper over `std::thread::scope` — keeps the
//! dependency set minimal while letting tag generation and proving use
//! all cores (the paper evaluates on quad-core machines).

use std::num::NonZeroUsize;

/// Number of worker threads to use (the machine's available parallelism).
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every index in `0..n`, in parallel, collecting results
/// in order. `f` must be cheap to call many times; chunking is by
/// contiguous ranges.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || n < 32 {
        return (0..n).map(f).collect();
    }
    let mut out = vec![T::default(); n];
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (i, s) in slot.iter_mut().enumerate() {
                    *s = f(t * chunk + i);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial() {
        let serial: Vec<usize> = (0..1000).map(|i| i * i).collect();
        let parallel = par_map(1000, |i| i * i);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_empty_and_tiny() {
        assert!(par_map(0, |i| i).is_empty());
        assert_eq!(par_map(3, |i| i + 1), vec![1, 2, 3]);
    }
}
