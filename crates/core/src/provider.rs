//! The storage-provider role handle: holds shares and authenticators,
//! answers challenges.
//!
//! A [`StorageProvider`] is built by [`ingesting`](StorageProvider::ingest)
//! an [`Outsourcing`] bundle — which batch-validates the authenticators
//! against the owner's public key before the provider acknowledges the
//! contract (the paper's `acked` step) — and then answers audit
//! challenges with the privacy-assured 288-byte proof.

#![deny(missing_docs)]

use dsaudit_algebra::g1::G1Affine;

use crate::challenge::Challenge;
use crate::error::DsAuditError;
use crate::file::EncodedFile;
use crate::keys::PublicKey;
use crate::owner::Outsourcing;
use crate::proof::{PlainProof, PrivateProof};
use crate::prove::{Prover, ProveTimings};
use crate::session::{RoundChallenge, RoundResponse};
use crate::tag::verify_tags_batch;
use crate::verify::FileMeta;

/// Provider-side state for one stored file.
#[derive(Clone, Debug)]
pub struct StorageProvider {
    pk: PublicKey,
    file: EncodedFile,
    tags: Vec<G1Affine>,
}

impl StorageProvider {
    /// Accepts an outsourcing bundle after validating it: dimensions
    /// must agree and the tag vector must pass the random-linear-
    /// combination batch check (a forged tag survives with probability
    /// `1/r`).
    ///
    /// # Errors
    /// [`DsAuditError::DimensionMismatch`] on inconsistent shapes,
    /// [`DsAuditError::TagsRejected`] when the authenticators fail
    /// validation — the provider must refuse to acknowledge.
    pub fn ingest<R: rand::RngCore + ?Sized>(
        rng: &mut R,
        bundle: Outsourcing,
    ) -> Result<Self, DsAuditError> {
        if !verify_tags_batch(rng, &bundle.pk, &bundle.file, &bundle.tags)?.accepted() {
            return Err(DsAuditError::TagsRejected);
        }
        Self::new_unchecked(bundle.pk, bundle.file, bundle.tags)
    }

    /// Builds a provider from parts without the (pairing-heavy) tag
    /// validation — for trusted local pipelines and tests. Dimensions
    /// are still checked.
    ///
    /// # Errors
    /// [`DsAuditError::DimensionMismatch`] when the tag count does not
    /// match the chunk count or the chunk size exceeds the key.
    pub fn new_unchecked(
        pk: PublicKey,
        file: EncodedFile,
        tags: Vec<G1Affine>,
    ) -> Result<Self, DsAuditError> {
        // a Prover over the same references performs the shape checks
        Prover::new(&pk, &file, &tags)?;
        Ok(Self { pk, file, tags })
    }

    /// The owner's public key this provider serves.
    pub fn public_key(&self) -> &PublicKey {
        &self.pk
    }

    /// The stored (encoded) file.
    pub fn file(&self) -> &EncodedFile {
        &self.file
    }

    /// The stored authenticators.
    pub fn tags(&self) -> &[G1Affine] {
        &self.tags
    }

    /// The public metadata the contract audits against.
    pub fn meta(&self) -> FileMeta {
        FileMeta {
            name: self.file.name,
            num_chunks: self.file.num_chunks(),
            k: self.file.params.k,
        }
    }

    /// The internal prover over this provider's holdings.
    fn prover(&self) -> Prover<'_> {
        Prover::new(&self.pk, &self.file, &self.tags)
            .expect("provider state was dimension-checked at construction")
    }

    /// Answers a challenge with the privacy-assured proof (§V-D).
    pub fn respond<R: rand::RngCore + ?Sized>(
        &self,
        rng: &mut R,
        challenge: &Challenge,
    ) -> PrivateProof {
        self.prover().prove_private(rng, challenge)
    }

    /// Answers a challenge with the non-private baseline proof.
    pub fn respond_plain(&self, challenge: &Challenge) -> PlainProof {
        self.prover().prove_plain(challenge)
    }

    /// Answers a session-issued round challenge, echoing its round
    /// number so the session can match response to round (see
    /// [`crate::session`]).
    pub fn respond_round<R: rand::RngCore + ?Sized>(
        &self,
        rng: &mut R,
        challenge: &RoundChallenge,
    ) -> RoundResponse {
        RoundResponse {
            round: challenge.round,
            proof: self.respond(rng, &challenge.challenge),
        }
    }

    /// Instrumented proof generation (field/curve/GT time split, for
    /// the Fig. 8 reproduction).
    pub fn respond_instrumented<R: rand::RngCore + ?Sized>(
        &self,
        rng: &mut R,
        challenge: &Challenge,
    ) -> (PrivateProof, ProveTimings) {
        self.prover().prove_private_instrumented(rng, challenge)
    }

    // --- dispute/fault simulation -------------------------------------

    /// Silently corrupts block `j` of chunk `i` (models a cheating or
    /// bit-rotten provider in tests, examples, and the contract
    /// harness).
    pub fn corrupt_block(&mut self, i: usize, j: usize) {
        self.file.corrupt_block(i, j);
    }

    /// Replaces a whole chunk with zeros (models dropped data).
    pub fn drop_chunk(&mut self, i: usize) {
        self.file.drop_chunk(i);
    }

    /// Swaps the stored file wholesale (models a provider serving the
    /// wrong data while keeping the original tags). The replacement
    /// must have the same shape.
    ///
    /// # Errors
    /// [`DsAuditError::DimensionMismatch`] when the replacement's chunk
    /// count differs.
    pub fn replace_file(&mut self, file: EncodedFile) -> Result<(), DsAuditError> {
        if file.num_chunks() != self.file.num_chunks() {
            return Err(DsAuditError::DimensionMismatch {
                what: "replacement file chunks",
                expected: self.file.num_chunks(),
                got: file.num_chunks(),
            });
        }
        self.file = file;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owner::DataOwner;
    use crate::params::AuditParams;
    use crate::verify::verify_private;
    use dsaudit_algebra::g1::G1Projective;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x540f)
    }

    #[test]
    fn ingest_validates_then_responds() {
        let mut rng = rng();
        let params = AuditParams::new(4, 3).unwrap();
        let owner = DataOwner::generate(&mut rng, params);
        let bundle = owner.outsource(&mut rng, &[3u8; 600]);
        let provider = StorageProvider::ingest(&mut rng, bundle).expect("honest bundle");
        let meta = provider.meta();
        let ch = Challenge::random(&mut rng);
        let proof = provider.respond(&mut rng, &ch);
        assert!(verify_private(provider.public_key(), &meta, &ch, &proof)
            .unwrap()
            .accepted());
    }

    #[test]
    fn ingest_rejects_forged_tags() {
        let mut rng = rng();
        let params = AuditParams::new(4, 3).unwrap();
        let owner = DataOwner::generate(&mut rng, params);
        let mut bundle = owner.outsource(&mut rng, &[3u8; 600]);
        bundle.tags[0] = G1Projective::random(&mut rng).to_affine();
        assert_eq!(
            StorageProvider::ingest(&mut rng, bundle).err(),
            Some(DsAuditError::TagsRejected)
        );
    }

    #[test]
    fn ingest_rejects_mismatched_dimensions() {
        let mut rng = rng();
        let params = AuditParams::new(4, 3).unwrap();
        let owner = DataOwner::generate(&mut rng, params);
        let mut bundle = owner.outsource(&mut rng, &[3u8; 600]);
        bundle.tags.pop();
        assert!(matches!(
            StorageProvider::ingest(&mut rng, bundle),
            Err(DsAuditError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn replace_file_enforces_shape() {
        let mut rng = rng();
        let params = AuditParams::new(4, 3).unwrap();
        let owner = DataOwner::generate(&mut rng, params);
        let bundle = owner.outsource(&mut rng, &[3u8; 600]);
        let mut provider = StorageProvider::ingest(&mut rng, bundle).unwrap();
        let tiny = EncodedFile::encode(&mut rng, &[1u8; 10], params);
        assert!(provider.replace_file(tiny).is_err());
        let same_shape = EncodedFile::encode_with_name(
            provider.file().name,
            &[9u8; 600],
            params,
        );
        provider.replace_file(same_shape).unwrap();
    }
}
