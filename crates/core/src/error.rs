//! The crate-wide error and verdict types of the role-oriented API.
//!
//! Every fallible operation on the public surface of `dsaudit-core`
//! returns [`DsAuditError`] instead of `bool`/`Option`/panicking, so
//! callers (and the `contract` layer above) can tell *bad proof* from
//! *bad input* from *protocol misuse*:
//!
//! * a proof that decodes but fails the pairing equations is **not** an
//!   error — verification returns [`Verdict::Reject`] with a
//!   [`RejectReason`];
//! * malformed external bytes (truncated wire data, non-curve points,
//!   out-of-range scalars) are [`DsAuditError::Truncated`] /
//!   [`DsAuditError::Malformed`];
//! * calling the protocol out of order (submitting a response for the
//!   wrong round, mismatched tag counts) is a typed protocol error.

#![deny(missing_docs)]

use crate::params::ParamError;

/// Unified error type for the audit protocol's public API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DsAuditError {
    /// Wire input ended before the field being decoded was complete.
    Truncated {
        /// Type being decoded (e.g. `"PrivateProof"`).
        ty: &'static str,
        /// The field whose bytes ran out.
        field: &'static str,
        /// Bytes the field needed.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A decoded field failed validation: a point off the curve, a
    /// scalar at or above the group order, an inconsistent length
    /// prefix, or trailing garbage after a complete value.
    Malformed {
        /// Type being decoded.
        ty: &'static str,
        /// The offending field.
        field: &'static str,
    },
    /// Audit parameters were rejected (see [`ParamError`]).
    Params(ParamError),
    /// Two protocol objects that must agree in size did not.
    DimensionMismatch {
        /// What was being matched (e.g. `"tags per chunk"`).
        what: &'static str,
        /// Expected count.
        expected: usize,
        /// Actual count.
        got: usize,
    },
    /// A response was submitted for a different audit round than the
    /// one in flight.
    RoundMismatch {
        /// The round the session is waiting on.
        expected: u64,
        /// The round the response claims.
        got: u64,
    },
    /// File metadata is unusable for auditing (zero chunks or a zero
    /// challenge count).
    BadMeta(&'static str),
    /// The authenticators shipped with an outsourcing bundle failed the
    /// provider's batch validation — the owner (or the transport)
    /// supplied forged or mismatched tags.
    TagsRejected,
    /// An I/O failure while streaming data through
    /// [`crate::file::EncodedFile::encode_reader`].
    Io {
        /// The failing operation's [`std::io::ErrorKind`].
        kind: std::io::ErrorKind,
        /// Human-readable detail from the underlying error.
        detail: String,
    },
    /// A storage-layer failure surfaced through the audit pipeline —
    /// share reconstruction or provider placement failed underneath an
    /// audit operation. Raised via the `dsaudit-storage` crate's
    /// `From<StorageError>` conversion (reconstruction shortfalls map to
    /// [`DsAuditError::DimensionMismatch`] instead, which carries the
    /// exact share counts).
    Storage {
        /// Human-readable detail from the storage layer.
        detail: String,
    },
}

impl std::fmt::Display for DsAuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsAuditError::Truncated {
                ty,
                field,
                expected,
                got,
            } => write!(
                f,
                "{ty}: truncated input at field `{field}` (needed {expected} bytes, {got} available)"
            ),
            DsAuditError::Malformed { ty, field } => {
                write!(f, "{ty}: malformed field `{field}`")
            }
            DsAuditError::Params(e) => write!(f, "invalid audit parameters: {e}"),
            DsAuditError::DimensionMismatch {
                what,
                expected,
                got,
            } => write!(f, "dimension mismatch for {what}: expected {expected}, got {got}"),
            DsAuditError::RoundMismatch { expected, got } => {
                write!(f, "response is for round {got}, but round {expected} is in flight")
            }
            DsAuditError::BadMeta(why) => write!(f, "unusable file metadata: {why}"),
            DsAuditError::TagsRejected => {
                write!(f, "authenticator batch validation failed: tags are forged or mismatched")
            }
            DsAuditError::Io { kind, detail } => {
                write!(f, "i/o error while streaming ({kind:?}): {detail}")
            }
            DsAuditError::Storage { detail } => {
                write!(f, "storage layer failure: {detail}")
            }
        }
    }
}

impl std::error::Error for DsAuditError {}

impl From<ParamError> for DsAuditError {
    fn from(e: ParamError) -> Self {
        DsAuditError::Params(e)
    }
}

impl From<std::io::Error> for DsAuditError {
    fn from(e: std::io::Error) -> Self {
        DsAuditError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

/// Why a well-formed proof was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The non-private verification equation (Eq. 1) did not hold.
    Equation1,
    /// The privacy-assured verification equation (Eq. 2) did not hold.
    Equation2,
    /// The random-linear-combination batch check did not hold (at least
    /// one proof in the batch is invalid).
    BatchCombination,
    /// A single authenticator failed its pairing validation.
    TagEquation,
    /// A Merkle-path audit response did not recompute the committed
    /// root, claimed the wrong leaf index, or had a path length that
    /// disagrees with the committed tree depth.
    MerklePath,
    /// A zk-SNARK possession proof failed pairing verification against
    /// the committed verifying key and public inputs.
    SnarkProof,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Equation1 => write!(f, "verification equation (1) failed"),
            RejectReason::Equation2 => write!(f, "verification equation (2) failed"),
            RejectReason::BatchCombination => write!(f, "batched combination check failed"),
            RejectReason::TagEquation => write!(f, "authenticator equation failed"),
            RejectReason::MerklePath => write!(f, "merkle path check failed"),
            RejectReason::SnarkProof => write!(f, "snark proof verification failed"),
        }
    }
}

/// Outcome of verifying a structurally valid proof.
///
/// Distinct from [`DsAuditError`]: an `Err` means the *inputs* were
/// unusable (malformed bytes, bad metadata); a `Reject` means the check
/// ran and the proof is wrong — the signal a contract settles on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use = "a rejected verdict settles a round differently than an accepted one"]
pub enum Verdict {
    /// The proof satisfies the verification equation.
    Accept,
    /// The proof is well-formed but does not verify.
    Reject(RejectReason),
}

impl Verdict {
    /// `true` when the proof was accepted.
    pub fn accepted(&self) -> bool {
        matches!(self, Verdict::Accept)
    }

    /// Folds a boolean equation result into a verdict with `reason`.
    pub(crate) fn from_equation(holds: bool, reason: RejectReason) -> Self {
        if holds {
            Verdict::Accept
        } else {
            Verdict::Reject(reason)
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Accept => write!(f, "accept"),
            Verdict::Reject(r) => write!(f, "reject ({r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_accepted_flag() {
        assert!(Verdict::Accept.accepted());
        assert!(!Verdict::Reject(RejectReason::Equation2).accepted());
        assert!(Verdict::from_equation(true, RejectReason::Equation1).accepted());
        assert!(!Verdict::from_equation(false, RejectReason::Equation1).accepted());
    }

    #[test]
    fn errors_render_their_context() {
        let e = DsAuditError::Truncated {
            ty: "PrivateProof",
            field: "sigma",
            expected: 32,
            got: 7,
        };
        let s = e.to_string();
        assert!(s.contains("PrivateProof") && s.contains("sigma") && s.contains("32"));
        let e = DsAuditError::RoundMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains("round 2"));
        let e: DsAuditError = ParamError::Zero.into();
        assert!(matches!(e, DsAuditError::Params(ParamError::Zero)));
    }
}
