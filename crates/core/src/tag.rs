//! Homomorphic authenticator generation and validation (§V-B).
//!
//! For chunk `i` with polynomial `M_i(x)`, the data owner computes
//! `sigma_i = (g1^{M_i(alpha)} * H(name || i))^x`. The storage provider
//! re-validates received authenticators against the public key before
//! acknowledging the contract (the paper notes the chance of a forged
//! authenticator passing this check is negligible).

use dsaudit_algebra::curve::Projective;
use dsaudit_algebra::endo::{msm_g1, mul_each_g1};
use dsaudit_algebra::field::Field;
use dsaudit_algebra::g1::{G1Affine, G1Projective};
use dsaudit_algebra::msm::msm;
use dsaudit_algebra::pairing::{multi_pairing_prepared, G2Prepared};
use dsaudit_algebra::Fr;
use dsaudit_crypto::prf::index_oracle;

use crate::error::{DsAuditError, RejectReason, Verdict};
use crate::file::EncodedFile;
use crate::keys::{PublicKey, SecretKey};
use crate::par::par_map;

/// Generates all chunk authenticators for a file.
///
/// The per-chunk work `(g1^{M_i(alpha)} * t_i)^x` splits into
/// `g1^{M_i(alpha) x} * t_i^x`, and both factors are batch-friendly:
///
/// * the `g1` factor is a **fixed-base** multiplication, served from the
///   process-wide generator table ([`G1Projective::generator_table`]) at
///   ~32 batched affine additions per chunk instead of a full ladder;
/// * the `t_i^x` factor raises every chunk hash to the **same** secret
///   exponent, which [`mul_each_g1`] handles with one shared GLV/wNAF
///   digit schedule and batch-affine accumulators across all chunks.
///
/// Hash-to-curve and the `M_i(alpha)` Horner evaluations fan out over
/// the thread pool. This path is the dominant cost of the data owner's
/// pre-processing phase (Fig. 7) and the target of the MSM overhaul
/// (~3x over the per-chunk double-and-add baseline on one core).
pub fn generate_tags(sk: &SecretKey, file: &EncodedFile) -> Vec<G1Affine> {
    let _span = dsaudit_obs::span("core.tag_gen");
    let d = file.num_chunks();
    dsaudit_obs::counter_add("core.tags_generated", d as u64);
    // field part: M_i(alpha) * x via Horner, parallel over chunks
    let evals: Vec<Fr> = par_map(d, |i| {
        let mut eval = Fr::zero();
        for m in file.chunk(i).iter().rev() {
            eval = eval * sk.alpha + *m;
        }
        eval * sk.x
    });
    // t_i = H(name || i), parallel (dominated by square-root candidates)
    let hashes: Vec<G1Affine> = par_map(d, |i| index_oracle(file.name, i as u64));
    // g1^{M_i(alpha) x} from the shared fixed-base table
    let mut tags = G1Projective::generator_table().mul_many_affine(&evals);
    // t_i^x: one fixed scalar, many points -> GLV batch kernel
    let hash_parts = mul_each_g1(&hashes, sk.x);
    // sigma_i = g1^{M_i(alpha) x} * t_i^x, one more shared-inversion pass
    Projective::batch_add_affine(&mut tags, &hash_parts);
    tags
}

/// Validates a single authenticator against the public key:
/// `e(sigma_i, g2) == e(g1^{M_i(alpha)} * t_i, eps)`.
///
/// One-shot: prepares `eps` fresh each call. To validate many chunks of
/// the same key — e.g. pinpointing the forged tag after
/// [`verify_tags_batch`] rejects — use [`verify_tags_each`], which
/// shares one preparation across the whole file.
///
/// # Errors
/// [`DsAuditError::DimensionMismatch`] when the chunk holds more blocks
/// than the commitment key supports; a forged tag is
/// `Ok(Verdict::Reject(TagEquation))`.
pub fn verify_tag(
    pk: &PublicKey,
    name: Fr,
    chunk_index: u64,
    blocks: &[Fr],
    tag: &G1Affine,
) -> Result<Verdict, DsAuditError> {
    let eps_p = G2Prepared::from_affine(&pk.eps);
    verify_tag_prepared(pk, &eps_p, name, chunk_index, blocks, tag)
}

/// [`verify_tag`] against an already-prepared `eps` (one Miller-loop
/// preparation shared across calls).
fn verify_tag_prepared(
    pk: &PublicKey,
    eps_p: &G2Prepared,
    name: Fr,
    chunk_index: u64,
    blocks: &[Fr],
    tag: &G1Affine,
) -> Result<Verdict, DsAuditError> {
    let s = pk.s();
    if blocks.len() > s {
        return Err(DsAuditError::DimensionMismatch {
            what: "blocks vs. commitment key",
            expected: s,
            got: blocks.len(),
        });
    }
    let commit = msm(&pk.alpha_powers_g1[..blocks.len()], blocks);
    let base = commit.add_affine(&index_oracle(name, chunk_index)).to_affine();
    let tag_neg = tag.neg();
    // e(sigma, g2) * e(-base, eps) == 1
    let check = multi_pairing_prepared(&[
        (&tag_neg, G2Prepared::generator()),
        (&base, eps_p),
    ]);
    Ok(Verdict::from_equation(
        check.is_identity(),
        RejectReason::TagEquation,
    ))
}

/// Validates every authenticator of a file individually, sharing one
/// `eps` preparation across all chunks — the blame-assignment path
/// after a batch rejection (per-chunk verdicts instead of one combined
/// answer).
///
/// # Errors
/// [`DsAuditError::DimensionMismatch`] when the tag count does not
/// match the chunk count or a chunk exceeds the commitment key.
pub fn verify_tags_each(
    pk: &PublicKey,
    file: &EncodedFile,
    tags: &[G1Affine],
) -> Result<Vec<Verdict>, DsAuditError> {
    let d = file.num_chunks();
    if tags.len() != d {
        return Err(DsAuditError::DimensionMismatch {
            what: "authenticators per chunk",
            expected: d,
            got: tags.len(),
        });
    }
    let eps_p = G2Prepared::from_affine(&pk.eps);
    (0..d)
        .map(|i| verify_tag_prepared(pk, &eps_p, file.name, i as u64, file.chunk(i), &tags[i]))
        .collect()
}

/// Batch-validates all authenticators of a file with a random linear
/// combination (one pairing product instead of `d`): for random weights
/// `w_i`, checks `e(prod sigma_i^{w_i}, g2) == e(prod base_i^{w_i}, eps)`.
///
/// A forged tag passes only with probability `1/r`.
///
/// # Errors
/// [`DsAuditError::DimensionMismatch`] when the tag count does not
/// match the chunk count; forged tags are
/// `Ok(Verdict::Reject(TagEquation))`.
pub fn verify_tags_batch<R: rand::RngCore + ?Sized>(
    rng: &mut R,
    pk: &PublicKey,
    file: &EncodedFile,
    tags: &[G1Affine],
) -> Result<Verdict, DsAuditError> {
    let d = file.num_chunks();
    if tags.len() != d {
        return Err(DsAuditError::DimensionMismatch {
            what: "authenticators per chunk",
            expected: d,
            got: tags.len(),
        });
    }
    let weights: Vec<Fr> = (0..d).map(|_| Fr::random(rng)).collect();
    // left: prod sigma_i^{w_i}
    let sigma_agg = msm_g1(tags, &weights);
    // right: prod (g1^{M_i(alpha)} t_i)^{w_i}
    //      = g1^{sum_i w_i M_i(alpha)} * prod t_i^{w_i}
    // sum_i w_i M_i(alpha) has coefficient vector sum_i w_i m_{i,*}
    let s = pk.s();
    let mut combined = vec![Fr::zero(); s];
    for (i, w) in weights.iter().enumerate() {
        for (j, m) in file.chunk(i).iter().enumerate() {
            combined[j] += *w * *m;
        }
    }
    let commit = msm_g1(&pk.alpha_powers_g1, &combined);
    let hashes: Vec<G1Affine> = par_map(d, |i| index_oracle(file.name, i as u64));
    let hash_agg = msm_g1(&hashes, &weights);
    let base = commit.add(&hash_agg).to_affine();
    let sigma_neg = sigma_agg.to_affine().neg();
    let eps_p = G2Prepared::from_affine(&pk.eps);
    let holds = multi_pairing_prepared(&[
        (&sigma_neg, G2Prepared::generator()),
        (&base, &eps_p),
    ])
    .is_identity();
    Ok(Verdict::from_equation(holds, RejectReason::TagEquation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::keygen;
    use crate::params::AuditParams;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x7a6)
    }

    fn setup() -> (crate::keys::SecretKey, PublicKey, EncodedFile, Vec<G1Affine>) {
        let mut rng = rng();
        let params = AuditParams::new(4, 3).unwrap();
        let (sk, pk) = keygen(&mut rng, &params);
        let data: Vec<u8> = (0..700).map(|i| (i % 251) as u8).collect();
        let file = EncodedFile::encode(&mut rng, &data, params);
        let tags = generate_tags(&sk, &file);
        (sk, pk, file, tags)
    }

    #[test]
    fn tags_verify_individually() {
        let (_, pk, file, tags) = setup();
        assert_eq!(tags.len(), file.num_chunks());
        for (i, tag) in tags.iter().enumerate() {
            assert!(
                verify_tag(&pk, file.name, i as u64, file.chunk(i), tag)
                    .unwrap()
                    .accepted(),
                "tag {i} failed"
            );
        }
    }

    #[test]
    fn wrong_block_fails_validation() {
        let (_, pk, mut file, tags) = setup();
        file.corrupt_block(0, 1);
        assert_eq!(
            verify_tag(&pk, file.name, 0, file.chunk(0), &tags[0]).unwrap(),
            Verdict::Reject(RejectReason::TagEquation)
        );
    }

    #[test]
    fn wrong_index_fails_validation() {
        let (_, pk, file, tags) = setup();
        assert!(!verify_tag(&pk, file.name, 1, file.chunk(0), &tags[0])
            .unwrap()
            .accepted());
    }

    #[test]
    fn oversized_chunk_is_a_typed_error() {
        let (_, pk, file, tags) = setup();
        let blocks = vec![Fr::from_u64(1); pk.s() + 1];
        assert!(matches!(
            verify_tag(&pk, file.name, 0, &blocks, &tags[0]),
            Err(DsAuditError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn per_chunk_validation_pinpoints_the_forgery() {
        let (_, pk, file, mut tags) = setup();
        let mut rng = rng();
        tags[2] = G1Projective::random(&mut rng).to_affine();
        // the batch check only says "something is wrong"...
        assert!(!verify_tags_batch(&mut rng, &pk, &file, &tags)
            .unwrap()
            .accepted());
        // ...the per-chunk pass names the culprit, with one shared
        // eps preparation
        let verdicts = verify_tags_each(&pk, &file, &tags).unwrap();
        for (i, v) in verdicts.iter().enumerate() {
            assert_eq!(v.accepted(), i != 2, "only chunk 2 is forged");
        }
        let mut short = tags.clone();
        short.pop();
        assert!(matches!(
            verify_tags_each(&pk, &file, &short),
            Err(DsAuditError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn batch_validation_accepts_honest() {
        let (_, pk, file, tags) = setup();
        let mut rng = rng();
        assert!(verify_tags_batch(&mut rng, &pk, &file, &tags)
            .unwrap()
            .accepted());
    }

    #[test]
    fn batch_validation_rejects_forgery() {
        let (_, pk, file, mut tags) = setup();
        let mut rng = rng();
        tags[2] = G1Projective::random(&mut rng).to_affine();
        assert_eq!(
            verify_tags_batch(&mut rng, &pk, &file, &tags).unwrap(),
            Verdict::Reject(RejectReason::TagEquation)
        );
    }

    #[test]
    fn batch_validation_wrong_count_is_a_typed_error() {
        let (_, pk, file, mut tags) = setup();
        let mut rng = rng();
        tags.pop();
        assert!(matches!(
            verify_tags_batch(&mut rng, &pk, &file, &tags),
            Err(DsAuditError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn tags_deterministic() {
        let (sk, _, file, tags) = setup();
        assert_eq!(generate_tags(&sk, &file), tags);
    }
}
