//! Batch auditing across users (§VII-D).
//!
//! When one storage provider serves dozens of data owners (the paper
//! measures ~30 per provider on Siacoin/Storj), the contract can verify
//! all posted proofs of one round together. Each user contributes three
//! Miller loops, but all users share a *single* final exponentiation, and
//! random weights `rho_u` keep soundness (a forged proof slips through
//! with probability `1/r`).

use dsaudit_algebra::field::Field;
use dsaudit_algebra::fp12::Fq12;
use dsaudit_algebra::g1::G1Projective;
use dsaudit_algebra::g2::G2Affine;
use dsaudit_algebra::pairing::{final_exponentiation, miller_loop, Gt};
use dsaudit_algebra::Fr;
use dsaudit_crypto::prf::h_prime;

use crate::challenge::Challenge;
use crate::keys::PublicKey;
use crate::proof::PrivateProof;
use crate::verify::{compute_chi, FileMeta};

/// One user's audit instance inside a batch.
#[derive(Clone, Debug)]
pub struct BatchItem<'a> {
    /// The user's public key.
    pub pk: &'a PublicKey,
    /// The audited file's metadata.
    pub meta: FileMeta,
    /// This round's challenge for the user.
    pub challenge: Challenge,
    /// The posted proof.
    pub proof: PrivateProof,
}

/// Verifies a batch of private proofs with one shared final
/// exponentiation. Equivalent to verifying each item individually
/// (soundness error `~1/r` from the random weights).
pub fn verify_private_batch<R: rand::RngCore + ?Sized>(
    rng: &mut R,
    items: &[BatchItem<'_>],
) -> bool {
    if items.is_empty() {
        return true;
    }
    let g2 = G2Affine::generator();
    let mut acc = Fq12::one();
    let mut rhs = Gt::identity();
    for item in items {
        let rho = Fr::random(rng);
        let set = item.challenge.expand(item.meta.num_chunks, item.meta.k);
        let chi = compute_chi(item.meta.name, &set);
        let zeta = h_prime(&item.proof.r_commit);
        let zr = zeta * rho;
        let sigma_part = item.proof.sigma.mul(zr).to_affine();
        let left_eps = G1Projective::generator()
            .mul(-(item.proof.y_prime * rho))
            .add(&chi.mul(zr).neg())
            .to_affine();
        let psi_part = item.proof.psi.mul(-zr).to_affine();
        let rhs_g2 = item
            .pk
            .delta
            .to_projective()
            .add(&item.pk.eps.mul(-item.challenge.r))
            .to_affine();
        acc = acc
            * miller_loop(&sigma_part, &g2)
            * miller_loop(&left_eps, &item.pk.eps)
            * miller_loop(&psi_part, &rhs_g2);
        rhs = rhs.mul(&item.proof.r_commit.pow(rho).invert());
    }
    final_exponentiation(&acc) == rhs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::EncodedFile;
    use crate::keys::keygen;
    use crate::params::AuditParams;
    use crate::prove::Prover;
    use crate::tag::generate_tags;
    use dsaudit_algebra::g1::G1Affine;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xba7c4)
    }

    struct User {
        pk: PublicKey,
        file: EncodedFile,
        tags: Vec<G1Affine>,
        meta: FileMeta,
    }

    fn make_users(n: usize) -> Vec<User> {
        let mut rng = rng();
        (0..n)
            .map(|u| {
                let params = AuditParams::new(4, 3).unwrap();
                let (sk, pk) = keygen(&mut rng, &params);
                let data: Vec<u8> = (0..600).map(|i| ((i + u * 37) % 251) as u8).collect();
                let file = EncodedFile::encode(&mut rng, &data, params);
                let tags = generate_tags(&sk, &file);
                let meta = FileMeta {
                    name: file.name,
                    num_chunks: file.num_chunks(),
                    k: params.k,
                };
                User {
                    pk,
                    file,
                    tags,
                    meta,
                }
            })
            .collect()
    }

    #[test]
    fn honest_batch_verifies() {
        let users = make_users(4);
        let mut rng = rng();
        let mut items = Vec::new();
        for u in &users {
            let prover = Prover::new(&u.pk, &u.file, &u.tags);
            let ch = Challenge::random(&mut rng);
            let proof = prover.prove_private(&mut rng, &ch);
            items.push(BatchItem {
                pk: &u.pk,
                meta: u.meta,
                challenge: ch,
                proof,
            });
        }
        assert!(verify_private_batch(&mut rng, &items));
    }

    #[test]
    fn one_bad_apple_fails_the_batch() {
        let users = make_users(3);
        let mut rng = rng();
        let mut items = Vec::new();
        for (idx, u) in users.iter().enumerate() {
            let mut file = u.file.clone();
            if idx == 1 {
                file.corrupt_block(0, 0); // cheating provider for user 1
            }
            let prover = Prover::new(&u.pk, &file, &u.tags);
            let ch = Challenge::from_beacon(&[idx as u8; 48]);
            // ensure chunk 0 is challenged: k=3 of d=5, loop beacons
            let mut beacon = [idx as u8; 48];
            let mut chosen = ch;
            for b in 0u8..=255 {
                beacon[1] = b;
                let cand = Challenge::from_beacon(&beacon);
                if cand
                    .expand(u.meta.num_chunks, u.meta.k)
                    .iter()
                    .any(|(i, _)| *i == 0)
                {
                    chosen = cand;
                    break;
                }
            }
            let proof = prover.prove_private(&mut rng, &chosen);
            items.push(BatchItem {
                pk: &u.pk,
                meta: u.meta,
                challenge: chosen,
                proof,
            });
        }
        assert!(!verify_private_batch(&mut rng, &items));
    }

    #[test]
    fn empty_batch_is_trivially_valid() {
        let mut rng = rng();
        assert!(verify_private_batch(&mut rng, &[]));
    }
}
