//! Batch auditing across users (§VII-D).
//!
//! When one storage provider serves dozens of data owners (the paper
//! measures ~30 per provider on Siacoin/Storj), the contract can verify
//! all posted proofs of one round together. Each user contributes three
//! pairs to **one** shared Miller loop (the accumulator squarings are
//! amortized over every pair, and each user's fixed G2 points come
//! prepared from the [`Auditor`]'s cache), all users share a *single*
//! final exponentiation, and random weights `rho_u` keep soundness (a
//! forged proof slips through with probability `1/r`).

use std::sync::Arc;

use dsaudit_algebra::field::Field;
use dsaudit_algebra::g1::{G1Affine, G1Projective};
use dsaudit_algebra::pairing::{multi_pairing_prepared, G2Prepared, Gt};
use dsaudit_algebra::Fr;
use dsaudit_crypto::prf::h_prime;

use crate::auditor::Auditor;
use crate::challenge::Challenge;
use crate::error::{DsAuditError, RejectReason, Verdict};
use crate::keys::PublicKey;
use crate::proof::PrivateProof;
use crate::verify::{compute_chi, FileMeta};

/// One user's audit instance inside a batch.
#[derive(Clone, Debug)]
pub struct BatchItem<'a> {
    /// The user's public key.
    pub pk: &'a PublicKey,
    /// The audited file's metadata.
    pub meta: FileMeta,
    /// This round's challenge for the user.
    pub challenge: Challenge,
    /// The posted proof.
    pub proof: PrivateProof,
}

/// The batched check against the caches of `auditor`.
pub(crate) fn verify_private_batch_with<R: rand::RngCore + ?Sized>(
    auditor: &Auditor,
    rng: &mut R,
    items: &[BatchItem<'_>],
) -> Result<Verdict, DsAuditError> {
    if items.is_empty() {
        return Ok(Verdict::Accept);
    }
    for item in items {
        item.meta.validate()?;
    }
    // Per item: (sigma^{zeta rho}, g2), (g1^{-y' rho} chi^{-zeta rho}
    // psi^{zeta rho r}, eps), (psi^{-zeta rho}, delta) — same equation
    // shape as single verification, weighted by rho.
    let mut g1_points: Vec<G1Affine> = Vec::with_capacity(3 * items.len());
    let mut g2_points: Vec<Arc<G2Prepared>> = Vec::with_capacity(2 * items.len());
    let mut rhs_terms: Vec<(Gt, Fr)> = Vec::with_capacity(items.len());
    for item in items {
        let rho = Fr::random(rng);
        let set = item.challenge.expand(item.meta.num_chunks, item.meta.k);
        let chi = compute_chi(auditor.chi_cache(), item.meta.name, &set);
        let zeta = h_prime(&item.proof.r_commit);
        let zr = zeta * rho;
        g1_points.push(item.proof.sigma.mul(zr).to_affine());
        g1_points.push(
            G1Projective::generator()
                .mul(-(item.proof.y_prime * rho))
                .add(&chi.mul(zr).neg())
                .add(&item.proof.psi.mul(zr * item.challenge.r))
                .to_affine(),
        );
        g1_points.push(item.proof.psi.mul(-zr).to_affine());
        g2_points.push(auditor.g2_cache().prepared(&item.pk.eps));
        g2_points.push(auditor.g2_cache().prepared(&item.pk.delta));
        rhs_terms.push((item.proof.r_commit.invert(), rho));
    }
    // prod_u R_u^{-rho_u} through one shared cyclotomic squaring chain
    let rhs = Gt::multi_pow(&rhs_terms);
    let pairs: Vec<(&G1Affine, &G2Prepared)> = items
        .iter()
        .enumerate()
        .flat_map(|(i, _)| {
            [
                (&g1_points[3 * i], G2Prepared::generator()),
                (&g1_points[3 * i + 1], g2_points[2 * i].as_ref()),
                (&g1_points[3 * i + 2], g2_points[2 * i + 1].as_ref()),
            ]
        })
        .collect();
    let holds = multi_pairing_prepared(&pairs) == rhs;
    Ok(Verdict::from_equation(holds, RejectReason::BatchCombination))
}

/// One-shot batched verification with cold caches. Prefer
/// [`Auditor::verify_private_batch`] for repeated rounds.
///
/// # Errors
/// [`DsAuditError::BadMeta`] when any item's metadata is unusable; a
/// failing batch is `Ok(Verdict::Reject(BatchCombination))`.
pub fn verify_private_batch<R: rand::RngCore + ?Sized>(
    rng: &mut R,
    items: &[BatchItem<'_>],
) -> Result<Verdict, DsAuditError> {
    Auditor::ephemeral().verify_private_batch(rng, items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::EncodedFile;
    use crate::keys::keygen;
    use crate::params::AuditParams;
    use crate::prove::Prover;
    use crate::tag::generate_tags;
    use dsaudit_algebra::g1::G1Affine;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xba7c4)
    }

    struct User {
        pk: PublicKey,
        file: EncodedFile,
        tags: Vec<G1Affine>,
        meta: FileMeta,
    }

    fn make_users(n: usize) -> Vec<User> {
        let mut rng = rng();
        (0..n)
            .map(|u| {
                let params = AuditParams::new(4, 3).unwrap();
                let (sk, pk) = keygen(&mut rng, &params);
                let data: Vec<u8> = (0..600).map(|i| ((i + u * 37) % 251) as u8).collect();
                let file = EncodedFile::encode(&mut rng, &data, params);
                let tags = generate_tags(&sk, &file);
                let meta = FileMeta {
                    name: file.name,
                    num_chunks: file.num_chunks(),
                    k: params.k,
                };
                User {
                    pk,
                    file,
                    tags,
                    meta,
                }
            })
            .collect()
    }

    #[test]
    fn honest_batch_verifies() {
        let users = make_users(4);
        let mut rng = rng();
        let mut items = Vec::new();
        for u in &users {
            let prover = Prover::new(&u.pk, &u.file, &u.tags).unwrap();
            let ch = Challenge::random(&mut rng);
            let proof = prover.prove_private(&mut rng, &ch);
            items.push(BatchItem {
                pk: &u.pk,
                meta: u.meta,
                challenge: ch,
                proof,
            });
        }
        let auditor = Auditor::new();
        assert!(auditor
            .verify_private_batch(&mut rng, &items)
            .unwrap()
            .accepted());
    }

    #[test]
    fn one_bad_apple_fails_the_batch() {
        let users = make_users(3);
        let mut rng = rng();
        let mut items = Vec::new();
        for (idx, u) in users.iter().enumerate() {
            let mut file = u.file.clone();
            if idx == 1 {
                file.corrupt_block(0, 0); // cheating provider for user 1
            }
            let prover = Prover::new(&u.pk, &file, &u.tags).unwrap();
            let ch = Challenge::from_beacon(&[idx as u8; 48]);
            // ensure chunk 0 is challenged: k=3 of d=5, loop beacons
            let mut beacon = [idx as u8; 48];
            let mut chosen = ch;
            for b in 0u8..=255 {
                beacon[1] = b;
                let cand = Challenge::from_beacon(&beacon);
                if cand
                    .expand(u.meta.num_chunks, u.meta.k)
                    .iter()
                    .any(|(i, _)| *i == 0)
                {
                    chosen = cand;
                    break;
                }
            }
            let proof = prover.prove_private(&mut rng, &chosen);
            items.push(BatchItem {
                pk: &u.pk,
                meta: u.meta,
                challenge: chosen,
                proof,
            });
        }
        assert_eq!(
            verify_private_batch(&mut rng, &items).unwrap(),
            Verdict::Reject(RejectReason::BatchCombination)
        );
    }

    #[test]
    fn empty_batch_is_trivially_valid() {
        let mut rng = rng();
        assert!(verify_private_batch(&mut rng, &[]).unwrap().accepted());
    }
}
