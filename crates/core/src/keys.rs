//! Key material for the audit protocol (§V-B "Initialize").
//!
//! The data owner samples `sk = (x, alpha)` and publishes
//! `pk = (eps = g2^x, delta = g2^{alpha x}, {g1^{alpha^j}}, g2, e(g1, eps))`.
//! The `alpha`-powers are the KZG-style commitment key; `x` is the
//! HLA signing exponent.

use dsaudit_algebra::field::Field;
use dsaudit_algebra::g1::{G1Affine, G1Projective};
use dsaudit_algebra::g2::G2Affine;
use dsaudit_algebra::pairing::{multi_pairing_prepared, G2Prepared, Gt};
use dsaudit_algebra::Fr;

use crate::codec::{ByteReader, Codec};
use crate::error::DsAuditError;
use crate::params::AuditParams;

/// The data owner's secret key `(x, alpha)`.
///
/// Deliberately neither `Copy` nor `Debug`: dropping a key zeroizes it
/// (so stray copies must be explicit `clone()`s), and the secret-hygiene
/// lint (`secret-debug` in `docs/LINTS.md`) forbids formatting it.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey {
    /// HLA signing exponent.
    pub x: Fr,
    /// KZG trapdoor.
    pub alpha: Fr,
}

/// Best-effort zeroize-on-drop: see [`SecretKey::wipe`].
impl Drop for SecretKey {
    fn drop(&mut self) {
        self.wipe();
    }
}

impl SecretKey {
    /// Overwrites both exponents with zeros (best-effort — the stores go
    /// through `black_box`, but without `unsafe` there is no volatile
    /// guarantee). Called automatically on drop.
    pub fn wipe(&mut self) {
        self.x.zeroize();
        self.alpha.zeroize();
    }

    /// Samples a fresh secret key.
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        loop {
            let x = Fr::random(rng);
            let alpha = Fr::random(rng);
            if !x.is_zero() && !alpha.is_zero() {
                return Self { x, alpha };
            }
        }
    }

    /// Serializes to the 64-byte owner-vault format (see [`Codec`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.encode()
    }

    /// Parses the 64-byte owner-vault format.
    ///
    /// # Errors
    /// Typed [`DsAuditError`] on truncation, out-of-range scalars, a
    /// zero component, or trailing bytes — never a silent `None`.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DsAuditError> {
        Self::decode(bytes)
    }
}

/// `x (32 B) || alpha (32 B)`, both big-endian canonical scalars. The
/// owner's vault format — never leaves the data owner.
impl Codec for SecretKey {
    const TYPE_NAME: &'static str = "SecretKey";

    fn encoded_len(&self) -> usize {
        64
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.x.encode_into(out);
        self.alpha.encode_into(out);
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, DsAuditError> {
        let x_bytes = r.array::<32>("x")?;
        let x = Fr::from_bytes_be(&x_bytes).ok_or_else(|| r.malformed("x"))?;
        let alpha_bytes = r.array::<32>("alpha")?;
        let alpha = Fr::from_bytes_be(&alpha_bytes).ok_or_else(|| r.malformed("alpha"))?;
        // zero components would make the key cryptographically void
        if x.is_zero() {
            return Err(r.malformed("x"));
        }
        if alpha.is_zero() {
            return Err(r.malformed("alpha"));
        }
        Ok(Self { x, alpha })
    }
}

/// The public key recorded on chain during contract initialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicKey {
    /// `eps = g2^x`.
    pub eps: G2Affine,
    /// `delta = g2^{alpha x}`.
    pub delta: G2Affine,
    /// `{g1^{alpha^j}}` for `j = 0..=s-1` (index 0 is `g1` itself).
    ///
    /// The paper lists powers up to `s-2` (all the prover strictly needs
    /// for the quotient witness); we include the `s-1` power as well so
    /// the storage provider can validate authenticators with public data
    /// alone. One extra 32-byte point; accounted in Fig. 4's repro.
    pub alpha_powers_g1: Vec<G1Affine>,
    /// Cached `e(g1, eps)` — the base for the Sigma-protocol commitment
    /// `R = e(g1, eps)^z`. Only needed with on-chain privacy enabled.
    pub e_g1_eps: Gt,
}

impl PublicKey {
    /// Chunking factor `s` this key was generated for.
    pub fn s(&self) -> usize {
        self.alpha_powers_g1.len()
    }

    /// Serializes to the on-chain registration format (see [`Codec`]):
    /// `s (4 B LE) || eps (64 B) || delta (64 B) || s x 32 B alpha powers
    /// || 192 B e(g1, eps)`.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.encode()
    }

    /// Parses the on-chain registration format, validating every group
    /// element and the consistency `e(g1, eps) == cached GT element`.
    ///
    /// # Errors
    /// Typed [`DsAuditError`] naming the offending field — truncated
    /// input, an inconsistent length prefix, a point off the curve, or a
    /// failed consistency check — never a silent `None`.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DsAuditError> {
        Self::decode(bytes)
    }

    /// The consistency checks a contract performs once at registration:
    /// the commitment key must start at the generator, and the cached
    /// GT element must equal `e(g1, eps)`.
    fn validate(&self) -> Result<(), DsAuditError> {
        if self.alpha_powers_g1[0] != G1Affine::generator() {
            return Err(DsAuditError::Malformed {
                ty: Self::TYPE_NAME,
                field: "alpha_powers_g1[0]",
            });
        }
        let g1 = G1Affine::generator();
        let eps_p = G2Prepared::from_affine(&self.eps);
        if multi_pairing_prepared(&[(&g1, &eps_p)]) != self.e_g1_eps {
            return Err(DsAuditError::Malformed {
                ty: Self::TYPE_NAME,
                field: "e_g1_eps",
            });
        }
        Ok(())
    }

    /// Serialized size in bytes as recorded on chain (Fig. 4).
    ///
    /// Compressed G1 points are 32 bytes, compressed G2 points 64 bytes,
    /// the cached GT element 192 bytes (torus-compressed). Without
    /// on-chain privacy the GT element is omitted.
    pub fn serialized_len(&self, with_privacy: bool) -> usize {
        let base = 64 + 64 + 32 * self.alpha_powers_g1.len();
        if with_privacy {
            base + 192
        } else {
            base
        }
    }
}

/// The on-chain registration format: `s (4 B LE) || eps || delta ||
/// s alpha powers || e(g1, eps)`. Decoding validates every group
/// element and the registration consistency checks, so any value this
/// impl produces is a usable public key.
impl Codec for PublicKey {
    const TYPE_NAME: &'static str = "PublicKey";

    fn encoded_len(&self) -> usize {
        4 + self.serialized_len(true)
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.s() as u32).to_le_bytes());
        self.eps.encode_into(out);
        self.delta.encode_into(out);
        for p in &self.alpha_powers_g1 {
            p.encode_into(out);
        }
        self.e_g1_eps.encode_into(out);
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, DsAuditError> {
        let s = r.u32_le("s")? as usize;
        if s == 0 || s > crate::params::MAX_CHUNK_FACTOR {
            return Err(r.malformed("s"));
        }
        let eps_bytes = r.array::<64>("eps")?;
        let eps = G2Affine::from_compressed(&eps_bytes).ok_or_else(|| r.malformed("eps"))?;
        let delta_bytes = r.array::<64>("delta")?;
        let delta =
            G2Affine::from_compressed(&delta_bytes).ok_or_else(|| r.malformed("delta"))?;
        // the announced count must be consistent with the bytes actually
        // present, so a forged prefix cannot trigger a huge allocation
        if r.remaining() < 32 * s {
            return Err(DsAuditError::Truncated {
                ty: Self::TYPE_NAME,
                field: "alpha_powers_g1",
                expected: 32 * s,
                got: r.remaining(),
            });
        }
        let mut alpha_powers_g1 = Vec::with_capacity(s);
        for _ in 0..s {
            let p_bytes = r.array::<32>("alpha_powers_g1")?;
            alpha_powers_g1.push(
                G1Affine::from_compressed(&p_bytes)
                    .ok_or_else(|| r.malformed("alpha_powers_g1"))?,
            );
        }
        let gt_bytes = r.array::<192>("e_g1_eps")?;
        let e_g1_eps =
            Gt::from_compressed(&gt_bytes).ok_or_else(|| r.malformed("e_g1_eps"))?;
        let pk = Self {
            eps,
            delta,
            alpha_powers_g1,
            e_g1_eps,
        };
        pk.validate()?;
        Ok(pk)
    }
}

/// Generates the key pair for chunking factor `params.s`.
pub fn keygen<R: rand::RngCore + ?Sized>(
    rng: &mut R,
    params: &AuditParams,
) -> (SecretKey, PublicKey) {
    let sk = SecretKey::random(rng);
    let pk = public_key_for(&sk, params.s);
    (sk, pk)
}

/// Derives the public key from a secret key (deterministic).
pub fn public_key_for(sk: &SecretKey, s: usize) -> PublicKey {
    let g2 = dsaudit_algebra::g2::G2Projective::generator();
    let eps = g2.mul(sk.x).to_affine();
    let delta = g2.mul(sk.alpha * sk.x).to_affine();
    // powers g1^{alpha^j} off the shared fixed-base generator table
    let mut powers: Vec<Fr> = Vec::with_capacity(s);
    let mut acc = Fr::one();
    for _ in 0..s {
        powers.push(acc);
        acc *= sk.alpha;
    }
    let alpha_powers_g1 = G1Projective::generator_table().mul_many_affine(&powers);
    let g1 = G1Affine::generator();
    let eps_p = G2Prepared::from_affine(&eps);
    let e_g1_eps = multi_pairing_prepared(&[(&g1, &eps_p)]);
    PublicKey {
        eps,
        delta,
        alpha_powers_g1,
        e_g1_eps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsaudit_algebra::pairing::pairing;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x4e7)
    }

    #[test]
    fn keygen_structure() {
        let mut rng = rng();
        let params = AuditParams::new(10, 30).unwrap();
        let (sk, pk) = keygen(&mut rng, &params);
        assert_eq!(pk.s(), 10);
        assert_eq!(pk.alpha_powers_g1[0], G1Affine::generator());
        // g1^{alpha} equals generator * alpha
        assert_eq!(
            pk.alpha_powers_g1[1],
            G1Projective::generator().mul(sk.alpha).to_affine()
        );
        // eps = g2^x consistency through a pairing identity:
        // e(g1^alpha, eps) == e(g1, eps)^alpha
        let lhs = pairing(&pk.alpha_powers_g1[1], &pk.eps);
        let rhs = pk.e_g1_eps.pow(sk.alpha);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn delta_is_alpha_times_x() {
        let mut rng = rng();
        let params = AuditParams::new(4, 2).unwrap();
        let (sk, pk) = keygen(&mut rng, &params);
        // e(g1, delta) == e(g1, g2)^{alpha x}
        let lhs = pairing(&G1Affine::generator(), &pk.delta);
        let rhs = Gt::generator().pow(sk.alpha * sk.x);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn serialized_len_formula() {
        let mut rng = rng();
        let params = AuditParams::new(50, 300).unwrap();
        let (_, pk) = keygen(&mut rng, &params);
        assert_eq!(pk.serialized_len(false), 64 + 64 + 32 * 50);
        assert_eq!(pk.serialized_len(true), 64 + 64 + 32 * 50 + 192);
    }

    #[test]
    fn public_key_deterministic_from_sk() {
        let mut rng = rng();
        let sk = SecretKey::random(&mut rng);
        assert_eq!(public_key_for(&sk, 8), public_key_for(&sk, 8));
    }

    #[test]
    fn public_key_wire_roundtrip() {
        let mut rng = rng();
        let params = AuditParams::new(6, 4).unwrap();
        let (_, pk) = keygen(&mut rng, &params);
        let bytes = pk.to_bytes();
        assert_eq!(bytes.len(), 4 + pk.serialized_len(true));
        let back = PublicKey::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, pk);
    }

    #[test]
    fn public_key_rejects_tampering_with_typed_errors() {
        let mut rng = rng();
        let params = AuditParams::new(4, 2).unwrap();
        let (_, pk) = keygen(&mut rng, &params);
        let mut bytes = pk.to_bytes();
        // truncation names the field that ran out
        assert!(matches!(
            PublicKey::from_bytes(&bytes[..bytes.len() - 1]),
            Err(crate::error::DsAuditError::Truncated {
                ty: "PublicKey",
                field: "e_g1_eps",
                ..
            })
        ));
        // swap eps for delta: breaks the pairing consistency check
        let (a, b) = (4usize, 4 + 64);
        for i in 0..64 {
            bytes.swap(a + i, b + i);
        }
        assert!(matches!(
            PublicKey::from_bytes(&bytes),
            Err(crate::error::DsAuditError::Malformed {
                ty: "PublicKey",
                field: "e_g1_eps"
            })
        ));
    }

    #[test]
    fn secret_key_wipe_zeroizes_both_exponents() {
        let mut rng = rng();
        let mut sk = SecretKey::random(&mut rng);
        assert!(!sk.x.is_zero() && !sk.alpha.is_zero());
        sk.wipe(); // what Drop runs
        assert!(sk.x.is_zero());
        assert!(sk.alpha.is_zero());
    }

    #[test]
    fn secret_key_codec_roundtrip_and_typed_errors() {
        let mut rng = rng();
        let sk = SecretKey::random(&mut rng);
        let bytes = sk.to_bytes();
        assert_eq!(bytes.len(), 64);
        assert!(SecretKey::from_bytes(&bytes).unwrap() == sk);
        // truncation is a typed error, not a silent None
        assert!(matches!(
            SecretKey::from_bytes(&bytes[..63]),
            Err(crate::error::DsAuditError::Truncated {
                ty: "SecretKey",
                field: "alpha",
                ..
            })
        ));
        // a zero component is rejected as malformed
        let mut zeroed = bytes.clone();
        zeroed[..32].fill(0);
        assert!(matches!(
            SecretKey::from_bytes(&zeroed),
            Err(crate::error::DsAuditError::Malformed {
                ty: "SecretKey",
                field: "x"
            })
        ));
    }
}
