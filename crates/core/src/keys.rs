//! Key material for the audit protocol (§V-B "Initialize").
//!
//! The data owner samples `sk = (x, alpha)` and publishes
//! `pk = (eps = g2^x, delta = g2^{alpha x}, {g1^{alpha^j}}, g2, e(g1, eps))`.
//! The `alpha`-powers are the KZG-style commitment key; `x` is the
//! HLA signing exponent.

use dsaudit_algebra::field::Field;
use dsaudit_algebra::g1::{G1Affine, G1Projective};
use dsaudit_algebra::g2::G2Affine;
use dsaudit_algebra::pairing::{multi_pairing_prepared, Gt};
use dsaudit_algebra::Fr;

use crate::params::AuditParams;
use crate::prepared;

/// The data owner's secret key `(x, alpha)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SecretKey {
    /// HLA signing exponent.
    pub x: Fr,
    /// KZG trapdoor.
    pub alpha: Fr,
}

impl SecretKey {
    /// Samples a fresh secret key.
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        loop {
            let x = Fr::random(rng);
            let alpha = Fr::random(rng);
            if !x.is_zero() && !alpha.is_zero() {
                return Self { x, alpha };
            }
        }
    }
}

/// The public key recorded on chain during contract initialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicKey {
    /// `eps = g2^x`.
    pub eps: G2Affine,
    /// `delta = g2^{alpha x}`.
    pub delta: G2Affine,
    /// `{g1^{alpha^j}}` for `j = 0..=s-1` (index 0 is `g1` itself).
    ///
    /// The paper lists powers up to `s-2` (all the prover strictly needs
    /// for the quotient witness); we include the `s-1` power as well so
    /// the storage provider can validate authenticators with public data
    /// alone. One extra 32-byte point; accounted in Fig. 4's repro.
    pub alpha_powers_g1: Vec<G1Affine>,
    /// Cached `e(g1, eps)` — the base for the Sigma-protocol commitment
    /// `R = e(g1, eps)^z`. Only needed with on-chain privacy enabled.
    pub e_g1_eps: Gt,
}

impl PublicKey {
    /// Chunking factor `s` this key was generated for.
    pub fn s(&self) -> usize {
        self.alpha_powers_g1.len()
    }

    /// Serializes to the on-chain registration format:
    /// `s (4 B LE) || eps (64 B) || delta (64 B) || s x 32 B alpha powers
    /// || 192 B e(g1, eps)`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.serialized_len(true));
        out.extend_from_slice(&(self.s() as u32).to_le_bytes());
        out.extend_from_slice(&self.eps.to_compressed());
        out.extend_from_slice(&self.delta.to_compressed());
        for p in &self.alpha_powers_g1 {
            out.extend_from_slice(&p.to_compressed());
        }
        out.extend_from_slice(&self.e_g1_eps.to_compressed());
        out
    }

    /// Parses the on-chain registration format, validating every group
    /// element and the consistency `e(g1, eps) == cached GT element`.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 4 {
            return None;
        }
        let s = u32::from_le_bytes(bytes[..4].try_into().expect("sliced")) as usize;
        let expect = 4 + 64 + 64 + 32 * s + 192;
        if bytes.len() != expect || s == 0 || s > 4096 {
            return None;
        }
        let mut off = 4;
        let eps = G2Affine::from_compressed(bytes[off..off + 64].try_into().expect("sliced"))?;
        off += 64;
        let delta = G2Affine::from_compressed(bytes[off..off + 64].try_into().expect("sliced"))?;
        off += 64;
        let mut alpha_powers_g1 = Vec::with_capacity(s);
        for _ in 0..s {
            alpha_powers_g1
                .push(G1Affine::from_compressed(bytes[off..off + 32].try_into().expect("sliced"))?);
            off += 32;
        }
        let e_g1_eps = Gt::from_compressed(bytes[off..off + 192].try_into().expect("sliced"))?;
        // consistency checks a contract would perform once at registration;
        // the pairing runs against a fresh (uncached) preparation so
        // rejected blobs never leave an entry in the process-wide cache
        if alpha_powers_g1[0] != G1Affine::generator() {
            return None;
        }
        let g1 = G1Affine::generator();
        let eps_p = dsaudit_algebra::pairing::G2Prepared::from_affine(&eps);
        if multi_pairing_prepared(&[(&g1, &eps_p)]) != e_g1_eps {
            return None;
        }
        // validated: warm the cache for the audit rounds that follow
        let _ = prepared::prepared(&eps);
        Some(Self {
            eps,
            delta,
            alpha_powers_g1,
            e_g1_eps,
        })
    }

    /// Serialized size in bytes as recorded on chain (Fig. 4).
    ///
    /// Compressed G1 points are 32 bytes, compressed G2 points 64 bytes,
    /// the cached GT element 192 bytes (torus-compressed). Without
    /// on-chain privacy the GT element is omitted.
    pub fn serialized_len(&self, with_privacy: bool) -> usize {
        let base = 64 + 64 + 32 * self.alpha_powers_g1.len();
        if with_privacy {
            base + 192
        } else {
            base
        }
    }
}

/// Generates the key pair for chunking factor `params.s`.
pub fn keygen<R: rand::RngCore + ?Sized>(
    rng: &mut R,
    params: &AuditParams,
) -> (SecretKey, PublicKey) {
    let sk = SecretKey::random(rng);
    let pk = public_key_for(&sk, params.s);
    (sk, pk)
}

/// Derives the public key from a secret key (deterministic).
pub fn public_key_for(sk: &SecretKey, s: usize) -> PublicKey {
    let g2 = dsaudit_algebra::g2::G2Projective::generator();
    let eps = g2.mul(sk.x).to_affine();
    let delta = g2.mul(sk.alpha * sk.x).to_affine();
    // powers g1^{alpha^j} off the shared fixed-base generator table
    let mut powers: Vec<Fr> = Vec::with_capacity(s);
    let mut acc = Fr::one();
    for _ in 0..s {
        powers.push(acc);
        acc *= sk.alpha;
    }
    let alpha_powers_g1 = G1Projective::generator_table().mul_many_affine(&powers);
    let g1 = G1Affine::generator();
    let eps_p = prepared::prepared(&eps);
    let e_g1_eps = multi_pairing_prepared(&[(&g1, eps_p.as_ref())]);
    PublicKey {
        eps,
        delta,
        alpha_powers_g1,
        e_g1_eps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsaudit_algebra::pairing::pairing;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x4e7)
    }

    #[test]
    fn keygen_structure() {
        let mut rng = rng();
        let params = AuditParams::new(10, 30).unwrap();
        let (sk, pk) = keygen(&mut rng, &params);
        assert_eq!(pk.s(), 10);
        assert_eq!(pk.alpha_powers_g1[0], G1Affine::generator());
        // g1^{alpha} equals generator * alpha
        assert_eq!(
            pk.alpha_powers_g1[1],
            G1Projective::generator().mul(sk.alpha).to_affine()
        );
        // eps = g2^x consistency through a pairing identity:
        // e(g1^alpha, eps) == e(g1, eps)^alpha
        let lhs = pairing(&pk.alpha_powers_g1[1], &pk.eps);
        let rhs = pk.e_g1_eps.pow(sk.alpha);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn delta_is_alpha_times_x() {
        let mut rng = rng();
        let params = AuditParams::new(4, 2).unwrap();
        let (sk, pk) = keygen(&mut rng, &params);
        // e(g1, delta) == e(g1, g2)^{alpha x}
        let lhs = pairing(&G1Affine::generator(), &pk.delta);
        let rhs = Gt::generator().pow(sk.alpha * sk.x);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn serialized_len_formula() {
        let mut rng = rng();
        let params = AuditParams::new(50, 300).unwrap();
        let (_, pk) = keygen(&mut rng, &params);
        assert_eq!(pk.serialized_len(false), 64 + 64 + 32 * 50);
        assert_eq!(pk.serialized_len(true), 64 + 64 + 32 * 50 + 192);
    }

    #[test]
    fn public_key_deterministic_from_sk() {
        let mut rng = rng();
        let sk = SecretKey::random(&mut rng);
        assert_eq!(public_key_for(&sk, 8), public_key_for(&sk, 8));
    }

    #[test]
    fn public_key_wire_roundtrip() {
        let mut rng = rng();
        let params = AuditParams::new(6, 4).unwrap();
        let (_, pk) = keygen(&mut rng, &params);
        let bytes = pk.to_bytes();
        assert_eq!(bytes.len(), 4 + pk.serialized_len(true));
        let back = PublicKey::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, pk);
    }

    #[test]
    fn public_key_rejects_tampering() {
        let mut rng = rng();
        let params = AuditParams::new(4, 2).unwrap();
        let (_, pk) = keygen(&mut rng, &params);
        let mut bytes = pk.to_bytes();
        // truncation
        assert!(PublicKey::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        // swap eps for delta: breaks the pairing consistency check
        let (a, b) = (4usize, 4 + 64);
        for i in 0..64 {
            bytes.swap(a + i, b + i);
        }
        assert!(PublicKey::from_bytes(&bytes).is_none());
    }
}
