//! File encoding: bytes -> field-element blocks -> chunks/polynomials
//! (§V-B). A file `F` becomes `n` blocks `m in Z_p`, grouped into
//! `d = ceil(n/s)` chunks; chunk `i` defines the polynomial
//! `M_i(x) = m_{i,0} + m_{i,1} x + ... + m_{i,s-1} x^{s-1}`.

use dsaudit_algebra::field::Field;
use dsaudit_algebra::poly::DensePoly;
use dsaudit_algebra::Fr;

use crate::error::DsAuditError;
use crate::params::{AuditParams, BLOCK_BYTES};

/// A file encoded for auditing: `d` chunks of `s` blocks each.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodedFile {
    /// Unique on-chain file identifier `name` (sampled from `Z_p`).
    pub name: Fr,
    /// Chunking parameters the file was encoded under.
    pub params: AuditParams,
    /// Original byte length (for exact decode).
    pub byte_len: usize,
    /// Block matrix, chunk-major: `blocks[i][j] = m_{i,j}`; every chunk is
    /// padded to exactly `s` blocks.
    blocks: Vec<Vec<Fr>>,
}

impl EncodedFile {
    /// Encodes raw bytes (already encrypted by the storage layer — the
    /// paper mandates owner-side encryption) into auditable blocks.
    pub fn encode<R: rand::RngCore + ?Sized>(
        rng: &mut R,
        data: &[u8],
        params: AuditParams,
    ) -> Self {
        let name = Fr::random(rng);
        Self::encode_with_name(name, data, params)
    }

    /// Encodes with a caller-chosen `name` (deterministic; used by tests
    /// and by re-encoding during disputes).
    pub fn encode_with_name(name: Fr, data: &[u8], params: AuditParams) -> Self {
        let s = params.s;
        let n_blocks = data.len().div_ceil(BLOCK_BYTES).max(1);
        let d = n_blocks.div_ceil(s);
        let chunk_bytes = params.chunk_bytes();
        let mut blocks = Vec::with_capacity(d);
        for i in 0..d {
            let lo = (i * chunk_bytes).min(data.len());
            let hi = ((i + 1) * chunk_bytes).min(data.len());
            blocks.push(Self::chunk_from_bytes(&data[lo..hi], s));
        }
        Self {
            name,
            params,
            byte_len: data.len(),
            blocks,
        }
    }

    /// Streaming encode: reads `reader` to EOF, chunk by chunk, with a
    /// random `name`.
    ///
    /// # Errors
    /// Propagates reader failures as [`DsAuditError::Io`].
    pub fn encode_reader<R, T>(
        rng: &mut R,
        reader: &mut T,
        params: AuditParams,
    ) -> Result<Self, DsAuditError>
    where
        R: rand::RngCore + ?Sized,
        T: std::io::Read + ?Sized,
    {
        let name = Fr::random(rng);
        Self::encode_reader_with_name(name, reader, params)
    }

    /// Streaming encode with a caller-chosen `name`: reads the source to
    /// EOF one chunk at a time, so the raw bytes are never buffered in
    /// full — peak transient allocation is one `s * 31`-byte chunk
    /// buffer regardless of file size (the encoded blocks themselves are
    /// the output). Produces exactly the same [`EncodedFile`] as
    /// [`EncodedFile::encode_with_name`] over the concatenated bytes,
    /// which is what makes GiB-scale preprocessing possible: encode from
    /// a `File` handle, then feed the chunks to tag generation.
    ///
    /// # Errors
    /// Propagates reader failures as [`DsAuditError::Io`]; bytes read
    /// before the failure are discarded.
    pub fn encode_reader_with_name<T>(
        name: Fr,
        reader: &mut T,
        params: AuditParams,
    ) -> Result<Self, DsAuditError>
    where
        T: std::io::Read + ?Sized,
    {
        let s = params.s;
        let chunk_bytes = params.chunk_bytes();
        let mut buf = vec![0u8; chunk_bytes];
        let mut blocks: Vec<Vec<Fr>> = Vec::new();
        let mut byte_len = 0usize;
        loop {
            let mut filled = 0usize;
            while filled < chunk_bytes {
                match reader.read(&mut buf[filled..]) {
                    Ok(0) => break,
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e.into()),
                }
            }
            if filled == 0 {
                break;
            }
            byte_len += filled;
            blocks.push(Self::chunk_from_bytes(&buf[..filled], s));
            if filled < chunk_bytes {
                break; // EOF mid-chunk
            }
        }
        if blocks.is_empty() {
            // an empty file still audits as one all-zero chunk
            blocks.push(vec![Fr::zero(); s]);
        }
        Ok(Self {
            name,
            params,
            byte_len,
            blocks,
        })
    }

    /// Packs up to `s * 31` raw bytes into exactly `s` field-element
    /// blocks, zero-padding the tail.
    fn chunk_from_bytes(data: &[u8], s: usize) -> Vec<Fr> {
        let mut chunk = Vec::with_capacity(s);
        let mut cursor = 0usize;
        for _ in 0..s {
            let mut buf = [0u8; 32];
            if cursor < data.len() {
                let take = BLOCK_BYTES.min(data.len() - cursor);
                buf[32 - BLOCK_BYTES..32 - BLOCK_BYTES + take]
                    .copy_from_slice(&data[cursor..cursor + take]);
                cursor += take;
            }
            // 31 data bytes occupy the low 248 bits: always < r
            chunk.push(Fr::from_bytes_be(&buf).expect("31-byte block fits in Fr"));
        }
        chunk
    }

    /// Number of chunks `d`.
    pub fn num_chunks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of blocks `n` (including padding of the last chunk).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len() * self.params.s
    }

    /// The blocks of chunk `i`.
    ///
    /// # Panics
    /// Panics if `i >= num_chunks()`.
    pub fn chunk(&self, i: usize) -> &[Fr] {
        &self.blocks[i]
    }

    /// The chunk polynomial `M_i(x)`.
    pub fn chunk_poly(&self, i: usize) -> DensePoly {
        DensePoly::from_coeffs(self.blocks[i].clone())
    }

    /// Decodes back to the original bytes (inverse of `encode`).
    pub fn decode(&self) -> Vec<u8> {
        // lint:allow(decode-bounds) — `byte_len` is this struct's own in-memory field, not attacker-controlled wire input
        let mut out = Vec::with_capacity(self.byte_len);
        'outer: for chunk in &self.blocks {
            for block in chunk {
                let bytes = block.to_bytes_be();
                let start = 32 - BLOCK_BYTES;
                let remaining = self.byte_len - out.len();
                let take = BLOCK_BYTES.min(remaining);
                out.extend_from_slice(&bytes[start..start + take]);
                if out.len() == self.byte_len {
                    break 'outer;
                }
            }
        }
        out
    }

    /// Corrupts block `j` of chunk `i` (testing/dispute simulation).
    pub fn corrupt_block(&mut self, i: usize, j: usize) {
        self.blocks[i][j] += Fr::one();
    }

    /// Replaces a whole chunk with zeros (models dropped data).
    pub fn drop_chunk(&mut self, i: usize) {
        for b in self.blocks[i].iter_mut() {
            *b = Fr::zero();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xf11e)
    }

    fn params() -> AuditParams {
        AuditParams::new(4, 2).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut rng = rng();
        for len in [0usize, 1, 30, 31, 32, 123, 31 * 4, 31 * 4 + 1, 5000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 7 + 13) as u8).collect();
            let f = EncodedFile::encode(&mut rng, &data, params());
            assert_eq!(f.decode(), data, "roundtrip failed at len {len}");
        }
    }

    #[test]
    fn chunk_count_matches_formula() {
        let mut rng = rng();
        let p = params(); // s = 4, 124 bytes per chunk
        let f = EncodedFile::encode(&mut rng, &[0u8; 500], p);
        // 500 bytes -> ceil(500/31) = 17 blocks -> ceil(17/4) = 5 chunks
        assert_eq!(f.num_chunks(), 5);
        assert_eq!(f.num_blocks(), 20);
        assert_eq!(f.chunk(0).len(), 4);
    }

    #[test]
    fn chunk_poly_evaluates_blocks() {
        let mut rng = rng();
        let f = EncodedFile::encode(&mut rng, b"some file content here!", params());
        let poly = f.chunk_poly(0);
        // M_0(0) = m_{0,0}
        assert_eq!(poly.evaluate(Fr::zero()), f.chunk(0)[0]);
        // M_0(1) = sum of blocks
        let sum = f
            .chunk(0)
            .iter()
            .fold(Fr::zero(), |acc, b| acc + *b);
        assert_eq!(poly.evaluate(Fr::one()), sum);
    }

    #[test]
    fn corruption_changes_blocks() {
        let mut rng = rng();
        let mut f = EncodedFile::encode(&mut rng, &[9u8; 200], params());
        let before = f.chunk(1)[2];
        f.corrupt_block(1, 2);
        assert_ne!(f.chunk(1)[2], before);
        f.drop_chunk(0);
        assert!(f.chunk(0).iter().all(Field::is_zero));
    }

    #[test]
    fn empty_file_still_has_one_chunk() {
        let mut rng = rng();
        let f = EncodedFile::encode(&mut rng, &[], params());
        assert_eq!(f.num_chunks(), 1);
        assert_eq!(f.decode(), Vec::<u8>::new());
    }

    /// A reader that hands out data in fixed drips, so the chunk loop
    /// must cope with short reads that straddle block boundaries.
    struct DripReader<'a> {
        data: &'a [u8],
        pos: usize,
        drip: usize,
    }

    impl std::io::Read for DripReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.drip.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn streaming_encode_matches_in_memory_exactly() {
        let name = Fr::from_u64(0x57eea);
        let p = params(); // s = 4 -> 124 bytes per chunk
        for len in [0usize, 1, 30, 31, 123, 124, 125, 500, 4999] {
            let data: Vec<u8> = (0..len).map(|i| (i * 13 + 5) as u8).collect();
            let in_memory = EncodedFile::encode_with_name(name, &data, p);
            for drip in [1usize, 3, 31, 124, 1000] {
                let mut reader = DripReader {
                    data: &data,
                    pos: 0,
                    drip,
                };
                let streamed = EncodedFile::encode_reader_with_name(name, &mut reader, p)
                    .expect("in-memory reader cannot fail");
                assert_eq!(
                    streamed, in_memory,
                    "len {len}, drip {drip}: streaming must match in-memory encode"
                );
            }
        }
    }

    #[test]
    fn streaming_encode_surfaces_reader_errors() {
        struct FailAfter(usize);
        impl std::io::Read for FailAfter {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionReset,
                        "peer vanished",
                    ));
                }
                let n = self.0.min(buf.len());
                buf[..n].fill(0xaa);
                self.0 -= n;
                Ok(n)
            }
        }
        let err = EncodedFile::encode_reader_with_name(
            Fr::from_u64(1),
            &mut FailAfter(200),
            params(),
        )
        .expect_err("mid-stream failure must propagate");
        assert!(matches!(
            err,
            DsAuditError::Io {
                kind: std::io::ErrorKind::ConnectionReset,
                ..
            }
        ));
    }
}
