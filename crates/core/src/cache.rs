//! Bounded verifier-side caches, owned by the [`crate::Auditor`] handle.
//!
//! Earlier revisions kept two process-wide statics: the `(name, i)`
//! index-oracle cache behind `compute_chi` and the prepared-G2
//! line-coefficient cache behind every pairing. Under million-file
//! traffic those grow without limit and every verifier in the process
//! shares one lock. Both now live inside each [`crate::Auditor`] (and
//! are dropped with it), bounded by a capacity with FIFO eviction —
//! oldest entry out first, so a flood of throwaway keys cycles through
//! without wiping a hot working set all at once — and keep the hit/miss
//! counters the bench harness and tests read.
//!
//! Counters live *inside* the same mutex as the map, so a
//! [`CacheStats`] snapshot is consistent with the cache body even under
//! concurrent readers. Hits and misses are mirrored onto the
//! `dsaudit-obs` registry (`core.cache.chi.*` / `core.cache.g2.*`) in
//! batches of `OBS_FLUSH_EVERY` (64) lookups rather than one obs call
//! per lookup: a warm verify performs hundreds of cache hits, and the
//! telemetry mirror must not dominate the cost it measures. The obs
//! counters therefore lag the exact [`CacheStats`] totals by at most
//! one batch; the flush points are a deterministic function of the
//! lookup sequence, so virtual-clock traces stay byte-reproducible.

#![deny(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::{Arc, Mutex};

use dsaudit_algebra::g1::G1Affine;
use dsaudit_algebra::g2::G2Affine;
use dsaudit_algebra::pairing::G2Prepared;
use dsaudit_algebra::Fr;
use dsaudit_crypto::prf::index_oracle;

/// Hit/miss counters of one cache since its creation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute the entry.
    pub misses: u64,
}

/// A capacity-bounded map with FIFO eviction and hit/miss counters.
///
/// Misses compute outside the lock (two racing lookups may both compute
/// a fresh entry, which is benign for deterministic values); insertion
/// evicts the oldest keys until the capacity bound holds. The counters
/// sit inside the same mutex as the map, so [`BoundedCache::stats`] is
/// one consistent snapshot rather than two racing atomic loads.
struct BoundedCache<K, V> {
    inner: Mutex<BoundedMap<K, V>>,
    capacity: usize,
    /// Obs counter names, built once so the hot path never formats.
    hit_metric: String,
    miss_metric: String,
}

/// Cache lookups between flushes of the hit/miss deltas to the obs
/// registry. Small enough that traces track the caches closely, large
/// enough that the mirror costs one obs call pair per batch instead of
/// one per lookup on the verify hot path.
const OBS_FLUSH_EVERY: u64 = 64;

struct BoundedMap<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    hits: u64,
    misses: u64,
    /// Hits not yet flushed to the obs registry.
    pending_hits: u64,
    /// Misses not yet flushed to the obs registry.
    pending_misses: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> BoundedCache<K, V> {
    /// Locks the map, recovering from poisoning: entries are
    /// deterministic values keyed by their inputs, so a map observed
    /// mid-panic of another thread is still internally consistent
    /// (worst case a concurrent insert is missing, which is the same
    /// as a benign racing miss). Verifier paths stay panic-free.
    fn locked(&self) -> std::sync::MutexGuard<'_, BoundedMap<K, V>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn new(capacity: usize, metric: &str) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            inner: Mutex::new(BoundedMap {
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
                pending_hits: 0,
                pending_misses: 0,
            }),
            capacity,
            hit_metric: format!("{metric}.hits"),
            miss_metric: format!("{metric}.misses"),
        }
    }

    fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let (warm, flush) = {
            let mut inner = self.locked();
            let warm = inner.map.get(&key).cloned();
            if warm.is_some() {
                inner.hits = inner.hits.saturating_add(1);
                inner.pending_hits = inner.pending_hits.saturating_add(1);
            } else {
                inner.misses = inner.misses.saturating_add(1);
                inner.pending_misses = inner.pending_misses.saturating_add(1);
            }
            let flush = if inner.pending_hits.saturating_add(inner.pending_misses)
                >= OBS_FLUSH_EVERY
            {
                let deltas = (inner.pending_hits, inner.pending_misses);
                inner.pending_hits = 0;
                inner.pending_misses = 0;
                Some(deltas)
            } else {
                None
            };
            (warm, flush)
        };
        if let Some((hits, misses)) = flush {
            if hits > 0 {
                dsaudit_obs::counter_add(&self.hit_metric, hits);
            }
            if misses > 0 {
                dsaudit_obs::counter_add(&self.miss_metric, misses);
            }
        }
        if let Some(v) = warm {
            return v;
        }
        let v = compute();
        let mut inner = self.locked();
        if inner.map.insert(key.clone(), v.clone()).is_none() {
            inner.order.push_back(key);
            while inner.map.len() > self.capacity {
                if let Some(victim) = inner.order.pop_front() {
                    inner.map.remove(&victim);
                } else {
                    break;
                }
            }
        }
        v
    }

    fn len(&self) -> usize {
        self.locked().map.len()
    }

    /// One snapshot under the cache's own lock: the totals are exactly
    /// the hit/miss split of the lookups that have completed, never a
    /// torn pair from two separate atomics.
    fn stats(&self) -> CacheStats {
        let inner = self.locked();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
        }
    }
}

/// Memoizes the index oracle `H(name || i)` per `(file, chunk)` pair.
///
/// Audit challenges re-sample `k` chunks of the same file every round,
/// so repeated rounds hit warm entries instead of re-running the
/// hash-to-curve square-root search.
pub struct ChiCache {
    cache: BoundedCache<(Fr, u64), G1Affine>,
}

/// Default capacity of [`ChiCache`] (~100 bytes/entry).
pub const CHI_CACHE_CAPACITY: usize = 1 << 20;

impl ChiCache {
    /// A cache bounded at [`CHI_CACHE_CAPACITY`] entries.
    pub fn new() -> Self {
        Self::with_capacity(CHI_CACHE_CAPACITY)
    }

    /// A cache bounded at `capacity` entries (FIFO eviction beyond it).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            cache: BoundedCache::new(capacity, "core.cache.chi"),
        }
    }

    /// `H(name || i)`, served from the cache when warm.
    pub fn index_oracle(&self, name: Fr, i: u64) -> G1Affine {
        self.cache
            .get_or_compute((name, i), || index_oracle(name, i))
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// `true` when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters since creation.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

impl Default for ChiCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Memoizes prepared G2 points (`G2Prepared` line-coefficient
/// sequences, ~17 KB each) keyed by the compressed point.
///
/// The verifier pairs against the same three G2 points on every audit
/// of a public key (`g2`, `eps`, `delta`); serving them prepared makes
/// repeated rounds pay only the sparse accumulator work.
pub struct PreparedG2Cache {
    cache: BoundedCache<[u8; 64], Arc<G2Prepared>>,
}

/// Default capacity of [`PreparedG2Cache`] (~70 MB at the bound).
pub const PREPARED_CACHE_CAPACITY: usize = 1 << 12;

impl PreparedG2Cache {
    /// A cache bounded at [`PREPARED_CACHE_CAPACITY`] entries.
    pub fn new() -> Self {
        Self::with_capacity(PREPARED_CACHE_CAPACITY)
    }

    /// A cache bounded at `capacity` entries (FIFO eviction beyond it).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            cache: BoundedCache::new(capacity, "core.cache.g2"),
        }
    }

    /// The prepared form of `q`, served from the cache when warm.
    pub fn prepared(&self, q: &G2Affine) -> Arc<G2Prepared> {
        self.cache
            .get_or_compute(q.to_compressed(), || Arc::new(G2Prepared::from_affine(q)))
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// `true` when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters since creation.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

impl Default for PreparedG2Cache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsaudit_algebra::field::Field;
    use dsaudit_algebra::g2::G2Projective;
    use dsaudit_algebra::pairing::{multi_pairing_prepared, pairing};
    use dsaudit_algebra::g1::G1Projective;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xcac4e)
    }

    #[test]
    fn chi_cache_hits_and_matches_fresh_compute() {
        let mut rng = rng();
        let cache = ChiCache::new();
        let name = Fr::random(&mut rng);
        let fresh = index_oracle(name, 3);
        assert_eq!(cache.index_oracle(name, 3), fresh);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1 });
        assert_eq!(cache.index_oracle(name, 3), fresh);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn chi_cache_evicts_oldest_at_capacity() {
        let mut rng = rng();
        let cache = ChiCache::with_capacity(4);
        let name = Fr::random(&mut rng);
        for i in 0..10 {
            let _ = cache.index_oracle(name, i);
        }
        assert_eq!(cache.len(), 4, "capacity bound must hold");
        // oldest entries (0..6) were evicted, newest (6..10) are warm
        let before = cache.stats();
        let _ = cache.index_oracle(name, 9);
        assert_eq!(cache.stats().hits, before.hits + 1);
        let _ = cache.index_oracle(name, 0);
        assert_eq!(cache.stats().misses, before.misses + 1);
        assert_eq!(cache.len(), 4, "re-inserting keeps the bound");
    }

    #[test]
    fn prepared_cache_serves_working_preparations() {
        let mut rng = rng();
        let cache = PreparedG2Cache::with_capacity(2);
        let p = G1Projective::random(&mut rng).to_affine();
        let q = G2Projective::random(&mut rng).to_affine();
        let prep = cache.prepared(&q);
        assert_eq!(
            multi_pairing_prepared(&[(&p, prep.as_ref())]),
            pairing(&p, &q)
        );
        let again = cache.prepared(&q);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(
            multi_pairing_prepared(&[(&p, again.as_ref())]),
            pairing(&p, &q)
        );
        // identity prepares and pairs correctly too
        let id = cache.prepared(&G2Affine::identity());
        assert!(multi_pairing_prepared(&[(&p, id.as_ref())]).is_identity());
        // eviction keeps the bound
        for _ in 0..4 {
            let r = G2Projective::random(&mut rng).to_affine();
            let _ = cache.prepared(&r);
        }
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn repeated_insert_of_same_key_does_not_grow() {
        let cache = ChiCache::with_capacity(2);
        let name = Fr::from_u64(7);
        for _ in 0..5 {
            let _ = cache.index_oracle(name, 1);
        }
        assert_eq!(cache.len(), 1);
    }
}
