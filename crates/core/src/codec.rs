//! The canonical wire codec of the protocol.
//!
//! Every object that crosses a trust boundary — public keys registered
//! on chain, challenges, proofs, tag vectors shipped to a provider —
//! implements [`Codec`]: a single length-prefixed, canonical byte
//! format shared by the `contract` and `chain` layers. Canonical means
//! `decode(encode(x)) == x` for every value *and* every accepted byte
//! string re-encodes to itself — there are no two encodings of the same
//! value, so on-chain equality of bytes is equality of values.
//!
//! Decoding never panics on malformed input: truncation, non-curve
//! points, out-of-range scalars, inconsistent length prefixes and
//! trailing garbage all surface as typed [`DsAuditError`]s naming the
//! offending field.

#![deny(missing_docs)]

use dsaudit_algebra::g1::G1Affine;
use dsaudit_algebra::g2::G2Affine;
use dsaudit_algebra::pairing::Gt;
use dsaudit_algebra::Fr;

use crate::error::DsAuditError;

/// Canonical serialization to/from the protocol's wire format.
pub trait Codec: Sized {
    /// Type name used in decode errors (e.g. `"PrivateProof"`).
    const TYPE_NAME: &'static str;

    /// Exact byte length of this value's encoding.
    fn encoded_len(&self) -> usize;

    /// Appends the canonical encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decodes one value from the reader, consuming exactly its bytes.
    ///
    /// # Errors
    /// Typed [`DsAuditError`] on truncated or malformed input.
    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, DsAuditError>;

    /// The canonical encoding as a fresh vector.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        debug_assert_eq!(out.len(), self.encoded_len(), "encoded_len must be exact");
        out
    }

    /// Decodes a value that must occupy the whole input.
    ///
    /// # Errors
    /// Typed [`DsAuditError`] on truncation, malformed fields, or
    /// trailing bytes after a complete value.
    fn decode(bytes: &[u8]) -> Result<Self, DsAuditError> {
        let mut r = ByteReader::new(bytes, Self::TYPE_NAME);
        let v = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

/// Cursor over wire bytes producing typed errors with field context.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    ty: &'static str,
}

impl<'a> ByteReader<'a> {
    /// Starts reading `bytes` as an encoding of type `ty`.
    pub fn new(bytes: &'a [u8], ty: &'static str) -> Self {
        Self { bytes, pos: 0, ty }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `n` bytes, attributing a shortfall to `field`.
    ///
    /// # Errors
    /// [`DsAuditError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], DsAuditError> {
        match self.bytes.get(self.pos..self.pos.saturating_add(n)) {
            Some(out) => {
                self.pos += n;
                Ok(out)
            }
            None => Err(DsAuditError::Truncated {
                ty: self.ty,
                field,
                expected: n,
                got: self.remaining(),
            }),
        }
    }

    /// Takes a fixed-size array, attributing a shortfall to `field`.
    ///
    /// # Errors
    /// [`DsAuditError::Truncated`] when fewer than `N` bytes remain.
    pub fn array<const N: usize>(&mut self, field: &'static str) -> Result<[u8; N], DsAuditError> {
        let slice = self.take(N, field)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Takes a little-endian `u32` length prefix.
    ///
    /// # Errors
    /// [`DsAuditError::Truncated`] when fewer than 4 bytes remain.
    pub fn u32_le(&mut self, field: &'static str) -> Result<u32, DsAuditError> {
        Ok(u32::from_le_bytes(self.array::<4>(field)?))
    }

    /// A [`DsAuditError::Malformed`] attributed to `field` of the type
    /// being decoded.
    pub fn malformed(&self, field: &'static str) -> DsAuditError {
        DsAuditError::Malformed {
            ty: self.ty,
            field,
        }
    }

    /// Asserts the input is fully consumed.
    ///
    /// # Errors
    /// [`DsAuditError::Malformed`] (field `"trailing bytes"`) when
    /// unconsumed bytes remain.
    pub fn finish(&self) -> Result<(), DsAuditError> {
        if self.remaining() != 0 {
            return Err(DsAuditError::Malformed {
                ty: self.ty,
                field: "trailing bytes",
            });
        }
        Ok(())
    }
}

// --- group/field primitives ------------------------------------------------
//
// The primitive impls give composite types one obvious building block;
// their `TYPE_NAME` only appears in errors when a primitive is decoded
// standalone (composites pass their own reader, so errors carry the
// composite's type name with the primitive's field name).

impl Codec for Fr {
    const TYPE_NAME: &'static str = "Fr";

    fn encoded_len(&self) -> usize {
        32
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bytes_be());
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, DsAuditError> {
        let bytes = r.array::<32>("scalar")?;
        Fr::from_bytes_be(&bytes).ok_or_else(|| r.malformed("scalar"))
    }
}

impl Codec for G1Affine {
    const TYPE_NAME: &'static str = "G1Affine";

    fn encoded_len(&self) -> usize {
        32
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_compressed());
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, DsAuditError> {
        let bytes = r.array::<32>("g1 point")?;
        G1Affine::from_compressed(&bytes).ok_or_else(|| r.malformed("g1 point"))
    }
}

impl Codec for G2Affine {
    const TYPE_NAME: &'static str = "G2Affine";

    fn encoded_len(&self) -> usize {
        64
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_compressed());
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, DsAuditError> {
        let bytes = r.array::<64>("g2 point")?;
        G2Affine::from_compressed(&bytes).ok_or_else(|| r.malformed("g2 point"))
    }
}

impl Codec for Gt {
    const TYPE_NAME: &'static str = "Gt";

    fn encoded_len(&self) -> usize {
        192
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_compressed());
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, DsAuditError> {
        let bytes = r.array::<192>("gt element")?;
        Gt::from_compressed(&bytes).ok_or_else(|| r.malformed("gt element"))
    }
}

/// Tag vectors ship owner → provider as a length-prefixed sequence of
/// compressed G1 points: `count (4 B LE) || count x 32 B`.
impl Codec for Vec<G1Affine> {
    const TYPE_NAME: &'static str = "TagVector";

    fn encoded_len(&self) -> usize {
        4 + 32 * self.len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for tag in self {
            tag.encode_into(out);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, DsAuditError> {
        let count = r.u32_le("count")? as usize;
        // the prefix must be consistent with the bytes actually present,
        // so a forged count cannot trigger a huge allocation
        if r.remaining() < 32 * count {
            return Err(DsAuditError::Truncated {
                ty: Self::TYPE_NAME,
                field: "tags",
                expected: 32 * count,
                got: r.remaining(),
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let bytes = r.array::<32>("tag")?;
            out.push(G1Affine::from_compressed(&bytes).ok_or_else(|| r.malformed("tag"))?);
        }
        Ok(out)
    }
}

/// G2 vectors cross the wire inside SNARK key material: `count (4 B LE)
/// || count x 64 B` compressed points, mirroring the G1 tag vector.
impl Codec for Vec<G2Affine> {
    const TYPE_NAME: &'static str = "G2Vector";

    fn encoded_len(&self) -> usize {
        4 + 64 * self.len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for p in self {
            p.encode_into(out);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, DsAuditError> {
        let count = r.u32_le("count")? as usize;
        // length-prefix consistency bounds the allocation, exactly as
        // for the G1 tag vector above
        if r.remaining() < 64 * count {
            return Err(DsAuditError::Truncated {
                ty: Self::TYPE_NAME,
                field: "points",
                expected: 64 * count,
                got: r.remaining(),
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let bytes = r.array::<64>("point")?;
            out.push(G2Affine::from_compressed(&bytes).ok_or_else(|| r.malformed("point"))?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsaudit_algebra::field::Field;
    use dsaudit_algebra::g1::G1Projective;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xc0dec)
    }

    #[test]
    fn primitives_roundtrip() {
        let mut rng = rng();
        let x = Fr::random(&mut rng);
        assert_eq!(Fr::decode(&x.encode()).unwrap(), x);
        let p = G1Projective::random(&mut rng).to_affine();
        assert_eq!(G1Affine::decode(&p.encode()).unwrap(), p);
        let gt = Gt::generator().pow(Fr::random(&mut rng));
        assert_eq!(Gt::decode(&gt.encode()).unwrap(), gt);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut rng = rng();
        let mut bytes = Fr::random(&mut rng).encode();
        bytes.push(0);
        assert_eq!(
            Fr::decode(&bytes),
            Err(DsAuditError::Malformed {
                ty: "Fr",
                field: "trailing bytes"
            })
        );
    }

    #[test]
    fn truncation_names_the_field() {
        let mut rng = rng();
        let bytes = G1Projective::random(&mut rng).to_affine().encode();
        match G1Affine::decode(&bytes[..31]) {
            Err(DsAuditError::Truncated { ty, field, expected, got }) => {
                assert_eq!((ty, field, expected, got), ("G1Affine", "g1 point", 32, 31));
            }
            other => panic!("expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn tag_vector_roundtrips_and_bounds_allocation() {
        let mut rng = rng();
        let tags: Vec<G1Affine> = (0..5)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let bytes = tags.encode();
        assert_eq!(bytes.len(), 4 + 5 * 32);
        assert_eq!(Vec::<G1Affine>::decode(&bytes).unwrap(), tags);
        // a forged huge count must fail on the length check, not allocate
        let mut forged = bytes.clone();
        forged[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Vec::<G1Affine>::decode(&forged),
            Err(DsAuditError::Truncated { field: "tags", .. })
        ));
        // empty vector is fine
        assert_eq!(
            Vec::<G1Affine>::decode(&Vec::<G1Affine>::new().encode()).unwrap(),
            Vec::new()
        );
    }

    #[test]
    fn g2_vector_roundtrips_and_bounds_allocation() {
        use dsaudit_algebra::g2::G2Projective;
        let mut rng = rng();
        let points: Vec<G2Affine> = (0..3)
            .map(|_| G2Projective::generator().mul(Fr::random(&mut rng)).to_affine())
            .collect();
        let bytes = points.encode();
        assert_eq!(bytes.len(), 4 + 3 * 64);
        assert_eq!(Vec::<G2Affine>::decode(&bytes).unwrap(), points);
        let mut forged = bytes.clone();
        forged[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Vec::<G2Affine>::decode(&forged),
            Err(DsAuditError::Truncated { field: "points", .. })
        ));
        assert_eq!(
            Vec::<G2Affine>::decode(&Vec::<G2Affine>::new().encode()).unwrap(),
            Vec::new()
        );
    }
}
