//! Protocol parameters: the chunking factor `s`, challenge size `k` and
//! their relationship to storage-confidence levels (§VI-A).

/// Bytes packed into one data block. 31 bytes always fit into a BN254
/// scalar (`r > 2^248`), so encoding is injective with no reduction.
pub const BLOCK_BYTES: usize = 31;

/// Largest supported chunking factor `s`; bounds public-key size (and
/// the allocation a decoded wire key may request).
pub const MAX_CHUNK_FACTOR: usize = 4096;

/// System-wide audit parameters agreed during contract negotiation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuditParams {
    /// Blocks per chunk (`s`). One authenticator covers `s` blocks, so
    /// provider-side extra storage is `1/s` of the data size; the paper
    /// finds `s = 50` a sweet spot (Fig. 7).
    pub s: usize,
    /// Number of challenged chunks per audit (`k`). `k = 300` gives 95%
    /// detection confidence at 1% corruption (§VI-A).
    pub k: usize,
}

impl Default for AuditParams {
    fn default() -> Self {
        Self { s: 50, k: 300 }
    }
}

impl AuditParams {
    /// Creates parameters after validating them.
    ///
    /// # Errors
    /// Returns [`ParamError`] when `s` or `k` is zero, or when `s` exceeds
    /// the supported maximum (we cap at 4096 to bound public-key size).
    pub fn new(s: usize, k: usize) -> Result<Self, ParamError> {
        if s == 0 || k == 0 {
            return Err(ParamError::Zero);
        }
        if s > MAX_CHUNK_FACTOR {
            return Err(ParamError::ChunkTooLarge(s));
        }
        Ok(Self { s, k })
    }

    /// Bytes covered by one chunk.
    pub fn chunk_bytes(&self) -> usize {
        self.s * BLOCK_BYTES
    }
}

/// Errors from parameter validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamError {
    /// `s` and `k` must be positive.
    Zero,
    /// Requested `s` exceeds the supported maximum.
    ChunkTooLarge(usize),
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::Zero => write!(f, "audit parameters must be positive"),
            ParamError::ChunkTooLarge(s) => {
                write!(f, "chunk factor s = {s} exceeds the supported maximum of 4096")
            }
        }
    }
}

impl std::error::Error for ParamError {}

/// Number of challenged chunks needed for a given detection confidence
/// when a `corruption` fraction of chunks is damaged:
/// `1 - (1 - corruption)^k >= confidence` (the analysis of \[40\] cited in
/// §VI-A; e.g. 95% confidence at 1% corruption needs k = 299).
pub fn chunks_for_confidence(confidence: f64, corruption: f64) -> usize {
    assert!(
        (0.0..1.0).contains(&confidence) && corruption > 0.0 && corruption < 1.0,
        "confidence in [0,1), corruption in (0,1)"
    );
    ((1.0 - confidence).ln() / (1.0 - corruption).ln()).ceil() as usize
}

/// Detection confidence achieved by challenging `k` chunks at a given
/// corruption fraction.
pub fn confidence_for_chunks(k: usize, corruption: f64) -> f64 {
    1.0 - (1.0 - corruption).powi(k as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_confidence_points() {
        // "setting k to 300 can give D storage assurance of 95% if only 1%
        // of entire data is tampered" (§VI-A)
        let k95 = chunks_for_confidence(0.95, 0.01);
        assert!((295..=305).contains(&k95), "k95 = {k95}");
        // Fig. 9 endpoints: 91% -> ~240, 99% -> ~460
        let k91 = chunks_for_confidence(0.91, 0.01);
        assert!((235..=245).contains(&k91), "k91 = {k91}");
        let k99 = chunks_for_confidence(0.99, 0.01);
        assert!((455..=465).contains(&k99), "k99 = {k99}");
    }

    #[test]
    fn confidence_roundtrip() {
        for conf in [0.91, 0.93, 0.95, 0.97, 0.99] {
            let k = chunks_for_confidence(conf, 0.01);
            assert!(confidence_for_chunks(k, 0.01) >= conf);
            assert!(confidence_for_chunks(k - 1, 0.01) < conf);
        }
    }

    #[test]
    fn param_validation() {
        assert!(AuditParams::new(50, 300).is_ok());
        assert_eq!(AuditParams::new(0, 300), Err(ParamError::Zero));
        assert_eq!(AuditParams::new(50, 0), Err(ParamError::Zero));
        assert!(matches!(
            AuditParams::new(5000, 300),
            Err(ParamError::ChunkTooLarge(_))
        ));
    }

    #[test]
    fn default_matches_paper_sweet_spot() {
        let p = AuditParams::default();
        assert_eq!(p.s, 50);
        assert_eq!(p.k, 300);
        assert_eq!(p.chunk_bytes(), 50 * 31);
    }
}
