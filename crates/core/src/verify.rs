//! On-chain proof verification (§V-B Audit / §V-D step 2).
//!
//! Both verification equations are evaluated as a single product of three
//! pairings (one shared Miller loop, one shared final exponentiation).
//! The paper writes the KZG term as `e(psi^{-1}, delta * eps^{-r})`, but
//! `eps^{-r}` would force a fresh G2 scalar multiplication *and* a fresh
//! Miller-loop preparation every round; moving the challenge exponent to
//! the G1 side (`e(psi^{-1}, eps^{-r}) = e(psi^{r}, eps)`) folds it into
//! the `eps` term, so every G2 point in the product is fixed across
//! audits and served prepared from the [`Auditor`]'s bounded
//! [`PreparedG2Cache`](crate::cache::PreparedG2Cache):
//!
//! * Eq. (1): `e(sigma, g2) * e(g1^{-y} * chi^{-1} * psi^{r}, eps) * e(psi^{-1}, delta) == 1`
//! * Eq. (2): `e(sigma^zeta, g2) * e(g1^{-y'} * chi^{-zeta} * psi^{zeta r}, eps) * e(psi^{-zeta}, delta) == R^{-1}`
//!
//! with `chi = prod H(name || i)^{c_i}` recomputed from public data.
//!
//! The entry points are methods on [`Auditor`], which owns the caches;
//! the free [`verify_plain`] / [`verify_private`] wrappers run the same
//! check stateless (cold caches) for one-shot use.

use dsaudit_algebra::endo::msm_g1;
use dsaudit_algebra::g1::{G1Affine, G1Projective};
use dsaudit_algebra::pairing::{multi_pairing_prepared, G2Prepared};
use dsaudit_algebra::Fr;
use dsaudit_crypto::prf::h_prime;

use crate::auditor::Auditor;
use crate::cache::ChiCache;
use crate::challenge::Challenge;
use crate::error::{DsAuditError, RejectReason, Verdict};
use crate::keys::PublicKey;
use crate::par::par_map;
use crate::proof::{PlainProof, PrivateProof};

/// Public metadata the verifier (smart contract) holds about a file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileMeta {
    /// On-chain file identifier.
    pub name: Fr,
    /// Number of chunks `d`.
    pub num_chunks: usize,
    /// Challenged chunks per audit `k`.
    pub k: usize,
}

impl FileMeta {
    /// Rejects metadata no audit can run against.
    ///
    /// # Errors
    /// [`DsAuditError::BadMeta`] on zero chunks or a zero challenge
    /// count.
    pub fn validate(&self) -> Result<(), DsAuditError> {
        if self.num_chunks == 0 {
            return Err(DsAuditError::BadMeta("file has zero chunks"));
        }
        if self.k == 0 {
            return Err(DsAuditError::BadMeta("challenge count k is zero"));
        }
        Ok(())
    }
}

/// Computes `chi = prod_{(i, c_i)} H(name || i)^{c_i}` from public data,
/// with the hash-to-curve points served from the given [`ChiCache`].
pub fn compute_chi(cache: &ChiCache, name: Fr, set: &[(u64, Fr)]) -> G1Projective {
    let _span = dsaudit_obs::span("core.compute_chi");
    let hashes: Vec<G1Affine> = par_map(set.len(), |j| cache.index_oracle(name, set[j].0));
    let coeffs: Vec<Fr> = set.iter().map(|(_, c)| *c).collect();
    msm_g1(&hashes, &coeffs)
}

/// Eq. (1) against the caches of `auditor`.
pub(crate) fn verify_plain_with(
    auditor: &Auditor,
    pk: &PublicKey,
    meta: &FileMeta,
    challenge: &Challenge,
    proof: &PlainProof,
) -> Result<Verdict, DsAuditError> {
    meta.validate()?;
    let _span = dsaudit_obs::span("core.verify_plain");
    let set = {
        let _expand = dsaudit_obs::span("core.challenge_expand");
        challenge.expand(meta.num_chunks, meta.k)
    };
    dsaudit_obs::observe("core.challenge_set", set.len() as u64);
    let chi = compute_chi(auditor.chi_cache(), meta.name, &set);
    // g1^{-y} * chi^{-1} * psi^{r}, with the fixed-base term served from
    // the shared generator table
    let left_eps = G1Projective::generator_table()
        .mul(-proof.y)
        .add(&chi.neg())
        .add(&proof.psi.mul(challenge.r))
        .to_affine();
    let psi_neg = proof.psi.neg();
    let eps_p = auditor.g2_cache().prepared(&pk.eps);
    let delta_p = auditor.g2_cache().prepared(&pk.delta);
    let holds = multi_pairing_prepared(&[
        (&proof.sigma, G2Prepared::generator()),
        (&left_eps, eps_p.as_ref()),
        (&psi_neg, delta_p.as_ref()),
    ])
    .is_identity();
    dsaudit_obs::counter_inc(if holds { "core.verdict.accept" } else { "core.verdict.reject" });
    Ok(Verdict::from_equation(holds, RejectReason::Equation1))
}

/// Eq. (2) against the caches of `auditor`.
pub(crate) fn verify_private_with(
    auditor: &Auditor,
    pk: &PublicKey,
    meta: &FileMeta,
    challenge: &Challenge,
    proof: &PrivateProof,
) -> Result<Verdict, DsAuditError> {
    meta.validate()?;
    let _span = dsaudit_obs::span("core.verify_private");
    let set = {
        let _expand = dsaudit_obs::span("core.challenge_expand");
        challenge.expand(meta.num_chunks, meta.k)
    };
    dsaudit_obs::observe("core.challenge_set", set.len() as u64);
    let chi = compute_chi(auditor.chi_cache(), meta.name, &set);
    let zeta = h_prime(&proof.r_commit);
    let sigma_zeta = proof.sigma.mul(zeta);
    // g1^{-y'} * chi^{-zeta} * psi^{zeta r}, fixed-base term off the
    // shared generator table
    let left_eps = G1Projective::generator_table()
        .mul(-proof.y_prime)
        .add(&chi.mul(zeta).neg())
        .add(&proof.psi.mul(zeta * challenge.r));
    let psi_neg_zeta = proof.psi.mul(-zeta);
    // one shared inversion for all three affine conversions
    let affine = dsaudit_algebra::curve::Projective::batch_to_affine(&[
        sigma_zeta,
        left_eps,
        psi_neg_zeta,
    ]);
    let eps_p = auditor.g2_cache().prepared(&pk.eps);
    let delta_p = auditor.g2_cache().prepared(&pk.delta);
    let product = multi_pairing_prepared(&[
        (&affine[0], G2Prepared::generator()),
        (&affine[1], eps_p.as_ref()),
        (&affine[2], delta_p.as_ref()),
    ]);
    let holds = product == proof.r_commit.invert();
    dsaudit_obs::counter_inc(if holds { "core.verdict.accept" } else { "core.verdict.reject" });
    Ok(Verdict::from_equation(holds, RejectReason::Equation2))
}

/// One-shot verification of the non-private response against Eq. (1),
/// with cold caches. Prefer [`Auditor::verify_plain`] for repeated
/// rounds — the handle keeps its hash-to-curve and prepared-G2 caches
/// warm across audits.
///
/// # Errors
/// [`DsAuditError::BadMeta`] on unusable metadata; a failing proof is
/// `Ok(Verdict::Reject(..))`, not an error.
pub fn verify_plain(
    pk: &PublicKey,
    meta: &FileMeta,
    challenge: &Challenge,
    proof: &PlainProof,
) -> Result<Verdict, DsAuditError> {
    Auditor::ephemeral().verify_plain(pk, meta, challenge, proof)
}

/// One-shot verification of the privacy-assured response against
/// Eq. (2), with cold caches. Prefer [`Auditor::verify_private`] for
/// repeated rounds.
///
/// # Errors
/// [`DsAuditError::BadMeta`] on unusable metadata; a failing proof is
/// `Ok(Verdict::Reject(..))`, not an error.
pub fn verify_private(
    pk: &PublicKey,
    meta: &FileMeta,
    challenge: &Challenge,
    proof: &PrivateProof,
) -> Result<Verdict, DsAuditError> {
    Auditor::ephemeral().verify_private(pk, meta, challenge, proof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::EncodedFile;
    use crate::keys::keygen;
    use crate::params::AuditParams;
    use crate::prove::Prover;
    use crate::tag::generate_tags;
    use dsaudit_algebra::field::Field;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xe51f)
    }

    struct Env {
        pk: PublicKey,
        file: EncodedFile,
        tags: Vec<dsaudit_algebra::g1::G1Affine>,
        meta: FileMeta,
    }

    fn setup(s: usize, k: usize, len: usize) -> Env {
        let mut rng = rng();
        let params = AuditParams::new(s, k).unwrap();
        let (sk, pk) = keygen(&mut rng, &params);
        let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
        let file = EncodedFile::encode(&mut rng, &data, params);
        let tags = generate_tags(&sk, &file);
        let meta = FileMeta {
            name: file.name,
            num_chunks: file.num_chunks(),
            k,
        };
        Env {
            pk,
            file,
            tags,
            meta,
        }
    }

    fn accepts_private(env: &Env, ch: &Challenge, proof: &PrivateProof) -> bool {
        verify_private(&env.pk, &env.meta, ch, proof)
            .expect("valid meta")
            .accepted()
    }

    #[test]
    fn honest_plain_proof_verifies() {
        let env = setup(5, 4, 2000);
        let mut rng = rng();
        let prover = Prover::new(&env.pk, &env.file, &env.tags).unwrap();
        let auditor = Auditor::new();
        for _ in 0..3 {
            let ch = Challenge::random(&mut rng);
            let proof = prover.prove_plain(&ch);
            assert!(auditor
                .verify_plain(&env.pk, &env.meta, &ch, &proof)
                .unwrap()
                .accepted());
        }
    }

    #[test]
    fn honest_private_proof_verifies() {
        let env = setup(5, 4, 2000);
        let mut rng = rng();
        let prover = Prover::new(&env.pk, &env.file, &env.tags).unwrap();
        let auditor = Auditor::new();
        for _ in 0..3 {
            let ch = Challenge::random(&mut rng);
            let proof = prover.prove_private(&mut rng, &ch);
            assert!(auditor
                .verify_private(&env.pk, &env.meta, &ch, &proof)
                .unwrap()
                .accepted());
        }
    }

    #[test]
    fn corrupted_data_fails_both_equations() {
        let env = setup(5, 4, 2000);
        let mut rng = rng();
        let mut bad_file = env.file.clone();
        bad_file.corrupt_block(0, 0);
        let prover = Prover::new(&env.pk, &bad_file, &env.tags).unwrap();
        // challenge until chunk 0 is covered (k=4 of d; loop to be sure)
        let mut hit = false;
        for _ in 0..20 {
            let ch = Challenge::random(&mut rng);
            let covers = ch
                .expand(env.meta.num_chunks, env.meta.k)
                .iter()
                .any(|(i, _)| *i == 0);
            let plain = verify_plain(&env.pk, &env.meta, &ch, &prover.prove_plain(&ch)).unwrap();
            let private = verify_private(
                &env.pk,
                &env.meta,
                &ch,
                &prover.prove_private(&mut rng, &ch),
            )
            .unwrap();
            if covers {
                hit = true;
                assert_eq!(
                    plain,
                    Verdict::Reject(RejectReason::Equation1),
                    "corrupted chunk must fail Eq.(1) with its reason"
                );
                assert_eq!(
                    private,
                    Verdict::Reject(RejectReason::Equation2),
                    "corrupted chunk must fail Eq.(2) with its reason"
                );
            } else {
                assert!(
                    plain.accepted() && private.accepted(),
                    "untouched chunks must still verify"
                );
            }
        }
        assert!(hit, "no challenge covered the corrupted chunk");
    }

    #[test]
    fn dropped_chunk_detected() {
        // 900 bytes -> 30 blocks -> d = 8 chunks at s = 4, so with k = 8
        // every chunk is challenged every round.
        let env = setup(4, 8, 900);
        assert!(env.meta.num_chunks <= env.meta.k, "premise: full coverage");
        let mut rng = rng();
        let mut bad_file = env.file.clone();
        bad_file.drop_chunk(1);
        let prover = Prover::new(&env.pk, &bad_file, &env.tags).unwrap();
        let ch = Challenge::random(&mut rng);
        assert!(!accepts_private(
            &env,
            &ch,
            &prover.prove_private(&mut rng, &ch)
        ));
    }

    #[test]
    fn wrong_challenge_rejected() {
        let env = setup(5, 4, 2000);
        let mut rng = rng();
        let prover = Prover::new(&env.pk, &env.file, &env.tags).unwrap();
        let ch1 = Challenge::random(&mut rng);
        let ch2 = Challenge::random(&mut rng);
        let proof = prover.prove_private(&mut rng, &ch1);
        assert!(!accepts_private(&env, &ch2, &proof));
    }

    #[test]
    fn tampered_proof_fields_rejected() {
        let env = setup(5, 4, 2000);
        let mut rng = rng();
        let prover = Prover::new(&env.pk, &env.file, &env.tags).unwrap();
        let ch = Challenge::random(&mut rng);
        let good = prover.prove_private(&mut rng, &ch);

        let mut bad = good;
        bad.y_prime += Fr::one();
        assert!(!accepts_private(&env, &ch, &bad));

        let mut bad = good;
        bad.sigma = bad.psi;
        assert!(!accepts_private(&env, &ch, &bad));

        let mut bad = good;
        bad.r_commit = bad.r_commit.mul(&dsaudit_algebra::Gt::generator());
        assert!(!accepts_private(&env, &ch, &bad));
    }

    #[test]
    fn bad_meta_is_an_error_not_a_reject() {
        let env = setup(5, 4, 2000);
        let mut rng = rng();
        let prover = Prover::new(&env.pk, &env.file, &env.tags).unwrap();
        let ch = Challenge::random(&mut rng);
        let proof = prover.prove_private(&mut rng, &ch);
        let mut bad_meta = env.meta;
        bad_meta.num_chunks = 0;
        assert!(matches!(
            verify_private(&env.pk, &bad_meta, &ch, &proof),
            Err(DsAuditError::BadMeta(_))
        ));
        let mut bad_meta = env.meta;
        bad_meta.k = 0;
        assert!(matches!(
            verify_plain(&env.pk, &bad_meta, &ch, &prover.prove_plain(&ch)),
            Err(DsAuditError::BadMeta(_))
        ));
    }

    #[test]
    fn chi_cache_hits_on_repeated_rounds() {
        let mut rng = rng();
        let auditor = Auditor::new();
        let name = Fr::random(&mut rng);
        let set: Vec<(u64, Fr)> = (0..6)
            .map(|i| (i as u64 * 3 + 1, Fr::random(&mut rng)))
            .collect();
        let first = compute_chi(auditor.chi_cache(), name, &set);
        let s1 = auditor.chi_cache().stats();
        let second = compute_chi(auditor.chi_cache(), name, &set);
        let s2 = auditor.chi_cache().stats();
        assert_eq!(first, second, "cache must not change the result");
        assert_eq!(s1.misses, set.len() as u64, "first round misses");
        assert!(
            s2.hits - s1.hits >= set.len() as u64,
            "a repeated round must hit the cache for every challenged index \
             (hits went {} -> {}, misses {})",
            s1.hits,
            s2.hits,
            s2.misses
        );
    }

    #[test]
    fn replayed_proof_fails_fresh_round() {
        // A proof for round t must not satisfy round t+1 (fresh r).
        let env = setup(5, 4, 2000);
        let mut rng = rng();
        let prover = Prover::new(&env.pk, &env.file, &env.tags).unwrap();
        let ch1 = Challenge::random(&mut rng);
        let proof = prover.prove_plain(&ch1);
        let mut beacon = [9u8; 48];
        beacon[47] ^= 0xff;
        let ch2 = Challenge::from_beacon(&beacon);
        assert!(!verify_plain(&env.pk, &env.meta, &ch2, &proof)
            .unwrap()
            .accepted());
    }
}
