//! On-chain proof verification (§V-B Audit / §V-D step 2).
//!
//! Both verification equations are evaluated as a single product of three
//! pairings (one shared Miller loop, one shared final exponentiation).
//! The paper writes the KZG term as `e(psi^{-1}, delta * eps^{-r})`, but
//! `eps^{-r}` would force a fresh G2 scalar multiplication *and* a fresh
//! Miller-loop preparation every round; moving the challenge exponent to
//! the G1 side (`e(psi^{-1}, eps^{-r}) = e(psi^{r}, eps)`) folds it into
//! the `eps` term, so every G2 point in the product is fixed across
//! audits and served prepared from [`crate::prepared`]:
//!
//! * Eq. (1): `e(sigma, g2) * e(g1^{-y} * chi^{-1} * psi^{r}, eps) * e(psi^{-1}, delta) == 1`
//! * Eq. (2): `e(sigma^zeta, g2) * e(g1^{-y'} * chi^{-zeta} * psi^{zeta r}, eps) * e(psi^{-zeta}, delta) == R^{-1}`
//!
//! with `chi = prod H(name || i)^{c_i}` recomputed from public data.

use dsaudit_algebra::endo::msm_g1;
use dsaudit_algebra::g1::{G1Affine, G1Projective};
use dsaudit_algebra::pairing::{multi_pairing_prepared, G2Prepared};
use dsaudit_algebra::Fr;
use dsaudit_crypto::prf::h_prime;

use crate::challenge::Challenge;
use crate::keys::PublicKey;
use crate::par::par_map;
use crate::prepared;
use crate::proof::{PlainProof, PrivateProof};

/// Public metadata the verifier (smart contract) holds about a file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileMeta {
    /// On-chain file identifier.
    pub name: Fr,
    /// Number of chunks `d`.
    pub num_chunks: usize,
    /// Challenged chunks per audit `k`.
    pub k: usize,
}

/// Verifier-side memoization of the index oracle `H(name || i)`.
///
/// Audit challenges re-sample `k` chunks of the same small file every
/// round, so across rounds the verifier keeps recomputing the same
/// hash-to-curve points (each costing a few hundred field operations in
/// square-root candidates). This process-wide cache keyed by `(name, i)`
/// makes every repeated round hit warm entries — the ROADMAP item for
/// cutting on-chain simulation time of multi-round contracts.
pub mod chi_cache {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    use dsaudit_algebra::g1::G1Affine;
    use dsaudit_algebra::Fr;
    use dsaudit_crypto::prf::index_oracle;

    /// Upper bound on resident entries (~100 bytes each). When the map
    /// would grow past this it is cleared wholesale — simpler than an
    /// eviction order, and the bound is far beyond any realistic audit
    /// population (a million distinct `(file, chunk)` pairs).
    const MAX_ENTRIES: usize = 1 << 20;

    static HITS: AtomicU64 = AtomicU64::new(0);
    static MISSES: AtomicU64 = AtomicU64::new(0);

    fn map() -> &'static Mutex<HashMap<(Fr, u64), G1Affine>> {
        static MAP: OnceLock<Mutex<HashMap<(Fr, u64), G1Affine>>> = OnceLock::new();
        MAP.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// `H(name || i)`, served from the cache when warm. Misses compute
    /// outside the lock (two racing verifiers may both compute a fresh
    /// entry, which is benign — the oracle is deterministic).
    pub fn index_oracle_cached(name: Fr, i: u64) -> G1Affine {
        if let Some(p) = map().lock().expect("chi cache lock").get(&(name, i)) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return *p;
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        let p = index_oracle(name, i);
        let mut m = map().lock().expect("chi cache lock");
        if m.len() >= MAX_ENTRIES {
            m.clear();
        }
        m.insert((name, i), p);
        p
    }

    /// `(hits, misses)` counters since process start, for tests and the
    /// bench harness.
    pub fn stats() -> (u64, u64) {
        (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
    }
}

/// Computes `chi = prod_{(i, c_i)} H(name || i)^{c_i}` from public data,
/// with the hash-to-curve points served from [`chi_cache`].
pub fn compute_chi(name: Fr, set: &[(u64, Fr)]) -> G1Projective {
    let hashes: Vec<G1Affine> =
        par_map(set.len(), |j| chi_cache::index_oracle_cached(name, set[j].0));
    let coeffs: Vec<Fr> = set.iter().map(|(_, c)| *c).collect();
    msm_g1(&hashes, &coeffs)
}

/// Verifies the non-private response against Eq. (1).
pub fn verify_plain(
    pk: &PublicKey,
    meta: &FileMeta,
    challenge: &Challenge,
    proof: &PlainProof,
) -> bool {
    let set = challenge.expand(meta.num_chunks, meta.k);
    let chi = compute_chi(meta.name, &set);
    // g1^{-y} * chi^{-1} * psi^{r}, with the fixed-base term served from
    // the shared generator table
    let left_eps = G1Projective::generator_table()
        .mul(-proof.y)
        .add(&chi.neg())
        .add(&proof.psi.mul(challenge.r))
        .to_affine();
    let psi_neg = proof.psi.neg();
    let eps_p = prepared::prepared(&pk.eps);
    let delta_p = prepared::prepared(&pk.delta);
    multi_pairing_prepared(&[
        (&proof.sigma, G2Prepared::generator()),
        (&left_eps, eps_p.as_ref()),
        (&psi_neg, delta_p.as_ref()),
    ])
    .is_identity()
}

/// Verifies the privacy-assured response against Eq. (2) — the on-chain
/// check of the paper's main protocol.
pub fn verify_private(
    pk: &PublicKey,
    meta: &FileMeta,
    challenge: &Challenge,
    proof: &PrivateProof,
) -> bool {
    let set = challenge.expand(meta.num_chunks, meta.k);
    let chi = compute_chi(meta.name, &set);
    let zeta = h_prime(&proof.r_commit);
    let sigma_zeta = proof.sigma.mul(zeta);
    // g1^{-y'} * chi^{-zeta} * psi^{zeta r}, fixed-base term off the
    // shared generator table
    let left_eps = G1Projective::generator_table()
        .mul(-proof.y_prime)
        .add(&chi.mul(zeta).neg())
        .add(&proof.psi.mul(zeta * challenge.r));
    let psi_neg_zeta = proof.psi.mul(-zeta);
    // one shared inversion for all three affine conversions
    let affine = dsaudit_algebra::curve::Projective::batch_to_affine(&[
        sigma_zeta,
        left_eps,
        psi_neg_zeta,
    ]);
    let eps_p = prepared::prepared(&pk.eps);
    let delta_p = prepared::prepared(&pk.delta);
    let product = multi_pairing_prepared(&[
        (&affine[0], G2Prepared::generator()),
        (&affine[1], eps_p.as_ref()),
        (&affine[2], delta_p.as_ref()),
    ]);
    product == proof.r_commit.invert()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::EncodedFile;
    use dsaudit_algebra::field::Field;
    use crate::keys::keygen;
    use crate::params::AuditParams;
    use crate::prove::Prover;
    use crate::tag::generate_tags;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xe51f)
    }

    struct Env {
        pk: PublicKey,
        file: EncodedFile,
        tags: Vec<dsaudit_algebra::g1::G1Affine>,
        meta: FileMeta,
    }

    fn setup(s: usize, k: usize, len: usize) -> Env {
        let mut rng = rng();
        let params = AuditParams::new(s, k).unwrap();
        let (sk, pk) = keygen(&mut rng, &params);
        let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
        let file = EncodedFile::encode(&mut rng, &data, params);
        let tags = generate_tags(&sk, &file);
        let meta = FileMeta {
            name: file.name,
            num_chunks: file.num_chunks(),
            k,
        };
        Env {
            pk,
            file,
            tags,
            meta,
        }
    }

    #[test]
    fn honest_plain_proof_verifies() {
        let env = setup(5, 4, 2000);
        let mut rng = rng();
        let prover = Prover::new(&env.pk, &env.file, &env.tags);
        for _ in 0..3 {
            let ch = Challenge::random(&mut rng);
            let proof = prover.prove_plain(&ch);
            assert!(verify_plain(&env.pk, &env.meta, &ch, &proof));
        }
    }

    #[test]
    fn honest_private_proof_verifies() {
        let env = setup(5, 4, 2000);
        let mut rng = rng();
        let prover = Prover::new(&env.pk, &env.file, &env.tags);
        for _ in 0..3 {
            let ch = Challenge::random(&mut rng);
            let proof = prover.prove_private(&mut rng, &ch);
            assert!(verify_private(&env.pk, &env.meta, &ch, &proof));
        }
    }

    #[test]
    fn corrupted_data_fails_both_equations() {
        let env = setup(5, 4, 2000);
        let mut rng = rng();
        let mut bad_file = env.file.clone();
        bad_file.corrupt_block(0, 0);
        let prover = Prover::new(&env.pk, &bad_file, &env.tags);
        // challenge until chunk 0 is covered (k=4 of d; loop to be sure)
        let mut hit = false;
        for _ in 0..20 {
            let ch = Challenge::random(&mut rng);
            let covers = ch
                .expand(env.meta.num_chunks, env.meta.k)
                .iter()
                .any(|(i, _)| *i == 0);
            let plain_ok = verify_plain(&env.pk, &env.meta, &ch, &prover.prove_plain(&ch));
            let priv_ok = verify_private(
                &env.pk,
                &env.meta,
                &ch,
                &prover.prove_private(&mut rng, &ch),
            );
            if covers {
                hit = true;
                assert!(!plain_ok, "corrupted chunk must fail Eq.(1)");
                assert!(!priv_ok, "corrupted chunk must fail Eq.(2)");
            } else {
                assert!(plain_ok && priv_ok, "untouched chunks must still verify");
            }
        }
        assert!(hit, "no challenge covered the corrupted chunk");
    }

    #[test]
    fn dropped_chunk_detected() {
        // 900 bytes -> 30 blocks -> d = 8 chunks at s = 4, so with k = 8
        // every chunk is challenged every round.
        let env = setup(4, 8, 900);
        assert!(env.meta.num_chunks <= env.meta.k, "premise: full coverage");
        let mut rng = rng();
        let mut bad_file = env.file.clone();
        bad_file.drop_chunk(1);
        let prover = Prover::new(&env.pk, &bad_file, &env.tags);
        let ch = Challenge::random(&mut rng);
        assert!(!verify_private(
            &env.pk,
            &env.meta,
            &ch,
            &prover.prove_private(&mut rng, &ch)
        ));
    }

    #[test]
    fn wrong_challenge_rejected() {
        let env = setup(5, 4, 2000);
        let mut rng = rng();
        let prover = Prover::new(&env.pk, &env.file, &env.tags);
        let ch1 = Challenge::random(&mut rng);
        let ch2 = Challenge::random(&mut rng);
        let proof = prover.prove_private(&mut rng, &ch1);
        assert!(!verify_private(&env.pk, &env.meta, &ch2, &proof));
    }

    #[test]
    fn tampered_proof_fields_rejected() {
        let env = setup(5, 4, 2000);
        let mut rng = rng();
        let prover = Prover::new(&env.pk, &env.file, &env.tags);
        let ch = Challenge::random(&mut rng);
        let good = prover.prove_private(&mut rng, &ch);

        let mut bad = good;
        bad.y_prime += Fr::one();
        assert!(!verify_private(&env.pk, &env.meta, &ch, &bad));

        let mut bad = good;
        bad.sigma = bad.psi;
        assert!(!verify_private(&env.pk, &env.meta, &ch, &bad));

        let mut bad = good;
        bad.r_commit = bad.r_commit.mul(&dsaudit_algebra::Gt::generator());
        assert!(!verify_private(&env.pk, &env.meta, &ch, &bad));
    }

    #[test]
    fn chi_cache_hits_on_repeated_rounds() {
        let mut rng = rng();
        // a name no other test uses, so the first round may miss freely
        let name = Fr::random(&mut rng) + Fr::from_u64(0xc4c4e);
        let set: Vec<(u64, Fr)> = (0..6)
            .map(|i| (i as u64 * 3 + 1, Fr::random(&mut rng)))
            .collect();
        let first = compute_chi(name, &set);
        let (h1, _) = chi_cache::stats();
        let second = compute_chi(name, &set);
        let (h2, m2) = chi_cache::stats();
        assert_eq!(first, second, "cache must not change the result");
        assert!(
            h2 - h1 >= set.len() as u64,
            "a repeated round must hit the cache for every challenged index \
             (hits went {h1} -> {h2}, misses {m2})"
        );
    }

    #[test]
    fn replayed_proof_fails_fresh_round() {
        // A proof for round t must not satisfy round t+1 (fresh r).
        let env = setup(5, 4, 2000);
        let mut rng = rng();
        let prover = Prover::new(&env.pk, &env.file, &env.tags);
        let ch1 = Challenge::random(&mut rng);
        let proof = prover.prove_plain(&ch1);
        let mut beacon = [9u8; 48];
        beacon[47] ^= 0xff;
        let ch2 = Challenge::from_beacon(&beacon);
        assert!(!verify_plain(&env.pk, &env.meta, &ch2, &proof));
    }
}
