//! The auditor role handle: challenge issuance and proof verification
//! with handle-owned caches.
//!
//! An [`Auditor`] is the on-chain verifier's off-chain embodiment: it
//! issues beacon-derived challenges, checks single proofs against the
//! two verification equations, and settles whole rounds through the
//! batched pairing product (§VII-D). The two memoizations that make
//! repeated rounds cheap — the `(name, i)` hash-to-curve cache behind
//! `chi` and the prepared-G2 line-coefficient cache — are **owned by the
//! handle** (bounded, FIFO-evicting, with hit/miss counters; see
//! [`crate::cache`]) instead of process-wide statics, so a million-file
//! deployment can shard auditors and drop their memory with them.

#![deny(missing_docs)]

use crate::batch::{verify_private_batch_with, BatchItem};
use crate::cache::{CacheStats, ChiCache, PreparedG2Cache};
use crate::challenge::Challenge;
use crate::error::{DsAuditError, Verdict};
use crate::keys::PublicKey;
use crate::proof::{PlainProof, PrivateProof};
use crate::session::AuditSession;
use crate::verify::{verify_plain_with, verify_private_with, FileMeta};

/// Verifier handle owning the audit caches.
pub struct Auditor {
    chi: ChiCache,
    g2: PreparedG2Cache,
}

impl Auditor {
    /// An auditor with default cache bounds.
    pub fn new() -> Self {
        Self {
            chi: ChiCache::new(),
            g2: PreparedG2Cache::new(),
        }
    }

    /// An auditor with explicit cache bounds (entries, not bytes).
    ///
    /// # Panics
    /// Panics if either capacity is zero.
    pub fn with_capacities(chi_entries: usize, g2_entries: usize) -> Self {
        Self {
            chi: ChiCache::with_capacity(chi_entries),
            g2: PreparedG2Cache::with_capacity(g2_entries),
        }
    }

    /// A throwaway auditor for the stateless one-shot wrappers: caches
    /// sized for a single round (one file's challenged set, three G2
    /// points).
    pub(crate) fn ephemeral() -> Self {
        Self::with_capacities(512, 8)
    }

    /// The hash-to-curve cache (for [`crate::verify::compute_chi`]).
    pub fn chi_cache(&self) -> &ChiCache {
        &self.chi
    }

    /// The prepared-G2 cache.
    pub fn g2_cache(&self) -> &PreparedG2Cache {
        &self.g2
    }

    /// `(chi, prepared-G2)` hit/miss counters since creation.
    pub fn cache_stats(&self) -> (CacheStats, CacheStats) {
        (self.chi.stats(), self.g2.stats())
    }

    /// Derives a round challenge from 48 bytes of beacon output.
    ///
    /// This is the *only* challenge-derivation path: challenges are a
    /// pure function of the chain's public randomness, so any verifier
    /// holding the same beacon round derives byte-identical challenges
    /// (no per-auditor randomness to disagree about, nothing for a
    /// malicious auditor to bias). Tests that need an arbitrary
    /// challenge without a beacon use [`Challenge::random`] directly.
    pub fn challenge_from_beacon(&self, beacon: &[u8; 48]) -> Challenge {
        Challenge::from_beacon(beacon)
    }

    /// Opens a typed audit session over one file (see
    /// [`crate::session`]): the session enforces
    /// challenge → response → verdict ordering at compile time and round
    /// agreement by typed error.
    ///
    /// # Errors
    /// [`DsAuditError::BadMeta`] when the metadata cannot be audited.
    pub fn begin_session<'a>(
        &'a self,
        pk: &'a PublicKey,
        meta: FileMeta,
    ) -> Result<AuditSession<'a>, DsAuditError> {
        meta.validate()?;
        Ok(AuditSession::new(self, pk, meta))
    }

    /// Verifies the non-private response against Eq. (1).
    ///
    /// # Errors
    /// [`DsAuditError::BadMeta`] on unusable metadata; a failing proof
    /// is `Ok(Verdict::Reject(..))`, not an error.
    pub fn verify_plain(
        &self,
        pk: &PublicKey,
        meta: &FileMeta,
        challenge: &Challenge,
        proof: &PlainProof,
    ) -> Result<Verdict, DsAuditError> {
        verify_plain_with(self, pk, meta, challenge, proof)
    }

    /// Verifies the privacy-assured response against Eq. (2) — the
    /// on-chain check of the paper's main protocol.
    ///
    /// # Errors
    /// [`DsAuditError::BadMeta`] on unusable metadata; a failing proof
    /// is `Ok(Verdict::Reject(..))`, not an error.
    pub fn verify_private(
        &self,
        pk: &PublicKey,
        meta: &FileMeta,
        challenge: &Challenge,
        proof: &PrivateProof,
    ) -> Result<Verdict, DsAuditError> {
        verify_private_with(self, pk, meta, challenge, proof)
    }

    /// Verifies a whole round's proofs with one shared Miller loop and
    /// final exponentiation (§VII-D). Equivalent to verifying each item
    /// individually (soundness error `~1/r` from the random weights); an
    /// empty batch is trivially accepted.
    ///
    /// # Errors
    /// [`DsAuditError::BadMeta`] when any item's metadata is unusable; a
    /// failing batch is `Ok(Verdict::Reject(BatchCombination))`.
    pub fn verify_private_batch<R: rand::RngCore + ?Sized>(
        &self,
        rng: &mut R,
        items: &[BatchItem<'_>],
    ) -> Result<Verdict, DsAuditError> {
        verify_private_batch_with(self, rng, items)
    }
}

impl Default for Auditor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::EncodedFile;
    use crate::keys::keygen;
    use crate::params::AuditParams;
    use crate::prove::Prover;
    use crate::tag::generate_tags;
    use rand::SeedableRng;

    #[test]
    fn handle_owned_caches_warm_across_rounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xa0d17);
        let params = AuditParams::new(4, 3).unwrap();
        let (sk, pk) = keygen(&mut rng, &params);
        let file = EncodedFile::encode(&mut rng, &[5u8; 700], params);
        let tags = generate_tags(&sk, &file);
        let meta = FileMeta {
            name: file.name,
            num_chunks: file.num_chunks(),
            k: params.k,
        };
        let prover = Prover::new(&pk, &file, &tags).unwrap();
        let auditor = Auditor::new();
        for _ in 0..3 {
            let ch = Challenge::random(&mut rng);
            let proof = prover.prove_private(&mut rng, &ch);
            assert!(auditor
                .verify_private(&pk, &meta, &ch, &proof)
                .unwrap()
                .accepted());
        }
        let (chi, g2) = auditor.cache_stats();
        assert!(chi.hits > 0, "repeated rounds must hit the chi cache");
        assert_eq!(g2.misses, 2, "eps and delta prepared exactly once");
        assert_eq!(g2.hits, 4, "two warm lookups per later round");
        // a second auditor starts cold: its caches are its own
        let other = Auditor::new();
        let (chi2, g22) = other.cache_stats();
        assert_eq!((chi2.hits, g22.hits), (0, 0));
    }
}
