//! Challenge generation and expansion (§V-B "Challenge").
//!
//! The smart contract publishes 48 bytes of beacon randomness
//! `(C1, C2, r)`; prover and verifier deterministically expand it into
//! `k` distinct chunk indices `{i}` via the PRP `pi(C1, .)` and `k`
//! coefficients `{c_i}` via the PRF `f(C2, .)`, plus the KZG evaluation
//! point `r`.

use dsaudit_algebra::Fr;
use dsaudit_crypto::hmac::HmacKey;
use dsaudit_crypto::prf::prf_fr_keyed;
use dsaudit_crypto::prp::SmallDomainPrp;
use dsaudit_crypto::sha256::sha256_wide;

use crate::codec::{ByteReader, Codec};
use crate::error::DsAuditError;

/// The 48-byte on-chain challenge of one audit round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Challenge {
    /// Seed for the index PRP `pi`.
    pub c1: [u8; 16],
    /// Seed for the coefficient PRF `f`.
    pub c2: [u8; 16],
    /// KZG evaluation point (derived from 16 beacon bytes).
    pub r: Fr,
}

impl Challenge {
    /// Derives a challenge from 48 bytes of beacon output.
    pub fn from_beacon(beacon: &[u8; 48]) -> Self {
        let mut c1 = [0u8; 16];
        let mut c2 = [0u8; 16];
        c1.copy_from_slice(&beacon[..16]);
        c2.copy_from_slice(&beacon[16..32]);
        // expand the 16-byte r-seed into a full uniform field element
        let mut seed = Vec::with_capacity(28);
        seed.extend_from_slice(b"dsaudit/chal/r/");
        seed.extend_from_slice(&beacon[32..]);
        let r = Fr::from_bytes_wide(&sha256_wide(&seed));
        Self { c1, c2, r }
    }

    /// Samples a challenge from an RNG (stand-in for the beacon in tests
    /// and benches).
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut beacon = [0u8; 48];
        rng.fill_bytes(&mut beacon);
        Self::from_beacon(&beacon)
    }

    /// Serializes to the 48-byte on-chain format. (The `r` component is
    /// stored as its 16-byte seed on chain; this helper re-serializes the
    /// logical challenge for gas accounting, using the first 16 bytes of
    /// the field element as a faithful size model.)
    pub fn on_chain_bytes(&self) -> usize {
        48
    }

    /// Expands the challenge against a file of `d` chunks into the
    /// challenged set `{(i, c_i)}` with `k` distinct indices.
    ///
    /// When `k >= d` every chunk is challenged (small files), matching
    /// the protocol's behavior of clamping rather than repeating indices.
    ///
    /// Constant-time contract: expansion is branch-free in the seeds —
    /// which chunks an audit samples must not leak before settlement, so
    /// no control flow here may depend on `c1`/`c2`-derived values.
    /// Enforced by the `ct-branch` lint via the annotation below.
    // lint:ct
    pub fn expand(&self, d: usize, k: usize) -> Vec<(u64, Fr)> {
        let k_eff = k.min(d);
        let prp = SmallDomainPrp::new(&self.c1, d as u64);
        let indices = prp.sample_distinct(k_eff);
        let prf_key = HmacKey::new(&self.c2);
        indices
            .into_iter()
            .enumerate()
            .map(|(j, i)| (i, prf_fr_keyed(&prf_key, j as u64)))
            .collect()
    }
}

/// The expanded wire form of a challenge: `c1 (16 B) || c2 (16 B) ||
/// r (32 B canonical scalar)` — 64 bytes. (The 48-byte on-chain form
/// stores `r` as its beacon seed; this codec carries the *logical*
/// challenge between off-chain actors, where `r` is already expanded.)
impl Codec for Challenge {
    const TYPE_NAME: &'static str = "Challenge";

    fn encoded_len(&self) -> usize {
        64
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.c1);
        out.extend_from_slice(&self.c2);
        self.r.encode_into(out);
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, DsAuditError> {
        let c1 = r.array::<16>("c1")?;
        let c2 = r.array::<16>("c2")?;
        let r_bytes = r.array::<32>("r")?;
        let r_scalar = Fr::from_bytes_be(&r_bytes).ok_or_else(|| r.malformed("r"))?;
        Ok(Self {
            c1,
            c2,
            r: r_scalar,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn codec_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xc4a2);
        let ch = Challenge::random(&mut rng);
        let bytes = ch.encode();
        assert_eq!(bytes.len(), 64);
        assert_eq!(Challenge::decode(&bytes).unwrap(), ch);
        assert!(matches!(
            Challenge::decode(&bytes[..20]),
            Err(DsAuditError::Truncated {
                ty: "Challenge",
                field: "c2",
                ..
            })
        ));
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xc4a1)
    }

    #[test]
    fn expansion_deterministic() {
        let mut rng = rng();
        let ch = Challenge::random(&mut rng);
        assert_eq!(ch.expand(1000, 300), ch.expand(1000, 300));
    }

    #[test]
    fn indices_distinct_and_in_range() {
        let mut rng = rng();
        let ch = Challenge::random(&mut rng);
        let set = ch.expand(5000, 300);
        assert_eq!(set.len(), 300);
        let idx: HashSet<u64> = set.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx.len(), 300);
        assert!(idx.iter().all(|&i| i < 5000));
    }

    #[test]
    fn small_file_clamps_k() {
        let mut rng = rng();
        let ch = Challenge::random(&mut rng);
        let set = ch.expand(7, 300);
        assert_eq!(set.len(), 7);
        let idx: HashSet<u64> = set.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx.len(), 7);
    }

    #[test]
    fn beacon_roundtrip_and_sensitivity() {
        let mut b1 = [7u8; 48];
        let c1 = Challenge::from_beacon(&b1);
        b1[40] ^= 1; // perturb only the r-seed bytes
        let c2 = Challenge::from_beacon(&b1);
        assert_eq!(c1.c1, c2.c1);
        assert_ne!(c1.r, c2.r);
    }

    #[test]
    fn different_challenges_different_sets() {
        let mut rng = rng();
        let a = Challenge::random(&mut rng).expand(1000, 50);
        let b = Challenge::random(&mut rng).expand(1000, 50);
        assert_ne!(a, b);
    }
}
