//! # dsaudit-core
//!
//! The primary contribution of the reproduced paper: a privacy-assured,
//! lightweight on-chain auditing protocol for decentralized storage,
//! combining homomorphic linear authenticators (HLA), KZG-style
//! polynomial commitments for succinct constant-cost verification, and a
//! Sigma-protocol masking layer that keeps audit trails on the public
//! blockchain private.
//!
//! Pipeline: [`keys::keygen`] → [`file::EncodedFile::encode`] →
//! [`tag::generate_tags`] → per round: [`challenge::Challenge`] →
//! [`prove::Prover::prove_private`] → [`verify::verify_private`].

pub mod attack;
pub mod batch;
pub mod challenge;
pub mod file;
pub mod keys;
pub mod par;
pub mod params;
pub mod prepared;
pub mod proof;
pub mod prove;
pub mod tag;
pub mod verify;

pub use challenge::Challenge;
pub use file::EncodedFile;
pub use keys::{keygen, PublicKey, SecretKey};
pub use params::{chunks_for_confidence, confidence_for_chunks, AuditParams};
pub use proof::{PlainProof, PrivateProof, PLAIN_PROOF_BYTES, PRIVATE_PROOF_BYTES};
pub use prove::{Prover, ProveTimings};
pub use tag::{generate_tags, verify_tag, verify_tags_batch};
pub use verify::{verify_plain, verify_private, FileMeta};
