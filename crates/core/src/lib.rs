//! # dsaudit-core
//!
//! The primary contribution of the reproduced paper: a privacy-assured,
//! lightweight on-chain auditing protocol for decentralized storage,
//! combining homomorphic linear authenticators (HLA), KZG-style
//! polynomial commitments for succinct constant-cost verification, and a
//! Sigma-protocol masking layer that keeps audit trails on the public
//! blockchain private.
//!
//! ## The role-oriented API
//!
//! The protocol is a three-party interaction, and the API mirrors it
//! with one handle per role:
//!
//! * [`DataOwner`] — keygen, (streaming) encoding, authenticator
//!   generation, and the [`Outsourcing`] bundle shipped to a provider;
//! * [`StorageProvider`] — validates and holds shares + tags, answers
//!   challenges with 288-byte private proofs;
//! * [`Auditor`] — issues challenges and verifies single proofs or
//!   whole batched rounds, with the hash-to-curve and prepared-G2
//!   caches owned by the handle (bounded, evicting; see [`cache`]).
//!
//! A typed [`AuditSession`] state machine connects them so invalid call
//! orders (prove before challenge, verify before a response) do not
//! compile, and round mismatches are typed errors. Every object that
//! crosses a trust boundary serializes through the canonical [`Codec`];
//! all fallible operations return [`DsAuditError`], and verification
//! returns a [`Verdict`] so callers can tell *bad proof* from *bad
//! input*.
//!
//! ## One audit round, end to end
//!
//! ```
//! use dsaudit_core::{AuditParams, Auditor, DataOwner, StorageProvider};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), dsaudit_core::DsAuditError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let params = AuditParams::new(8, 4)?;
//!
//! // owner: keygen + encode + tag, bundled for outsourcing
//! let owner = DataOwner::generate(&mut rng, params);
//! let bundle = owner.outsource(&mut rng, b"archive bytes");
//!
//! // provider: validates the authenticators before acknowledging
//! let provider = StorageProvider::ingest(&mut rng, bundle)?;
//!
//! // auditor: a typed session drives challenge -> response -> verdict;
//! // the 48 challenge bytes come from the chain's randomness beacon
//! // (`dsaudit_chain::beacon`), not from auditor-local RNG state
//! let beacon_output = [0x5au8; 48];
//! let auditor = Auditor::new();
//! let session = auditor.begin_session(provider.public_key(), provider.meta())?;
//! let round = session.challenge_from_beacon(&beacon_output);
//! let response = provider.respond_round(&mut rng, &round.round_challenge());
//! let proven = round.submit(response).map_err(|(_, e)| e)?;
//! let (session, verdict) = proven.verify()?;
//! assert!(verdict.accepted());
//! assert_eq!(session.tally(), (1, 0));
//! # Ok(())
//! # }
//! ```
//!
//! ## Streaming encode
//!
//! GiB-scale archives are encoded from any [`std::io::Read`] without
//! buffering the raw bytes in full (peak transient allocation is one
//! chunk):
//!
//! ```
//! use dsaudit_core::{AuditParams, DataOwner};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), dsaudit_core::DsAuditError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let owner = DataOwner::generate(&mut rng, AuditParams::new(8, 4)?);
//! let mut source: &[u8] = b"pretend this is a huge file handle";
//! let file = owner.encode_reader(&mut rng, &mut source)?;
//! let tags = owner.tag(&file);
//! assert_eq!(tags.len(), file.num_chunks());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod attack;
pub mod auditor;
pub mod batch;
pub mod cache;
pub mod challenge;
pub mod codec;
pub mod error;
pub mod file;
pub mod keys;
pub mod owner;
pub mod par;
pub mod params;
pub mod proof;
pub mod prove;
pub mod provider;
pub mod session;
pub mod tag;
pub mod verify;

pub use auditor::Auditor;
pub use cache::{CacheStats, ChiCache, PreparedG2Cache};
pub use challenge::Challenge;
pub use codec::{ByteReader, Codec};
pub use error::{DsAuditError, RejectReason, Verdict};
pub use file::EncodedFile;
pub use keys::{keygen, PublicKey, SecretKey};
pub use owner::{share_name, DataOwner, Outsourcing};
pub use params::{chunks_for_confidence, confidence_for_chunks, AuditParams};
pub use proof::{PlainProof, PrivateProof, PLAIN_PROOF_BYTES, PRIVATE_PROOF_BYTES};
pub use prove::{Prover, ProveTimings};
pub use provider::StorageProvider;
pub use session::{AuditSession, ChallengedRound, ProvenRound, RoundChallenge, RoundResponse};
pub use tag::{generate_tags, verify_tag, verify_tags_batch, verify_tags_each};
pub use verify::{verify_plain, verify_private, FileMeta};
