//! The data-owner role handle: key generation, (streaming) encoding,
//! authenticator generation, and the outsourcing bundle.
//!
//! A [`DataOwner`] holds the secret key `(x, alpha)` and the derived
//! public key, and turns raw archives into [`Outsourcing`] bundles — the
//! exact payload shipped to a storage provider (encoded file + tag
//! vector + the public metadata the contract registers).

#![deny(missing_docs)]

use dsaudit_algebra::g1::G1Affine;

use crate::error::DsAuditError;
use crate::file::EncodedFile;
use crate::keys::{keygen, public_key_for, PublicKey, SecretKey};
use crate::params::AuditParams;
use crate::tag::generate_tags;
use crate::verify::FileMeta;

/// Everything a storage provider receives for one file: the encoded
/// data, one authenticator per chunk, and the public audit metadata.
///
/// The bundle's `pk` is the owner's registration key — the provider
/// validates the tag vector against it before acknowledging the
/// contract (see [`crate::StorageProvider::ingest`]).
#[derive(Clone, Debug)]
pub struct Outsourcing {
    /// The owner's public key, as registered on chain.
    pub pk: PublicKey,
    /// The encoded file.
    pub file: EncodedFile,
    /// One homomorphic authenticator per chunk.
    pub tags: Vec<G1Affine>,
}

impl Outsourcing {
    /// The public metadata the contract stores about this file.
    pub fn meta(&self) -> FileMeta {
        FileMeta {
            name: self.file.name,
            num_chunks: self.file.num_chunks(),
            k: self.file.params.k,
        }
    }
}

/// Data-owner handle: secret key material plus the agreed parameters.
pub struct DataOwner {
    sk: SecretKey,
    pk: PublicKey,
    params: AuditParams,
}

impl DataOwner {
    /// Generates a fresh owner: samples `(x, alpha)` and derives the
    /// public key for `params.s`.
    pub fn generate<R: rand::RngCore + ?Sized>(rng: &mut R, params: AuditParams) -> Self {
        let (sk, pk) = keygen(rng, &params);
        Self { sk, pk, params }
    }

    /// Rebuilds an owner from stored secret-key material (the public
    /// key is re-derived deterministically).
    pub fn from_secret(sk: SecretKey, params: AuditParams) -> Self {
        let pk = public_key_for(&sk, params.s);
        Self { sk, pk, params }
    }

    /// The public key to register on chain.
    pub fn public_key(&self) -> &PublicKey {
        &self.pk
    }

    /// The owner's secret key (for vault storage via
    /// [`SecretKey::to_bytes`]).
    pub fn secret_key(&self) -> &SecretKey {
        &self.sk
    }

    /// The agreed audit parameters.
    pub fn params(&self) -> AuditParams {
        self.params
    }

    /// Encodes an in-memory archive (already encrypted by the storage
    /// layer — the paper mandates owner-side encryption).
    pub fn encode<R: rand::RngCore + ?Sized>(&self, rng: &mut R, data: &[u8]) -> EncodedFile {
        EncodedFile::encode(rng, data, self.params)
    }

    /// Streaming encode: reads the archive chunk by chunk, so GiB-scale
    /// preprocessing never buffers the raw bytes in full (see
    /// [`EncodedFile::encode_reader_with_name`]).
    ///
    /// # Errors
    /// Propagates reader failures as [`DsAuditError::Io`].
    pub fn encode_reader<R, T>(&self, rng: &mut R, reader: &mut T) -> Result<EncodedFile, DsAuditError>
    where
        R: rand::RngCore + ?Sized,
        T: std::io::Read + ?Sized,
    {
        EncodedFile::encode_reader(rng, reader, self.params)
    }

    /// Computes one homomorphic authenticator per chunk (the dominant
    /// pre-processing cost, Fig. 7).
    pub fn tag(&self, file: &EncodedFile) -> Vec<G1Affine> {
        generate_tags(&self.sk, file)
    }

    /// Encodes and tags an in-memory archive into the bundle shipped to
    /// a provider.
    pub fn outsource<R: rand::RngCore + ?Sized>(&self, rng: &mut R, data: &[u8]) -> Outsourcing {
        let file = self.encode(rng, data);
        let tags = self.tag(&file);
        Outsourcing {
            pk: self.pk.clone(),
            file,
            tags,
        }
    }

    /// Streaming variant of [`DataOwner::outsource`]: encode from a
    /// reader, then tag chunk by chunk.
    ///
    /// # Errors
    /// Propagates reader failures as [`DsAuditError::Io`].
    pub fn outsource_reader<R, T>(&self, rng: &mut R, reader: &mut T) -> Result<Outsourcing, DsAuditError>
    where
        R: rand::RngCore + ?Sized,
        T: std::io::Read + ?Sized,
    {
        let file = self.encode_reader(rng, reader)?;
        let tags = self.tag(&file);
        Ok(Outsourcing {
            pk: self.pk.clone(),
            file,
            tags,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x0114e4)
    }

    #[test]
    fn outsource_bundle_is_consistent() {
        let mut rng = rng();
        let params = AuditParams::new(4, 3).unwrap();
        let owner = DataOwner::generate(&mut rng, params);
        let bundle = owner.outsource(&mut rng, &[7u8; 500]);
        assert_eq!(bundle.tags.len(), bundle.file.num_chunks());
        assert_eq!(bundle.meta().num_chunks, bundle.file.num_chunks());
        assert_eq!(bundle.meta().k, params.k);
        assert_eq!(bundle.pk, *owner.public_key());
    }

    #[test]
    fn streaming_outsource_matches_in_memory() {
        let mut rng = rng();
        let params = AuditParams::new(4, 3).unwrap();
        let owner = DataOwner::generate(&mut rng, params);
        let data: Vec<u8> = (0..700).map(|i| (i % 251) as u8).collect();
        let in_memory = owner.encode(&mut rng, &data);
        let streamed = owner
            .encode_reader(&mut rng, &mut &data[..])
            .expect("in-memory reader");
        // names differ (fresh randomness); content must be identical
        assert_eq!(streamed.byte_len, in_memory.byte_len);
        assert_eq!(streamed.num_chunks(), in_memory.num_chunks());
        for i in 0..streamed.num_chunks() {
            assert_eq!(streamed.chunk(i), in_memory.chunk(i));
        }
        // and the owner's tags over equal content with equal names agree
        let renamed = EncodedFile::encode_with_name(streamed.name, &data, params);
        assert_eq!(owner.tag(&streamed), owner.tag(&renamed));
    }

    #[test]
    fn owner_rebuilds_from_secret_deterministically() {
        let mut rng = rng();
        let params = AuditParams::new(6, 4).unwrap();
        let owner = DataOwner::generate(&mut rng, params);
        let rebuilt = DataOwner::from_secret(*owner.secret_key(), params);
        assert_eq!(owner.public_key(), rebuilt.public_key());
    }
}
