//! The data-owner role handle: key generation, (streaming) encoding,
//! authenticator generation, and the outsourcing bundle.
//!
//! A [`DataOwner`] holds the secret key `(x, alpha)` and the derived
//! public key, and turns raw archives into [`Outsourcing`] bundles — the
//! exact payload shipped to a storage provider (encoded file + tag
//! vector + the public metadata the contract registers).

#![deny(missing_docs)]

use dsaudit_algebra::g1::G1Affine;
use dsaudit_algebra::Fr;
use dsaudit_crypto::prf::prf_fr;

use crate::error::DsAuditError;
use crate::file::EncodedFile;
use crate::keys::{keygen, public_key_for, PublicKey, SecretKey};
use crate::params::AuditParams;
use crate::tag::generate_tags;
use crate::verify::FileMeta;

/// Everything a storage provider receives for one file: the encoded
/// data, one authenticator per chunk, and the public audit metadata.
///
/// The bundle's `pk` is the owner's registration key — the provider
/// validates the tag vector against it before acknowledging the
/// contract (see [`crate::StorageProvider::ingest`]).
#[derive(Clone, Debug)]
pub struct Outsourcing {
    /// The owner's public key, as registered on chain.
    pub pk: PublicKey,
    /// The encoded file.
    pub file: EncodedFile,
    /// One homomorphic authenticator per chunk.
    pub tags: Vec<G1Affine>,
}

impl Outsourcing {
    /// The public metadata the contract stores about this file.
    pub fn meta(&self) -> FileMeta {
        FileMeta {
            name: self.file.name,
            num_chunks: self.file.num_chunks(),
            k: self.file.params.k,
        }
    }
}

/// Data-owner handle: secret key material plus the agreed parameters.
pub struct DataOwner {
    sk: SecretKey,
    pk: PublicKey,
    params: AuditParams,
}

impl DataOwner {
    /// Generates a fresh owner: samples `(x, alpha)` and derives the
    /// public key for `params.s`.
    pub fn generate<R: rand::RngCore + ?Sized>(rng: &mut R, params: AuditParams) -> Self {
        let (sk, pk) = keygen(rng, &params);
        Self { sk, pk, params }
    }

    /// Rebuilds an owner from stored secret-key material (the public
    /// key is re-derived deterministically).
    pub fn from_secret(sk: SecretKey, params: AuditParams) -> Self {
        let pk = public_key_for(&sk, params.s);
        Self { sk, pk, params }
    }

    /// The public key to register on chain.
    pub fn public_key(&self) -> &PublicKey {
        &self.pk
    }

    /// The owner's secret key (for vault storage via
    /// [`SecretKey::to_bytes`]).
    pub fn secret_key(&self) -> &SecretKey {
        &self.sk
    }

    /// The agreed audit parameters.
    pub fn params(&self) -> AuditParams {
        self.params
    }

    /// Encodes an in-memory archive (already encrypted by the storage
    /// layer — the paper mandates owner-side encryption).
    pub fn encode<R: rand::RngCore + ?Sized>(&self, rng: &mut R, data: &[u8]) -> EncodedFile {
        EncodedFile::encode(rng, data, self.params)
    }

    /// Streaming encode: reads the archive chunk by chunk, so GiB-scale
    /// preprocessing never buffers the raw bytes in full (see
    /// [`EncodedFile::encode_reader_with_name`]).
    ///
    /// # Errors
    /// Propagates reader failures as [`DsAuditError::Io`].
    pub fn encode_reader<R, T>(&self, rng: &mut R, reader: &mut T) -> Result<EncodedFile, DsAuditError>
    where
        R: rand::RngCore + ?Sized,
        T: std::io::Read + ?Sized,
    {
        EncodedFile::encode_reader(rng, reader, self.params)
    }

    /// Computes one homomorphic authenticator per chunk (the dominant
    /// pre-processing cost, Fig. 7).
    pub fn tag(&self, file: &EncodedFile) -> Vec<G1Affine> {
        generate_tags(&self.sk, file)
    }

    /// Encodes and tags an in-memory archive into the bundle shipped to
    /// a provider.
    pub fn outsource<R: rand::RngCore + ?Sized>(&self, rng: &mut R, data: &[u8]) -> Outsourcing {
        let file = self.encode(rng, data);
        let tags = self.tag(&file);
        Outsourcing {
            pk: self.pk.clone(),
            file,
            tags,
        }
    }

    /// Outsources with a caller-chosen on-chain `name` (deterministic:
    /// same name + same bytes reproduce the same bundle). This is the
    /// building block of per-share outsourcing, where the name must be
    /// re-derivable after an erasure share is reconstructed.
    pub fn outsource_with_name(&self, name: Fr, data: &[u8]) -> Outsourcing {
        let file = EncodedFile::encode_with_name(name, data, self.params);
        let tags = self.tag(&file);
        Outsourcing {
            pk: self.pk.clone(),
            file,
            tags,
        }
    }

    /// Per-share outsourcing for erasure-coded placement (§III-A meets
    /// §V-B): one share of a `k`-of-`n` coded file becomes its own
    /// auditable unit — its own `name`, encoded chunks, and tag vector —
    /// so each share-holding provider can be challenged and settled
    /// independently. The name is derived from the file's 32-byte
    /// content address and the share index via [`share_name`], so a
    /// share reconstructed during repair re-tags to the **same**
    /// registered name and the audit contract survives the migration.
    pub fn outsource_share(
        &self,
        content_address: &[u8; 32],
        index: u64,
        data: &[u8],
    ) -> Outsourcing {
        self.outsource_with_name(share_name(content_address, index), data)
    }

    /// [`DataOwner::outsource_share`] over a whole share vector, in
    /// index order (index `i` is position `i`).
    pub fn outsource_shares<'a, I>(&self, content_address: &[u8; 32], shares: I) -> Vec<Outsourcing>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        shares
            .into_iter()
            .enumerate()
            .map(|(i, data)| self.outsource_share(content_address, i as u64, data))
            .collect()
    }

    /// Streaming variant of [`DataOwner::outsource`]: encode from a
    /// reader, then tag chunk by chunk.
    ///
    /// # Errors
    /// Propagates reader failures as [`DsAuditError::Io`].
    pub fn outsource_reader<R, T>(&self, rng: &mut R, reader: &mut T) -> Result<Outsourcing, DsAuditError>
    where
        R: rand::RngCore + ?Sized,
        T: std::io::Read + ?Sized,
    {
        let file = self.encode_reader(rng, reader)?;
        let tags = self.tag(&file);
        Ok(Outsourcing {
            pk: self.pk.clone(),
            file,
            tags,
        })
    }
}

/// The deterministic on-chain name of erasure share `index` of the file
/// at `content_address`: a domain-separated PRF into `Z_p`. Owner,
/// repair agent, and contract all re-derive the same name from public
/// data, which is what lets an audit contract follow a share across
/// provider migrations.
pub fn share_name(content_address: &[u8; 32], index: u64) -> Fr {
    let mut seed = Vec::with_capacity(32 + 19);
    seed.extend_from_slice(b"dsaudit/share-name/");
    seed.extend_from_slice(content_address);
    prf_fr(&seed, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x0114e4)
    }

    #[test]
    fn outsource_bundle_is_consistent() {
        let mut rng = rng();
        let params = AuditParams::new(4, 3).unwrap();
        let owner = DataOwner::generate(&mut rng, params);
        let bundle = owner.outsource(&mut rng, &[7u8; 500]);
        assert_eq!(bundle.tags.len(), bundle.file.num_chunks());
        assert_eq!(bundle.meta().num_chunks, bundle.file.num_chunks());
        assert_eq!(bundle.meta().k, params.k);
        assert_eq!(bundle.pk, *owner.public_key());
    }

    #[test]
    fn streaming_outsource_matches_in_memory() {
        let mut rng = rng();
        let params = AuditParams::new(4, 3).unwrap();
        let owner = DataOwner::generate(&mut rng, params);
        let data: Vec<u8> = (0..700).map(|i| (i % 251) as u8).collect();
        let in_memory = owner.encode(&mut rng, &data);
        let streamed = owner
            .encode_reader(&mut rng, &mut &data[..])
            .expect("in-memory reader");
        // names differ (fresh randomness); content must be identical
        assert_eq!(streamed.byte_len, in_memory.byte_len);
        assert_eq!(streamed.num_chunks(), in_memory.num_chunks());
        for i in 0..streamed.num_chunks() {
            assert_eq!(streamed.chunk(i), in_memory.chunk(i));
        }
        // and the owner's tags over equal content with equal names agree
        let renamed = EncodedFile::encode_with_name(streamed.name, &data, params);
        assert_eq!(owner.tag(&streamed), owner.tag(&renamed));
    }

    #[test]
    fn per_share_outsourcing_is_deterministic_and_independent() {
        let mut rng = rng();
        let params = AuditParams::new(4, 3).unwrap();
        let owner = DataOwner::generate(&mut rng, params);
        let content = [0xabu8; 32];
        let shares: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 200]).collect();
        let bundles = owner.outsource_shares(&content, shares.iter().map(Vec::as_slice));
        assert_eq!(bundles.len(), 3);
        // distinct names per share, all re-derivable from public data
        for (i, b) in bundles.iter().enumerate() {
            assert_eq!(b.file.name, share_name(&content, i as u64));
            assert_eq!(b.tags.len(), b.file.num_chunks());
        }
        assert_ne!(bundles[0].file.name, bundles[1].file.name);
        // a reconstructed share re-tags to the identical bundle
        let again = owner.outsource_share(&content, 1, &shares[1]);
        assert_eq!(again.file, bundles[1].file);
        assert_eq!(again.tags, bundles[1].tags);
        // a different file's share 1 gets a different name
        assert_ne!(share_name(&[0xcd; 32], 1), share_name(&content, 1));
    }

    #[test]
    fn owner_rebuilds_from_secret_deterministically() {
        let mut rng = rng();
        let params = AuditParams::new(6, 4).unwrap();
        let owner = DataOwner::generate(&mut rng, params);
        let rebuilt = DataOwner::from_secret(owner.secret_key().clone(), params);
        assert_eq!(owner.public_key(), rebuilt.public_key());
    }
}
