//! Quadratic extension `Fq12 = Fq6[w] / (w^2 - v)` — the pairing target
//! field. `w` is a sixth root of `xi`: `w^6 = xi`.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

use crate::bigint::{div_small, sub_small};
use crate::field::Field;
use crate::fields::{FqParams, BN_X};
use crate::fp::FieldParams;
use crate::fp2::Fq2;
use crate::fp6::Fq6;

/// An element `c0 + c1*w` of `Fq12`.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Fq12 {
    /// Constant coefficient.
    pub c0: Fq6,
    /// Coefficient of `w`.
    pub c1: Fq6,
}

/// Frobenius coefficients `xi^{(q^i - 1)/6}` for `i = 0..12`.
fn frob12_c1() -> &'static [Fq2; 12] {
    static CACHE: OnceLock<[Fq2; 12]> = OnceLock::new();
    CACHE.get_or_init(|| {
        let exp = div_small(&sub_small(&FqParams::MODULUS, 1), 6); // (q-1)/6
        let g1 = Fq2::xi().pow(&exp);
        let mut out = [Fq2::one(); 12];
        for i in 1..12 {
            out[i] = out[i - 1].conjugate() * g1;
        }
        out
    })
}

impl Fq12 {
    /// Zero.
    pub const ZERO: Self = Self {
        c0: Fq6::ZERO,
        c1: Fq6::ZERO,
    };

    /// Builds from coefficients.
    pub const fn new(c0: Fq6, c1: Fq6) -> Self {
        Self { c0, c1 }
    }

    /// Embeds a base-field element into the tower.
    pub fn from_fq(x: crate::fields::Fq) -> Self {
        Self {
            c0: Fq6::new(Fq2::from_base(x), Fq2::zero(), Fq2::zero()),
            c1: Fq6::zero(),
        }
    }

    /// Conjugation over `Fq6` (`c0 - c1 w`); equals the `q^6`-power
    /// Frobenius, and the inverse for unitary (cyclotomic) elements.
    pub fn conjugate(&self) -> Self {
        Self {
            c0: self.c0,
            c1: -self.c1,
        }
    }

    /// The `q^i`-power Frobenius endomorphism.
    pub fn frobenius(&self, power: usize) -> Self {
        let i = power % 12;
        Self {
            c0: self.c0.frobenius(i),
            c1: self.c1.frobenius(i).scale(frob12_c1()[i]),
        }
    }

    /// Exponentiation by the BN parameter `x = 4965661367192848881`.
    pub fn pow_x(&self) -> Self {
        self.pow(&[BN_X, 0, 0, 0])
    }

    /// True when `f * conj(f) = 1`, i.e. the element lies in the
    /// cyclotomic subgroup (holds for all Miller-loop outputs after the
    /// easy part of the final exponentiation).
    pub fn is_unitary(&self) -> bool {
        *self * self.conjugate() == Self::one()
    }
}

impl fmt::Debug for Fq12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fq12({:?} + {:?}*w)", self.c0, self.c1)
    }
}

impl Add for Fq12 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            c0: self.c0 + rhs.c0,
            c1: self.c1 + rhs.c1,
        }
    }
}

impl Sub for Fq12 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            c0: self.c0 - rhs.c0,
            c1: self.c1 - rhs.c1,
        }
    }
}

impl Neg for Fq12 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            c0: -self.c0,
            c1: -self.c1,
        }
    }
}

impl Mul for Fq12 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Karatsuba over Fq6 with w^2 = v:
        let v0 = self.c0 * rhs.c0;
        let v1 = self.c1 * rhs.c1;
        let t = (self.c0 + self.c1) * (rhs.c0 + rhs.c1);
        Self {
            c0: v0 + v1.mul_by_v(),
            c1: t - v0 - v1,
        }
    }
}

impl AddAssign for Fq12 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fq12 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fq12 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Field for Fq12 {
    fn zero() -> Self {
        Self::ZERO
    }

    fn one() -> Self {
        Self {
            c0: Fq6::one(),
            c1: Fq6::zero(),
        }
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    fn square(&self) -> Self {
        // (c0 + c1 w)^2 = c0^2 + v c1^2 + 2 c0 c1 w
        let v0 = self.c0 * self.c1;
        let t = (self.c0 + self.c1) * (self.c0 + self.c1.mul_by_v());
        Self {
            c0: t - v0 - v0.mul_by_v(),
            c1: v0.double(),
        }
    }

    fn inverse(&self) -> Option<Self> {
        // (c0 - c1 w) / (c0^2 - v c1^2)
        let det = self.c0.square() - self.c1.square().mul_by_v();
        det.inverse().map(|dinv| Self {
            c0: self.c0 * dinv,
            c1: -(self.c1 * dinv),
        })
    }

    fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self {
            c0: Fq6::random(rng),
            c1: Fq6::random(rng),
        }
    }

    fn from_u64(v: u64) -> Self {
        Self {
            c0: Fq6::from_u64(v),
            c1: Fq6::zero(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(12)
    }

    #[test]
    fn w_squared_is_v() {
        let w = Fq12::new(Fq6::zero(), Fq6::one());
        let v = Fq12::new(Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero()), Fq6::zero());
        assert_eq!(w.square(), v);
    }

    #[test]
    fn w_sixth_is_xi() {
        let w = Fq12::new(Fq6::zero(), Fq6::one());
        let xi = Fq12::new(
            Fq6::new(Fq2::xi(), Fq2::zero(), Fq2::zero()),
            Fq6::zero(),
        );
        assert_eq!(w.pow(&[6, 0, 0, 0]), xi);
    }

    #[test]
    fn square_matches_mul() {
        let mut rng = rng();
        for _ in 0..10 {
            let a = Fq12::random(&mut rng);
            assert_eq!(a.square(), a * a);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = rng();
        for _ in 0..5 {
            let a = Fq12::random(&mut rng);
            assert_eq!(a * a.inverse().unwrap(), Fq12::one());
        }
    }

    #[test]
    fn frobenius_matches_pow() {
        let mut rng = rng();
        let a = Fq12::random(&mut rng);
        assert_eq!(a.frobenius(1), a.pow(&FqParams::MODULUS));
    }

    #[test]
    fn frobenius_composes() {
        let mut rng = rng();
        let a = Fq12::random(&mut rng);
        assert_eq!(a.frobenius(1).frobenius(1), a.frobenius(2));
        assert_eq!(a.frobenius(2).frobenius(1), a.frobenius(3));
        assert_eq!(a.frobenius(6).frobenius(6), a);
    }

    #[test]
    fn conjugate_is_frobenius_six() {
        let mut rng = rng();
        let a = Fq12::random(&mut rng);
        assert_eq!(a.conjugate(), a.frobenius(6));
    }
}
