//! Quadratic extension `Fq12 = Fq6[w] / (w^2 - v)` — the pairing target
//! field. `w` is a sixth root of `xi`: `w^6 = xi`.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

use crate::bigint::{div_small, sub_small};
use crate::field::Field;
use crate::fields::{FqParams, BN_X};
use crate::fp::FieldParams;
use crate::fp2::Fq2;
use crate::fp6::Fq6;

/// An element `c0 + c1*w` of `Fq12`.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Fq12 {
    /// Constant coefficient.
    pub c0: Fq6,
    /// Coefficient of `w`.
    pub c1: Fq6,
}

/// Frobenius coefficients `xi^{(q^i - 1)/6}` for `i = 0..12`.
fn frob12_c1() -> &'static [Fq2; 12] {
    static CACHE: OnceLock<[Fq2; 12]> = OnceLock::new();
    CACHE.get_or_init(|| {
        let exp = div_small(&sub_small(&FqParams::MODULUS, 1), 6); // (q-1)/6
        let g1 = Fq2::xi().pow(&exp);
        let mut out = [Fq2::one(); 12];
        for i in 1..12 {
            out[i] = out[i - 1].conjugate() * g1;
        }
        out
    })
}

impl Fq12 {
    /// Zero.
    pub const ZERO: Self = Self {
        c0: Fq6::ZERO,
        c1: Fq6::ZERO,
    };

    /// Builds from coefficients.
    pub const fn new(c0: Fq6, c1: Fq6) -> Self {
        Self { c0, c1 }
    }

    /// Embeds a base-field element into the tower.
    pub fn from_fq(x: crate::fields::Fq) -> Self {
        Self {
            c0: Fq6::new(Fq2::from_base(x), Fq2::zero(), Fq2::zero()),
            c1: Fq6::zero(),
        }
    }

    /// Conjugation over `Fq6` (`c0 - c1 w`); equals the `q^6`-power
    /// Frobenius, and the inverse for unitary (cyclotomic) elements.
    pub fn conjugate(&self) -> Self {
        Self {
            c0: self.c0,
            c1: -self.c1,
        }
    }

    /// The `q^i`-power Frobenius endomorphism.
    pub fn frobenius(&self, power: usize) -> Self {
        let i = power % 12;
        Self {
            c0: self.c0.frobenius(i),
            c1: self.c1.frobenius(i).scale(frob12_c1()[i]),
        }
    }

    /// Exponentiation by the BN parameter `x = 4965661367192848881`.
    pub fn pow_x(&self) -> Self {
        self.pow(&[BN_X, 0, 0, 0])
    }

    /// True when `f * conj(f) = 1`, i.e. the element is unitary (holds
    /// for all Miller-loop outputs after the easy part of the final
    /// exponentiation, and for every `Gt` element).
    pub fn is_unitary(&self) -> bool {
        *self * self.conjugate() == Self::one()
    }

    /// True when the element lies in the cyclotomic subgroup
    /// `G_{Phi_12(q)} = { f : f^{q^4 - q^2 + 1} = 1 }` — the home of all
    /// final-exponentiation outputs, and the precondition for
    /// [`Self::cyclotomic_square`]. Checked via `f^{q^4} * f == f^{q^2}`
    /// (two Frobenius maps and one multiplication).
    pub fn is_cyclotomic(&self) -> bool {
        self.frobenius(4) * *self == self.frobenius(2)
    }

    /// Sparse multiplication by a pairing line `c0 + c3 w + c4 w^3`
    /// (nonzero coefficients at slots 0, 3, 4 of the `Fq2^6` layout) —
    /// 13 `Fq2` multiplications instead of the generic 18.
    pub fn mul_by_034(&self, c0: Fq2, c3: Fq2, c4: Fq2) -> Self {
        let a = self.c0.scale(c0);
        let b = self.c1.mul_by_01(c3, c4);
        let e = (self.c0 + self.c1).mul_by_01(c0 + c3, c4);
        Self {
            c0: a + b.mul_by_v(),
            c1: e - a - b,
        }
    }

    /// Product of two sparse line values `(a0 + a3 w + a4 w^3)` and
    /// `(b0 + b3 w + b4 w^3)` in 6 `Fq2` multiplications. The multi-Miller
    /// loop folds pairs of lines through this before touching the full
    /// accumulator.
    pub fn mul_034_by_034(a: (Fq2, Fq2, Fq2), b: (Fq2, Fq2, Fq2)) -> Self {
        let (a0, a3, a4) = a;
        let (b0, b3, b4) = b;
        let t00 = a0 * b0;
        let t33 = a3 * b3;
        let t44 = a4 * b4;
        let t34 = (a3 + a4) * (b3 + b4) - t33 - t44;
        let t03 = (a0 + a3) * (b0 + b3) - t00 - t33;
        let t04 = (a0 + a4) * (b0 + b4) - t00 - t44;
        Self {
            c0: Fq6::new(t00 + t44.mul_by_nonresidue(), t33, t34),
            c1: Fq6::new(t03, t04, Fq2::zero()),
        }
    }

    /// Granger–Scott squaring in the cyclotomic subgroup: 9 `Fq2`
    /// squarings instead of the 12 `Fq2` multiplications of the generic
    /// [`Field::square`]. **Requires** [`Self::is_cyclotomic`]; on other
    /// inputs the result is meaningless.
    ///
    /// Derivation: in the `Fq4 = Fq2[s]/(s^2 - xi)` sub-tower with
    /// `s = w^3`, a cyclotomic `f = a + b w + c w^2` squares to
    /// `(3a^2 - 2 conj(a)) + (3 s c^2 + 2 conj(b)) w + (3b^2 - 2 conj(c)) w^2`.
    pub fn cyclotomic_square(&self) -> Self {
        // w-power basis: f_i = coefficient of w^i.
        let f0 = self.c0.c0;
        let f1 = self.c1.c0;
        let f2 = self.c0.c1;
        let f3 = self.c1.c1;
        let f4 = self.c0.c2;
        let f5 = self.c1.c2;
        // a = f0 + f3 s, b = f1 + f4 s, c = f2 + f5 s
        let (a20, a21) = fp4_square(f0, f3);
        let (b20, b21) = fp4_square(f1, f4);
        let (c20, c21) = fp4_square(f2, f5);
        let xi_c21 = c21.mul_by_nonresidue();
        let r0 = (a20 - f0).double() + a20; // 3 a^2_0 - 2 f0
        let r3 = (a21 + f3).double() + a21; // 3 a^2_1 + 2 f3
        let r1 = (xi_c21 + f1).double() + xi_c21; // 3 xi c^2_1 + 2 f1
        let r4 = (c20 - f4).double() + c20; // 3 c^2_0 - 2 f4
        let r2 = (b20 - f2).double() + b20; // 3 b^2_0 - 2 f2
        let r5 = (b21 + f5).double() + b21; // 3 b^2_1 + 2 f5
        Self {
            c0: Fq6::new(r0, r2, r4),
            c1: Fq6::new(r1, r3, r5),
        }
    }

    /// Exponentiation of a **cyclotomic** element by a little-endian limb
    /// exponent, using signed NAF digits (the inverse is a free
    /// conjugation) over Granger–Scott squarings. Roughly 1.7x faster
    /// than the generic [`Field::pow`].
    ///
    /// Constant-time contract: every caller passes a *public* exponent
    /// (the hard-part constants of the final exponentiation), so the two
    /// digit-dependent branches below leak nothing secret; each carries
    /// an audited `ct-branch` allow saying so.
    // lint:ct
    pub fn cyclotomic_exp(&self, exp: &[u64]) -> Self {
        let digits = naf_digits(exp);
        let inv = self.conjugate();
        let mut acc = Self::one();
        let mut started = false;
        for &d in digits.iter().rev() {
            // lint:allow(ct-branch) — `started` tracks the scan position in the NAF digits of a public exponent
            if started {
                acc = acc.cyclotomic_square();
            }
            // lint:allow(ct-branch) — dispatch on a NAF digit of the public exponent, not on secret data
            match d {
                1 => {
                    acc *= *self;
                    started = true;
                }
                -1 => {
                    acc *= inv;
                    started = true;
                }
                _ => {}
            }
        }
        acc
    }

    /// `f^x` for the BN parameter `x`, on cyclotomic `f`: a Karabina
    /// compressed-squaring chain (6 `Fq2` squarings each, no `a`-component
    /// carried) with one batched decompression at the set bits of `x`.
    /// Falls back to plain Granger–Scott square-and-multiply when a state
    /// is too degenerate to compress (e.g. the identity).
    pub fn cyclotomic_pow_x(&self) -> Self {
        let top = 63 - BN_X.leading_zeros(); // bit 62
        // Compressed chain: states[j] = compress(self^{2^i}) for the j-th
        // set bit i >= 1 of x (bit 0 of x is set and uses `self` itself).
        debug_assert_eq!(BN_X & 1, 1, "the chain below assumes x is odd");
        let mut c = CompressedFq12::compress(self);
        let mut states = Vec::with_capacity(BN_X.count_ones() as usize);
        for i in 1..=top {
            c = c.square();
            if (BN_X >> i) & 1 == 1 {
                states.push(c);
            }
        }
        match CompressedFq12::batch_decompress(&states) {
            Some(powers) => {
                let mut acc = *self;
                for p in &powers {
                    acc *= *p;
                }
                acc
            }
            // Degenerate input (identity-like): plain NAF chain.
            None => self.cyclotomic_exp(&[BN_X]),
        }
    }
}

/// Squaring in `Fq4 = Fq2[s]/(s^2 - xi)`: `(x0 + x1 s)^2 =
/// (x0^2 + xi x1^2) + (2 x0 x1) s`, in 3 `Fq2` squarings.
fn fp4_square(x0: Fq2, x1: Fq2) -> (Fq2, Fq2) {
    let t0 = x0.square();
    let t1 = x1.square();
    (t1.mul_by_nonresidue() + t0, (x0 + x1).square() - t0 - t1)
}

/// Karabina-style compressed representation of a cyclotomic element:
/// only the `b = f1 + f4 s` and `c = f2 + f5 s` components of
/// `f = a + b w + c w^2` are carried; squaring never needs `a`, which is
/// recovered once at the end from `a = (b^2 - conj(c)) / c`.
#[derive(Clone, Copy, Debug)]
struct CompressedFq12 {
    b0: Fq2,
    b1: Fq2,
    c0: Fq2,
    c1: Fq2,
}

impl CompressedFq12 {
    fn compress(f: &Fq12) -> Self {
        Self {
            b0: f.c1.c0,
            b1: f.c0.c2,
            c0: f.c0.c1,
            c1: f.c1.c2,
        }
    }

    /// Compressed cyclotomic squaring: the `b`/`c` components of the
    /// Granger–Scott square depend only on `b` and `c` — 6 `Fq2`
    /// squarings per step.
    fn square(&self) -> Self {
        let (b20, b21) = fp4_square(self.b0, self.b1);
        let (c20, c21) = fp4_square(self.c0, self.c1);
        let xi_c21 = c21.mul_by_nonresidue();
        Self {
            b0: (xi_c21 + self.b0).double() + xi_c21,
            b1: (c20 - self.b1).double() + c20,
            c0: (b20 - self.c0).double() + b20,
            c1: (b21 + self.c1).double() + b21,
        }
    }

    /// Decompresses a batch of states with **one** shared `Fq2` inversion
    /// (Montgomery's trick over the `Fq4` norms of the `c` components).
    /// Returns `None` when any state has `c = 0` — those are the handful
    /// of degenerate cyclotomic elements (identity among them) the
    /// compressed form cannot represent.
    fn batch_decompress(states: &[Self]) -> Option<Vec<Fq12>> {
        // a * c = b^2 - conj(c), so a = (b^2 - conj(c)) * conj4(c) / N(c)
        // with conj4(x0 + x1 s) = x0 - x1 s and N(c) = c0^2 - xi c1^2.
        let mut norms: Vec<Fq2> = Vec::with_capacity(states.len());
        for s in states {
            if s.c0.is_zero() && s.c1.is_zero() {
                return None;
            }
            norms.push(s.c0.square() - s.c1.square().mul_by_nonresidue());
        }
        crate::field::batch_inverse(&mut norms);
        let mut out = Vec::with_capacity(states.len());
        for (s, ninv) in states.iter().zip(&norms) {
            let (b20, b21) = fp4_square(s.b0, s.b1);
            // numerator n = b^2 - conj(c) in Fq4
            let n0 = b20 - s.c0;
            let n1 = b21 + s.c1;
            // n * conj4(c) = (n0 c0 - xi n1 c1) + (n1 c0 - n0 c1) s
            let a0 = (n0 * s.c0 - (n1 * s.c1).mul_by_nonresidue()) * *ninv;
            let a1 = (n1 * s.c0 - n0 * s.c1) * *ninv;
            out.push(Fq12 {
                c0: Fq6::new(a0, s.c0, s.b1),
                c1: Fq6::new(s.b0, a1, s.c1),
            });
        }
        Some(out)
    }
}

/// Signed NAF digits (`0, +1, -1`) of a little-endian limb integer,
/// least-significant first. Average non-zero density 1/3.
pub(crate) fn naf_digits(exp: &[u64]) -> Vec<i8> {
    let nbits = exp.len() * 64;
    let bit = |i: usize| -> u8 {
        if i >= nbits {
            0
        } else {
            ((exp[i / 64] >> (i % 64)) & 1) as u8
        }
    };
    let mut digits = Vec::with_capacity(nbits + 2);
    let mut carry = 0u8;
    let mut i = 0;
    while i < nbits || carry != 0 {
        let v = bit(i) + carry;
        let (d, c) = match v {
            0 => (0i8, 0),
            2 => (0, 1),
            _ if bit(i + 1) == 0 => (1, 0), // isolated 1-bit
            _ => (-1, 1),                   // run of 1s: -1 now, carry up
        };
        digits.push(d);
        carry = c;
        i += 1;
    }
    digits
}

impl fmt::Debug for Fq12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fq12({:?} + {:?}*w)", self.c0, self.c1)
    }
}

impl Add for Fq12 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            c0: self.c0 + rhs.c0,
            c1: self.c1 + rhs.c1,
        }
    }
}

impl Sub for Fq12 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            c0: self.c0 - rhs.c0,
            c1: self.c1 - rhs.c1,
        }
    }
}

impl Neg for Fq12 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            c0: -self.c0,
            c1: -self.c1,
        }
    }
}

impl Mul for Fq12 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Karatsuba over Fq6 with w^2 = v:
        let v0 = self.c0 * rhs.c0;
        let v1 = self.c1 * rhs.c1;
        let t = (self.c0 + self.c1) * (rhs.c0 + rhs.c1);
        Self {
            c0: v0 + v1.mul_by_v(),
            c1: t - v0 - v1,
        }
    }
}

impl AddAssign for Fq12 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fq12 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fq12 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Field for Fq12 {
    fn zero() -> Self {
        Self::ZERO
    }

    fn one() -> Self {
        Self {
            c0: Fq6::one(),
            c1: Fq6::zero(),
        }
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    fn square(&self) -> Self {
        // (c0 + c1 w)^2 = c0^2 + v c1^2 + 2 c0 c1 w
        let v0 = self.c0 * self.c1;
        let t = (self.c0 + self.c1) * (self.c0 + self.c1.mul_by_v());
        Self {
            c0: t - v0 - v0.mul_by_v(),
            c1: v0.double(),
        }
    }

    fn inverse(&self) -> Option<Self> {
        // (c0 - c1 w) / (c0^2 - v c1^2)
        let det = self.c0.square() - self.c1.square().mul_by_v();
        det.inverse().map(|dinv| Self {
            c0: self.c0 * dinv,
            c1: -(self.c1 * dinv),
        })
    }

    fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self {
            c0: Fq6::random(rng),
            c1: Fq6::random(rng),
        }
    }

    fn from_u64(v: u64) -> Self {
        Self {
            c0: Fq6::from_u64(v),
            c1: Fq6::zero(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(12)
    }

    #[test]
    fn w_squared_is_v() {
        let w = Fq12::new(Fq6::zero(), Fq6::one());
        let v = Fq12::new(Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero()), Fq6::zero());
        assert_eq!(w.square(), v);
    }

    #[test]
    fn w_sixth_is_xi() {
        let w = Fq12::new(Fq6::zero(), Fq6::one());
        let xi = Fq12::new(
            Fq6::new(Fq2::xi(), Fq2::zero(), Fq2::zero()),
            Fq6::zero(),
        );
        assert_eq!(w.pow(&[6, 0, 0, 0]), xi);
    }

    #[test]
    fn square_matches_mul() {
        let mut rng = rng();
        for _ in 0..10 {
            let a = Fq12::random(&mut rng);
            assert_eq!(a.square(), a * a);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = rng();
        for _ in 0..5 {
            let a = Fq12::random(&mut rng);
            assert_eq!(a * a.inverse().unwrap(), Fq12::one());
        }
    }

    #[test]
    fn frobenius_matches_pow() {
        let mut rng = rng();
        let a = Fq12::random(&mut rng);
        assert_eq!(a.frobenius(1), a.pow(&FqParams::MODULUS));
    }

    #[test]
    fn frobenius_composes() {
        let mut rng = rng();
        let a = Fq12::random(&mut rng);
        assert_eq!(a.frobenius(1).frobenius(1), a.frobenius(2));
        assert_eq!(a.frobenius(2).frobenius(1), a.frobenius(3));
        assert_eq!(a.frobenius(6).frobenius(6), a);
    }

    #[test]
    fn conjugate_is_frobenius_six() {
        let mut rng = rng();
        let a = Fq12::random(&mut rng);
        assert_eq!(a.conjugate(), a.frobenius(6));
    }

    /// Projects a random element into the cyclotomic subgroup via the
    /// easy part of the final exponentiation: `f^{(q^6 - 1)(q^2 + 1)}`.
    fn random_cyclotomic(rng: &mut impl rand::RngCore) -> Fq12 {
        let f = Fq12::random(rng);
        let t = f.conjugate() * f.inverse().expect("random is nonzero");
        t.frobenius(2) * t
    }

    #[test]
    fn cyclotomic_projection_is_cyclotomic() {
        let mut rng = rng();
        let u = random_cyclotomic(&mut rng);
        assert!(u.is_unitary());
        assert!(u.is_cyclotomic());
        // a merely-unitary element is generally NOT cyclotomic
        let f = Fq12::random(&mut rng);
        let unitary = f.conjugate() * f.inverse().unwrap();
        assert!(unitary.is_unitary());
        assert!(!unitary.is_cyclotomic());
    }

    #[test]
    fn mul_by_034_matches_generic() {
        let mut rng = rng();
        for _ in 0..10 {
            let f = Fq12::random(&mut rng);
            let (c0, c3, c4) = (
                Fq2::random(&mut rng),
                Fq2::random(&mut rng),
                Fq2::random(&mut rng),
            );
            let sparse = Fq12::new(
                Fq6::new(c0, Fq2::zero(), Fq2::zero()),
                Fq6::new(c3, c4, Fq2::zero()),
            );
            assert_eq!(f.mul_by_034(c0, c3, c4), f * sparse);
        }
    }

    #[test]
    fn mul_034_by_034_matches_generic() {
        let mut rng = rng();
        for _ in 0..10 {
            let a = (
                Fq2::random(&mut rng),
                Fq2::random(&mut rng),
                Fq2::random(&mut rng),
            );
            let b = (
                Fq2::random(&mut rng),
                Fq2::random(&mut rng),
                Fq2::random(&mut rng),
            );
            let dense = |t: (Fq2, Fq2, Fq2)| {
                Fq12::new(
                    Fq6::new(t.0, Fq2::zero(), Fq2::zero()),
                    Fq6::new(t.1, t.2, Fq2::zero()),
                )
            };
            assert_eq!(Fq12::mul_034_by_034(a, b), dense(a) * dense(b));
        }
    }

    #[test]
    fn cyclotomic_square_matches_square() {
        let mut rng = rng();
        for _ in 0..10 {
            let u = random_cyclotomic(&mut rng);
            assert_eq!(u.cyclotomic_square(), u.square());
        }
        assert_eq!(Fq12::one().cyclotomic_square(), Fq12::one());
    }

    #[test]
    fn compressed_square_matches_cyclotomic_square() {
        let mut rng = rng();
        for _ in 0..5 {
            let u = random_cyclotomic(&mut rng);
            let sq = u.cyclotomic_square();
            let c = CompressedFq12::compress(&u).square();
            // compare the four carried components against the full square
            assert_eq!(c.b0, sq.c1.c0);
            assert_eq!(c.b1, sq.c0.c2);
            assert_eq!(c.c0, sq.c0.c1);
            assert_eq!(c.c1, sq.c1.c2);
            // and decompression recovers the dropped `a` component
            let back = CompressedFq12::batch_decompress(&[c]).expect("c != 0");
            assert_eq!(back[0], sq);
        }
    }

    #[test]
    fn cyclotomic_pow_x_matches_generic() {
        let mut rng = rng();
        for _ in 0..3 {
            let u = random_cyclotomic(&mut rng);
            assert_eq!(u.cyclotomic_pow_x(), u.pow_x());
        }
        // degenerate fallback path
        assert_eq!(Fq12::one().cyclotomic_pow_x(), Fq12::one());
    }

    #[test]
    fn cyclotomic_exp_matches_generic_pow() {
        let mut rng = rng();
        let u = random_cyclotomic(&mut rng);
        for exp in [
            [0u64, 0, 0, 0],
            [1, 0, 0, 0],
            [BN_X, 0, 0, 0],
            [u64::MAX, u64::MAX, 7, 0],
            FqParams::MODULUS,
        ] {
            assert_eq!(u.cyclotomic_exp(&exp), u.pow(&exp));
        }
        assert_eq!(Fq12::one().cyclotomic_exp(&[5, 0, 0, 0]), Fq12::one());
    }

    #[test]
    fn naf_digits_reconstruct() {
        for exp in [[0u64, 0], [1, 0], [BN_X, 0], [u64::MAX, u64::MAX]] {
            let digits = super::naf_digits(&exp);
            // no two adjacent non-zeros
            for w in digits.windows(2) {
                assert!(w[0] == 0 || w[1] == 0, "adjacent NAF digits in {exp:?}");
            }
            // digits re-sum to the value (checked in i128 chunks)
            let mut acc = 0i128;
            for (i, &d) in digits.iter().enumerate().take(120) {
                acc += (d as i128) << i;
            }
            if exp[1] == 0 && digits.len() <= 120 {
                assert_eq!(acc, exp[0] as i128);
            }
        }
    }
}
