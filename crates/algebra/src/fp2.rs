//! Quadratic extension `Fq2 = Fq[u] / (u^2 + 1)`.
//!
//! `-1` is a non-residue mod `q` because `q = 3 mod 4`. The sextic twist
//! non-residue used further up the tower is `xi = 9 + u`.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::field::Field;
use crate::fields::Fq;

/// An element `c0 + c1*u` of `Fq2`.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Fq2 {
    /// Constant coefficient.
    pub c0: Fq,
    /// Coefficient of `u`.
    pub c1: Fq,
}

impl Fq2 {
    /// Zero.
    pub const ZERO: Self = Self {
        c0: Fq::ZERO,
        c1: Fq::ZERO,
    };

    /// Builds from coefficients.
    pub const fn new(c0: Fq, c1: Fq) -> Self {
        Self { c0, c1 }
    }

    /// Embeds a base-field element.
    pub fn from_base(c0: Fq) -> Self {
        Self {
            c0,
            c1: Fq::zero(),
        }
    }

    /// The sextic-twist non-residue `xi = 9 + u`.
    pub fn xi() -> Self {
        Self::new(Fq::from_u64(9), Fq::one())
    }

    /// Complex conjugation `c0 - c1*u`; this is also the `q`-power
    /// Frobenius endomorphism of `Fq2`.
    pub fn conjugate(&self) -> Self {
        Self {
            c0: self.c0,
            c1: -self.c1,
        }
    }

    /// Multiplication by the non-residue `xi = 9 + u`:
    /// `(9 c0 - c1) + (c0 + 9 c1) u`.
    pub fn mul_by_nonresidue(&self) -> Self {
        let nine_c0 = self.c0.double().double().double() + self.c0;
        let nine_c1 = self.c1.double().double().double() + self.c1;
        Self {
            c0: nine_c0 - self.c1,
            c1: self.c0 + nine_c1,
        }
    }

    /// Scales by a base-field element.
    pub fn scale(&self, k: Fq) -> Self {
        Self {
            c0: self.c0 * k,
            c1: self.c1 * k,
        }
    }

    /// The field norm `c0^2 + c1^2` in `Fq`.
    pub fn norm(&self) -> Fq {
        self.c0.square() + self.c1.square()
    }
}

impl fmt::Debug for Fq2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fq2({:?} + {:?}*u)", self.c0, self.c1)
    }
}

impl Add for Fq2 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            c0: self.c0 + rhs.c0,
            c1: self.c1 + rhs.c1,
        }
    }
}

impl Sub for Fq2 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            c0: self.c0 - rhs.c0,
            c1: self.c1 - rhs.c1,
        }
    }
}

impl Neg for Fq2 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            c0: -self.c0,
            c1: -self.c1,
        }
    }
}

impl Mul for Fq2 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        // Karatsuba: (a0 b0 - a1 b1) + ((a0+a1)(b0+b1) - a0 b0 - a1 b1) u
        let v0 = self.c0 * rhs.c0;
        let v1 = self.c1 * rhs.c1;
        let t = (self.c0 + self.c1) * (rhs.c0 + rhs.c1);
        Self {
            c0: v0 - v1,
            c1: t - v0 - v1,
        }
    }
}

impl AddAssign for Fq2 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fq2 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fq2 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Field for Fq2 {
    fn zero() -> Self {
        Self::ZERO
    }

    fn one() -> Self {
        Self {
            c0: Fq::one(),
            c1: Fq::zero(),
        }
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    fn square(&self) -> Self {
        // (a0 + a1 u)^2 = (a0+a1)(a0-a1) + 2 a0 a1 u
        let s = self.c0 + self.c1;
        let d = self.c0 - self.c1;
        let p = self.c0 * self.c1;
        Self {
            c0: s * d,
            c1: p.double(),
        }
    }

    fn inverse(&self) -> Option<Self> {
        // (c0 - c1 u) / (c0^2 + c1^2)
        let n = self.norm();
        n.inverse().map(|ninv| Self {
            c0: self.c0 * ninv,
            c1: -(self.c1 * ninv),
        })
    }

    fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self {
            c0: Fq::random(rng),
            c1: Fq::random(rng),
        }
    }

    fn from_u64(v: u64) -> Self {
        Self::from_base(Fq::from_u64(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2)
    }

    #[test]
    fn u_squared_is_minus_one() {
        let u = Fq2::new(Fq::zero(), Fq::one());
        assert_eq!(u.square(), -Fq2::one());
    }

    #[test]
    fn mul_matches_square() {
        let mut rng = rng();
        for _ in 0..20 {
            let a = Fq2::random(&mut rng);
            assert_eq!(a * a, a.square());
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = rng();
        for _ in 0..20 {
            let a = Fq2::random(&mut rng);
            assert_eq!(a * a.inverse().unwrap(), Fq2::one());
        }
        assert!(Fq2::ZERO.inverse().is_none());
    }

    #[test]
    fn mul_by_nonresidue_matches_mul_by_xi() {
        let mut rng = rng();
        for _ in 0..20 {
            let a = Fq2::random(&mut rng);
            assert_eq!(a.mul_by_nonresidue(), a * Fq2::xi());
        }
    }

    #[test]
    fn conjugate_is_frobenius() {
        let mut rng = rng();
        let a = Fq2::random(&mut rng);
        // a^q must equal conjugate(a)
        assert_eq!(a.pow(&crate::fp::Fp::<crate::fields::FqParams>::modulus()), a.conjugate());
    }

    #[test]
    fn distributivity() {
        let mut rng = rng();
        let (a, b, c) = (
            Fq2::random(&mut rng),
            Fq2::random(&mut rng),
            Fq2::random(&mut rng),
        );
        assert_eq!(a * (b + c), a * b + a * c);
    }
}
