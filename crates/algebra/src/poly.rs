//! Dense univariate polynomials over `Fr`.
//!
//! Provides exactly what the audit protocol and the SNARK need: evaluation,
//! arithmetic, synthetic division by `(x - r)` (the KZG witness
//! polynomial), and Lagrange interpolation (both for the §V-C attack and
//! for tests).

use crate::field::{batch_inverse, Field};
use crate::fields::Fr;

/// A dense polynomial `c0 + c1 x + ... + cd x^d`, coefficients low-to-high.
/// The zero polynomial is the empty coefficient vector.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct DensePoly {
    coeffs: Vec<Fr>,
}

impl DensePoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { coeffs: Vec::new() }
    }

    /// Builds from coefficients (low to high); trailing zeros are trimmed.
    pub fn from_coeffs(coeffs: Vec<Fr>) -> Self {
        let mut p = Self { coeffs };
        p.trim();
        p
    }

    fn trim(&mut self) {
        while self.coeffs.last().map(Field::is_zero).unwrap_or(false) {
            self.coeffs.pop();
        }
    }

    /// Coefficient view (low to high, no trailing zeros).
    pub fn coeffs(&self) -> &[Fr] {
        &self.coeffs
    }

    /// Degree; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// True for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Horner evaluation at `x`.
    pub fn evaluate(&self, x: Fr) -> Fr {
        let mut acc = Fr::zero();
        for c in self.coeffs.iter().rev() {
            acc = acc * x + *c;
        }
        acc
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.coeffs.get(i).copied().unwrap_or_else(Fr::zero);
            let b = other.coeffs.get(i).copied().unwrap_or_else(Fr::zero);
            out.push(a + b);
        }
        Self::from_coeffs(out)
    }

    /// Scales all coefficients by `k`.
    pub fn scale(&self, k: Fr) -> Self {
        Self::from_coeffs(self.coeffs.iter().map(|c| *c * k).collect())
    }

    /// School-book multiplication (fine for the sizes the protocol uses).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![Fr::zero(); self.coeffs.len() + other.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            for (j, b) in other.coeffs.iter().enumerate() {
                out[i + j] += *a * *b;
            }
        }
        Self::from_coeffs(out)
    }

    /// Synthetic division by the linear factor `(x - r)`.
    ///
    /// Returns the quotient `q(x)` and remainder `rem` with
    /// `self = q(x)(x - r) + rem`. For the KZG opening, `rem == self(r)`.
    pub fn divide_by_linear(&self, r: Fr) -> (Self, Fr) {
        if self.is_zero() {
            return (Self::zero(), Fr::zero());
        }
        let n = self.coeffs.len();
        let mut quot = vec![Fr::zero(); n - 1];
        let mut carry = Fr::zero();
        for i in (0..n).rev() {
            let c = self.coeffs[i] + carry * r;
            if i == 0 {
                return (Self::from_coeffs(quot), c);
            }
            quot[i - 1] = c;
            carry = c;
        }
        unreachable!("loop returns at i == 0")
    }

    /// Lagrange interpolation through distinct points `(x_i, y_i)`,
    /// `O(n^2)`. Used by the on-chain-privacy attack of §V-C.
    ///
    /// # Panics
    /// Panics if two x-coordinates coincide.
    pub fn interpolate(points: &[(Fr, Fr)]) -> Self {
        let n = points.len();
        if n == 0 {
            return Self::zero();
        }
        // denominators d_i = prod_{j != i} (x_i - x_j), inverted in batch
        let mut denoms = vec![Fr::one(); n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let diff = points[i].0 - points[j].0;
                    assert!(!diff.is_zero(), "interpolation points must be distinct");
                    denoms[i] *= diff;
                }
            }
        }
        batch_inverse(&mut denoms);
        // full product N(x) = prod (x - x_j)
        let mut full = Self::from_coeffs(vec![Fr::one()]);
        for p in points {
            full = full.mul(&Self::from_coeffs(vec![-p.0, Fr::one()]));
        }
        let mut acc = Self::zero();
        for i in 0..n {
            // basis_i = N(x) / (x - x_i), exact division
            let (basis, rem) = full.divide_by_linear(points[i].0);
            debug_assert!(rem.is_zero());
            acc = acc.add(&basis.scale(points[i].1 * denoms[i]));
        }
        acc
    }

    /// Random polynomial of exactly the given number of coefficients.
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R, num_coeffs: usize) -> Self {
        Self::from_coeffs((0..num_coeffs).map(|_| Fr::random(rng)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x901)
    }

    #[test]
    fn evaluate_known() {
        // p(x) = 3 + 2x + x^2 ; p(2) = 3 + 4 + 4 = 11
        let p = DensePoly::from_coeffs(vec![
            Fr::from_u64(3),
            Fr::from_u64(2),
            Fr::from_u64(1),
        ]);
        assert_eq!(p.evaluate(Fr::from_u64(2)), Fr::from_u64(11));
    }

    #[test]
    fn divide_by_linear_is_kzg_identity() {
        let mut rng = rng();
        let p = DensePoly::random(&mut rng, 20);
        let r = Fr::random(&mut rng);
        let (q, rem) = p.divide_by_linear(r);
        assert_eq!(rem, p.evaluate(r));
        // check p(x) == q(x)(x - r) + rem at a random point
        let x = Fr::random(&mut rng);
        assert_eq!(p.evaluate(x), q.evaluate(x) * (x - r) + rem);
    }

    #[test]
    fn interpolate_recovers_poly() {
        let mut rng = rng();
        let p = DensePoly::random(&mut rng, 8);
        let points: Vec<(Fr, Fr)> = (0..8)
            .map(|i| {
                let x = Fr::from_u64(i + 1);
                (x, p.evaluate(x))
            })
            .collect();
        assert_eq!(DensePoly::interpolate(&points), p);
    }

    #[test]
    fn mul_add_consistency() {
        let mut rng = rng();
        let a = DensePoly::random(&mut rng, 5);
        let b = DensePoly::random(&mut rng, 7);
        let x = Fr::random(&mut rng);
        assert_eq!(a.mul(&b).evaluate(x), a.evaluate(x) * b.evaluate(x));
        assert_eq!(a.add(&b).evaluate(x), a.evaluate(x) + b.evaluate(x));
    }

    #[test]
    fn zero_poly_behaviour() {
        let z = DensePoly::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
        assert_eq!(z.evaluate(Fr::from_u64(5)), Fr::zero());
        let (q, rem) = z.divide_by_linear(Fr::from_u64(3));
        assert!(q.is_zero());
        assert!(rem.is_zero());
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = DensePoly::from_coeffs(vec![Fr::from_u64(1), Fr::zero(), Fr::zero()]);
        assert_eq!(p.degree(), Some(0));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn interpolate_duplicate_x_panics() {
        let pts = vec![
            (Fr::from_u64(1), Fr::from_u64(2)),
            (Fr::from_u64(1), Fr::from_u64(3)),
        ];
        let _ = DensePoly::interpolate(&pts);
    }
}
