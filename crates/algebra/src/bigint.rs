//! Fixed-width 256-bit integer helpers used by the Montgomery field
//! implementation.
//!
//! Values are little-endian arrays of four `u64` limbs. Everything here is
//! `const fn` where possible so that per-field constants (Montgomery `R`,
//! `R^2`, `-p^{-1} mod 2^64`, exponents like `(p-1)/3`) are *derived from the
//! modulus at compile time* instead of being hand-transcribed — the modulus
//! is the only constant that has to be trusted.

/// Four little-endian 64-bit limbs representing an integer in `[0, 2^256)`.
pub type Limbs = [u64; 4];

/// `a + b + carry`, returning the low 64 bits and the new carry.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// `a - b - borrow`, returning the low 64 bits and the new borrow (0 or 1).
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// `a + b * c + carry`, returning the low 64 bits and the high 64 bits.
#[inline(always)]
pub const fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + (b as u128) * (c as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Returns `true` when `a >= b` (unsigned 256-bit comparison).
#[inline]
pub const fn geq(a: &Limbs, b: &Limbs) -> bool {
    let mut i = 3;
    loop {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
        if i == 0 {
            return true; // equal
        }
        i -= 1;
    }
}

/// Returns `true` when all limbs are zero.
#[inline]
pub const fn is_zero(a: &Limbs) -> bool {
    a[0] == 0 && a[1] == 0 && a[2] == 0 && a[3] == 0
}

/// Wrapping 256-bit addition; returns `(sum, carry_out)`.
#[inline]
pub const fn add_wide(a: &Limbs, b: &Limbs) -> (Limbs, u64) {
    let (r0, c) = adc(a[0], b[0], 0);
    let (r1, c) = adc(a[1], b[1], c);
    let (r2, c) = adc(a[2], b[2], c);
    let (r3, c) = adc(a[3], b[3], c);
    ([r0, r1, r2, r3], c)
}

/// Wrapping 256-bit subtraction; returns `(diff, borrow_out)`.
#[inline]
pub const fn sub_wide(a: &Limbs, b: &Limbs) -> (Limbs, u64) {
    let (r0, bw) = sbb(a[0], b[0], 0);
    let (r1, bw) = sbb(a[1], b[1], bw);
    let (r2, bw) = sbb(a[2], b[2], bw);
    let (r3, bw) = sbb(a[3], b[3], bw);
    ([r0, r1, r2, r3], bw)
}

/// `a - b` assuming `a >= b`.
#[inline]
pub const fn sub(a: &Limbs, b: &Limbs) -> Limbs {
    sub_wide(a, b).0
}

/// Subtract a small constant, assuming no underflow.
pub const fn sub_small(a: &Limbs, k: u64) -> Limbs {
    sub(a, &[k, 0, 0, 0])
}

/// Add a small constant, assuming no overflow past 256 bits.
pub const fn add_small(a: &Limbs, k: u64) -> Limbs {
    add_wide(a, &[k, 0, 0, 0]).0
}

/// Logical right shift by `k < 64` bits.
pub const fn shr(a: &Limbs, k: u32) -> Limbs {
    if k == 0 {
        return *a;
    }
    let mut r = [0u64; 4];
    let mut i = 0;
    while i < 4 {
        r[i] = a[i] >> k;
        if i < 3 {
            r[i] |= a[i + 1] << (64 - k);
        }
        i += 1;
    }
    r
}

/// Divide by a small divisor `d`, returning the quotient (remainder dropped).
pub const fn div_small(a: &Limbs, d: u64) -> Limbs {
    let mut out = [0u64; 4];
    let mut rem: u128 = 0;
    let mut i = 3usize;
    loop {
        let cur = (rem << 64) | a[i] as u128;
        out[i] = (cur / d as u128) as u64;
        rem = cur % d as u128;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    out
}

/// `2^k mod m`, computed by `k` modular doublings of 1.
///
/// Requires `m` odd with its top bit clear (true for every 254-bit modulus we
/// use), so that doubling never overflows past a single carry bit.
pub const fn pow2k_mod(k: u32, m: &Limbs) -> Limbs {
    let mut r = [1u64, 0, 0, 0];
    let mut i = 0;
    while i < k {
        // r = 2r (with carry-out), then conditionally reduce.
        let mut carry = 0u64;
        let mut nr = [0u64; 4];
        let mut j = 0;
        while j < 4 {
            let v = ((r[j] as u128) << 1) | carry as u128;
            nr[j] = v as u64;
            carry = (v >> 64) as u64;
            j += 1;
        }
        r = nr;
        if carry == 1 || geq(&r, m) {
            r = sub(&r, m);
        }
        i += 1;
    }
    r
}

/// `-m^{-1} mod 2^64` for odd `m` (Newton–Hensel iteration).
pub const fn mont_inv64(m0: u64) -> u64 {
    let mut inv = 1u64;
    let mut i = 0;
    // Each iteration doubles the number of correct low bits; 6 suffice for
    // 64 bits, a few extra iterations are free at compile time.
    while i < 8 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
}

/// Number of trailing zero bits (0 for zero input handled as 256).
pub const fn trailing_zeros(a: &Limbs) -> u32 {
    let mut i = 0;
    let mut total = 0u32;
    while i < 4 {
        if a[i] != 0 {
            return total + a[i].trailing_zeros();
        }
        total += 64;
        i += 1;
    }
    total
}

/// Bit `i` of `a` (little-endian bit order).
#[inline]
pub const fn bit(a: &Limbs, i: u32) -> bool {
    (a[(i / 64) as usize] >> (i % 64)) & 1 == 1
}

/// Index of the highest set bit, or `None` for zero.
pub fn highest_bit(a: &Limbs) -> Option<u32> {
    for i in (0..4).rev() {
        if a[i] != 0 {
            return Some(i as u32 * 64 + 63 - a[i].leading_zeros());
        }
    }
    None
}

/// Full 256x256 -> 512-bit school-book multiplication.
pub const fn mul_wide(a: &Limbs, b: &Limbs) -> [u64; 8] {
    let mut t = [0u64; 8];
    let mut i = 0;
    while i < 4 {
        let mut carry = 0u64;
        let mut j = 0;
        while j < 4 {
            let (lo, hi) = mac(t[i + j], a[i], b[j], carry);
            t[i + j] = lo;
            carry = hi;
            j += 1;
        }
        t[i + 4] = carry;
        i += 1;
    }
    t
}

/// Binary long division of a 512-bit value by a non-zero 256-bit divisor:
/// returns `(quotient, remainder)` with `a = q * d + rem`, `rem < d`.
///
/// Used once per GLV decomposition (Babai rounding), so the simple
/// shift-subtract loop is plenty fast.
///
/// # Panics
/// Panics when the divisor is zero.
pub fn div_rem_wide(a: &[u64; 8], d: &Limbs) -> ([u64; 8], Limbs) {
    assert!(!is_zero(d), "division by zero");
    let mut q = [0u64; 8];
    let mut rem: Limbs = [0; 4];
    for i in (0..512).rev() {
        // rem = 2*rem + bit_i(a); the shift can carry past 256 bits when
        // the divisor occupies the full width, so track the carry-out.
        let mut carry = (a[i / 64] >> (i % 64)) & 1;
        for limb in rem.iter_mut() {
            let next = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = next;
        }
        if carry == 1 || geq(&rem, d) {
            // with carry, (2^256 + rem) - d wraps to the correct value
            rem = sub_wide(&rem, d).0;
            q[i / 64] |= 1 << (i % 64);
        }
    }
    (q, rem)
}

/// Parses a decimal string into limbs. Returns `None` on invalid characters
/// or overflow past 256 bits.
pub fn from_decimal(s: &str) -> Option<Limbs> {
    let mut acc = [0u64; 4];
    for ch in s.bytes() {
        if !ch.is_ascii_digit() {
            return None;
        }
        // acc = acc * 10 + digit
        let mut carry = (ch - b'0') as u64;
        for limb in acc.iter_mut() {
            let v = (*limb as u128) * 10 + carry as u128;
            *limb = v as u64;
            carry = (v >> 64) as u64;
        }
        if carry != 0 {
            return None;
        }
    }
    Some(acc)
}

/// Formats limbs as a big-endian hex string (no leading `0x`).
pub fn to_hex(a: &Limbs) -> String {
    format!("{:016x}{:016x}{:016x}{:016x}", a[3], a[2], a[1], a[0])
}

/// Big-endian byte serialization (32 bytes).
pub fn to_bytes_be(a: &Limbs) -> [u8; 32] {
    let mut out = [0u8; 32];
    for i in 0..4 {
        out[i * 8..(i + 1) * 8].copy_from_slice(&a[3 - i].to_be_bytes());
    }
    out
}

/// Big-endian byte parsing (32 bytes).
pub fn from_bytes_be(bytes: &[u8; 32]) -> Limbs {
    let mut limbs = [0u64; 4];
    for i in 0..4 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
        limbs[3 - i] = u64::from_be_bytes(buf);
    }
    limbs
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Limbs = [
        0x3c208c16d87cfd47,
        0x97816a916871ca8d,
        0xb85045b68181585d,
        0x30644e72e131a029,
    ];

    #[test]
    fn add_sub_roundtrip() {
        let a = [1u64, 2, 3, 4];
        let b = [5u64, 6, 7, 8];
        let (s, c) = add_wide(&a, &b);
        assert_eq!(c, 0);
        let (d, bw) = sub_wide(&s, &b);
        assert_eq!(bw, 0);
        assert_eq!(d, a);
    }

    #[test]
    fn pow2k_small() {
        let m = [97u64, 0, 0, 0];
        assert_eq!(pow2k_mod(10, &m), [1024 % 97, 0, 0, 0]);
    }

    #[test]
    fn mont_inv_is_inverse() {
        let inv = mont_inv64(P[0]);
        assert_eq!(P[0].wrapping_mul(inv.wrapping_neg()), 1);
    }

    #[test]
    fn div_small_exact() {
        // (p - 1) is divisible by 2; check (p-1)/2 * 2 + 1 == p
        let pm1 = sub_small(&P, 1);
        let half = div_small(&pm1, 2);
        let (dbl, c) = add_wide(&half, &half);
        assert_eq!(c, 0);
        assert_eq!(add_small(&dbl, 1), P);
    }

    #[test]
    fn decimal_parse_matches_hex() {
        let p = from_decimal(
            "21888242871839275222246405745257275088696311157297823662689037894645226208583",
        )
        .unwrap();
        assert_eq!(p, P);
    }

    #[test]
    fn bytes_roundtrip() {
        let a = [0x0123456789abcdefu64, 0xfedcba9876543210, 42, 7];
        assert_eq!(from_bytes_be(&to_bytes_be(&a)), a);
    }

    #[test]
    fn mul_wide_small() {
        let a = [u64::MAX, 0, 0, 0];
        let b = [u64::MAX, 0, 0, 0];
        let t = mul_wide(&a, &b);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(t[0], 1);
        assert_eq!(t[1], u64::MAX - 1);
        assert_eq!(&t[2..], &[0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn div_rem_wide_roundtrip() {
        // a = q*d + rem exactly, rem < d, for a few structured cases
        let cases: [([u64; 8], Limbs); 4] = [
            ([u64::MAX; 8], P),
            ([1, 0, 0, 0, 0, 0, 0, 0], P),
            ([0, 0, 0, 0, 1, 0, 0, 0], [3, 0, 0, 0]),
            (
                [0xdeadbeef, 42, 0, 7, 0, 0xabc, 0, 1 << 62],
                [5, 0, 0, 1 << 63],
            ),
        ];
        for (a, d) in cases {
            let (q, rem) = div_rem_wide(&a, &d);
            assert!(!geq(&rem, &d) || is_zero(&d), "rem must be < d");
            // recompute q*d + rem over 512 bits (school-book)
            let mut t = [0u64; 8];
            for i in 0..8 {
                let mut carry = 0u64;
                for j in 0..4 {
                    if i + j < 8 {
                        let (lo, hi) = mac(t[i + j], q[i], d[j], carry);
                        t[i + j] = lo;
                        carry = hi;
                    }
                }
                if i + 4 < 8 {
                    t[i + 4] = t[i + 4].wrapping_add(carry);
                }
            }
            let mut carry = 0u64;
            for (i, limb) in t.iter_mut().enumerate() {
                let (s, c) = adc(*limb, if i < 4 { rem[i] } else { 0 }, carry);
                *limb = s;
                carry = c;
            }
            assert_eq!(t, a);
        }
    }

    #[test]
    fn highest_bit_works() {
        assert_eq!(highest_bit(&[0, 0, 0, 0]), None);
        assert_eq!(highest_bit(&[1, 0, 0, 0]), Some(0));
        assert_eq!(highest_bit(&[0, 0, 0, 1 << 63]), Some(255));
    }
}
