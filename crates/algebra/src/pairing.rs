//! The optimal ate pairing `e : G1 x G2 -> GT` on BN254.
//!
//! The implementation favors auditability over raw speed: G2 points are
//! embedded into `E(Fq12)` through the sextic twist
//! `psi(x, y) = (x w^2, y w^3)` and the Miller loop runs in affine `Fq12`
//! coordinates with explicit line functions (the same structure as the
//! reference `py_ecc` implementation). The final exponentiation uses the
//! standard cyclotomic addition chain for `x = 4965661367192848881`,
//! cross-checked in tests against a generic big-integer exponentiation
//! derived from the curve order itself.

use std::sync::OnceLock;

use crate::bigint;
use crate::biguint::BigUint;
use crate::field::Field;
use crate::fields::{Fr, FqParams, FrParams, ATE_LOOP_COUNT};
use crate::fp::FieldParams;
use crate::fp12::Fq12;
use crate::fp2::Fq2;
use crate::fp6::Fq6;
use crate::g1::G1Affine;
use crate::g2::G2Affine;

/// A point of `E(Fq12)` in affine coordinates (never the identity inside
/// the Miller loop).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Ept {
    x: Fq12,
    y: Fq12,
}

/// Embeds an `Fq2` element `a` as `a * w^2` (i.e. at the `v^1` slot of c0).
fn embed_w2(a: Fq2) -> Fq12 {
    Fq12::new(Fq6::new(Fq2::zero(), a, Fq2::zero()), Fq6::zero())
}

/// Embeds an `Fq2` element `a` as `a * w^3` (i.e. at the `v^1` slot of c1).
fn embed_w3(a: Fq2) -> Fq12 {
    Fq12::new(Fq6::zero(), Fq6::new(Fq2::zero(), a, Fq2::zero()))
}

/// The untwisting embedding `psi: E'(Fq2) -> E(Fq12)`.
fn untwist(q: &G2Affine) -> Ept {
    Ept {
        x: embed_w2(q.x),
        y: embed_w3(q.y),
    }
}

/// Evaluates the line through `a` and `b` (tangent when `a == b`) at `t`.
/// Also returns `a + b` so the Miller loop shares the slope computation.
fn line_and_add(a: &Ept, b: &Ept, xt: &Fq12, yt: &Fq12) -> (Fq12, Ept) {
    let m = if a.x != b.x {
        (b.y - a.y) * (b.x - a.x).inverse().expect("distinct x")
    } else {
        debug_assert_eq!(a.y, b.y, "vertical line must not occur in the loop");
        let x2 = a.x.square();
        (x2 + x2 + x2) * a.y.double().inverse().expect("y != 0")
    };
    let line = m * (*xt - a.x) - (*yt - a.y);
    let x3 = m.square() - a.x - b.x;
    let y3 = m * (a.x - x3) - a.y;
    (line, Ept { x: x3, y: y3 })
}

/// The Miller loop `f_{6x+2, Q}(P)` of the optimal ate pairing, including
/// the two Frobenius correction lines. Returns an unreduced `Fq12` value.
pub fn miller_loop(p: &G1Affine, q: &G2Affine) -> Fq12 {
    if p.infinity || q.infinity {
        return Fq12::one();
    }
    let xt = Fq12::from_fq(p.x);
    let yt = Fq12::from_fq(p.y);
    let q_emb = untwist(q);
    let mut r = q_emb;
    let mut f = Fq12::one();
    let top = 127 - ATE_LOOP_COUNT.leading_zeros();
    for i in (0..top).rev() {
        let (line, r2) = line_and_add(&r, &r, &xt, &yt);
        f = f.square() * line;
        r = r2;
        if (ATE_LOOP_COUNT >> i) & 1 == 1 {
            let (line, radd) = line_and_add(&r, &q_emb, &xt, &yt);
            f *= line;
            r = radd;
        }
    }
    // Frobenius corrections: Q1 = pi(Q), nQ2 = -pi^2(Q).
    let q1 = Ept {
        x: q_emb.x.frobenius(1),
        y: q_emb.y.frobenius(1),
    };
    let nq2 = Ept {
        x: q1.x.frobenius(1),
        y: -q1.y.frobenius(1),
    };
    let (line, r1) = line_and_add(&r, &q1, &xt, &yt);
    f *= line;
    let (line, _) = line_and_add(&r1, &nq2, &xt, &yt);
    f * line
}

/// Easy part of the final exponentiation: `f^{(q^6 - 1)(q^2 + 1)}`.
/// The output is unitary (lies in the cyclotomic subgroup).
fn final_exp_easy(f: &Fq12) -> Fq12 {
    let inv = f.inverse().expect("Miller loop output is nonzero");
    let t = f.conjugate() * inv; // f^{q^6 - 1}
    t.frobenius(2) * t // ^(q^2 + 1)
}

/// `f^{-x}` for unitary `f` (conjugate of `f^x`).
fn exp_by_neg_x(f: &Fq12) -> Fq12 {
    f.pow_x().conjugate()
}

/// Hard part `f^{(q^4 - q^2 + 1)/r}` via the standard BN addition chain
/// (Aranha et al., as deployed for alt_bn128). Requires unitary input.
fn final_exp_hard(f: &Fq12) -> Fq12 {
    let a = exp_by_neg_x(f);
    let b = a.square();
    let c = b.square();
    let d = c * b;

    let e = exp_by_neg_x(&d);
    let g = e.square();
    let h = exp_by_neg_x(&g);
    let i = d.conjugate();
    let j = h.conjugate();

    let k = j * e;
    let l = k * i;
    let m = l * b;
    let n = l * e;
    let o = *f * n;

    let p = m.frobenius(1);
    let q = p * o;

    let r = l.frobenius(2);
    let s = r * q;

    let t = f.conjugate();
    let u = t * m;
    let v = u.frobenius(3);

    v * s
}

/// Generic hard part via a big-integer exponent `(q^4 - q^2 + 1)/r`,
/// used as the correctness oracle for the deployed addition chain.
pub fn final_exp_hard_generic(f: &Fq12) -> Fq12 {
    static EXP: OnceLock<Vec<u64>> = OnceLock::new();
    let exp = EXP.get_or_init(|| {
        let q = BigUint::from_limbs(&FqParams::MODULUS);
        let r = BigUint::from_limbs(&FrParams::MODULUS);
        let q2 = q.mul(&q);
        let q4 = q2.mul(&q2);
        let num = q4.sub(&q2).add(&BigUint::one());
        let (quot, rem) = num.div_rem(&r);
        assert!(rem.is_zero(), "r must divide q^4 - q^2 + 1");
        quot.limbs().to_vec()
    });
    f.pow(exp)
}

/// Full final exponentiation `f^{(q^12 - 1)/r}`.
pub fn final_exponentiation(f: &Fq12) -> Gt {
    let easy = final_exp_easy(f);
    Gt(final_exp_hard(&easy))
}

/// The optimal ate pairing `e(P, Q)`.
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Gt {
    final_exponentiation(&miller_loop(p, q))
}

/// Product of pairings `prod_i e(P_i, Q_i)` with a single shared final
/// exponentiation — the workhorse of proof verification.
pub fn multi_pairing(pairs: &[(G1Affine, G2Affine)]) -> Gt {
    let mut f = Fq12::one();
    for (p, q) in pairs {
        f *= miller_loop(p, q);
    }
    final_exponentiation(&f)
}

/// An element of the pairing target group `GT` (order `r`, multiplicative).
///
/// Wraps a unitary `Fq12` element. Group notation is multiplicative:
/// [`Gt::mul`] combines audits, [`Gt::pow`] exponentiates by a scalar.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Gt(pub(crate) Fq12);

impl Default for Gt {
    fn default() -> Self {
        Self::identity()
    }
}

impl Gt {
    /// The group identity.
    pub fn identity() -> Self {
        Gt(Fq12::one())
    }

    /// `e(g1, g2)` for the canonical generators — a generator of `GT`.
    pub fn generator() -> Self {
        static GEN: OnceLock<Gt> = OnceLock::new();
        *GEN.get_or_init(|| pairing(&G1Affine::generator(), &G2Affine::generator()))
    }

    /// Group operation.
    pub fn mul(&self, other: &Self) -> Self {
        Gt(self.0 * other.0)
    }

    /// Group inverse (conjugation, valid for unitary elements).
    pub fn invert(&self) -> Self {
        Gt(self.0.conjugate())
    }

    /// Exponentiation by a scalar.
    pub fn pow(&self, k: Fr) -> Self {
        Gt(self.0.pow(&k.to_canonical()))
    }

    /// True for the identity.
    pub fn is_identity(&self) -> bool {
        self.0 == Fq12::one()
    }

    /// Raw access to the underlying field element.
    pub fn as_fq12(&self) -> &Fq12 {
        &self.0
    }

    /// Torus (T2) compression to 192 bytes.
    ///
    /// For a unitary element `m = m0 + m1 w`, the compressed form is
    /// `g = (1 + m0) / m1` in `Fq6` (six `Fq` coefficients of 32 bytes
    /// each); decompression recovers `m = (g + w)/(g - w)`. The identity
    /// (the only GT element with `m1 = 0`) is flagged in the top bit of
    /// the first byte. This is what makes the paper's 288-byte audit
    /// proof accounting (3x32 B + 192 B) honest.
    pub fn to_compressed(&self) -> [u8; 192] {
        let mut out = [0u8; 192];
        if self.0.c1.is_zero() {
            // unitary with m1 = 0 implies m0 = +-1; in odd-order GT only +1.
            out[0] = 0x80;
            return out;
        }
        let g = (Fq6::one() + self.0.c0)
            * self.0.c1.inverse().expect("nonzero checked above");
        for (i, fq) in [g.c0.c0, g.c0.c1, g.c1.c0, g.c1.c1, g.c2.c0, g.c2.c1]
            .iter()
            .enumerate()
        {
            out[i * 32..(i + 1) * 32].copy_from_slice(&fq.to_bytes_be());
        }
        debug_assert_eq!(out[0] & 0x80, 0, "Fq fits 254 bits");
        out
    }

    /// Decompresses a torus-encoded element. Returns `None` for malformed
    /// encodings. The result is always unitary; membership in the order-`r`
    /// subgroup is the verifier equation's job.
    pub fn from_compressed(bytes: &[u8; 192]) -> Option<Self> {
        if bytes[0] & 0x80 != 0 {
            let ok = bytes[0] == 0x80 && bytes[1..].iter().all(|&b| b == 0);
            return ok.then(Self::identity);
        }
        let mut coeffs = [crate::fields::Fq::ZERO; 6];
        for (i, c) in coeffs.iter_mut().enumerate() {
            let mut buf = [0u8; 32];
            buf.copy_from_slice(&bytes[i * 32..(i + 1) * 32]);
            *c = crate::fields::Fq::from_bytes_be(&buf)?;
        }
        let g = Fq6::new(
            Fq2::new(coeffs[0], coeffs[1]),
            Fq2::new(coeffs[2], coeffs[3]),
            Fq2::new(coeffs[4], coeffs[5]),
        );
        // m = (g + w) / (g - w); both live in Fq12.
        let gw_plus = Fq12::new(g, Fq6::one());
        let gw_minus = Fq12::new(g, -Fq6::one());
        let m = gw_plus * gw_minus.inverse()?;
        Some(Gt(m))
    }

    /// Uncompressed 384-byte serialization (12 `Fq` coefficients).
    pub fn to_uncompressed(&self) -> [u8; 384] {
        let mut out = [0u8; 384];
        let sixes = [self.0.c0, self.0.c1];
        let mut idx = 0;
        for s in &sixes {
            for fq2 in [s.c0, s.c1, s.c2] {
                for fq in [fq2.c0, fq2.c1] {
                    out[idx * 32..(idx + 1) * 32].copy_from_slice(&fq.to_bytes_be());
                    idx += 1;
                }
            }
        }
        out
    }
}

/// Exponentiates `Gt` by a raw 256-bit canonical integer (used by tests).
pub fn gt_pow_limbs(g: &Gt, limbs: &bigint::Limbs) -> Gt {
    Gt(g.0.pow(limbs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g1::G1Projective;
    use crate::g2::G2Projective;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xe)
    }

    #[test]
    fn pairing_nondegenerate() {
        let e = Gt::generator();
        assert!(!e.is_identity());
    }

    #[test]
    fn pairing_has_order_r() {
        let e = Gt::generator();
        assert!(gt_pow_limbs(&e, &FrParams::MODULUS).is_identity());
    }

    #[test]
    fn pairing_bilinear_left() {
        let mut rng = rng();
        let a = Fr::random(&mut rng);
        let p = G1Projective::generator().mul(a).to_affine();
        let q = G2Affine::generator();
        let lhs = pairing(&p, &q);
        let rhs = Gt::generator().pow(a);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn pairing_bilinear_right() {
        let mut rng = rng();
        let b = Fr::random(&mut rng);
        let p = G1Affine::generator();
        let q = G2Projective::generator().mul(b).to_affine();
        assert_eq!(pairing(&p, &q), Gt::generator().pow(b));
    }

    #[test]
    fn pairing_bilinear_both() {
        let mut rng = rng();
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let p = G1Projective::generator().mul(a).to_affine();
        let q = G2Projective::generator().mul(b).to_affine();
        assert_eq!(pairing(&p, &q), Gt::generator().pow(a * b));
    }

    #[test]
    fn pairing_of_identity_is_one() {
        assert!(pairing(&G1Affine::identity(), &G2Affine::generator()).is_identity());
        assert!(pairing(&G1Affine::generator(), &G2Affine::identity()).is_identity());
    }

    #[test]
    fn hard_part_chain_matches_generic_multiple() {
        // The deployed chain (Fuentes-Castaneda variant) computes
        // f^{2x(6x^2+3x+1) * (q^4-q^2+1)/r} — the hard part raised to a
        // fixed constant coprime to r, which is still a non-degenerate
        // bilinear pairing. Verify against the generic big-integer path.
        let mut rng = rng();
        let a = Fr::random(&mut rng);
        let p = G1Projective::generator().mul(a).to_affine();
        let f = miller_loop(&p, &G2Affine::generator());
        let easy = final_exp_easy(&f);
        assert!(easy.is_unitary());
        // c = 12x^3 + 6x^2 + 2x
        let x = BigUint::from_limbs(&[crate::fields::BN_X]);
        let x2 = x.mul(&x);
        let x3 = x2.mul(&x);
        let c = x3
            .mul(&BigUint::from_limbs(&[12]))
            .add(&x2.mul(&BigUint::from_limbs(&[6])))
            .add(&x.mul(&BigUint::from_limbs(&[2])));
        let generic = final_exp_hard_generic(&easy);
        assert_eq!(final_exp_hard(&easy), generic.pow(c.limbs()));
    }

    #[test]
    fn multi_pairing_matches_product() {
        let mut rng = rng();
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let p1 = G1Projective::generator().mul(a).to_affine();
        let p2 = G1Projective::generator().mul(b).to_affine();
        let q = G2Affine::generator();
        let prod = multi_pairing(&[(p1, q), (p2, q)]);
        assert_eq!(prod, Gt::generator().pow(a + b));
    }

    #[test]
    fn pairing_inverse_relation() {
        // e(-P, Q) = e(P, Q)^{-1}
        let p = G1Affine::generator();
        let q = G2Affine::generator();
        let e = pairing(&p, &q);
        let e_neg = pairing(&p.neg(), &q);
        assert!(e.mul(&e_neg).is_identity());
    }

    #[test]
    fn gt_compression_roundtrip() {
        let mut rng = rng();
        for _ in 0..5 {
            let k = Fr::random(&mut rng);
            let g = Gt::generator().pow(k);
            let bytes = g.to_compressed();
            assert_eq!(Gt::from_compressed(&bytes).unwrap(), g);
        }
        let id = Gt::identity();
        assert_eq!(Gt::from_compressed(&id.to_compressed()).unwrap(), id);
    }

    #[test]
    fn gt_pow_homomorphic() {
        let mut rng = rng();
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let g = Gt::generator();
        assert_eq!(g.pow(a).mul(&g.pow(b)), g.pow(a + b));
        assert_eq!(g.pow(a).pow(b), g.pow(a * b));
    }
}
