//! The optimal ate pairing `e : G1 x G2 -> GT` on BN254.
//!
//! The engine runs the Miller loop in homogeneous projective coordinates
//! directly over the twist `E'(Fq2)` — no per-step field inversions and
//! no untwisting into `E(Fq12)`. Each doubling/addition step emits a
//! sparse line value `c0 + c3 w + c4 w^3` (three `Fq2` coefficients)
//! which is folded into the accumulator through the `mul_by_034` /
//! `mul_034_by_034` kernels in [`crate::fp12`]. Fixed G2 points are
//! prepared once ([`G2Prepared`] caches the whole line-coefficient
//! sequence) so repeated pairings against the same G2 point skip all
//! curve arithmetic. The final exponentiation runs its hard part on
//! cyclotomic arithmetic (Granger–Scott squaring, Karabina compressed
//! squaring inside `x`-exponentiations).
//!
//! The original affine-`Fq12` Miller loop (the same structure as the
//! reference `py_ecc` implementation) is retained as
//! [`miller_loop_generic`], the correctness oracle for differential
//! tests; the hard part is likewise cross-checked against a generic
//! big-integer exponentiation in [`final_exp_hard_generic`].

use std::sync::OnceLock;

use crate::bigint;
use crate::bigint::{div_small, sub_small};
use crate::biguint::BigUint;
use crate::curve::CurveParams;
use crate::field::Field;
use crate::fields::{Fq, FqParams, Fr, FrParams, ATE_LOOP_COUNT};
use crate::fp::FieldParams;
use crate::fp12::Fq12;
use crate::fp2::Fq2;
use crate::fp6::Fq6;
use crate::g1::G1Affine;
use crate::g2::{G2Affine, G2Params};

// ---------------------------------------------------------------------------
// Projective Miller loop over the twist

/// A twist point in homogeneous projective coordinates (`x = X/Z`,
/// `y = Y/Z`), the working representation inside [`G2Prepared`].
#[derive(Clone, Copy, Debug)]
struct HomProjective {
    x: Fq2,
    y: Fq2,
    z: Fq2,
}

/// One sparse line value: coefficients at the `w^0`, `w^1`, `w^3` slots,
/// with `c0` still to be scaled by `y_P` and `c3` by `x_P`.
type EllCoeff = (Fq2, Fq2, Fq2);

/// `(q - 1)/3` and `(q - 1)/2` powers of `xi`, plus their `q^2`
/// counterparts — the twisted-Frobenius constants for the two
/// correction lines of the optimal ate pairing.
fn frob_twist_consts() -> &'static (Fq2, Fq2, Fq2, Fq2) {
    static CACHE: OnceLock<(Fq2, Fq2, Fq2, Fq2)> = OnceLock::new();
    CACHE.get_or_init(|| {
        let q_minus_1 = sub_small(&FqParams::MODULUS, 1);
        let g2 = Fq2::xi().pow(&div_small(&q_minus_1, 3)); // xi^{(q-1)/3}
        let g3 = Fq2::xi().pow(&div_small(&q_minus_1, 2)); // xi^{(q-1)/2}
        // xi^{(q^2-1)/3} = g2^{q+1} = conj(g2) * g2, likewise for g3
        (g2, g3, g2.conjugate() * g2, g3.conjugate() * g3)
    })
}

/// Doubling step: `r <- 2r`, returning the tangent-line coefficients.
/// Homogeneous-coordinate formulas (Costello–Lange–Naehrig, as deployed
/// for BN curves with a D-type twist).
fn doubling_step(r: &mut HomProjective, two_inv: Fq) -> EllCoeff {
    let a = (r.x * r.y).scale(two_inv);
    let b = r.y.square();
    let c = r.z.square();
    let e = G2Params::coeff_b() * (c.double() + c);
    let f = e.double() + e;
    let g = (b + f).scale(two_inv);
    let h = (r.y + r.z).square() - (b + c);
    let i = e - b;
    let j = r.x.square();
    let e_sq = e.square();
    r.x = a * (b - f);
    r.y = g.square() - (e_sq.double() + e_sq);
    r.z = b * h;
    (-h, j.double() + j, i)
}

/// Addition step: `r <- r + q`, returning the chord-line coefficients.
fn addition_step(r: &mut HomProjective, q: &G2Affine) -> EllCoeff {
    let theta = r.y - q.y * r.z;
    let lambda = r.x - q.x * r.z;
    let c = theta.square();
    let d = lambda.square();
    let e = lambda * d;
    let f = r.z * c;
    let g = r.x * d;
    let h = e + f - g.double();
    r.x = lambda * h;
    r.y = theta * (g - h) - e * r.y;
    r.z *= e;
    (lambda, -theta, theta * q.x - lambda * q.y)
}

/// A G2 point with its full Miller-loop line-coefficient sequence
/// precomputed. Preparing costs one pass of twist-curve arithmetic;
/// every subsequent pairing against the point reuses the coefficients
/// and only pays the (sparse) `Fq12` accumulator work. The verifier's
/// `g2`, `eps` and `delta` never change across audits, which is what
/// makes this the right interface for `core`.
#[derive(Clone, Debug)]
pub struct G2Prepared {
    /// Line coefficients in loop-execution order (doublings, conditional
    /// additions, then the two Frobenius correction lines).
    ell_coeffs: Vec<EllCoeff>,
    /// Prepared identity: the pair contributes nothing to the product.
    infinity: bool,
}

impl G2Prepared {
    /// Runs the Miller-loop point arithmetic once and stores every line.
    pub fn from_affine(q: &G2Affine) -> Self {
        if q.infinity {
            return Self {
                ell_coeffs: Vec::new(),
                infinity: true,
            };
        }
        let two_inv = Fq::from_u64(2).inverse().expect("2 != 0 in Fq");
        let mut r = HomProjective {
            x: q.x,
            y: q.y,
            z: Fq2::one(),
        };
        let top = 127 - ATE_LOOP_COUNT.leading_zeros();
        let mut ell_coeffs = Vec::with_capacity(top as usize + ATE_LOOP_COUNT.count_ones() as usize + 2);
        for i in (0..top).rev() {
            ell_coeffs.push(doubling_step(&mut r, two_inv));
            if (ATE_LOOP_COUNT >> i) & 1 == 1 {
                ell_coeffs.push(addition_step(&mut r, q));
            }
        }
        // Frobenius corrections: Q1 = pi(Q), Q2 = -pi^2(Q), where pi acts
        // on the twist as (x, y) -> (conj(x) g2, conj(y) g3).
        let (g2c, g3c, g2c2, g3c2) = *frob_twist_consts();
        let q1 = G2Affine {
            x: q.x.conjugate() * g2c,
            y: q.y.conjugate() * g3c,
            infinity: false,
        };
        let nq2 = G2Affine {
            x: q.x * g2c2,
            y: -(q.y * g3c2),
            infinity: false,
        };
        ell_coeffs.push(addition_step(&mut r, &q1));
        ell_coeffs.push(addition_step(&mut r, &nq2));
        Self {
            ell_coeffs,
            infinity: false,
        }
    }

    /// The prepared canonical G2 generator, computed once per process.
    pub fn generator() -> &'static Self {
        static GEN: OnceLock<G2Prepared> = OnceLock::new();
        GEN.get_or_init(|| Self::from_affine(&G2Affine::generator()))
    }

    /// True when this prepared point is the identity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }
}

impl From<&G2Affine> for G2Prepared {
    fn from(q: &G2Affine) -> Self {
        Self::from_affine(q)
    }
}

/// The Miller loop over any number of prepared pairs, sharing the
/// accumulator squarings across all pairs. Pairs whose G1 or G2 point is
/// the identity are skipped (their pairing factor is 1). Line values of
/// distinct pairs are folded two at a time through the sparse-by-sparse
/// kernel before touching the full accumulator.
///
/// Constant-time contract: the loop structure depends only on public
/// data — the compile-time ATE loop constant and the shape (count,
/// identity-ness) of the input pairs, which in this protocol are public
/// keys, tags and proof elements. Each such branch carries an audited
/// `ct-branch` allow; nothing branches on field-element *values*.
// lint:ct
pub fn multi_miller_loop(pairs: &[(&G1Affine, &G2Prepared)]) -> Fq12 {
    let active: Vec<(&G1Affine, &G2Prepared)> = pairs
        .iter()
        .filter(|(p, q)| !p.infinity && !q.infinity) // lint:allow(ct-branch) — identity-ness of pairing inputs (public keys/proof points) is public
        .copied()
        .collect();
    // lint:allow(ct-branch) — the number of non-identity pairs is public structure
    if active.is_empty() {
        return Fq12::one(); // lint:allow(ct-branch) — early exit on a publicly empty input
    }
    let mut f = Fq12::one();
    let mut idx = 0usize;
    let mut lines: Vec<EllCoeff> = Vec::with_capacity(active.len());
    let step = |f: &mut Fq12, idx: usize, lines: &mut Vec<EllCoeff>| {
        lines.clear();
        for (p, q) in &active {
            let (c0, c3, c4) = q.ell_coeffs[idx];
            lines.push((c0.scale(p.y), c3.scale(p.x), c4));
        }
        let mut chunks = lines.chunks_exact(2);
        for pair in &mut chunks {
            *f *= Fq12::mul_034_by_034(pair[0], pair[1]);
        }
        // lint:allow(ct-branch) — odd/even pair count is public structure
        if let [l] = chunks.remainder() {
            *f = f.mul_by_034(l.0, l.1, l.2);
        }
    };
    let top = 127 - ATE_LOOP_COUNT.leading_zeros();
    for i in (0..top).rev() {
        f = f.square();
        step(&mut f, idx, &mut lines);
        idx += 1;
        // lint:allow(ct-branch) — bit scan of the compile-time public ATE loop constant
        if (ATE_LOOP_COUNT >> i) & 1 == 1 {
            step(&mut f, idx, &mut lines);
            idx += 1;
        }
    }
    // the two Frobenius correction lines
    step(&mut f, idx, &mut lines);
    step(&mut f, idx + 1, &mut lines);
    f
}

/// The Miller loop `f_{6x+2, Q}(P)` through the projective engine
/// (prepares `Q` on the fly).
pub fn miller_loop(p: &G1Affine, q: &G2Affine) -> Fq12 {
    let _span = dsaudit_obs::span("algebra.miller_loop");
    multi_miller_loop(&[(p, &G2Prepared::from_affine(q))])
}

// ---------------------------------------------------------------------------
// Generic affine oracle (retained for differential testing)

/// A point of `E(Fq12)` in affine coordinates (never the identity inside
/// the Miller loop).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Ept {
    x: Fq12,
    y: Fq12,
}

/// Embeds an `Fq2` element `a` as `a * w^2` (i.e. at the `v^1` slot of c0).
fn embed_w2(a: Fq2) -> Fq12 {
    Fq12::new(Fq6::new(Fq2::zero(), a, Fq2::zero()), Fq6::zero())
}

/// Embeds an `Fq2` element `a` as `a * w^3` (i.e. at the `v^1` slot of c1).
fn embed_w3(a: Fq2) -> Fq12 {
    Fq12::new(Fq6::zero(), Fq6::new(Fq2::zero(), a, Fq2::zero()))
}

/// The untwisting embedding `psi: E'(Fq2) -> E(Fq12)`.
fn untwist(q: &G2Affine) -> Ept {
    Ept {
        x: embed_w2(q.x),
        y: embed_w3(q.y),
    }
}

/// Evaluates the line through `a` and `b` (tangent when `a == b`) at `t`.
/// Also returns `a + b` so the Miller loop shares the slope computation.
fn line_and_add(a: &Ept, b: &Ept, xt: &Fq12, yt: &Fq12) -> (Fq12, Ept) {
    let m = if a.x != b.x {
        (b.y - a.y) * (b.x - a.x).inverse().expect("distinct x")
    } else {
        debug_assert_eq!(a.y, b.y, "vertical line must not occur in the loop");
        let x2 = a.x.square();
        (x2 + x2 + x2) * a.y.double().inverse().expect("y != 0")
    };
    let line = m * (*xt - a.x) - (*yt - a.y);
    let x3 = m.square() - a.x - b.x;
    let y3 = m * (a.x - x3) - a.y;
    (line, Ept { x: x3, y: y3 })
}

/// The original affine-`Fq12` Miller loop (one field inversion per step):
/// the slow, auditable oracle the projective engine is differentially
/// tested against. Not used on any hot path.
pub fn miller_loop_generic(p: &G1Affine, q: &G2Affine) -> Fq12 {
    if p.infinity || q.infinity {
        return Fq12::one();
    }
    let xt = Fq12::from_fq(p.x);
    let yt = Fq12::from_fq(p.y);
    let q_emb = untwist(q);
    let mut r = q_emb;
    let mut f = Fq12::one();
    let top = 127 - ATE_LOOP_COUNT.leading_zeros();
    for i in (0..top).rev() {
        let (line, r2) = line_and_add(&r, &r, &xt, &yt);
        f = f.square() * line;
        r = r2;
        if (ATE_LOOP_COUNT >> i) & 1 == 1 {
            let (line, radd) = line_and_add(&r, &q_emb, &xt, &yt);
            f *= line;
            r = radd;
        }
    }
    // Frobenius corrections: Q1 = pi(Q), nQ2 = -pi^2(Q).
    let q1 = Ept {
        x: q_emb.x.frobenius(1),
        y: q_emb.y.frobenius(1),
    };
    let nq2 = Ept {
        x: q1.x.frobenius(1),
        y: -q1.y.frobenius(1),
    };
    let (line, r1) = line_and_add(&r, &q1, &xt, &yt);
    f *= line;
    let (line, _) = line_and_add(&r1, &nq2, &xt, &yt);
    f * line
}

// ---------------------------------------------------------------------------
// Final exponentiation

/// Easy part of the final exponentiation: `f^{(q^6 - 1)(q^2 + 1)}`.
/// The output lies in the cyclotomic subgroup.
fn final_exp_easy(f: &Fq12) -> Fq12 {
    let inv = f.inverse().expect("Miller loop output is nonzero");
    let t = f.conjugate() * inv; // f^{q^6 - 1}
    t.frobenius(2) * t // ^(q^2 + 1)
}

/// `f^{-x}` for cyclotomic `f` (conjugate of `f^x`), through the
/// Karabina compressed-squaring chain.
fn exp_by_neg_x(f: &Fq12) -> Fq12 {
    f.cyclotomic_pow_x().conjugate()
}

/// Hard part `f^{(q^4 - q^2 + 1)/r}` via the standard BN addition chain
/// (Aranha et al., as deployed for alt_bn128). Requires cyclotomic input;
/// all squarings run on the Granger–Scott kernel.
fn final_exp_hard(f: &Fq12) -> Fq12 {
    let a = exp_by_neg_x(f);
    let b = a.cyclotomic_square();
    let c = b.cyclotomic_square();
    let d = c * b;

    let e = exp_by_neg_x(&d);
    let g = e.cyclotomic_square();
    let h = exp_by_neg_x(&g);
    let i = d.conjugate();
    let j = h.conjugate();

    let k = j * e;
    let l = k * i;
    let m = l * b;
    let n = l * e;
    let o = *f * n;

    let p = m.frobenius(1);
    let q = p * o;

    let r = l.frobenius(2);
    let s = r * q;

    let t = f.conjugate();
    let u = t * m;
    let v = u.frobenius(3);

    v * s
}

/// Generic hard part via a big-integer exponent `(q^4 - q^2 + 1)/r`,
/// used as the correctness oracle for the deployed addition chain.
pub fn final_exp_hard_generic(f: &Fq12) -> Fq12 {
    static EXP: OnceLock<Vec<u64>> = OnceLock::new();
    let exp = EXP.get_or_init(|| {
        let q = BigUint::from_limbs(&FqParams::MODULUS);
        let r = BigUint::from_limbs(&FrParams::MODULUS);
        let q2 = q.mul(&q);
        let q4 = q2.mul(&q2);
        let num = q4.sub(&q2).add(&BigUint::one());
        let (quot, rem) = num.div_rem(&r);
        assert!(rem.is_zero(), "r must divide q^4 - q^2 + 1");
        quot.limbs().to_vec()
    });
    f.pow(exp)
}

/// Full final exponentiation `f^{(q^12 - 1)/r}`.
pub fn final_exponentiation(f: &Fq12) -> Gt {
    let _span = dsaudit_obs::span("algebra.final_exp");
    let easy = final_exp_easy(f);
    Gt(final_exp_hard(&easy))
}

// ---------------------------------------------------------------------------
// Pairing products

/// The optimal ate pairing `e(P, Q)`.
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Gt {
    final_exponentiation(&miller_loop(p, q))
}

/// Product of pairings `prod_i e(P_i, Q_i)` with a single shared Miller
/// loop and final exponentiation — the workhorse of proof verification.
pub fn multi_pairing(pairs: &[(G1Affine, G2Affine)]) -> Gt {
    let prepared: Vec<G2Prepared> = pairs.iter().map(|(_, q)| G2Prepared::from_affine(q)).collect();
    let refs: Vec<(&G1Affine, &G2Prepared)> = pairs
        .iter()
        .zip(&prepared)
        .map(|((p, _), qp)| (p, qp))
        .collect();
    final_exponentiation(&multi_miller_loop(&refs))
}

/// Product of pairings against **prepared** G2 points: the hot-path API
/// for verifiers whose G2 points (`g2`, `eps`, `delta`) are fixed across
/// audits.
pub fn multi_pairing_prepared(pairs: &[(&G1Affine, &G2Prepared)]) -> Gt {
    let _span = dsaudit_obs::span("algebra.pairing_product");
    dsaudit_obs::counter_inc("algebra.pairing_products");
    dsaudit_obs::observe("algebra.pairing_terms", pairs.len() as u64);
    let f = {
        let _miller = dsaudit_obs::span("algebra.miller_loop");
        multi_miller_loop(pairs)
    };
    final_exponentiation(&f)
}

/// An element of the pairing target group `GT` (order `r`, multiplicative).
///
/// Wraps a cyclotomic `Fq12` element (every constructor guarantees
/// membership in the cyclotomic subgroup, which is what licenses the
/// Granger–Scott arithmetic in [`Gt::pow`]). Group notation is
/// multiplicative: [`Gt::mul`] combines audits, [`Gt::pow`]
/// exponentiates by a scalar.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Gt(pub(crate) Fq12);

impl Default for Gt {
    fn default() -> Self {
        Self::identity()
    }
}

impl Gt {
    /// The group identity.
    pub fn identity() -> Self {
        Gt(Fq12::one())
    }

    /// `e(g1, g2)` for the canonical generators — a generator of `GT`.
    pub fn generator() -> Self {
        static GEN: OnceLock<Gt> = OnceLock::new();
        *GEN.get_or_init(|| pairing(&G1Affine::generator(), &G2Affine::generator()))
    }

    /// Group operation.
    pub fn mul(&self, other: &Self) -> Self {
        Gt(self.0 * other.0)
    }

    /// Group inverse (conjugation, valid for unitary elements).
    pub fn invert(&self) -> Self {
        Gt(self.0.conjugate())
    }

    /// Exponentiation by a scalar: signed-NAF square-and-multiply on
    /// cyclotomic squarings, with the free conjugation serving the
    /// negative digits.
    pub fn pow(&self, k: Fr) -> Self {
        Gt(self.0.cyclotomic_exp(&k.to_canonical()))
    }

    /// Simultaneous multi-exponentiation `prod_i g_i^{k_i}` (Straus
    /// interleaving): all terms share one cyclotomic squaring chain, so
    /// `n` terms cost one chain plus the NAF-digit multiplications
    /// instead of `n` full chains. This is the batch verifier's
    /// `prod_u R_u^{-rho_u}` accumulator.
    pub fn multi_pow(terms: &[(Gt, Fr)]) -> Gt {
        let nafs: Vec<Vec<i8>> = terms
            .iter()
            .map(|(_, k)| crate::fp12::naf_digits(&k.to_canonical()))
            .collect();
        let maxlen = nafs.iter().map(Vec::len).max().unwrap_or(0);
        let mut acc = Fq12::one();
        let mut started = false;
        for pos in (0..maxlen).rev() {
            if started {
                acc = acc.cyclotomic_square();
            }
            for (naf, (g, _)) in nafs.iter().zip(terms) {
                match naf.get(pos) {
                    Some(1) => {
                        acc *= g.0;
                        started = true;
                    }
                    Some(-1) => {
                        acc *= g.0.conjugate();
                        started = true;
                    }
                    _ => {}
                }
            }
        }
        Gt(acc)
    }

    /// True for the identity.
    pub fn is_identity(&self) -> bool {
        self.0 == Fq12::one()
    }

    /// Raw access to the underlying field element.
    pub fn as_fq12(&self) -> &Fq12 {
        &self.0
    }

    /// Torus (T2) compression to 192 bytes.
    ///
    /// For a unitary element `m = m0 + m1 w`, the compressed form is
    /// `g = (1 + m0) / m1` in `Fq6` (six `Fq` coefficients of 32 bytes
    /// each); decompression recovers `m = (g + w)/(g - w)`. The identity
    /// (the only GT element with `m1 = 0`) is flagged in the top bit of
    /// the first byte. This is what makes the paper's 288-byte audit
    /// proof accounting (3x32 B + 192 B) honest.
    pub fn to_compressed(&self) -> [u8; 192] {
        let mut out = [0u8; 192];
        if self.0.c1.is_zero() {
            // unitary with m1 = 0 implies m0 = +-1; in odd-order GT only +1.
            out[0] = 0x80;
            return out;
        }
        let g = (Fq6::one() + self.0.c0)
            * self.0.c1.inverse().expect("nonzero checked above");
        for (i, fq) in [g.c0.c0, g.c0.c1, g.c1.c0, g.c1.c1, g.c2.c0, g.c2.c1]
            .iter()
            .enumerate()
        {
            out[i * 32..(i + 1) * 32].copy_from_slice(&fq.to_bytes_be());
        }
        debug_assert_eq!(out[0] & 0x80, 0, "Fq fits 254 bits");
        out
    }

    /// Decompresses a torus-encoded element. Returns `None` for malformed
    /// encodings, including any encoding outside the **cyclotomic
    /// subgroup** (torus decompression alone only guarantees unitarity;
    /// the extra check keeps the `Gt` invariant that licenses cyclotomic
    /// arithmetic, and rejects a class of adversarial encodings before
    /// they ever reach a verifier equation). Membership in the order-`r`
    /// subgroup is still the verifier equation's job.
    pub fn from_compressed(bytes: &[u8; 192]) -> Option<Self> {
        if bytes[0] & 0x80 != 0 {
            let ok = bytes[0] == 0x80 && bytes[1..].iter().all(|&b| b == 0);
            return ok.then(Self::identity);
        }
        let mut coeffs = [crate::fields::Fq::ZERO; 6];
        for (i, c) in coeffs.iter_mut().enumerate() {
            let mut buf = [0u8; 32];
            buf.copy_from_slice(&bytes[i * 32..(i + 1) * 32]);
            *c = crate::fields::Fq::from_bytes_be(&buf)?;
        }
        let g = Fq6::new(
            Fq2::new(coeffs[0], coeffs[1]),
            Fq2::new(coeffs[2], coeffs[3]),
            Fq2::new(coeffs[4], coeffs[5]),
        );
        // m = (g + w) / (g - w); both live in Fq12.
        let gw_plus = Fq12::new(g, Fq6::one());
        let gw_minus = Fq12::new(g, -Fq6::one());
        let m = gw_plus * gw_minus.inverse()?;
        m.is_cyclotomic().then_some(Gt(m))
    }

    /// Uncompressed 384-byte serialization (12 `Fq` coefficients).
    pub fn to_uncompressed(&self) -> [u8; 384] {
        let mut out = [0u8; 384];
        let sixes = [self.0.c0, self.0.c1];
        let mut idx = 0;
        for s in &sixes {
            for fq2 in [s.c0, s.c1, s.c2] {
                for fq in [fq2.c0, fq2.c1] {
                    out[idx * 32..(idx + 1) * 32].copy_from_slice(&fq.to_bytes_be());
                    idx += 1;
                }
            }
        }
        out
    }
}

/// Exponentiates `Gt` by a raw 256-bit canonical integer (used by tests).
pub fn gt_pow_limbs(g: &Gt, limbs: &bigint::Limbs) -> Gt {
    Gt(g.0.cyclotomic_exp(limbs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g1::G1Projective;
    use crate::g2::G2Projective;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xe)
    }

    #[test]
    fn pairing_nondegenerate() {
        let e = Gt::generator();
        assert!(!e.is_identity());
    }

    #[test]
    fn pairing_has_order_r() {
        let e = Gt::generator();
        assert!(gt_pow_limbs(&e, &FrParams::MODULUS).is_identity());
    }

    #[test]
    fn pairing_bilinear_left() {
        let mut rng = rng();
        let a = Fr::random(&mut rng);
        let p = G1Projective::generator().mul(a).to_affine();
        let q = G2Affine::generator();
        let lhs = pairing(&p, &q);
        let rhs = Gt::generator().pow(a);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn pairing_bilinear_right() {
        let mut rng = rng();
        let b = Fr::random(&mut rng);
        let p = G1Affine::generator();
        let q = G2Projective::generator().mul(b).to_affine();
        assert_eq!(pairing(&p, &q), Gt::generator().pow(b));
    }

    #[test]
    fn pairing_bilinear_both() {
        let mut rng = rng();
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let p = G1Projective::generator().mul(a).to_affine();
        let q = G2Projective::generator().mul(b).to_affine();
        assert_eq!(pairing(&p, &q), Gt::generator().pow(a * b));
    }

    #[test]
    fn pairing_of_identity_is_one() {
        assert!(pairing(&G1Affine::identity(), &G2Affine::generator()).is_identity());
        assert!(pairing(&G1Affine::generator(), &G2Affine::identity()).is_identity());
    }

    #[test]
    fn projective_miller_loop_matches_generic_oracle() {
        // The projective lines are scaled by Z-power factors living in
        // proper subfields, which the final exponentiation kills — so the
        // engines are compared in GT, where the pairing value lives.
        let mut rng = rng();
        for _ in 0..3 {
            let a = Fr::random(&mut rng);
            let b = Fr::random(&mut rng);
            let p = G1Projective::generator().mul(a).to_affine();
            let q = G2Projective::generator().mul(b).to_affine();
            assert_eq!(
                final_exponentiation(&miller_loop(&p, &q)),
                final_exponentiation(&miller_loop_generic(&p, &q))
            );
        }
        // identity inputs
        let p = G1Affine::generator();
        let q = G2Affine::generator();
        assert_eq!(
            miller_loop(&G1Affine::identity(), &q),
            miller_loop_generic(&G1Affine::identity(), &q)
        );
        assert_eq!(
            miller_loop(&p, &G2Affine::identity()),
            miller_loop_generic(&p, &G2Affine::identity())
        );
    }

    #[test]
    fn prepared_multi_miller_matches_generic_product() {
        let mut rng = rng();
        let scalars: Vec<(Fr, Fr)> = (0..3)
            .map(|_| (Fr::random(&mut rng), Fr::random(&mut rng)))
            .collect();
        let pairs: Vec<(G1Affine, G2Affine)> = scalars
            .iter()
            .map(|(a, b)| {
                (
                    G1Projective::generator().mul(*a).to_affine(),
                    G2Projective::generator().mul(*b).to_affine(),
                )
            })
            .collect();
        let prepared: Vec<G2Prepared> =
            pairs.iter().map(|(_, q)| G2Prepared::from_affine(q)).collect();
        let refs: Vec<(&G1Affine, &G2Prepared)> = pairs
            .iter()
            .zip(&prepared)
            .map(|((p, _), qp)| (p, qp))
            .collect();
        let mut expected = Fq12::one();
        for (p, q) in &pairs {
            expected *= miller_loop_generic(p, q);
        }
        // unreduced Miller values may differ by subfield factors that the
        // final exponentiation kills; compare in GT
        assert_eq!(
            final_exponentiation(&multi_miller_loop(&refs)),
            final_exponentiation(&expected)
        );
    }

    #[test]
    fn hard_part_chain_matches_generic_multiple() {
        // The deployed chain (Fuentes-Castaneda variant) computes
        // f^{2x(6x^2+3x+1) * (q^4-q^2+1)/r} — the hard part raised to a
        // fixed constant coprime to r, which is still a non-degenerate
        // bilinear pairing. Verify against the generic big-integer path.
        let mut rng = rng();
        let a = Fr::random(&mut rng);
        let p = G1Projective::generator().mul(a).to_affine();
        let f = miller_loop(&p, &G2Affine::generator());
        let easy = final_exp_easy(&f);
        assert!(easy.is_unitary());
        assert!(easy.is_cyclotomic());
        // c = 12x^3 + 6x^2 + 2x
        let x = BigUint::from_limbs(&[crate::fields::BN_X]);
        let x2 = x.mul(&x);
        let x3 = x2.mul(&x);
        let c = x3
            .mul(&BigUint::from_limbs(&[12]))
            .add(&x2.mul(&BigUint::from_limbs(&[6])))
            .add(&x.mul(&BigUint::from_limbs(&[2])));
        let generic = final_exp_hard_generic(&easy);
        assert_eq!(final_exp_hard(&easy), generic.pow(c.limbs()));
    }

    #[test]
    fn multi_pairing_matches_product() {
        let mut rng = rng();
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let p1 = G1Projective::generator().mul(a).to_affine();
        let p2 = G1Projective::generator().mul(b).to_affine();
        let q = G2Affine::generator();
        let prod = multi_pairing(&[(p1, q), (p2, q)]);
        assert_eq!(prod, Gt::generator().pow(a + b));
    }

    #[test]
    fn prepared_pairing_matches_fresh() {
        let mut rng = rng();
        let a = Fr::random(&mut rng);
        let p = G1Projective::generator().mul(a).to_affine();
        let q = G2Projective::random(&mut rng).to_affine();
        let qp = G2Prepared::from_affine(&q);
        assert_eq!(
            multi_pairing_prepared(&[(&p, &qp)]),
            pairing(&p, &q)
        );
        // the cached generator agrees with an on-the-fly preparation
        assert_eq!(
            multi_pairing_prepared(&[(&p, G2Prepared::generator())]),
            pairing(&p, &G2Affine::generator())
        );
    }

    #[test]
    fn pairing_inverse_relation() {
        // e(-P, Q) = e(P, Q)^{-1}
        let p = G1Affine::generator();
        let q = G2Affine::generator();
        let e = pairing(&p, &q);
        let e_neg = pairing(&p.neg(), &q);
        assert!(e.mul(&e_neg).is_identity());
    }

    #[test]
    fn gt_compression_roundtrip() {
        let mut rng = rng();
        for _ in 0..5 {
            let k = Fr::random(&mut rng);
            let g = Gt::generator().pow(k);
            let bytes = g.to_compressed();
            assert_eq!(Gt::from_compressed(&bytes).unwrap(), g);
        }
        let id = Gt::identity();
        assert_eq!(Gt::from_compressed(&id.to_compressed()).unwrap(), id);
    }

    #[test]
    fn gt_decompression_rejects_non_cyclotomic() {
        // A torus encoding of an arbitrary Fq6 point decompresses to a
        // unitary element that is (generically) outside the cyclotomic
        // subgroup; the decoder must reject it.
        let mut rng = rng();
        let g = Fq6::random(&mut rng);
        let mut bytes = [0u8; 192];
        for (i, fq) in [g.c0.c0, g.c0.c1, g.c1.c0, g.c1.c1, g.c2.c0, g.c2.c1]
            .iter()
            .enumerate()
        {
            bytes[i * 32..(i + 1) * 32].copy_from_slice(&fq.to_bytes_be());
        }
        if bytes[0] & 0x80 == 0 {
            assert!(Gt::from_compressed(&bytes).is_none());
        }
    }

    #[test]
    fn gt_pow_homomorphic() {
        let mut rng = rng();
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let g = Gt::generator();
        assert_eq!(g.pow(a).mul(&g.pow(b)), g.pow(a + b));
        assert_eq!(g.pow(a).pow(b), g.pow(a * b));
    }

    #[test]
    fn gt_multi_pow_matches_individual_pows() {
        let mut rng = rng();
        let terms: Vec<(Gt, Fr)> = (0..4)
            .map(|_| {
                (
                    Gt::generator().pow(Fr::random(&mut rng)),
                    Fr::random(&mut rng),
                )
            })
            .collect();
        let mut expected = Gt::identity();
        for (g, k) in &terms {
            expected = expected.mul(&g.pow(*k));
        }
        assert_eq!(Gt::multi_pow(&terms), expected);
        assert_eq!(Gt::multi_pow(&[]), Gt::identity());
        assert_eq!(
            Gt::multi_pow(&[(Gt::generator(), Fr::zero())]),
            Gt::identity()
        );
    }

    #[test]
    fn gt_pow_matches_generic_fq12_pow() {
        let mut rng = rng();
        let g = Gt::generator();
        for _ in 0..3 {
            let k = Fr::random(&mut rng);
            assert_eq!(g.pow(k).0, g.0.pow(&k.to_canonical()));
        }
        assert_eq!(g.pow(Fr::zero()), Gt::identity());
        assert_eq!(g.pow(Fr::one()), g);
    }
}
