//! Tiny data-parallel helpers over `std::thread::scope`.
//!
//! Moved here from `dsaudit-core` so the MSM window loop can fan out
//! across cores without a dependency cycle (`core` depends on `algebra`);
//! `core::par` re-exports these functions so existing callers are
//! unaffected. Keeping the shim dependency-free matters because the build
//! environment has no registry access (no rayon).

use std::num::NonZeroUsize;

/// Number of worker threads to use (the machine's available parallelism).
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every index in `0..n`, in parallel, collecting results
/// in order. `f` must be cheap to call many times; chunking is by
/// contiguous ranges.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || n < 32 {
        return (0..n).map(f).collect();
    }
    let mut out = vec![T::default(); n];
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (i, s) in slot.iter_mut().enumerate() {
                    *s = f(t * chunk + i);
                }
            });
        }
    });
    out
}

/// Splits `0..n` into at most `num_threads()` contiguous ranges of at
/// least `min_chunk` items, maps each range to a `Vec<T>` in parallel and
/// concatenates the results in order.
///
/// Unlike [`par_map`] the worker sees a whole range at once, which lets
/// batch-inversion-based kernels (batched affine addition, fixed-base
/// tables) amortize their shared inversion across the range.
pub fn par_map_chunks<T, F>(n: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    let threads = num_threads().min(n / min_chunk.max(1)).max(1);
    if threads <= 1 {
        return f(0..n);
    }
    let chunk = n.div_ceil(threads);
    let ranges: Vec<_> = (0..threads)
        .map(|t| (t * chunk).min(n)..((t + 1) * chunk).min(n))
        .filter(|r| !r.is_empty())
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|r| {
                let f = &f;
                let r = r.clone();
                scope.spawn(move || f(r))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial() {
        let serial: Vec<usize> = (0..1000).map(|i| i * i).collect();
        let parallel = par_map(1000, |i| i * i);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_empty_and_tiny() {
        assert!(par_map(0, |i| i).is_empty());
        assert_eq!(par_map(3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn par_map_chunks_matches_serial() {
        let expect: Vec<usize> = (0..997).map(|i| i * 3).collect();
        let got = par_map_chunks(997, 16, |r| r.map(|i| i * 3).collect());
        assert_eq!(expect, got);
        assert!(par_map_chunks(0, 16, |r| r.collect::<Vec<_>>()).is_empty());
    }
}
