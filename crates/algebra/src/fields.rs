//! Concrete BN254 (alt_bn128) fields: the base field `Fq` and the scalar
//! field `Fr`.
//!
//! Parameters follow EIP-196/EIP-197, i.e. the exact curve the paper's
//! Go `bn256` implementation targets ("128-bit security level",
//! `|p| = |G1| = 256 bits`).

use std::sync::OnceLock;

use crate::bigint::Limbs;
use crate::field::Field;
use crate::fp::{FieldParams, Fp};

/// Parameters of the BN254 base field
/// `q = 36x^4 + 36x^3 + 24x^2 + 6x + 1`, `x = 4965661367192848881`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FqParams;

impl FieldParams for FqParams {
    // 21888242871839275222246405745257275088696311157297823662689037894645226208583
    const MODULUS: Limbs = [
        0x3c208c16d87cfd47,
        0x97816a916871ca8d,
        0xb85045b68181585d,
        0x30644e72e131a029,
    ];
    const NAME: &'static str = "Fq";
}

/// Parameters of the BN254 scalar field
/// `r = 36x^4 + 36x^3 + 18x^2 + 6x + 1`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FrParams;

impl FieldParams for FrParams {
    // 21888242871839275222246405745257275088548364400416034343698204186575808495617
    const MODULUS: Limbs = [
        0x43e1f593f0000001,
        0x2833e84879b97091,
        0xb85045b68181585d,
        0x30644e72e131a029,
    ];
    const NAME: &'static str = "Fr";
}

/// The BN254 base field.
pub type Fq = Fp<FqParams>;
/// The BN254 scalar field (group order of G1/G2/GT).
pub type Fr = Fp<FrParams>;

/// The BN curve parameter `x` with `q = 36x^4+36x^3+24x^2+6x+1`.
pub const BN_X: u64 = 4965661367192848881;

/// `6x + 2`, the optimal-ate Miller loop count (65 bits, hence `u128`).
pub const ATE_LOOP_COUNT: u128 = 6 * BN_X as u128 + 2;

/// 2-adicity of `r - 1` (there is a multiplicative subgroup of order
/// `2^28`, which is what makes radix-2 FFTs work).
pub const FR_TWO_ADICITY: u32 = 28;

/// Returns a fixed element of `Fr` of multiplicative order exactly
/// `2^FR_TWO_ADICITY`, for use as the base FFT root of unity.
pub fn fr_two_adic_root() -> Fr {
    static ROOT: OnceLock<Fr> = OnceLock::new();
    *ROOT.get_or_init(|| {
        // (r - 1) / 2^28
        let odd = crate::bigint::shr(&crate::bigint::sub_small(&FrParams::MODULUS, 1), 28);
        // Try small candidates until one has full 2-power order.
        for t in 3u64..1000 {
            let c = Fr::from_u64(t).pow(&odd);
            // c has order dividing 2^28; check the order is exactly 2^28
            let mut probe = c;
            for _ in 0..(FR_TWO_ADICITY - 1) {
                probe = probe.square();
            }
            if probe != Fr::one() && probe.square() == Fr::one() {
                return c;
            }
        }
        unreachable!("no 2-adic generator found below 1000")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{batch_inverse, Field};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xd5a)
    }

    #[test]
    fn fq_one_is_r() {
        assert_eq!(Fq::one().to_canonical(), [1, 0, 0, 0]);
        assert_eq!(Fq::from_u64(1), Fq::one());
    }

    #[test]
    fn fq_add_sub_mul_consistency() {
        let mut rng = rng();
        for _ in 0..50 {
            let a = Fq::random(&mut rng);
            let b = Fq::random(&mut rng);
            assert_eq!(a + b - b, a);
            assert_eq!(a * b, b * a);
            assert_eq!(a + b, b + a);
            assert_eq!(a - a, Fq::zero());
            assert_eq!(a * Fq::one(), a);
            assert_eq!(a * Fq::zero(), Fq::zero());
            assert_eq!((a + b).square(), a.square() + a * b + a * b + b.square());
        }
    }

    #[test]
    fn dedicated_squaring_edge_cases() {
        // the SOS squaring path must agree with mont_mul on the extremes
        for v in [
            Fq::zero(),
            Fq::one(),
            -Fq::one(), // p - 1, the canonical maximum
            Fq::from_u64(u64::MAX),
            -Fq::from_u64(u64::MAX),
        ] {
            assert_eq!(v.square(), v * v);
        }
        for v in [Fr::zero(), Fr::one(), -Fr::one()] {
            assert_eq!(v.square(), v * v);
        }
    }

    #[test]
    fn fq_inverse_roundtrip() {
        let mut rng = rng();
        for _ in 0..20 {
            let a = Fq::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.inverse().unwrap(), Fq::one());
        }
        assert!(Fq::zero().inverse().is_none());
    }

    #[test]
    fn fr_inverse_roundtrip() {
        let mut rng = rng();
        for _ in 0..20 {
            let a = Fr::random(&mut rng);
            assert_eq!(a * a.inverse().unwrap(), Fr::one());
        }
    }

    #[test]
    fn fq_sqrt_works() {
        let mut rng = rng();
        let mut found = 0;
        for _ in 0..40 {
            let a = Fq::random(&mut rng);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == -a);
            found += 1;
        }
        assert!(found > 0);
    }

    #[test]
    fn fq_legendre_of_square_is_one() {
        let mut rng = rng();
        let a = Fq::random(&mut rng);
        assert_eq!(a.square().legendre(), 1);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut rng = rng();
        for _ in 0..10 {
            let a = Fq::random(&mut rng);
            assert_eq!(Fq::from_bytes_be(&a.to_bytes_be()).unwrap(), a);
        }
        // modulus itself must be rejected
        let modulus_bytes = crate::bigint::to_bytes_be(&FqParams::MODULUS);
        assert!(Fq::from_bytes_be(&modulus_bytes).is_none());
    }

    #[test]
    fn decimal_parse() {
        let a = Fq::from_decimal("12345678901234567890").unwrap();
        assert_eq!(a, Fq::from_u64(12345678901234567890));
    }

    #[test]
    fn two_adic_root_has_exact_order() {
        let root = fr_two_adic_root();
        let mut acc = root;
        for _ in 0..FR_TWO_ADICITY {
            acc = acc.square();
        }
        assert_eq!(acc, Fr::one());
        let mut acc = root;
        for _ in 0..(FR_TWO_ADICITY - 1) {
            acc = acc.square();
        }
        assert_ne!(acc, Fr::one());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = Fr::from_u64(7);
        assert_eq!(a.pow(&[5, 0, 0, 0]), a * a * a * a * a);
        assert_eq!(a.pow(&[0, 0, 0, 0]), Fr::one());
    }

    #[test]
    fn batch_inverse_matches_individual() {
        let mut rng = rng();
        let mut v: Vec<Fq> = (0..17).map(|_| Fq::random(&mut rng)).collect();
        v[3] = Fq::zero();
        v[9] = Fq::zero();
        let expected: Vec<Fq> = v
            .iter()
            .map(|e| e.inverse().unwrap_or(Fq::zero()))
            .collect();
        batch_inverse(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn fermat_little_theorem() {
        let mut rng = rng();
        let a = Fq::random(&mut rng);
        assert_eq!(a.pow(&FqParams::MODULUS), a);
    }

    #[test]
    fn from_bytes_wide_uniformish() {
        // 2^256 mod p equals R; check via wide reduction of 2^256.
        let mut bytes = [0u8; 64];
        bytes[32] = 1; // little-endian: value = 2^256
        let v = Fq::from_bytes_wide(&bytes);
        assert_eq!(v.to_canonical(), Fq::R);
    }
}
