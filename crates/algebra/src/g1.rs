//! The group `G1 = E(Fq)` with `E: y^2 = x^3 + 3` and generator `(1, 2)`.
//!
//! BN254's G1 has prime order `r` and cofactor 1, so every point on the
//! curve is in the subgroup — hashing to the curve needs no cofactor
//! clearing.

use crate::curve::{Affine, CurveParams, Projective};
use crate::field::Field;
use crate::fields::{Fq, Fr};

/// Curve parameters for G1.
#[derive(Clone, Copy, Debug)]
pub struct G1Params;

impl CurveParams for G1Params {
    type Base = Fq;
    fn coeff_b() -> Fq {
        Fq::from_u64(3)
    }
    fn generator_xy() -> (Fq, Fq) {
        (Fq::from_u64(1), Fq::from_u64(2))
    }
    const NAME: &'static str = "G1";
}

/// Affine G1 point.
pub type G1Affine = Affine<G1Params>;
/// Jacobian G1 point.
pub type G1Projective = Projective<G1Params>;

impl G1Affine {
    /// Compressed serialization: 32 bytes, big-endian x-coordinate with
    /// flag bits in the two most significant bits of the first byte
    /// (bit 7: infinity, bit 6: y is odd). Valid because `q < 2^254`.
    pub fn to_compressed(&self) -> [u8; 32] {
        if self.infinity {
            let mut out = [0u8; 32];
            out[0] = 0x80;
            return out;
        }
        let mut out = self.x.to_bytes_be();
        debug_assert_eq!(out[0] & 0xc0, 0, "x must fit in 254 bits");
        if self.y.is_odd() {
            out[0] |= 0x40;
        }
        out
    }

    /// Parses a compressed point, checking the curve equation.
    pub fn from_compressed(bytes: &[u8; 32]) -> Option<Self> {
        if bytes[0] & 0x80 != 0 {
            let rest_zero = bytes[1..].iter().all(|&b| b == 0) && bytes[0] == 0x80;
            return rest_zero.then(Self::identity);
        }
        let y_odd = bytes[0] & 0x40 != 0;
        let mut xb = *bytes;
        xb[0] &= 0x3f;
        let x = Fq::from_bytes_be(&xb)?;
        let y2 = x.square() * x + G1Params::coeff_b();
        let mut y = y2.sqrt()?;
        if y.is_odd() != y_odd {
            y = -y;
        }
        Self::from_xy(x, y)
    }

    /// Uncompressed serialization (64 bytes, x || y big-endian).
    pub fn to_uncompressed(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        if !self.infinity {
            out[..32].copy_from_slice(&self.x.to_bytes_be());
            out[32..].copy_from_slice(&self.y.to_bytes_be());
        }
        out
    }
}

impl G1Projective {
    /// A uniformly random point (random scalar times the generator).
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::generator().mul(Fr::random(rng))
    }

    /// Process-wide 8-bit fixed-base table for the subgroup generator,
    /// built once on first use (~0.5 MB). Shared by tag generation and
    /// key generation, where every multiple of `g1` can be had for ~32
    /// mixed additions instead of a full double-and-add ladder.
    pub fn generator_table() -> &'static crate::msm::FixedBaseTable<G1Params> {
        static TABLE: std::sync::OnceLock<crate::msm::FixedBaseTable<G1Params>> =
            std::sync::OnceLock::new();
        TABLE.get_or_init(|| crate::msm::FixedBaseTable::new(&Self::generator()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x61)
    }

    #[test]
    fn generator_on_curve() {
        assert!(G1Affine::generator().is_on_curve());
    }

    #[test]
    fn generator_has_order_r() {
        use crate::fp::FieldParams;
        let g = G1Projective::generator();
        // r * g == identity: multiply by r via (r-1) + 1
        let r_minus_1 = crate::bigint::sub_small(&crate::fields::FrParams::MODULUS, 1);
        let mut acc = G1Projective::identity();
        // compute (r-1)*g by double-and-add over limb bits
        let top = crate::bigint::highest_bit(&r_minus_1).unwrap();
        for i in (0..=top).rev() {
            acc = acc.double();
            if crate::bigint::bit(&r_minus_1, i) {
                acc = acc.add(&g);
            }
        }
        assert_eq!(acc.add(&g), G1Projective::identity());
    }

    #[test]
    fn add_commutative_associative() {
        let mut rng = rng();
        let a = G1Projective::random(&mut rng);
        let b = G1Projective::random(&mut rng);
        let c = G1Projective::random(&mut rng);
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn double_matches_add() {
        let mut rng = rng();
        let a = G1Projective::random(&mut rng);
        assert_eq!(a.double(), a.add(&a));
    }

    #[test]
    fn mixed_add_matches_general() {
        let mut rng = rng();
        let a = G1Projective::random(&mut rng);
        let b = G1Projective::random(&mut rng);
        let b_aff = b.to_affine();
        assert_eq!(a.add_affine(&b_aff), a.add(&b));
        // identity cases
        assert_eq!(
            G1Projective::identity().add_affine(&b_aff),
            b
        );
        assert_eq!(a.add_affine(&G1Affine::identity()), a);
    }

    #[test]
    fn scalar_mul_distributes() {
        let mut rng = rng();
        let g = G1Projective::generator();
        let k1 = Fr::random(&mut rng);
        let k2 = Fr::random(&mut rng);
        assert_eq!(g.mul(k1).add(&g.mul(k2)), g.mul(k1 + k2));
    }

    #[test]
    fn mul_small_numbers() {
        let g = G1Projective::generator();
        assert_eq!(g.mul(Fr::from_u64(0)), G1Projective::identity());
        assert_eq!(g.mul(Fr::from_u64(1)), g);
        assert_eq!(g.mul(Fr::from_u64(2)), g.double());
        assert_eq!(g.mul(Fr::from_u64(3)), g.double().add(&g));
        assert_eq!(g.mul_u64(5), g.mul(Fr::from_u64(5)));
    }

    #[test]
    fn neg_is_inverse() {
        let mut rng = rng();
        let a = G1Projective::random(&mut rng);
        assert_eq!(a.add(&a.neg()), G1Projective::identity());
    }

    #[test]
    fn compressed_roundtrip() {
        let mut rng = rng();
        for _ in 0..10 {
            let p = G1Projective::random(&mut rng).to_affine();
            let bytes = p.to_compressed();
            assert_eq!(G1Affine::from_compressed(&bytes).unwrap(), p);
        }
        let id = G1Affine::identity();
        assert_eq!(
            G1Affine::from_compressed(&id.to_compressed()).unwrap(),
            id
        );
    }

    #[test]
    fn compressed_rejects_non_curve_x() {
        // x = 4 gives y^2 = 67 + 3... search for an x with no sqrt; x=4:
        // 4^3+3 = 67; whether 67 is a QR depends on q — just assert the
        // parser never panics and roundtrips valid points only.
        let mut bytes = [0u8; 32];
        bytes[31] = 4;
        if let Some(p) = G1Affine::from_compressed(&bytes) {
            assert!(p.is_on_curve());
        }
    }

    #[test]
    fn batch_to_affine_matches() {
        let mut rng = rng();
        let pts: Vec<G1Projective> = (0..9).map(|_| G1Projective::random(&mut rng)).collect();
        let mut with_id = pts.clone();
        with_id.push(G1Projective::identity());
        let batch = G1Projective::batch_to_affine(&with_id);
        for (p, a) in with_id.iter().zip(&batch) {
            assert_eq!(p.to_affine(), *a);
        }
    }
}
