//! Generic short-Weierstrass curve arithmetic (`y^2 = x^3 + b`, `a = 0`)
//! in Jacobian coordinates, shared by G1 (over `Fq`) and G2 (over `Fq2`).

use core::fmt;
use core::ops::{Add, AddAssign, Neg, Sub, SubAssign};

use crate::bigint::{bit, highest_bit};
use crate::field::{batch_inverse, Field};
use crate::fields::Fr;

/// Static description of a curve group: its base field, the constant `b`,
/// and the subgroup generator.
pub trait CurveParams: 'static + Copy + Clone + Send + Sync + fmt::Debug {
    /// Field the coordinates live in.
    type Base: Field;
    /// The Weierstrass constant `b`.
    fn coeff_b() -> Self::Base;
    /// Affine coordinates of the canonical generator.
    fn generator_xy() -> (Self::Base, Self::Base);
    /// Short name for Debug output.
    const NAME: &'static str;
}

/// An affine point (or the point at infinity).
#[derive(Clone, Copy)]
pub struct Affine<C: CurveParams> {
    /// x-coordinate (meaningless when `infinity`).
    pub x: C::Base,
    /// y-coordinate (meaningless when `infinity`).
    pub y: C::Base,
    /// Marker for the identity element.
    pub infinity: bool,
}

/// A point in Jacobian projective coordinates `(X : Y : Z)`,
/// `x = X/Z^2`, `y = Y/Z^3`; the identity has `Z = 0`.
#[derive(Clone, Copy)]
pub struct Projective<C: CurveParams> {
    /// Jacobian X.
    pub x: C::Base,
    /// Jacobian Y.
    pub y: C::Base,
    /// Jacobian Z (zero encodes the identity).
    pub z: C::Base,
}

impl<C: CurveParams> fmt::Debug for Affine<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infinity {
            write!(f, "{}(inf)", C::NAME)
        } else {
            write!(f, "{}({:?}, {:?})", C::NAME, self.x, self.y)
        }
    }
}

impl<C: CurveParams> fmt::Debug for Projective<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.to_affine().fmt(f)
    }
}

impl<C: CurveParams> Default for Affine<C> {
    fn default() -> Self {
        Self::identity()
    }
}

impl<C: CurveParams> Default for Projective<C> {
    fn default() -> Self {
        Self::identity()
    }
}

impl<C: CurveParams> Affine<C> {
    /// The identity (point at infinity).
    pub fn identity() -> Self {
        Self {
            x: C::Base::zero(),
            y: C::Base::zero(),
            infinity: true,
        }
    }

    /// The canonical subgroup generator.
    pub fn generator() -> Self {
        let (x, y) = C::generator_xy();
        Self {
            x,
            y,
            infinity: false,
        }
    }

    /// Constructs from coordinates, verifying the curve equation.
    pub fn from_xy(x: C::Base, y: C::Base) -> Option<Self> {
        let p = Self {
            x,
            y,
            infinity: false,
        };
        if p.is_on_curve() {
            Some(p)
        } else {
            None
        }
    }

    /// True when the point satisfies `y^2 = x^3 + b` (identity included).
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        self.y.square() == self.x.square() * self.x + C::coeff_b()
    }

    /// Converts to Jacobian coordinates.
    pub fn to_projective(&self) -> Projective<C> {
        if self.infinity {
            Projective::identity()
        } else {
            Projective {
                x: self.x,
                y: self.y,
                z: C::Base::one(),
            }
        }
    }

    /// Scalar multiplication by an `Fr` element.
    pub fn mul(&self, k: Fr) -> Projective<C> {
        self.to_projective().mul(k)
    }

    /// Negation (reflect over the x-axis).
    pub fn neg(&self) -> Self {
        Self {
            x: self.x,
            y: -self.y,
            infinity: self.infinity,
        }
    }
}

impl<C: CurveParams> PartialEq for Affine<C> {
    fn eq(&self, other: &Self) -> bool {
        if self.infinity || other.infinity {
            return self.infinity == other.infinity;
        }
        self.x == other.x && self.y == other.y
    }
}
impl<C: CurveParams> Eq for Affine<C> {}

impl<C: CurveParams> PartialEq for Projective<C> {
    fn eq(&self, other: &Self) -> bool {
        // (X1 : Y1 : Z1) == (X2 : Y2 : Z2)  iff  X1 Z2^2 == X2 Z1^2 and
        // Y1 Z2^3 == Y2 Z1^3 (or both are the identity).
        let z1_zero = self.z.is_zero();
        let z2_zero = other.z.is_zero();
        if z1_zero || z2_zero {
            return z1_zero == z2_zero;
        }
        let z1s = self.z.square();
        let z2s = other.z.square();
        self.x * z2s == other.x * z1s && self.y * z2s * other.z == other.y * z1s * self.z
    }
}
impl<C: CurveParams> Eq for Projective<C> {}

impl<C: CurveParams> Projective<C> {
    /// The identity element.
    pub fn identity() -> Self {
        Self {
            x: C::Base::one(),
            y: C::Base::one(),
            z: C::Base::zero(),
        }
    }

    /// The canonical generator.
    pub fn generator() -> Self {
        Affine::<C>::generator().to_projective()
    }

    /// True for the identity element.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (`dbl-2009-l`, valid for `a = 0`).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let mut d = (self.x + b).square() - a - c;
        d = d.double();
        let e = a.double() + a;
        let f = e.square();
        let x3 = f - d.double();
        let y3 = e * (d - x3) - c.double().double().double();
        let z3 = (self.y * self.z).double();
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General addition (`add-2007-bl`).
    pub fn add(&self, other: &Self) -> Self {
        if self.is_identity() {
            return *other;
        }
        if other.is_identity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = self.x * z2z2;
        let u2 = other.x * z1z1;
        let s1 = self.y * other.z * z2z2;
        let s2 = other.y * self.z * z1z1;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let r = (s2 - s1).double();
        let v = u1 * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + other.z).square() - z1z1 - z2z2) * h;
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point (`madd-2007-bl`).
    pub fn add_affine(&self, other: &Affine<C>) -> Self {
        if other.infinity {
            return *self;
        }
        if self.is_identity() {
            return other.to_projective();
        }
        let z1z1 = self.z.square();
        let u2 = other.x * z1z1;
        let s2 = other.y * self.z * z1z1;
        if self.x == u2 {
            if self.y == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - self.x;
        let hh = h.square();
        let i = hh.double().double();
        let j = h * i;
        let r = (s2 - self.y).double();
        let v = self.x * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (self.y * j).double();
        let z3 = (self.z + h).square() - z1z1 - hh;
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Self {
            x: self.x,
            y: -self.y,
            z: self.z,
        }
    }

    /// Double-and-add scalar multiplication by the canonical representative
    /// of `k`.
    pub fn mul(&self, k: Fr) -> Self {
        let limbs = k.to_canonical();
        let top = match highest_bit(&limbs) {
            None => return Self::identity(),
            Some(t) => t,
        };
        let mut acc = *self;
        for i in (0..top).rev() {
            acc = acc.double();
            if bit(&limbs, i) {
                acc = Projective::add(&acc, self);
            }
        }
        acc
    }

    /// Scalar multiplication by a small integer.
    pub fn mul_u64(&self, k: u64) -> Self {
        if k == 0 {
            return Self::identity();
        }
        let mut acc = *self;
        for i in (0..63 - k.leading_zeros()).rev() {
            acc = acc.double();
            if (k >> i) & 1 == 1 {
                acc = Projective::add(&acc, self);
            }
        }
        acc
    }

    /// Converts to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> Affine<C> {
        if self.is_identity() {
            return Affine::identity();
        }
        let zinv = self.z.inverse().expect("non-identity has invertible z");
        let zinv2 = zinv.square();
        Affine {
            x: self.x * zinv2,
            y: self.y * zinv2 * zinv,
            infinity: false,
        }
    }

    /// Batch conversion to affine with a single inversion.
    pub fn batch_to_affine(points: &[Self]) -> Vec<Affine<C>> {
        let mut zs: Vec<C::Base> = points.iter().map(|p| p.z).collect();
        batch_inverse(&mut zs);
        points
            .iter()
            .zip(zs)
            .map(|(p, zinv)| {
                if p.is_identity() {
                    Affine::identity()
                } else {
                    let zinv2 = zinv.square();
                    Affine {
                        x: p.x * zinv2,
                        y: p.y * zinv2 * zinv,
                        infinity: false,
                    }
                }
            })
            .collect()
    }

    /// Batched affine addition with one shared field inversion:
    /// `acc[i] = acc[i] + rhs[i]` for every lane, all lanes sharing a
    /// single Montgomery-inversion pass (`batch_inverse`).
    ///
    /// This is the workhorse of the batch-affine MSM bucket accumulation
    /// and the fixed-scalar multiplication kernels: a full affine addition
    /// costs ~6 field multiplications per lane (3 of them amortized
    /// inversion) versus ~11 for a Jacobian mixed addition.
    ///
    /// All the exceptional cases are folded into the same inversion pass
    /// rather than special-cased on a slow path:
    ///
    /// * either operand at infinity — lane denominator is set to 1 and the
    ///   other operand is copied through;
    /// * equal x, equal y (doubling) — the denominator becomes `2y` and
    ///   the tangent slope `3x^2 / 2y` is used;
    /// * equal x, opposite y (cancellation) — the lane yields infinity.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn batch_add_affine(acc: &mut [Affine<C>], rhs: &[Affine<C>]) {
        assert_eq!(acc.len(), rhs.len(), "batch_add_affine length mismatch");
        // Per-lane denominator of the slope: x2 - x1 for distinct x,
        // 2*y1 for doubling, 1 for the no-op/identity cases.
        let mut denoms: Vec<C::Base> = acc
            .iter()
            .zip(rhs)
            .map(|(a, b)| {
                if a.infinity || b.infinity {
                    C::Base::one()
                } else if a.x != b.x {
                    b.x - a.x
                } else if a.y == b.y && !a.y.is_zero() {
                    a.y.double()
                } else {
                    C::Base::one()
                }
            })
            .collect();
        batch_inverse(&mut denoms);
        for ((a, b), inv) in acc.iter_mut().zip(rhs).zip(denoms) {
            if b.infinity {
                continue;
            }
            if a.infinity {
                *a = *b;
                continue;
            }
            let lambda = if a.x != b.x {
                (b.y - a.y) * inv
            } else if a.y == b.y && !a.y.is_zero() {
                let xx = a.x.square();
                (xx.double() + xx) * inv
            } else {
                // cancellation (or doubling a 2-torsion point): identity
                *a = Affine::identity();
                continue;
            };
            let x3 = lambda.square() - a.x - b.x;
            let y3 = lambda * (a.x - x3) - a.y;
            a.x = x3;
            a.y = y3;
        }
    }

    /// Batched affine doubling sharing one inversion: `pts[i] = 2*pts[i]`.
    /// Identity lanes pass through; doubling a point with `y = 0`
    /// (2-torsion, absent from prime-order groups) yields infinity.
    pub fn batch_double_affine(pts: &mut [Affine<C>]) {
        let mut denoms: Vec<C::Base> = pts
            .iter()
            .map(|p| {
                if p.infinity || p.y.is_zero() {
                    C::Base::one()
                } else {
                    p.y.double()
                }
            })
            .collect();
        batch_inverse(&mut denoms);
        for (p, inv) in pts.iter_mut().zip(denoms) {
            if p.infinity {
                continue;
            }
            if p.y.is_zero() {
                *p = Affine::identity();
                continue;
            }
            let xx = p.x.square();
            let lambda = (xx.double() + xx) * inv;
            let x3 = lambda.square() - p.x.double();
            let y3 = lambda * (p.x - x3) - p.y;
            p.x = x3;
            p.y = y3;
        }
    }

    /// Sums an iterator of points.
    pub fn sum<I: IntoIterator<Item = Self>>(iter: I) -> Self {
        iter.into_iter()
            .fold(Self::identity(), |acc, p| Projective::add(&acc, &p))
    }
}

impl<C: CurveParams> Add for Projective<C> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Projective::add(&self, &rhs)
    }
}
impl<C: CurveParams> AddAssign for Projective<C> {
    fn add_assign(&mut self, rhs: Self) {
        *self = Projective::add(self, &rhs);
    }
}
impl<C: CurveParams> Sub for Projective<C> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Projective::add(&self, &rhs.neg())
    }
}
impl<C: CurveParams> SubAssign for Projective<C> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = Projective::add(self, &rhs.neg());
    }
}
impl<C: CurveParams> Neg for Projective<C> {
    type Output = Self;
    fn neg(self) -> Self {
        Projective::neg(&self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g1::{G1Affine, G1Projective};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xbadd)
    }

    #[test]
    fn batch_add_affine_matches_projective() {
        let mut rng = rng();
        let a: Vec<G1Affine> = (0..33)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let b: Vec<G1Affine> = (0..33)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let mut acc = a.clone();
        Projective::batch_add_affine(&mut acc, &b);
        for i in 0..a.len() {
            assert_eq!(
                acc[i].to_projective(),
                a[i].to_projective().add_affine(&b[i]),
                "lane {i}"
            );
        }
    }

    #[test]
    fn batch_add_affine_exceptional_lanes() {
        let mut rng = rng();
        let p = G1Projective::random(&mut rng).to_affine();
        let q = G1Projective::random(&mut rng).to_affine();
        let id = G1Affine::identity();
        // lanes: id+q, p+id, id+id, p+(-p) (cancel), p+p (double), p+q
        let mut acc = vec![id, p, id, p, p, p];
        let rhs = vec![q, id, id, p.neg(), p, q];
        Projective::batch_add_affine(&mut acc, &rhs);
        assert_eq!(acc[0], q);
        assert_eq!(acc[1], p);
        assert_eq!(acc[2], id);
        assert_eq!(acc[3], id);
        assert_eq!(acc[4].to_projective(), p.to_projective().double());
        assert_eq!(acc[5].to_projective(), p.to_projective().add_affine(&q));
    }

    #[test]
    fn batch_double_affine_matches() {
        let mut rng = rng();
        let mut pts: Vec<G1Affine> = (0..17)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        pts.push(G1Affine::identity());
        let expect: Vec<G1Projective> =
            pts.iter().map(|p| p.to_projective().double()).collect();
        Projective::batch_double_affine(&mut pts);
        for (got, want) in pts.iter().zip(&expect) {
            assert_eq!(got.to_projective(), *want);
        }
    }
}
