//! GLV endomorphism acceleration for G1 scalar multiplication.
//!
//! BN254 has `j`-invariant 0, so G1 admits the efficient endomorphism
//! `phi(x, y) = (beta * x, y)` where `beta` is a primitive cube root of
//! unity in `Fq`; on the prime-order subgroup `phi` acts as
//! multiplication by `lambda`, a primitive cube root of unity mod `r`.
//! Writing a scalar as `k = k1 + k2 * lambda` with `|k1|, |k2| ~ sqrt(r)`
//! halves the doubling count of a double-and-add ladder:
//! `k * P = k1 * P + k2 * phi(P)` with two ~128-bit scalars sharing one
//! run of doublings.
//!
//! Nothing here is hand-transcribed: `beta` and `lambda` are found by
//! exponentiation at first use, matched against each other on the
//! generator, and the short lattice basis for the decomposition is
//! derived with a partial extended Euclidean algorithm on `(r, lambda)`.
//! Every decomposition is verified (`k1 + k2 * lambda == k` in `Fr`)
//! before it is used; any failure falls back to the generic wNAF path,
//! so a wrong constant can cost speed but never correctness.

use std::sync::OnceLock;

use crate::bigint::{self, Limbs};
use crate::curve::Affine;
use crate::field::Field;
use crate::fields::{Fq, Fr, FrParams};
use crate::fp::{FieldParams, Fp};
use crate::g1::G1Affine;
use crate::msm::{mul_each_batched, wnaf_digits};
use crate::par::par_map_chunks;

/// A sign-magnitude integer with magnitude below `2^128` (the size class
/// of GLV half-scalars and lattice basis entries).
#[derive(Clone, Copy, Debug)]
struct Signed128 {
    neg: bool,
    mag: u128,
}

/// A sign-magnitude integer on 256-bit limbs, used only inside the
/// decomposition arithmetic.
#[derive(Clone, Copy, Debug)]
struct Signed256 {
    neg: bool,
    mag: Limbs,
}

impl Signed256 {
    fn add(&self, other: &Self) -> Self {
        if self.neg == other.neg {
            let (mag, carry) = bigint::add_wide(&self.mag, &other.mag);
            debug_assert_eq!(carry, 0, "decomposition magnitudes stay below 2^256");
            Self { neg: self.neg, mag }
        } else {
            let (mag, borrow) = bigint::sub_wide(&self.mag, &other.mag);
            if borrow == 0 {
                Self { neg: self.neg, mag }
            } else {
                Self {
                    neg: other.neg,
                    mag: bigint::sub(&other.mag, &self.mag),
                }
            }
        }
    }

    fn negate(&self) -> Self {
        Self {
            neg: !self.neg && !bigint::is_zero(&self.mag),
            mag: self.mag,
        }
    }

    fn to_signed128(self) -> Option<Signed128> {
        if self.mag[2] != 0 || self.mag[3] != 0 {
            return None;
        }
        Some(Signed128 {
            neg: self.neg && !bigint::is_zero(&self.mag),
            mag: (self.mag[0] as u128) | ((self.mag[1] as u128) << 64),
        })
    }
}

fn u128_limbs(v: u128) -> Limbs {
    [v as u64, (v >> 64) as u64, 0, 0]
}

/// Embeds a sign-magnitude 128-bit integer into `Fr`.
fn fr_from_signed128(v: &Signed128) -> Fr {
    let two64 = Fr::from_u64(1 << 32).square();
    let f = Fr::from_u64((v.mag >> 64) as u64) * two64 + Fr::from_u64(v.mag as u64);
    if v.neg {
        -f
    } else {
        f
    }
}

/// `mag_a * mag_b` as full 256-bit limbs; `None` if the product overflows
/// (cannot happen for in-range basis entries, checked defensively).
fn mul_mags(a: u128, b: u128) -> Option<Limbs> {
    let wide = bigint::mul_wide(&u128_limbs(a), &u128_limbs(b));
    if wide[4..].iter().any(|&l| l != 0) {
        return None;
    }
    Some([wide[0], wide[1], wide[2], wide[3]])
}

/// `round(num / d)` where `num` is a 512-bit product and `d` the group
/// order; returns the quotient magnitude if it fits `u128`.
fn round_div(num: [u64; 8], d: &Limbs) -> Option<u128> {
    let (q, rem) = bigint::div_rem_wide(&num, d);
    // round half up: q += (2*rem >= d)
    let (twice, carry) = bigint::add_wide(&rem, &rem);
    let round_up = carry == 1 || bigint::geq(&twice, d);
    let mut q = q;
    if round_up {
        let mut carry = 1u64;
        for limb in q.iter_mut() {
            let (s, c) = bigint::adc(*limb, 0, carry);
            *limb = s;
            carry = c;
            if carry == 0 {
                break;
            }
        }
    }
    if q[2..].iter().any(|&l| l != 0) {
        return None;
    }
    Some((q[0] as u128) | ((q[1] as u128) << 64))
}

/// The derived endomorphism data: `beta`, `lambda` and a short lattice
/// basis `v1 = (a1, b1)`, `v2 = (a2, b2)` with `a_i + b_i * lambda == 0
/// (mod r)`.
struct G1Endo {
    beta: Fq,
    lambda: Fr,
    a1: Signed128,
    b1: Signed128,
    a2: Signed128,
    b2: Signed128,
}

/// Finds a primitive cube root of unity in `Fp<P>` (requires
/// `p == 1 mod 3`), by raising small bases to `(p - 1) / 3`.
fn primitive_cube_root<P: FieldParams>() -> Option<Fp<P>> {
    let m1 = bigint::sub_small(&P::MODULUS, 1);
    let third = bigint::div_small(&m1, 3);
    let three_thirds = bigint::add_wide(&bigint::add_wide(&third, &third).0, &third).0;
    if three_thirds != m1 {
        return None; // p - 1 not divisible by 3
    }
    for g in 2u64..50 {
        let c = Fp::<P>::from_u64(g).pow(&third);
        if c != Fp::<P>::one() {
            return Some(c); // a cube root != 1 is primitive (order exactly 3)
        }
    }
    None
}

/// Partial extended Euclidean algorithm on `(r, lambda)` producing the
/// two shortest `(a, b)` lattice vectors with `a + b * lambda == 0 mod r`
/// (the GLV construction): remainders `r_i` pair with cofactors `t_i`
/// such that `r_i == t_i * lambda (mod r)`, i.e. `(r_i, -t_i)` is in the
/// lattice; stopping at the first remainder below `sqrt(r)` yields
/// vectors of norm `O(sqrt(r))`.
fn short_basis(lambda: &Limbs) -> Option<[(Signed128, Signed128); 2]> {
    let n = FrParams::MODULUS;
    let below_sqrt_n = |v: &Limbs| {
        let sq = bigint::mul_wide(v, v);
        sq[4..].iter().all(|&l| l == 0)
            && !bigint::geq(&[sq[0], sq[1], sq[2], sq[3]], &n)
    };
    // rows (r_i, |t_i|, sign(t_i)); t signs alternate, magnitudes add
    let mut r_prev = n;
    let mut r_cur = *lambda;
    let mut t_prev = ([0u64; 4], true); // t0 = 0 (sign chosen so alternation works)
    let mut t_cur = ([1u64, 0, 0, 0], false); // t1 = 1
    let mut steps = 0;
    while !below_sqrt_n(&r_cur) {
        steps += 1;
        if steps > 600 || bigint::is_zero(&r_cur) {
            return None;
        }
        let mut wide = [0u64; 8];
        wide[..4].copy_from_slice(&r_prev);
        let (q, rem) = bigint::div_rem_wide(&wide, &r_cur);
        if q[4..].iter().any(|&l| l != 0) {
            return None;
        }
        // |t_next| = |t_prev| + q * |t_cur| (signs alternate)
        let prod = bigint::mul_wide(&[q[0], q[1], q[2], q[3]], &t_cur.0);
        if prod[4..].iter().any(|&l| l != 0) {
            return None;
        }
        let (t_next_mag, carry) =
            bigint::add_wide(&t_prev.0, &[prod[0], prod[1], prod[2], prod[3]]);
        if carry != 0 {
            return None;
        }
        let t_next = (t_next_mag, !t_cur.1);
        r_prev = r_cur;
        r_cur = rem;
        t_prev = t_cur;
        t_cur = t_next;
    }
    // one more division for the row after the stopping point
    let mut wide = [0u64; 8];
    wide[..4].copy_from_slice(&r_prev);
    let (q, r_next) = bigint::div_rem_wide(&wide, &r_cur);
    let prod = bigint::mul_wide(&[q[0], q[1], q[2], q[3]], &t_cur.0);
    if prod[4..].iter().any(|&l| l != 0) {
        return None;
    }
    let (t_next_mag, carry) = bigint::add_wide(&t_prev.0, &[prod[0], prod[1], prod[2], prod[3]]);
    if carry != 0 {
        return None;
    }
    let t_next = (t_next_mag, !t_cur.1);

    // candidate vectors (a, b) = (r_i, -t_i): v1 from the stopping row,
    // v2 the shorter of its neighbours
    let to_vec = |r: &Limbs, t: &([u64; 4], bool)| -> Option<(Signed128, Signed128)> {
        let a = Signed256 { neg: false, mag: *r }.to_signed128()?;
        let b = Signed256 {
            neg: !t.1, // -t_i
            mag: t.0,
        }
        .to_signed128()?;
        Some((a, b))
    };
    let v1 = to_vec(&r_cur, &t_cur)?;
    let norm = |v: &(Signed128, Signed128)| -> (u64, [u64; 8]) {
        let aa = bigint::mul_wide(&u128_limbs(v.0.mag), &u128_limbs(v.0.mag));
        let bb = bigint::mul_wide(&u128_limbs(v.1.mag), &u128_limbs(v.1.mag));
        let mut sum = [0u64; 8];
        let mut carry = 0u64;
        for i in 0..8 {
            let (s, c) = bigint::adc(aa[i], bb[i], carry);
            sum[i] = s;
            carry = c;
        }
        (carry, sum)
    };
    // norms compare as (carry, top limb, ..., bottom limb)
    let norm_key = |v: &(Signed128, Signed128)| {
        let (carry, sum) = norm(v);
        let mut key = [carry; 9];
        for i in 0..8 {
            key[1 + i] = sum[7 - i];
        }
        key
    };
    let v2 = match (to_vec(&r_prev, &t_prev), to_vec(&r_next, &t_next)) {
        (Some(p), Some(nx)) => {
            if norm_key(&p) <= norm_key(&nx) {
                p
            } else {
                nx
            }
        }
        (Some(p), None) => p,
        (None, Some(nx)) => nx,
        (None, None) => return None,
    };
    Some([v1, v2])
}

impl G1Endo {
    /// Derives and verifies the endomorphism data; `None` disables GLV.
    fn derive() -> Option<Self> {
        let beta0: Fq = primitive_cube_root()?;
        let lambda0: Fr = primitive_cube_root()?;
        let g = G1Affine::generator();
        // match (beta, lambda) so that phi(G) == lambda * G
        let mut found = None;
        'outer: for beta in [beta0, beta0.square()] {
            let phi = Affine {
                x: g.x * beta,
                y: g.y,
                infinity: false,
            };
            for lambda in [lambda0, lambda0.square()] {
                if g.mul(lambda).to_affine() == phi {
                    found = Some((beta, lambda));
                    break 'outer;
                }
            }
        }
        let (beta, lambda) = found?;
        let [(a1, b1), (a2, b2)] = short_basis(&lambda.to_canonical())?;
        let endo = Self {
            beta,
            lambda,
            a1,
            b1,
            a2,
            b2,
        };
        // verify both basis vectors: a + b * lambda == 0 (mod r)
        for (a, b) in [(&endo.a1, &endo.b1), (&endo.a2, &endo.b2)] {
            if fr_from_signed128(a) + fr_from_signed128(b) * lambda != Fr::zero() {
                return None;
            }
        }
        Some(endo)
    }

    /// The process-wide endomorphism data (derived once).
    fn get() -> Option<&'static G1Endo> {
        static ENDO: OnceLock<Option<G1Endo>> = OnceLock::new();
        ENDO.get_or_init(G1Endo::derive).as_ref()
    }

    /// Splits `k` as `k1 + k2 * lambda (mod r)` with half-width parts via
    /// Babai rounding against the short basis. Verified exactly in `Fr`
    /// before use; `None` (never expected) falls back to the slow path.
    fn decompose(&self, k: Fr) -> Option<(Signed128, Signed128)> {
        let n = FrParams::MODULUS;
        let klimbs = k.to_canonical();
        // (c1, c2) = round( (k, 0) * B^{-1} ): c1 = round(k*b2/r) with
        // sign(b2), c2 = round(-k*b1/r) = round(k*b1/r) with sign flipped
        let c1 = Signed128 {
            neg: self.b2.neg,
            mag: round_div(bigint::mul_wide(&klimbs, &u128_limbs(self.b2.mag)), &n)?,
        };
        let c2 = Signed128 {
            neg: !self.b1.neg,
            mag: round_div(bigint::mul_wide(&klimbs, &u128_limbs(self.b1.mag)), &n)?,
        };
        let term = |c: &Signed128, v: &Signed128| -> Option<Signed256> {
            Some(Signed256 {
                neg: c.neg ^ v.neg,
                mag: mul_mags(c.mag, v.mag)?,
            })
        };
        // k1 = k - c1*a1 - c2*a2 ; k2 = -c1*b1 - c2*b2
        let k_pos = Signed256 {
            neg: false,
            mag: klimbs,
        };
        let k1 = k_pos
            .add(&term(&c1, &self.a1)?.negate())
            .add(&term(&c2, &self.a2)?.negate())
            .to_signed128()?;
        let k2 = term(&c1, &self.b1)?
            .negate()
            .add(&term(&c2, &self.b2)?.negate())
            .to_signed128()?;
        // exact check: any derivation bug shows up here, not in results
        if fr_from_signed128(&k1) + fr_from_signed128(&k2) * self.lambda != k {
            return None;
        }
        Some((k1, k2))
    }
}

/// Signed wNAF digits of a sign-magnitude 128-bit scalar.
fn signed_wnaf(v: &Signed128, w: usize) -> Vec<i8> {
    let mut digits = wnaf_digits(&u128_limbs(v.mag), w);
    if v.neg {
        for d in &mut digits {
            *d = -*d;
        }
    }
    digits
}

/// Multiplies every point by the same scalar, `out[i] = k * points[i]`,
/// using the GLV split plus batch-affine shared-wNAF accumulation; falls
/// back to the generic [`crate::msm::mul_each`] when the endomorphism is
/// unavailable. This is the hot kernel of authenticator generation
/// (`sigma_i = (g1^{M_i(alpha)} * t_i)^x` raises every chunk hash to the
/// same secret `x`).
pub fn mul_each_g1(points: &[G1Affine], k: Fr) -> Vec<G1Affine> {
    if let Some(endo) = G1Endo::get() {
        if let Some((k1, k2)) = endo.decompose(k) {
            let d1 = signed_wnaf(&k1, 4);
            let d2 = signed_wnaf(&k2, 4);
            let beta = endo.beta;
            return par_map_chunks(points.len(), 64, |r| {
                mul_each_batched(&points[r], &d1, &d2, 4, Some(beta))
            });
        }
    }
    crate::msm::mul_each(points, k)
}

/// GLV-split multi-scalar multiplication on G1: every term
/// `k_i * P_i` becomes `k1_i * (+-P_i) + k2_i * (+-phi(P_i))` with
/// half-width magnitudes, so the Pippenger core runs over `2n` points but
/// only ~128 scalar bits — half the windows, half the inter-window
/// doubling chain. This is the verifier's `chi` aggregation and the
/// prover's commitment kernel. Every decomposition is exact-checked; any
/// failure (never expected) falls back to the generic [`crate::msm::msm`].
pub fn msm_g1(bases: &[G1Affine], scalars: &[Fr]) -> crate::g1::G1Projective {
    assert_eq!(bases.len(), scalars.len(), "msm requires equal-length inputs");
    // Tiny inputs don't amortize the decomposition bookkeeping.
    if bases.len() < 8 {
        return crate::msm::msm(bases, scalars);
    }
    let Some(endo) = G1Endo::get() else {
        return crate::msm::msm(bases, scalars);
    };
    let mut split_bases: Vec<G1Affine> = Vec::with_capacity(2 * bases.len());
    let mut split_scalars: Vec<Limbs> = Vec::with_capacity(2 * bases.len());
    for (p, k) in bases.iter().zip(scalars) {
        let Some((k1, k2)) = endo.decompose(*k) else {
            return crate::msm::msm(bases, scalars);
        };
        let phi = Affine {
            x: p.x * endo.beta,
            y: p.y,
            infinity: p.infinity,
        };
        split_bases.push(if k1.neg { p.neg() } else { *p });
        split_scalars.push(u128_limbs(k1.mag));
        split_bases.push(if k2.neg { phi.neg() } else { phi });
        split_scalars.push(u128_limbs(k2.mag));
    }
    crate::msm::msm_limbs(&split_bases, &split_scalars, 128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g1::G1Projective;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x91d0)
    }

    #[test]
    fn endo_derivation_succeeds_for_bn254() {
        let endo = G1Endo::get().expect("BN254 admits the GLV endomorphism");
        // lambda^2 + lambda + 1 == 0 (primitive cube root of unity)
        assert_eq!(
            endo.lambda.square() + endo.lambda + Fr::one(),
            Fr::zero()
        );
        assert_eq!(
            endo.beta.square() * endo.beta,
            crate::fields::Fq::one()
        );
        // basis magnitudes are genuinely short (~sqrt(r) ~ 2^127)
        for v in [&endo.a1, &endo.b1, &endo.a2, &endo.b2] {
            assert!(v.mag < 1u128 << 127, "basis entry too long: {v:?}");
        }
    }

    #[test]
    fn phi_acts_as_lambda_everywhere() {
        let endo = G1Endo::get().unwrap();
        let mut rng = rng();
        for _ in 0..5 {
            let p = G1Projective::random(&mut rng).to_affine();
            let phi = Affine {
                x: p.x * endo.beta,
                y: p.y,
                infinity: false,
            };
            assert!(phi.is_on_curve());
            assert_eq!(p.mul(endo.lambda).to_affine(), phi);
        }
    }

    #[test]
    fn decompose_verified_and_short() {
        let endo = G1Endo::get().unwrap();
        let mut rng = rng();
        let mut scalars: Vec<Fr> = (0..20).map(|_| Fr::random(&mut rng)).collect();
        scalars.push(Fr::zero());
        scalars.push(Fr::one());
        scalars.push(Fr::zero() - Fr::one());
        scalars.push(endo.lambda);
        for k in scalars {
            let (k1, k2) = endo.decompose(k).expect("decomposition never fails");
            assert_eq!(
                fr_from_signed128(&k1) + fr_from_signed128(&k2) * endo.lambda,
                k
            );
            assert!(k1.mag < 1u128 << 127, "k1 too long for {k:?}");
            assert!(k2.mag < 1u128 << 127, "k2 too long for {k:?}");
        }
    }

    #[test]
    fn mul_each_g1_matches_per_point_mul() {
        let mut rng = rng();
        let mut points: Vec<G1Affine> = (0..7)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        points.push(G1Affine::identity());
        for k in [
            Fr::zero(),
            Fr::one(),
            Fr::zero() - Fr::one(),
            Fr::random(&mut rng),
        ] {
            let got = mul_each_g1(&points, k);
            for (p, g) in points.iter().zip(&got) {
                assert_eq!(g.to_projective(), p.mul(k), "k={k:?}");
            }
        }
    }
}
