//! Multi-scalar multiplication (Pippenger's bucket algorithm).
//!
//! `msm(bases, scalars)` computes `sum_i scalars[i] * bases[i]` much faster
//! than individual scalar multiplications. Used for aggregated
//! authenticators, KZG openings and the Groth16 prover.

use crate::curve::{Affine, CurveParams, Projective};
use crate::fields::Fr;

/// Picks a bucket window size for `n` terms (heuristic from the usual
/// `ln`-based rule, clamped to sane bounds).
fn window_size(n: usize) -> usize {
    match n {
        0..=1 => 1,
        2..=31 => 3,
        32..=255 => 5,
        256..=2047 => 7,
        2048..=16383 => 9,
        16384..=131071 => 11,
        _ => 13,
    }
}

/// Computes `sum_i scalars[i] * bases[i]`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn msm<C: CurveParams>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
    assert_eq!(
        bases.len(),
        scalars.len(),
        "msm requires equal-length inputs"
    );
    if bases.is_empty() {
        return Projective::identity();
    }
    if bases.len() == 1 {
        return bases[0].mul(scalars[0]);
    }
    let c = window_size(bases.len());
    let num_windows = 254usize.div_ceil(c);
    let digits: Vec<[u64; 4]> = scalars.iter().map(|s| s.to_canonical()).collect();

    let mut window_sums = Vec::with_capacity(num_windows);
    for w in 0..num_windows {
        let bit_offset = w * c;
        let mut buckets = vec![Projective::<C>::identity(); (1 << c) - 1];
        for (base, limbs) in bases.iter().zip(&digits) {
            let digit = extract_bits(limbs, bit_offset, c);
            if digit != 0 {
                let b = &mut buckets[digit - 1];
                *b = b.add_affine(base);
            }
        }
        // running-sum trick: sum_j j * bucket[j]
        let mut running = Projective::<C>::identity();
        let mut acc = Projective::<C>::identity();
        for b in buckets.iter().rev() {
            running = running.add(b);
            acc = acc.add(&running);
        }
        window_sums.push(acc);
    }
    // combine windows from the top down
    let mut total = Projective::<C>::identity();
    for ws in window_sums.iter().rev() {
        for _ in 0..c {
            total = total.double();
        }
        total = total.add(ws);
    }
    total
}

/// Extracts `count` bits starting at `offset` from little-endian limbs.
fn extract_bits(limbs: &[u64; 4], offset: usize, count: usize) -> usize {
    let limb = offset / 64;
    let shift = offset % 64;
    if limb >= 4 {
        return 0;
    }
    let mut v = limbs[limb] >> shift;
    if shift + count > 64 && limb + 1 < 4 {
        v |= limbs[limb + 1] << (64 - shift);
    }
    (v & ((1u64 << count) - 1)) as usize
}

/// Precomputed table for many scalar multiplications of one fixed base
/// (used by the Groth16 trusted setup, which needs hundreds of
/// thousands of multiples of the generators).
#[derive(Clone, Debug)]
pub struct FixedBaseTable<C: CurveParams> {
    /// table[w][d] = (d+1) * 2^(8w) * base
    windows: Vec<Vec<Affine<C>>>,
}

impl<C: CurveParams> FixedBaseTable<C> {
    /// Builds the 8-bit windowed table (32 windows x 255 entries).
    pub fn new(base: &Projective<C>) -> Self {
        let mut windows = Vec::with_capacity(32);
        let mut window_base = *base;
        for _ in 0..32 {
            let mut row = Vec::with_capacity(255);
            let mut acc = window_base;
            for _ in 0..255 {
                row.push(acc);
                acc = acc.add(&window_base);
            }
            windows.push(Projective::batch_to_affine(&row));
            window_base = acc; // 256 * window_base
        }
        Self { windows }
    }

    /// `k * base` using the table (32 mixed additions).
    pub fn mul(&self, k: Fr) -> Projective<C> {
        let limbs = k.to_canonical();
        let mut acc = Projective::identity();
        for (w, row) in self.windows.iter().enumerate() {
            let byte = (limbs[w / 8] >> ((w % 8) * 8)) & 0xff;
            if byte != 0 {
                acc = acc.add_affine(&row[(byte - 1) as usize]);
            }
        }
        acc
    }

    /// Applies the table to many scalars.
    pub fn mul_many(&self, scalars: &[Fr]) -> Vec<Projective<C>> {
        scalars.iter().map(|s| self.mul(*s)).collect()
    }
}

/// Naive MSM used as a correctness oracle and for ablation benches.
pub fn msm_naive<C: CurveParams>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
    assert_eq!(bases.len(), scalars.len());
    let mut acc = Projective::identity();
    for (b, s) in bases.iter().zip(scalars) {
        acc = acc.add(&b.mul(*s));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Field;
    use crate::g1::{G1Params, G1Projective};
    use crate::g2::G2Projective;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x35)
    }

    #[test]
    fn msm_matches_naive_small() {
        let mut rng = rng();
        for n in [0usize, 1, 2, 3, 17, 64, 301] {
            let bases: Vec<_> = (0..n)
                .map(|_| G1Projective::random(&mut rng).to_affine())
                .collect();
            let scalars: Vec<_> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            assert_eq!(
                msm(&bases, &scalars),
                msm_naive(&bases, &scalars),
                "mismatch at n={n}"
            );
        }
    }

    #[test]
    fn msm_handles_zero_scalars() {
        let mut rng = rng();
        let bases: Vec<_> = (0..10)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let scalars = vec![Fr::zero(); 10];
        assert!(msm(&bases, &scalars).is_identity());
    }

    #[test]
    fn msm_works_on_g2() {
        let mut rng = rng();
        let bases: Vec<_> = (0..33)
            .map(|_| G2Projective::random(&mut rng).to_affine())
            .collect();
        let scalars: Vec<_> = (0..33).map(|_| Fr::random(&mut rng)).collect();
        assert_eq!(msm(&bases, &scalars), msm_naive(&bases, &scalars));
    }

    #[test]
    fn extract_bits_spans_limbs() {
        let limbs = [u64::MAX, 0b1011, 0, 0];
        // 5 bits starting at offset 62: bits 62,63 of limb0 (1,1) and bits
        // 0,1,2 of limb1 (1,1,0) -> 0b01111
        assert_eq!(extract_bits(&limbs, 62, 5), 0b01111);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn msm_length_mismatch_panics() {
        let bases = vec![Affine::<G1Params>::generator()];
        let scalars: Vec<Fr> = vec![];
        let _ = msm(&bases, &scalars);
    }

    #[test]
    fn fixed_base_table_matches_mul() {
        let mut rng = rng();
        let g = G1Projective::generator();
        let table = super::FixedBaseTable::new(&g);
        for _ in 0..10 {
            let k = Fr::random(&mut rng);
            assert_eq!(table.mul(k), g.mul(k));
        }
        assert!(table.mul(Fr::zero()).is_identity());
        assert_eq!(table.mul(Fr::one()), g);
    }
}
