//! Multi-scalar multiplication and the fixed-base / fixed-scalar batch
//! kernels built on the same machinery.
//!
//! * [`msm`] — signed-digit (wNAF-style) Pippenger: each window digit is
//!   recoded into `(-2^(c-1), 2^(c-1)]`, which halves the bucket count per
//!   window (negative digits reuse the positive buckets with a negated
//!   point, since affine negation is free). Windows are processed in
//!   parallel on the [`crate::par`] thread-pool shim, and large windows
//!   accumulate their buckets with [`Projective::batch_add_affine`] — many
//!   independent affine additions sharing one Montgomery-inversion pass.
//! * [`FixedBaseTable`] — 8-bit windowed precomputation for one fixed
//!   base; [`FixedBaseTable::mul_many_affine`] evaluates many scalars at
//!   once with batch-affine accumulators (~6 field muls per window per
//!   scalar instead of ~11 for Jacobian mixed additions).
//! * [`mul_each`] — one fixed scalar times many points (the shape of
//!   authenticator generation, where every chunk hash is raised to the
//!   same secret exponent), with a shared wNAF schedule and batch-affine
//!   accumulators. The GLV-accelerated G1 version lives in
//!   [`crate::endo`].
//!
//! `msm(bases, scalars)` computes `sum_i scalars[i] * bases[i]` much
//! faster than individual scalar multiplications. Used for aggregated
//! authenticators, KZG openings and the Groth16 prover.

use crate::bigint::{self, Limbs};
use crate::curve::{Affine, CurveParams, Projective};
use crate::fields::Fr;
use crate::par::par_map_chunks;

/// Scalars are canonical representatives of the 254-bit field `Fr`.
const FR_BITS: usize = 254;

/// Minimum number of simultaneous affine additions for the batch-affine
/// path to beat Jacobian mixed additions. The shared inversion is a
/// Fermat exponentiation (~380 field muls), so a batched lane (~6 muls)
/// only beats a mixed addition (~11 muls) once the inversion is amortized
/// over enough lanes.
const BATCH_AFFINE_CUTOFF: usize = 128;

/// Picks the bucket window size for `n` terms of `nbits` bits by
/// minimizing the cost model `windows * (n + 3 * 2^(c-1))`: each window
/// visits every point once (one bucket addition) and pays roughly three
/// additions' worth of running-sum work per bucket. Signed digits halve
/// the bucket count, so the optimum sits about one bit above the classic
/// unsigned ladder.
fn window_size(n: usize, nbits: usize) -> usize {
    let mut best = (usize::MAX, 1);
    for c in 1..=15 {
        let windows = nbits.div_ceil(c) + 1;
        let cost = windows * (n + 3 * (1usize << (c - 1)));
        if cost < best.0 {
            best = (cost, c);
        }
    }
    best.1
}

/// Computes `sum_i scalars[i] * bases[i]`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn msm<C: CurveParams>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
    assert_eq!(
        bases.len(),
        scalars.len(),
        "msm requires equal-length inputs"
    );
    if bases.len() == 1 {
        return bases[0].mul(scalars[0]);
    }
    let limbs: Vec<Limbs> = scalars.iter().map(|s| s.to_canonical()).collect();
    msm_limbs(bases, &limbs, FR_BITS)
}

/// Pippenger over raw little-endian limb scalars bounded by `2^nbits` —
/// the shared core of [`msm`] and the GLV-split
/// [`crate::endo::msm_g1`], whose half-scalars only span 128 bits (and
/// therefore half the windows).
pub(crate) fn msm_limbs<C: CurveParams>(
    bases: &[Affine<C>],
    scalars: &[Limbs],
    nbits: usize,
) -> Projective<C> {
    assert_eq!(bases.len(), scalars.len());
    if bases.is_empty() {
        return Projective::identity();
    }
    let _span = dsaudit_obs::span("algebra.msm");
    dsaudit_obs::counter_inc("algebra.msm_calls");
    dsaudit_obs::observe("algebra.msm_points", bases.len() as u64);
    let c = window_size(bases.len(), nbits);
    let num_windows = nbits.div_ceil(c) + 1;
    dsaudit_obs::observe("algebra.msm_windows", num_windows as u64);
    let digits = signed_digits(scalars, c, num_windows);
    // Windows are independent until the final combine, so fan them out
    // across the thread pool. Each worker pools the batch-affine rounds
    // of its whole window range (see `bucket_windows`): at verifier sizes
    // (a few hundred points) a single window never amortizes the shared
    // Montgomery inversion, but a worker's 20-40 windows together do.
    // par_map_chunks with a chunk floor of 1 parallelizes even the
    // few-windows regime of large inputs (big n picks a wide c, i.e. few
    // windows), where par_map's small-n serial cutoff would kick in.
    let window_sums: Vec<Projective<C>> = par_map_chunks(num_windows, 1, |r| {
        bucket_windows(bases, &digits, r, num_windows, c)
    });
    // combine windows from the top down
    let mut total = Projective::identity();
    for ws in window_sums.iter().rev() {
        for _ in 0..c {
            total = total.double();
        }
        total = total.add(ws);
    }
    total
}

/// Accumulates the buckets of a whole window range and collapses each
/// window with the running-sum trick, returning `sum_d d * bucket[w][d]`
/// per window.
///
/// All windows' bucket lists live in one flat arena and the batch-affine
/// halving rounds run over the pooled pairs, so every round shares a
/// single Montgomery inversion across the full range — the per-window
/// variant pays one inversion (a ~380-mul Fermat exponentiation) *per
/// window* and drains most points through unbatched mixed additions at
/// the sizes the audit verifier feeds (`chi` over a few hundred points).
/// The tail that never reaches the batching cutoff merges through plain
/// mixed additions inside the running-sum pass, which is exactly the old
/// small-input path.
fn bucket_windows<C: CurveParams>(
    bases: &[Affine<C>],
    digits: &[i16],
    ws: core::ops::Range<usize>,
    num_windows: usize,
    c: usize,
) -> Vec<Projective<C>> {
    // Pool at most ~2^14 points per arena: enough windows to amortize the
    // shared inversions at small n (the verifier's few-hundred-point chi
    // pools its whole window range), but bounded so large inputs keep a
    // cache-sized working set instead of thrashing one giant arena.
    const TARGET_ARENA_POINTS: usize = 1 << 14;
    let block = (TARGET_ARENA_POINTS / bases.len().max(1)).max(1);
    if ws.len() > block {
        let mut out = Vec::with_capacity(ws.len());
        let mut start = ws.start;
        while start < ws.end {
            let end = (start + block).min(ws.end);
            out.extend(bucket_windows_block(bases, digits, start..end, num_windows, c));
            start = end;
        }
        return out;
    }
    bucket_windows_block(bases, digits, ws, num_windows, c)
}

/// One pooled arena of bucket lists covering `ws`; see [`bucket_windows`].
fn bucket_windows_block<C: CurveParams>(
    bases: &[Affine<C>],
    digits: &[i16],
    ws: core::ops::Range<usize>,
    num_windows: usize,
    c: usize,
) -> Vec<Projective<C>> {
    let half = 1usize << (c - 1);
    let wcount = ws.len();
    let mut lists: Vec<Vec<Affine<C>>> = vec![Vec::new(); wcount * half];
    for (wi, w) in ws.enumerate() {
        for (i, base) in bases.iter().enumerate() {
            let d = digits[i * num_windows + w];
            match d.cmp(&0) {
                core::cmp::Ordering::Greater => {
                    lists[wi * half + (d - 1) as usize].push(*base);
                }
                core::cmp::Ordering::Less => {
                    lists[wi * half + (-d - 1) as usize].push(base.neg());
                }
                core::cmp::Ordering::Equal => {}
            }
        }
    }
    // Halve every list round by round; all pending pairs of all windows
    // share one inversion per round. The loop stops once the pooled pair
    // count stops paying for the next inversion.
    let mut lhs: Vec<Affine<C>> = Vec::new();
    let mut rhs: Vec<Affine<C>> = Vec::new();
    let mut origin: Vec<usize> = Vec::new();
    loop {
        lhs.clear();
        rhs.clear();
        origin.clear();
        for (bi, list) in lists.iter_mut().enumerate() {
            while list.len() >= 2 {
                lhs.push(list.pop().expect("len >= 2"));
                rhs.push(list.pop().expect("len >= 2"));
                origin.push(bi);
            }
        }
        if lhs.len() < BATCH_AFFINE_CUTOFF {
            // not worth another shared inversion: put the pairs back
            for ((bi, l), r) in origin.iter().zip(&lhs).zip(&rhs) {
                lists[*bi].push(*l);
                lists[*bi].push(*r);
            }
            break;
        }
        Projective::batch_add_affine(&mut lhs, &rhs);
        for (bi, p) in origin.iter().zip(&lhs) {
            lists[*bi].push(*p);
        }
    }
    // Per window: merge each list's leftovers (mixed additions) while
    // folding the buckets with the running-sum trick.
    (0..wcount)
        .map(|wi| {
            let mut running = Projective::<C>::identity();
            let mut acc = Projective::<C>::identity();
            for list in lists[wi * half..(wi + 1) * half].iter().rev() {
                for p in list {
                    running = running.add_affine(p);
                }
                acc = acc.add(&running);
            }
            acc
        })
        .collect()
}

/// Recodes every scalar into signed window digits in
/// `(-2^(c-1), 2^(c-1)]`, laid out as `out[i * num_windows + w]`.
///
/// A raw digit above `2^(c-1)` is replaced by `raw - 2^c` with a carry
/// into the next window; `num_windows` must include one window beyond the
/// scalar bits so the final carry is always absorbed (debug-asserted).
fn signed_digits(scalars: &[Limbs], c: usize, num_windows: usize) -> Vec<i16> {
    debug_assert!((1..=15).contains(&c), "digit must fit in i16");
    let half = 1i64 << (c - 1);
    let full = 1i64 << c;
    let mut out = vec![0i16; scalars.len() * num_windows];
    for (i, limbs) in scalars.iter().enumerate() {
        let mut carry = 0i64;
        for w in 0..num_windows {
            let raw = extract_bits(limbs, w * c, c) as i64 + carry;
            if raw > half {
                out[i * num_windows + w] = (raw - full) as i16;
                carry = 1;
            } else {
                out[i * num_windows + w] = raw as i16;
                carry = 0;
            }
        }
        debug_assert_eq!(carry, 0, "top window must absorb the carry");
    }
    out
}

/// Extracts `count` bits starting at bit `offset` from little-endian
/// limbs, where `1 <= count <= 15`.
///
/// Correct at every boundary: an `offset` at or past 256 yields 0, a
/// window spanning two limbs stitches both together, and a window running
/// off the top of limb 3 (offset >= 192 with `shift + count > 64`) is
/// implicitly zero-padded — the mask is applied after the stitch, so no
/// shift ever exceeds the limb width.
fn extract_bits(limbs: &[u64; 4], offset: usize, count: usize) -> usize {
    debug_assert!((1..=15).contains(&count));
    if offset >= 256 {
        return 0;
    }
    let limb = offset / 64;
    let shift = offset % 64;
    let mut v = limbs[limb] >> shift;
    if shift + count > 64 && limb + 1 < 4 {
        v |= limbs[limb + 1] << (64 - shift);
    }
    (v & ((1u64 << count) - 1)) as usize
}

/// Width-`w` NAF recoding of a canonical scalar: little-endian digits,
/// each either zero or odd with `|d| <= 2^w - 1`, at most one non-zero
/// digit in any `w + 1` consecutive positions.
pub(crate) fn wnaf_digits(limbs: &Limbs, w: usize) -> Vec<i8> {
    debug_assert!((2..=7).contains(&w), "digit must fit in i8");
    let mut k = *limbs;
    let window = 1u64 << (w + 1);
    let mut out = Vec::with_capacity(FR_BITS + 2);
    while !bigint::is_zero(&k) {
        if k[0] & 1 == 1 {
            let mut d = (k[0] % window) as i64;
            if d > (1 << w) {
                d -= window as i64;
            }
            if d >= 0 {
                k = bigint::sub(&k, &[d as u64, 0, 0, 0]);
            } else {
                k = bigint::add_wide(&k, &[(-d) as u64, 0, 0, 0]).0;
            }
            out.push(d as i8);
        } else {
            out.push(0);
        }
        k = bigint::shr(&k, 1);
    }
    out
}

/// Multiplies every point by the same scalar: `out[i] = k * points[i]`.
///
/// All lanes share one wNAF digit schedule (the scalar is identical), so
/// every double and every table addition runs as a single batch-affine
/// pass over all lanes. The G1-specific entry point
/// [`crate::endo::mul_each_g1`] additionally splits `k` via the GLV
/// endomorphism, halving the doubling count; this generic version works
/// for any curve (G2 included).
pub fn mul_each<C: CurveParams>(points: &[Affine<C>], k: Fr) -> Vec<Affine<C>> {
    let digits = wnaf_digits(&k.to_canonical(), 5);
    par_map_chunks(points.len(), 64, |r| {
        mul_each_batched(&points[r], &digits, &[], 5, None)
    })
}

/// Shared batch-affine double-and-add over a fixed digit schedule.
///
/// Computes `d1 * P_i + d2 * phi(P_i)` for every lane, where `d1`/`d2`
/// are little-endian wNAF digit strings (width `w`) and `phi` is the
/// x-coordinate endomorphism `(x, y) -> (beta * x, y)` when `beta` is
/// given (`d2` must be empty otherwise). Odd-multiple tables are built
/// with batched additions; the `phi` table reuses the base table at the
/// cost of one multiplication per entry.
pub(crate) fn mul_each_batched<C: CurveParams>(
    points: &[Affine<C>],
    d1: &[i8],
    d2: &[i8],
    w: usize,
    beta: Option<C::Base>,
) -> Vec<Affine<C>> {
    debug_assert!(d2.is_empty() || beta.is_some());
    let n = points.len();
    if n == 0 || (d1.is_empty() && d2.is_empty()) {
        return vec![Affine::identity(); n];
    }
    // tab1[t][i] = (2t+1) * points[i]
    let table_len = 1usize << (w - 1);
    let mut tab1: Vec<Vec<Affine<C>>> = Vec::with_capacity(table_len);
    tab1.push(points.to_vec());
    if table_len > 1 {
        let mut twos = points.to_vec();
        Projective::batch_double_affine(&mut twos);
        for t in 1..table_len {
            let mut next = tab1[t - 1].clone();
            Projective::batch_add_affine(&mut next, &twos);
            tab1.push(next);
        }
    }
    // tab2[t][i] = (2t+1) * phi(points[i]) = phi(tab1[t][i])
    let tab2: Option<Vec<Vec<Affine<C>>>> = beta.map(|b| {
        tab1.iter()
            .map(|row| {
                row.iter()
                    .map(|p| Affine {
                        x: p.x * b,
                        y: p.y,
                        infinity: p.infinity,
                    })
                    .collect()
            })
            .collect()
    });
    let len = d1.len().max(d2.len());
    let mut acc = vec![Affine::<C>::identity(); n];
    let mut rhs = vec![Affine::<C>::identity(); n];
    let mut started = false;
    type DigitTables<'a, C> = [(&'a [i8], Option<&'a Vec<Vec<Affine<C>>>>); 2];
    for j in (0..len).rev() {
        if started {
            Projective::batch_double_affine(&mut acc);
        }
        let digit_tables: DigitTables<'_, C> = [(d1, Some(&tab1)), (d2, tab2.as_ref())];
        for (digits, table) in digit_tables {
            let d = digits.get(j).copied().unwrap_or(0);
            if d == 0 {
                continue;
            }
            let row = &table.expect("digits imply a table")[(d.unsigned_abs() >> 1) as usize];
            for (slot, p) in rhs.iter_mut().zip(row) {
                *slot = if d < 0 { p.neg() } else { *p };
            }
            Projective::batch_add_affine(&mut acc, &rhs);
            started = true;
        }
    }
    acc
}

/// Precomputed table for many scalar multiplications of one fixed base
/// (the subgroup generator during tag generation and key generation, or
/// the Groth16 trusted setup, which needs hundreds of thousands of
/// multiples of the generators).
#[derive(Clone, Debug)]
pub struct FixedBaseTable<C: CurveParams> {
    /// table[w][d] = (d+1) * 2^(8w) * base
    windows: Vec<Vec<Affine<C>>>,
}

impl<C: CurveParams> FixedBaseTable<C> {
    /// Builds the 8-bit windowed table (32 windows x 255 entries).
    pub fn new(base: &Projective<C>) -> Self {
        let mut windows = Vec::with_capacity(32);
        let mut window_base = *base;
        for _ in 0..32 {
            let mut row = Vec::with_capacity(255);
            let mut acc = window_base;
            for _ in 0..255 {
                row.push(acc);
                acc = acc.add(&window_base);
            }
            windows.push(Projective::batch_to_affine(&row));
            window_base = acc; // 256 * window_base
        }
        Self { windows }
    }

    /// `k * base` using the table (32 mixed additions).
    pub fn mul(&self, k: Fr) -> Projective<C> {
        let limbs = k.to_canonical();
        let mut acc = Projective::identity();
        for (w, row) in self.windows.iter().enumerate() {
            let byte = (limbs[w / 8] >> ((w % 8) * 8)) & 0xff;
            if byte != 0 {
                acc = acc.add_affine(&row[(byte - 1) as usize]);
            }
        }
        acc
    }

    /// Applies the table to many scalars at once with batch-affine
    /// accumulators: all lanes walk the 32 windows in lockstep, each
    /// window contributing one shared-inversion [`Projective::batch_add_affine`]
    /// pass. Roughly twice as fast per scalar as [`FixedBaseTable::mul`]
    /// once the batch is large enough to amortize the inversions.
    pub fn mul_many_affine(&self, scalars: &[Fr]) -> Vec<Affine<C>> {
        par_map_chunks(scalars.len(), 64, |r| {
            let scalars = &scalars[r];
            let canon: Vec<Limbs> = scalars.iter().map(|s| s.to_canonical()).collect();
            let mut acc = vec![Affine::<C>::identity(); scalars.len()];
            let mut rhs = vec![Affine::<C>::identity(); scalars.len()];
            for (w, row) in self.windows.iter().enumerate() {
                let mut any = false;
                for (slot, limbs) in rhs.iter_mut().zip(&canon) {
                    let byte = (limbs[w / 8] >> ((w % 8) * 8)) & 0xff;
                    *slot = if byte != 0 {
                        any = true;
                        row[(byte - 1) as usize]
                    } else {
                        Affine::identity()
                    };
                }
                if any {
                    Projective::batch_add_affine(&mut acc, &rhs);
                }
            }
            acc
        })
    }

    /// Applies the table to many scalars.
    pub fn mul_many(&self, scalars: &[Fr]) -> Vec<Projective<C>> {
        self.mul_many_affine(scalars)
            .iter()
            .map(Affine::to_projective)
            .collect()
    }
}

/// Test-support fixture: scalars that stress digit extraction and window
/// recoding — the canonical maximum `r - 1`, a dense all-ones bit
/// pattern reduced into the field, the top canonical bit alone and with
/// the bottom bit, and the small constants around zero. Shared by the
/// unit tests here and the differential proptests so the edge-case list
/// cannot drift between suites.
pub fn adversarial_scalars() -> Vec<Fr> {
    use crate::field::Field;
    let all_ones = Fr::from_bytes_wide(&[0xff; 64]);
    let top_bit = {
        let mut acc = Fr::one();
        for _ in 0..253 {
            acc = acc.double();
        }
        acc
    };
    vec![
        Fr::zero() - Fr::one(), // r - 1, the canonical maximum
        all_ones,
        top_bit,
        top_bit + Fr::one(),
        Fr::one(),
        Fr::zero(),
    ]
}

/// Naive MSM used as a correctness oracle and for ablation benches.
pub fn msm_naive<C: CurveParams>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
    assert_eq!(bases.len(), scalars.len());
    let mut acc = Projective::identity();
    for (b, s) in bases.iter().zip(scalars) {
        acc = acc.add(&b.mul(*s));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Field;
    use crate::g1::{G1Params, G1Projective};
    use crate::g2::G2Projective;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x35)
    }

    #[test]
    fn msm_matches_naive_small() {
        let mut rng = rng();
        for n in [0usize, 1, 2, 3, 17, 64, 301] {
            let bases: Vec<_> = (0..n)
                .map(|_| G1Projective::random(&mut rng).to_affine())
                .collect();
            let scalars: Vec<_> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            assert_eq!(
                msm(&bases, &scalars),
                msm_naive(&bases, &scalars),
                "mismatch at n={n}"
            );
        }
    }

    #[test]
    fn msm_matches_naive_adversarial_scalars() {
        let mut rng = rng();
        let scalars = adversarial_scalars();
        let bases: Vec<_> = (0..scalars.len())
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        assert_eq!(msm(&bases, &scalars), msm_naive(&bases, &scalars));
    }

    #[test]
    fn msm_batch_affine_path_matches_naive() {
        // large enough to cross BATCH_AFFINE_CUTOFF in every window
        let mut rng = rng();
        let n = 2 * super::BATCH_AFFINE_CUTOFF + 17;
        let bases: Vec<_> = (0..n)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let scalars: Vec<_> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        assert_eq!(msm(&bases, &scalars), msm_naive(&bases, &scalars));
    }

    #[test]
    fn msm_handles_zero_scalars() {
        let mut rng = rng();
        let bases: Vec<_> = (0..10)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let scalars = vec![Fr::zero(); 10];
        assert!(msm(&bases, &scalars).is_identity());
    }

    #[test]
    fn msm_works_on_g2() {
        let mut rng = rng();
        let bases: Vec<_> = (0..33)
            .map(|_| G2Projective::random(&mut rng).to_affine())
            .collect();
        let scalars: Vec<_> = (0..33).map(|_| Fr::random(&mut rng)).collect();
        assert_eq!(msm(&bases, &scalars), msm_naive(&bases, &scalars));
    }

    #[test]
    fn signed_digits_reconstruct_scalar() {
        let mut rng = rng();
        let mut scalars = adversarial_scalars();
        scalars.extend((0..8).map(|_| Fr::random(&mut rng)));
        for c in [1usize, 3, 5, 8, 13, 15] {
            let num_windows = FR_BITS.div_ceil(c) + 1;
            let limbs: Vec<Limbs> = scalars.iter().map(|s| s.to_canonical()).collect();
            let digits = signed_digits(&limbs, c, num_windows);
            for (i, s) in scalars.iter().enumerate() {
                // sum_w digit_w * 2^(w*c) must equal the scalar in Fr
                let mut acc = Fr::zero();
                let mut base = Fr::one();
                let two_c = Fr::from_u64(1 << c);
                for w in 0..num_windows {
                    let d = digits[i * num_windows + w];
                    let mag = Fr::from_u64(d.unsigned_abs() as u64) * base;
                    if d >= 0 {
                        acc += mag;
                    } else {
                        acc -= mag;
                    }
                    base *= two_c;
                }
                assert_eq!(acc, *s, "scalar {i} at window size {c}");
            }
        }
    }

    #[test]
    fn extract_bits_spans_limbs() {
        let limbs = [u64::MAX, 0b1011, 0, 0];
        // 5 bits starting at offset 62: bits 62,63 of limb0 (1,1) and bits
        // 0,1,2 of limb1 (1,1,0) -> 0b01111
        assert_eq!(extract_bits(&limbs, 62, 5), 0b01111);
    }

    #[test]
    fn extract_bits_top_window_boundaries() {
        // bits that run off the top of limb 3 must read as zero padding
        let limbs = [0, 0, 0, u64::MAX];
        assert_eq!(extract_bits(&limbs, 250, 13), 0b111111); // 6 real bits
        assert_eq!(extract_bits(&limbs, 255, 5), 1); // one real bit
        assert_eq!(extract_bits(&limbs, 256, 5), 0); // fully out of range
        assert_eq!(extract_bits(&limbs, 300, 3), 0);
        // limb-2 / limb-3 boundary with shift + count > 64
        let limbs = [0, 0, 1 << 63, 0b101];
        assert_eq!(extract_bits(&limbs, 191, 4), 0b1011);
        // offset exactly 192 reads limb 3 alone
        assert_eq!(extract_bits(&limbs, 192, 3), 0b101);
    }

    #[test]
    fn wnaf_digits_reconstruct() {
        let mut rng = rng();
        let mut scalars = adversarial_scalars();
        scalars.extend((0..4).map(|_| Fr::random(&mut rng)));
        for w in [2usize, 4, 5, 7] {
            for s in &scalars {
                let digits = wnaf_digits(&s.to_canonical(), w);
                let mut acc = Fr::zero();
                let mut base = Fr::one();
                for d in &digits {
                    assert!(*d == 0 || d.rem_euclid(2) == 1, "digits must be odd");
                    assert!((d.unsigned_abs() as u64) < (1 << w) * 2);
                    let mag = Fr::from_u64(d.unsigned_abs() as u64) * base;
                    if *d >= 0 {
                        acc += mag;
                    } else {
                        acc -= mag;
                    }
                    base = base.double();
                }
                assert_eq!(acc, *s);
            }
        }
    }

    #[test]
    fn mul_each_matches_per_point_mul() {
        let mut rng = rng();
        let mut points: Vec<_> = (0..9)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        points.push(Affine::identity());
        for k in [Fr::zero(), Fr::one(), Fr::zero() - Fr::one(), Fr::random(&mut rng)] {
            let got = mul_each(&points, k);
            for (p, g) in points.iter().zip(&got) {
                assert_eq!(g.to_projective(), p.mul(k), "k={k:?}");
            }
        }
    }

    #[test]
    fn mul_each_works_on_g2() {
        let mut rng = rng();
        let points: Vec<_> = (0..5)
            .map(|_| G2Projective::random(&mut rng).to_affine())
            .collect();
        let k = Fr::random(&mut rng);
        let got = mul_each(&points, k);
        for (p, g) in points.iter().zip(&got) {
            assert_eq!(g.to_projective(), p.mul(k));
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn msm_length_mismatch_panics() {
        let bases = vec![Affine::<G1Params>::generator()];
        let scalars: Vec<Fr> = vec![];
        let _ = msm(&bases, &scalars);
    }

    #[test]
    fn fixed_base_table_matches_mul() {
        let mut rng = rng();
        let g = G1Projective::generator();
        let table = super::FixedBaseTable::new(&g);
        for _ in 0..10 {
            let k = Fr::random(&mut rng);
            assert_eq!(table.mul(k), g.mul(k));
        }
        assert!(table.mul(Fr::zero()).is_identity());
        assert_eq!(table.mul(Fr::one()), g);
    }

    #[test]
    fn fixed_base_mul_many_affine_matches() {
        let mut rng = rng();
        let g = G1Projective::generator();
        let table = super::FixedBaseTable::new(&g);
        let mut scalars = adversarial_scalars();
        scalars.extend((0..6).map(|_| Fr::random(&mut rng)));
        let got = table.mul_many_affine(&scalars);
        for (k, p) in scalars.iter().zip(&got) {
            assert_eq!(p.to_projective(), g.mul(*k));
        }
    }
}
