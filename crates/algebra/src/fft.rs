//! Radix-2 FFT over the scalar field `Fr` (2-adicity 28), with coset
//! variants. Powers the Groth16 QAP arithmetic of the SNARK strawman.

use crate::field::Field;
use crate::fields::{fr_two_adic_root, Fr, FR_TWO_ADICITY};

/// A multiplicative evaluation domain `{1, w, w^2, ..., w^{n-1}}` of
/// power-of-two size `n`.
#[derive(Clone, Debug)]
pub struct Domain {
    /// Domain size (a power of two).
    pub size: usize,
    log_size: u32,
    /// Primitive `n`-th root of unity.
    pub omega: Fr,
    omega_inv: Fr,
    size_inv: Fr,
    /// Multiplicative coset shift used by [`Domain::coset_fft`].
    pub coset_shift: Fr,
    coset_shift_inv: Fr,
}

impl Domain {
    /// Creates the smallest domain of size `>= min_size`.
    ///
    /// Returns `None` when `min_size` exceeds `2^28` (the field's 2-adic
    /// subgroup) .
    pub fn new(min_size: usize) -> Option<Self> {
        let size = min_size.max(1).next_power_of_two();
        let log_size = size.trailing_zeros();
        if log_size > FR_TWO_ADICITY {
            return None;
        }
        // omega = root^(2^(28 - log_size)) has order exactly 2^log_size
        let mut omega = fr_two_adic_root();
        for _ in 0..(FR_TWO_ADICITY - log_size) {
            omega = omega.square();
        }
        let omega_inv = omega.inverse().expect("root of unity nonzero");
        let size_inv = Fr::from_u64(size as u64)
            .inverse()
            .expect("domain size nonzero mod r");
        // Any element outside the size-n subgroup works as a coset shift;
        // try small integers.
        let mut coset_shift = Fr::from_u64(5);
        loop {
            let mut probe = coset_shift;
            for _ in 0..log_size {
                probe = probe.square();
            }
            if probe != Fr::one() {
                break;
            }
            coset_shift += Fr::one();
        }
        let coset_shift_inv = coset_shift.inverse().expect("nonzero");
        Some(Self {
            size,
            log_size,
            omega,
            omega_inv,
            size_inv,
            coset_shift,
            coset_shift_inv,
        })
    }

    /// The `i`-th domain element `w^i`.
    pub fn element(&self, i: usize) -> Fr {
        self.omega.pow(&[i as u64, 0, 0, 0])
    }

    /// All domain elements in order.
    pub fn elements(&self) -> Vec<Fr> {
        let mut out = Vec::with_capacity(self.size);
        let mut acc = Fr::one();
        for _ in 0..self.size {
            out.push(acc);
            acc *= self.omega;
        }
        out
    }

    /// Evaluates the vanishing polynomial `Z(x) = x^n - 1` at `x`.
    pub fn eval_vanishing(&self, x: Fr) -> Fr {
        x.pow(&[self.size as u64, 0, 0, 0]) - Fr::one()
    }

    /// In-place forward FFT: coefficients -> evaluations over the domain.
    ///
    /// # Panics
    /// Panics if `values.len() != self.size`.
    pub fn fft(&self, values: &mut [Fr]) {
        self.fft_inner(values, self.omega);
    }

    /// In-place inverse FFT: evaluations -> coefficients.
    pub fn ifft(&self, values: &mut [Fr]) {
        self.fft_inner(values, self.omega_inv);
        for v in values.iter_mut() {
            *v *= self.size_inv;
        }
    }

    /// Forward FFT over the coset `shift * H`.
    pub fn coset_fft(&self, values: &mut [Fr]) {
        let mut power = Fr::one();
        for v in values.iter_mut() {
            *v *= power;
            power *= self.coset_shift;
        }
        self.fft(values);
    }

    /// Inverse FFT over the coset `shift * H`.
    pub fn coset_ifft(&self, values: &mut [Fr]) {
        self.ifft(values);
        let mut power = Fr::one();
        for v in values.iter_mut() {
            *v *= power;
            power *= self.coset_shift_inv;
        }
    }

    /// Evaluates the vanishing polynomial on the coset (constant across
    /// the coset: `shift^n - 1`).
    pub fn coset_vanishing(&self) -> Fr {
        self.coset_shift.pow(&[self.size as u64, 0, 0, 0]) - Fr::one()
    }

    fn fft_inner(&self, values: &mut [Fr], root: Fr) {
        assert_eq!(values.len(), self.size, "input must match domain size");
        let n = self.size;
        // bit-reversal permutation
        for i in 0..n {
            let j = (i as u64).reverse_bits() >> (64 - self.log_size) as u64;
            let j = j as usize;
            if i < j {
                values.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let step = root.pow(&[(n / len) as u64, 0, 0, 0]);
            for start in (0..n).step_by(len) {
                let mut w = Fr::one();
                for i in 0..len / 2 {
                    let even = values[start + i];
                    let odd = values[start + i + len / 2] * w;
                    values[start + i] = even + odd;
                    values[start + i + len / 2] = even - odd;
                    w *= step;
                }
            }
            len <<= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xff7)
    }

    fn eval_poly(coeffs: &[Fr], x: Fr) -> Fr {
        let mut acc = Fr::zero();
        for c in coeffs.iter().rev() {
            acc = acc * x + *c;
        }
        acc
    }

    #[test]
    fn fft_matches_naive_eval() {
        let mut rng = rng();
        let d = Domain::new(8).unwrap();
        let coeffs: Vec<Fr> = (0..8).map(|_| Fr::random(&mut rng)).collect();
        let mut values = coeffs.clone();
        d.fft(&mut values);
        for (i, x) in d.elements().into_iter().enumerate() {
            assert_eq!(values[i], eval_poly(&coeffs, x), "mismatch at {i}");
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let mut rng = rng();
        for log in [1u32, 3, 6, 10] {
            let d = Domain::new(1 << log).unwrap();
            let coeffs: Vec<Fr> = (0..d.size).map(|_| Fr::random(&mut rng)).collect();
            let mut v = coeffs.clone();
            d.fft(&mut v);
            d.ifft(&mut v);
            assert_eq!(v, coeffs);
        }
    }

    #[test]
    fn coset_fft_roundtrip_and_eval() {
        let mut rng = rng();
        let d = Domain::new(16).unwrap();
        let coeffs: Vec<Fr> = (0..16).map(|_| Fr::random(&mut rng)).collect();
        let mut v = coeffs.clone();
        d.coset_fft(&mut v);
        // spot-check one evaluation: at shift * w^3
        let x = d.coset_shift * d.element(3);
        assert_eq!(v[3], eval_poly(&coeffs, x));
        d.coset_ifft(&mut v);
        assert_eq!(v, coeffs);
    }

    #[test]
    fn vanishing_zero_on_domain_nonzero_on_coset() {
        let d = Domain::new(32).unwrap();
        assert!(d.eval_vanishing(d.element(7)).is_zero());
        assert!(!d.coset_vanishing().is_zero());
        assert_eq!(
            d.eval_vanishing(d.coset_shift * d.element(5)),
            d.coset_vanishing()
        );
    }

    #[test]
    fn domain_size_rounding() {
        assert_eq!(Domain::new(5).unwrap().size, 8);
        assert_eq!(Domain::new(8).unwrap().size, 8);
        assert_eq!(Domain::new(1).unwrap().size, 1);
        assert!(Domain::new(1 << 29).is_none());
    }
}
