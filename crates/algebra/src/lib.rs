//! # dsaudit-algebra
//!
//! Self-contained pairing algebra for the dsaudit project: the BN254
//! (alt_bn128) curve with its full extension-field tower, the optimal ate
//! pairing, multi-scalar multiplication, radix-2 FFTs and dense polynomial
//! arithmetic over the scalar field.
//!
//! Nothing in this crate depends on external cryptography; the only
//! dependency is `rand` for sampling.

#![forbid(unsafe_code)]

pub mod bigint;
pub mod biguint;
pub mod endo;
pub mod field;
pub mod fields;
pub mod curve;
pub mod fp2;
pub mod g1;
pub mod g2;
pub mod fft;
pub mod msm;
pub mod pairing;
pub mod par;
pub mod poly;
pub mod fp6;
pub mod fp12;
pub mod fp;

pub use field::Field;
pub use fields::{Fq, Fr, ATE_LOOP_COUNT, BN_X, FR_TWO_ADICITY};
pub use fp2::Fq2;
pub use g1::{G1Affine, G1Projective};
pub use g2::{G2Affine, G2Projective};
pub use endo::{msm_g1, mul_each_g1};
pub use fft::Domain;
pub use msm::{msm, FixedBaseTable};
pub use pairing::{
    final_exponentiation, miller_loop, multi_miller_loop, multi_pairing, multi_pairing_prepared,
    pairing, G2Prepared, Gt,
};
pub use poly::DensePoly;
pub use fp6::Fq6;
pub use fp12::Fq12;
