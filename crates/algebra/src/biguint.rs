//! Minimal unsigned arbitrary-precision integers.
//!
//! Used once, at startup, to derive the hard part of the pairing final
//! exponentiation `(p^4 - p^2 + 1)/r` from the curve moduli. Not remotely
//! optimized — it never appears on a hot path.

/// Little-endian sequence of 64-bit limbs. Canonical form strips trailing
/// zero limbs (zero is the empty vector).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        Self { limbs: vec![1] }
    }

    /// Builds from little-endian limbs.
    pub fn from_limbs(limbs: &[u64]) -> Self {
        let mut v = limbs.to_vec();
        while v.last() == Some(&0) {
            v.pop();
        }
        Self { limbs: v }
    }

    /// Little-endian limb view.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// True when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits.
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() as u32 * 64 - top.leading_zeros(),
        }
    }

    /// Bit `i` (little-endian order); bits past the top are zero.
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let t = a as u128 + b as u128 + carry as u128;
            out.push(t as u64);
            carry = (t >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// `self - other`.
    ///
    /// # Panics
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(self.cmp_ge(other), "BigUint underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
            out.push(t as u64);
            borrow = ((t >> 64) as u64) & 1;
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// `self >= other`.
    pub fn cmp_ge(&self, other: &Self) -> bool {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len() > other.limbs.len();
        }
        for i in (0..self.limbs.len()).rev() {
            if self.limbs[i] != other.limbs[i] {
                return self.limbs[i] > other.limbs[i];
            }
        }
        true
    }

    /// `self * other` (school-book).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry as u128;
                out[i + j] = t as u64;
                carry = (t >> 64) as u64;
            }
            out[i + other.limbs.len()] = carry;
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Shift left by `k` bits.
    pub fn shl(&self, k: u32) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = (k / 64) as usize;
        let bit_shift = k % 64;
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l << bit_shift;
            if bit_shift != 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// `(self / d, self % d)` by shift-and-subtract long division.
    ///
    /// # Panics
    /// Panics if `d` is zero.
    pub fn div_rem(&self, d: &Self) -> (Self, Self) {
        assert!(!d.is_zero(), "division by zero");
        if !self.cmp_ge(d) {
            return (Self::zero(), self.clone());
        }
        let shift = self.bits() - d.bits();
        let mut rem = self.clone();
        let mut quot_limbs = vec![0u64; (shift / 64 + 1) as usize];
        let mut i = shift as i64;
        while i >= 0 {
            let shifted = d.shl(i as u32);
            if rem.cmp_ge(&shifted) {
                rem = rem.sub(&shifted);
                quot_limbs[(i / 64) as usize] |= 1u64 << (i % 64);
            }
            i -= 1;
        }
        let mut q = Self { limbs: quot_limbs };
        q.normalize();
        (q, rem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_div_roundtrip() {
        let a = BigUint::from_limbs(&[0xdeadbeef12345678, 0x1111, 42]);
        let b = BigUint::from_limbs(&[0xabcdef, 7]);
        let prod = a.mul(&b);
        let (q, r) = prod.div_rem(&b);
        assert_eq!(q, a);
        assert!(r.is_zero());
    }

    #[test]
    fn div_with_remainder() {
        let a = BigUint::from_limbs(&[100]);
        let b = BigUint::from_limbs(&[7]);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, BigUint::from_limbs(&[14]));
        assert_eq!(r, BigUint::from_limbs(&[2]));
    }

    #[test]
    fn bits_and_shifts() {
        let one = BigUint::one();
        assert_eq!(one.bits(), 1);
        assert_eq!(one.shl(200).bits(), 201);
        assert!(one.shl(200).bit(200));
        assert!(!one.shl(200).bit(199));
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = BigUint::from_limbs(&[0, 1]);
        let b = BigUint::from_limbs(&[1]);
        assert_eq!(a.sub(&b), BigUint::from_limbs(&[u64::MAX]));
    }
}
