//! Generic Montgomery-form prime field over four 64-bit limbs.
//!
//! A concrete field is obtained by supplying a [`FieldParams`] carrying the
//! modulus; every other constant (Montgomery `R`, `R^2`, `R^3`,
//! `-p^{-1} mod 2^64`, common exponents) is derived at compile time via
//! `const fn`, so the modulus is the single point of trust.

use core::cmp::Ordering;
use core::fmt;
use core::hash::{Hash, Hasher};
use core::marker::PhantomData;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::bigint::{
    self, adc, add_small, add_wide, div_small, geq, mac, mont_inv64, pow2k_mod, shr, sub,
    sub_small, sub_wide, Limbs,
};
use crate::field::Field;

/// Static parameters of a 254-bit prime field.
pub trait FieldParams: 'static + Copy + Clone + Send + Sync + fmt::Debug + Default {
    /// The prime modulus, little-endian limbs. Must be odd, with bit 255
    /// clear (so doubling fits in 256 bits plus a carry).
    const MODULUS: Limbs;
    /// A short human-readable name used in `Debug` output.
    const NAME: &'static str;
}

/// An element of the prime field defined by `P`, stored in Montgomery form.
#[repr(transparent)]
pub struct Fp<P: FieldParams>(pub(crate) Limbs, PhantomData<P>);

impl<P: FieldParams> Fp<P> {
    /// Montgomery constant `R = 2^256 mod p`.
    pub const R: Limbs = pow2k_mod(256, &P::MODULUS);
    /// `R^2 mod p` — converts raw integers into Montgomery form.
    pub const R2: Limbs = pow2k_mod(512, &P::MODULUS);
    /// `R^3 mod p` — used for reducing 512-bit wide inputs.
    pub const R3: Limbs = pow2k_mod(768, &P::MODULUS);
    /// `-p^{-1} mod 2^64`.
    pub const INV: u64 = mont_inv64(P::MODULUS[0]);
    /// `p - 2`, the inversion exponent.
    pub const MODULUS_MINUS_2: Limbs = sub_small(&P::MODULUS, 2);
    /// `(p - 1) / 2`, the Euler criterion exponent.
    pub const HALF_MODULUS: Limbs = div_small(&sub_small(&P::MODULUS, 1), 2);
    /// `(p + 1) / 4`, the Tonelli shortcut exponent (valid when p = 3 mod 4).
    pub const SQRT_EXP: Limbs = shr(&add_small(&P::MODULUS, 1), 2);

    /// The zero element.
    pub const ZERO: Self = Self([0; 4], PhantomData);

    /// The modulus of this field as raw limbs.
    pub const fn modulus() -> Limbs {
        P::MODULUS
    }

    /// Best-effort zeroization: overwrites the limbs with zeros, routed
    /// through [`core::hint::black_box`] so the dead-store elimination
    /// pass is unlikely to drop the write. Used by the `Drop` impls of
    /// secret-holding types (`SecretKey`); a guarantee-grade wipe would
    /// need `write_volatile`, which the workspace-wide
    /// `forbid(unsafe_code)` deliberately rules out.
    pub fn zeroize(&mut self) {
        self.0 = core::hint::black_box([0u64; 4]);
    }

    /// Montgomery multiplication (CIOS), returning `a * b * R^{-1} mod p`.
    #[inline]
    fn mont_mul(a: &Limbs, b: &Limbs) -> Limbs {
        let m = &P::MODULUS;
        let mut t = [0u64; 6]; // t[0..4], t[4] high word, t[5] overflow
        let mut i = 0;
        while i < 4 {
            // t += a[i] * b
            let mut carry = 0u64;
            let mut j = 0;
            while j < 4 {
                let (lo, hi) = mac(t[j], a[i], b[j], carry);
                t[j] = lo;
                carry = hi;
                j += 1;
            }
            let (s, c) = adc(t[4], carry, 0);
            t[4] = s;
            t[5] = c;
            // reduce one limb: t += k * p, then shift right one limb
            let k = t[0].wrapping_mul(Self::INV);
            let (_, mut carry) = mac(t[0], k, m[0], 0);
            let mut j = 1;
            while j < 4 {
                let (lo, hi) = mac(t[j], k, m[j], carry);
                t[j - 1] = lo;
                carry = hi;
                j += 1;
            }
            let (s, c) = adc(t[4], carry, 0);
            t[3] = s;
            t[4] = t[5] + c;
            t[5] = 0;
            i += 1;
        }
        let mut r = [t[0], t[1], t[2], t[3]];
        if t[4] != 0 || geq(&r, m) {
            r = sub(&r, m);
        }
        r
    }

    /// Montgomery squaring (SOS): computes the half of the partial
    /// products once and doubles, saving ~6 of the 16 limb
    /// multiplications of a full [`Self::mont_mul`]. Squarings are about
    /// a third of all field operations on the curve hot paths (point
    /// doubling, square-root candidates, `pow`), so the saving compounds.
    #[inline]
    fn mont_sqr(a: &Limbs) -> Limbs {
        let m = &P::MODULUS;
        // off-diagonal products a_i * a_j (i < j) at positions i + j
        let mut t = [0u64; 8];
        let mut i = 0;
        while i < 3 {
            let mut carry = 0u64;
            let mut j = i + 1;
            while j < 4 {
                let (lo, hi) = mac(t[i + j], a[i], a[j], carry);
                t[i + j] = lo;
                carry = hi;
                j += 1;
            }
            // the slot above the last written position is still fresh
            t[i + 4] = carry;
            i += 1;
        }
        // double the off-diagonal part (fits: the sum is < 2^507)
        let mut k = 7;
        while k > 0 {
            t[k] = (t[k] << 1) | (t[k - 1] >> 63);
            k -= 1;
        }
        t[0] <<= 1;
        // add the diagonal squares a_i^2 at positions 2i
        let mut carry = 0u64;
        let mut i = 0;
        while i < 4 {
            let (lo, hi) = mac(t[2 * i], a[i], a[i], carry);
            t[2 * i] = lo;
            let (s, c) = adc(t[2 * i + 1], hi, 0);
            t[2 * i + 1] = s;
            carry = c;
            i += 1;
        }
        debug_assert_eq!(carry, 0, "a^2 fits in 512 bits");
        // Montgomery reduction pass over the low four limbs
        let mut i = 0;
        while i < 4 {
            let k = t[i].wrapping_mul(Self::INV);
            let mut carry = 0u64;
            let mut j = 0;
            while j < 4 {
                let (lo, hi) = mac(t[i + j], k, m[j], carry);
                t[i + j] = lo;
                carry = hi;
                j += 1;
            }
            let mut idx = i + 4;
            while carry != 0 && idx < 8 {
                let (s, c) = adc(t[idx], carry, 0);
                t[idx] = s;
                carry = c;
                idx += 1;
            }
            // the reduced value is < 2m < 2^255, so no carry escapes t[7]
            debug_assert_eq!(carry, 0, "reduction cannot overflow 512 bits");
            i += 1;
        }
        let mut r = [t[4], t[5], t[6], t[7]];
        if geq(&r, m) {
            r = sub(&r, m);
        }
        r
    }

    /// Converts a canonical (non-Montgomery) integer `< p` into the field.
    pub const fn from_raw_limbs_unreduced(v: Limbs) -> RawFp<P> {
        RawFp(v, PhantomData)
    }

    /// Canonical little-endian limbs of the represented integer.
    pub fn to_canonical(&self) -> Limbs {
        Self::mont_mul(&self.0, &[1, 0, 0, 0])
    }

    /// True when the canonical representative is odd.
    pub fn is_odd(&self) -> bool {
        self.to_canonical()[0] & 1 == 1
    }

    /// Big-endian canonical byte serialization (32 bytes).
    pub fn to_bytes_be(&self) -> [u8; 32] {
        bigint::to_bytes_be(&self.to_canonical())
    }

    /// Parses canonical big-endian bytes; `None` when the value is `>= p`.
    pub fn from_bytes_be(bytes: &[u8; 32]) -> Option<Self> {
        let limbs = bigint::from_bytes_be(bytes);
        if geq(&limbs, &P::MODULUS) && limbs != P::MODULUS {
            return None;
        }
        if limbs == P::MODULUS {
            return None;
        }
        Some(Self(Self::mont_mul(&limbs, &Self::R2), PhantomData))
    }

    /// Reduces 64 little-endian bytes (a 512-bit integer) into the field.
    /// The output is statistically close to uniform for uniform input.
    pub fn from_bytes_wide(bytes: &[u8; 64]) -> Self {
        let mut lo = [0u64; 4];
        let mut hi = [0u64; 4];
        for i in 0..4 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            lo[i] = u64::from_le_bytes(buf);
            buf.copy_from_slice(&bytes[32 + i * 8..32 + (i + 1) * 8]);
            hi[i] = u64::from_le_bytes(buf);
        }
        // value = lo + hi * 2^256
        // mont(lo) = lo * R = mont_mul(lo, R^2)
        // mont(hi * 2^256) = hi * R * R = mont_mul(hi, R^3)
        let lo_m = Self::mont_mul(&lo, &Self::R2);
        let hi_m = Self::mont_mul(&hi, &Self::R3);
        Self(lo_m, PhantomData) + Self(hi_m, PhantomData)
    }

    /// Constructs from a canonical integer given as limbs; reduces mod p.
    pub fn from_limbs(v: Limbs) -> Self {
        let mut v = v;
        while geq(&v, &P::MODULUS) {
            v = sub(&v, &P::MODULUS);
        }
        Self(Self::mont_mul(&v, &Self::R2), PhantomData)
    }

    /// Parses a decimal string. `None` on bad characters or overflow.
    pub fn from_decimal(s: &str) -> Option<Self> {
        bigint::from_decimal(s).map(Self::from_limbs)
    }

    /// Square root via the `p = 3 mod 4` shortcut. `None` for non-residues.
    ///
    /// # Panics
    /// Debug-asserts that the modulus is `3 mod 4`.
    pub fn sqrt(&self) -> Option<Self> {
        debug_assert_eq!(P::MODULUS[0] & 3, 3, "modulus must be 3 mod 4");
        let cand = self.pow(&Self::SQRT_EXP);
        if cand.square() == *self {
            Some(cand)
        } else {
            None
        }
    }

    /// Legendre symbol: 1 for residues, -1 for non-residues, 0 for zero.
    pub fn legendre(&self) -> i8 {
        if self.is_zero() {
            return 0;
        }
        let e = self.pow(&Self::HALF_MODULUS);
        if e == Self::one() {
            1
        } else {
            -1
        }
    }

    /// Lexicographic comparison of canonical representatives.
    pub fn cmp_canonical(&self, other: &Self) -> Ordering {
        let a = self.to_canonical();
        let b = other.to_canonical();
        for i in (0..4).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }
}

/// A thin wrapper marking limbs as a *raw* (non-Montgomery) integer.
/// Exists only so `const` contexts can carry raw constants around.
#[derive(Clone, Copy)]
pub struct RawFp<P: FieldParams>(pub Limbs, PhantomData<P>);

impl<P: FieldParams> RawFp<P> {
    /// Converts into Montgomery form at runtime.
    pub fn into_fp(self) -> Fp<P> {
        Fp::from_limbs(self.0)
    }
}

// --- trait plumbing (manual impls to avoid `P: Trait` bounds) ---

impl<P: FieldParams> Copy for Fp<P> {}
impl<P: FieldParams> Clone for Fp<P> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<P: FieldParams> PartialEq for Fp<P> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<P: FieldParams> Eq for Fp<P> {}
impl<P: FieldParams> Default for Fp<P> {
    fn default() -> Self {
        Self::ZERO
    }
}
impl<P: FieldParams> Hash for Fp<P> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Montgomery form is canonical (always fully reduced).
        self.0.hash(state);
    }
}

impl<P: FieldParams> fmt::Debug for Fp<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(0x{})", P::NAME, bigint::to_hex(&self.to_canonical()))
    }
}

impl<P: FieldParams> fmt::Display for Fp<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", bigint::to_hex(&self.to_canonical()))
    }
}

impl<P: FieldParams> Add for Fp<P> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let (sum, carry) = add_wide(&self.0, &rhs.0);
        let mut r = sum;
        if carry != 0 || geq(&r, &P::MODULUS) {
            r = sub(&r, &P::MODULUS);
        }
        Self(r, PhantomData)
    }
}

impl<P: FieldParams> Sub for Fp<P> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let (diff, borrow) = sub_wide(&self.0, &rhs.0);
        let r = if borrow != 0 {
            add_wide(&diff, &P::MODULUS).0
        } else {
            diff
        };
        Self(r, PhantomData)
    }
}

impl<P: FieldParams> Neg for Fp<P> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.is_zero() {
            self
        } else {
            Self(sub(&P::MODULUS, &self.0), PhantomData)
        }
    }
}

impl<P: FieldParams> Mul for Fp<P> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self(Self::mont_mul(&self.0, &rhs.0), PhantomData)
    }
}

impl<P: FieldParams> AddAssign for Fp<P> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl<P: FieldParams> SubAssign for Fp<P> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl<P: FieldParams> MulAssign for Fp<P> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<P: FieldParams> Field for Fp<P> {
    fn zero() -> Self {
        Self::ZERO
    }

    fn one() -> Self {
        Self(Self::R, PhantomData)
    }

    fn is_zero(&self) -> bool {
        bigint::is_zero(&self.0)
    }

    fn square(&self) -> Self {
        Self(Self::mont_sqr(&self.0), PhantomData)
    }

    fn inverse(&self) -> Option<Self> {
        if self.is_zero() {
            None
        } else {
            Some(self.pow(&Self::MODULUS_MINUS_2))
        }
    }

    fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; 64];
        rng.fill_bytes(&mut bytes);
        Self::from_bytes_wide(&bytes)
    }

    fn from_u64(v: u64) -> Self {
        Self(Self::mont_mul(&[v, 0, 0, 0], &Self::R2), PhantomData)
    }
}

impl<P: FieldParams> From<u64> for Fp<P> {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}
