//! The group `G2`, the order-`r` subgroup of the sextic D-twist
//! `E': y^2 = x^3 + 3/xi` over `Fq2`.

use std::sync::OnceLock;

use crate::curve::{Affine, CurveParams, Projective};
use crate::field::Field;
use crate::fields::{Fq, Fr};
use crate::fp2::Fq2;

/// The EIP-197 G2 generator coordinates (decimal, widely cross-checked).
const G2_X_C0: &str =
    "10857046999023057135944570762232829481370756359578518086990519993285655852781";
const G2_X_C1: &str =
    "11559732032986387107991004021392285783925812861821192530917403151452391805634";
const G2_Y_C0: &str =
    "8495653923123431417604973247489272438418190587263600148770280649306958101930";
const G2_Y_C1: &str =
    "4082367875863433681332203403145435568316851327593401208105741076214120093531";

fn g2_constants() -> &'static (Fq2, (Fq2, Fq2)) {
    static CACHE: OnceLock<(Fq2, (Fq2, Fq2))> = OnceLock::new();
    CACHE.get_or_init(|| {
        let b = Fq2::from_base(Fq::from_u64(3))
            * Fq2::xi().inverse().expect("xi is invertible");
        let gx = Fq2::new(
            Fq::from_decimal(G2_X_C0).expect("valid decimal"),
            Fq::from_decimal(G2_X_C1).expect("valid decimal"),
        );
        let gy = Fq2::new(
            Fq::from_decimal(G2_Y_C0).expect("valid decimal"),
            Fq::from_decimal(G2_Y_C1).expect("valid decimal"),
        );
        (b, (gx, gy))
    })
}

/// Curve parameters for G2.
#[derive(Clone, Copy, Debug)]
pub struct G2Params;

impl CurveParams for G2Params {
    type Base = Fq2;
    fn coeff_b() -> Fq2 {
        g2_constants().0
    }
    fn generator_xy() -> (Fq2, Fq2) {
        g2_constants().1
    }
    const NAME: &'static str = "G2";
}

/// Affine G2 point.
pub type G2Affine = Affine<G2Params>;
/// Jacobian G2 point.
pub type G2Projective = Projective<G2Params>;

impl G2Affine {
    /// Compressed serialization: 64 bytes (`x.c1 || x.c0` big-endian) with
    /// flag bits in the first byte (bit 7: infinity, bit 6: y.c0 odd,
    /// tie-broken by y.c1 odd in bit 5 when y.c0 is zero).
    pub fn to_compressed(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        if self.infinity {
            out[0] = 0x80;
            return out;
        }
        out[..32].copy_from_slice(&self.x.c1.to_bytes_be());
        out[32..].copy_from_slice(&self.x.c0.to_bytes_be());
        let sign = if self.y.c0.is_zero() {
            self.y.c1.is_odd()
        } else {
            self.y.c0.is_odd()
        };
        if sign {
            out[0] |= 0x40;
        }
        out
    }

    /// Parses a compressed G2 point (curve check included; the points we
    /// deserialize in this project are always protocol-generated multiples
    /// of the generator, so no subgroup check is performed).
    pub fn from_compressed(bytes: &[u8; 64]) -> Option<Self> {
        if bytes[0] & 0x80 != 0 {
            let ok = bytes[0] == 0x80 && bytes[1..].iter().all(|&b| b == 0);
            return ok.then(Self::identity);
        }
        let sign = bytes[0] & 0x40 != 0;
        let mut c1b = [0u8; 32];
        c1b.copy_from_slice(&bytes[..32]);
        c1b[0] &= 0x3f;
        let mut c0b = [0u8; 32];
        c0b.copy_from_slice(&bytes[32..]);
        let x = Fq2::new(Fq::from_bytes_be(&c0b)?, Fq::from_bytes_be(&c1b)?);
        let y2 = x.square() * x + G2Params::coeff_b();
        let mut y = fq2_sqrt(&y2)?;
        let y_sign = if y.c0.is_zero() {
            y.c1.is_odd()
        } else {
            y.c0.is_odd()
        };
        if y_sign != sign {
            y = -y;
        }
        Self::from_xy(x, y)
    }
}

/// Square root in `Fq2` via the complex method (works since `q = 3 mod 4`):
/// for `a = a0 + a1 u`, with `n = a0^2 + a1^2` (the norm), a root exists iff
/// `n` is a square in `Fq`; then `x0 = sqrt((a0 + sqrt(n))/2)` (or the
/// variant with `-sqrt(n)`) and `x1 = a1 / (2 x0)`.
pub fn fq2_sqrt(a: &Fq2) -> Option<Fq2> {
    if a.is_zero() {
        return Some(Fq2::ZERO);
    }
    if a.c1.is_zero() {
        // sqrt of a base-field element: either sqrt(a0) or sqrt(-a0)*u
        if let Some(r) = a.c0.sqrt() {
            return Some(Fq2::new(r, Fq::zero()));
        }
        let r = (-a.c0).sqrt()?;
        return Some(Fq2::new(Fq::zero(), r));
    }
    let n = a.norm();
    let sqrt_n = n.sqrt()?;
    let two_inv = Fq::from_u64(2).inverse().expect("2 != 0");
    for cand in [(a.c0 + sqrt_n) * two_inv, (a.c0 - sqrt_n) * two_inv] {
        if let Some(x0) = cand.sqrt() {
            if x0.is_zero() {
                continue;
            }
            let x1 = a.c1 * (x0.double()).inverse().expect("x0 nonzero");
            let root = Fq2::new(x0, x1);
            if root.square() == *a {
                return Some(root);
            }
        }
    }
    None
}

impl G2Projective {
    /// A uniformly random point in the order-`r` subgroup.
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::generator().mul(Fr::random(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x62)
    }

    #[test]
    fn generator_on_curve() {
        assert!(G2Affine::generator().is_on_curve());
    }

    #[test]
    fn generator_killed_by_r() {
        use crate::fp::FieldParams;
        let g = G2Projective::generator();
        let r_minus_1 = crate::bigint::sub_small(&crate::fields::FrParams::MODULUS, 1);
        let mut acc = G2Projective::identity();
        let top = crate::bigint::highest_bit(&r_minus_1).unwrap();
        for i in (0..=top).rev() {
            acc = acc.double();
            if crate::bigint::bit(&r_minus_1, i) {
                acc = acc.add(&g);
            }
        }
        assert_eq!(acc.add(&g), G2Projective::identity());
    }

    #[test]
    fn group_laws() {
        let mut rng = rng();
        let a = G2Projective::random(&mut rng);
        let b = G2Projective::random(&mut rng);
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.double(), a.add(&a));
        assert_eq!(a.add(&a.neg()), G2Projective::identity());
    }

    #[test]
    fn scalar_mul_homomorphic() {
        let mut rng = rng();
        let g = G2Projective::generator();
        let k1 = Fr::random(&mut rng);
        let k2 = Fr::random(&mut rng);
        assert_eq!(g.mul(k1).add(&g.mul(k2)), g.mul(k1 + k2));
        assert_eq!(g.mul(k1).mul(k2), g.mul(k1 * k2));
    }

    #[test]
    fn fq2_sqrt_roundtrip() {
        let mut rng = rng();
        for _ in 0..20 {
            let a = Fq2::random(&mut rng);
            let sq = a.square();
            let root = fq2_sqrt(&sq).expect("square must have root");
            assert!(root == a || root == -a, "bad root");
        }
    }

    #[test]
    fn compressed_roundtrip() {
        let mut rng = rng();
        for _ in 0..10 {
            let p = G2Projective::random(&mut rng).to_affine();
            assert_eq!(G2Affine::from_compressed(&p.to_compressed()).unwrap(), p);
        }
        let id = G2Affine::identity();
        assert_eq!(G2Affine::from_compressed(&id.to_compressed()).unwrap(), id);
    }
}
