//! The [`Field`] abstraction shared by the base field, the scalar field and
//! the extension tower.

use core::fmt::Debug;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A finite field element.
///
/// Implemented by `Fq`, `Fr` and the tower extensions `Fq2`, `Fq6`, `Fq12`.
/// All operations are by-value (elements are small `Copy` types).
pub trait Field:
    Copy
    + Clone
    + Debug
    + PartialEq
    + Eq
    + Send
    + Sync
    + Default
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
{
    /// Additive identity.
    fn zero() -> Self;

    /// Multiplicative identity.
    fn one() -> Self;

    /// True for the additive identity.
    fn is_zero(&self) -> bool;

    /// `self * self`.
    fn square(&self) -> Self;

    /// `self + self`.
    fn double(&self) -> Self {
        *self + *self
    }

    /// Multiplicative inverse; `None` for zero.
    fn inverse(&self) -> Option<Self>;

    /// Exponentiation by a little-endian limb slice (square-and-multiply).
    fn pow(&self, exp: &[u64]) -> Self {
        let mut res = Self::one();
        let mut started = false;
        for limb in exp.iter().rev() {
            for i in (0..64).rev() {
                if started {
                    res = res.square();
                }
                if (limb >> i) & 1 == 1 {
                    res *= *self;
                    started = true;
                }
            }
        }
        res
    }

    /// Uniformly random element.
    fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self;

    /// Embeds a small integer.
    fn from_u64(v: u64) -> Self;
}

/// Inverts a batch of field elements with a single inversion
/// (Montgomery's trick). Zero entries are left untouched.
pub fn batch_inverse<F: Field>(elems: &mut [F]) {
    // prods[i] = product of the non-zero entries among elems[0..i]
    let mut prods = Vec::with_capacity(elems.len());
    let mut acc = F::one();
    for e in elems.iter() {
        prods.push(acc);
        if !e.is_zero() {
            acc *= *e;
        }
    }
    // `inv` walks backwards as the inverse of the product of the non-zero
    // entries among elems[0..=i].
    let mut inv = match acc.inverse() {
        Some(i) => i,
        None => return, // all entries zero
    };
    for i in (0..elems.len()).rev() {
        if elems[i].is_zero() {
            continue;
        }
        let next_inv = inv * elems[i];
        elems[i] = inv * prods[i];
        inv = next_inv;
    }
}

#[cfg(test)]
mod tests {
    // Exercised via concrete fields in `fields.rs` tests.
}
