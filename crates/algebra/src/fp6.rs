//! Cubic extension `Fq6 = Fq2[v] / (v^3 - xi)` with `xi = 9 + u`.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

use crate::bigint::{div_small, sub_small};
use crate::field::Field;
use crate::fields::FqParams;
use crate::fp::FieldParams;
use crate::fp2::Fq2;

/// An element `c0 + c1*v + c2*v^2` of `Fq6`.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Fq6 {
    /// Constant coefficient.
    pub c0: Fq2,
    /// Coefficient of `v`.
    pub c1: Fq2,
    /// Coefficient of `v^2`.
    pub c2: Fq2,
}

/// Frobenius coefficients `xi^{(q^i - 1)/3}` for `i = 0..6`, derived at
/// runtime from the chain `c[i] = frob(c[i-1]) * c[1]` so no large constant
/// has to be transcribed.
fn frob6_c1() -> &'static [Fq2; 6] {
    static CACHE: OnceLock<[Fq2; 6]> = OnceLock::new();
    CACHE.get_or_init(|| {
        let exp = div_small(&sub_small(&FqParams::MODULUS, 1), 3); // (q-1)/3
        let c1 = Fq2::xi().pow(&exp);
        let mut out = [Fq2::one(); 6];
        for i in 1..6 {
            out[i] = out[i - 1].conjugate() * c1;
        }
        out
    })
}

/// `xi^{2(q^i - 1)/3}` — the coefficients for the `v^2` component.
fn frob6_c2() -> &'static [Fq2; 6] {
    static CACHE: OnceLock<[Fq2; 6]> = OnceLock::new();
    CACHE.get_or_init(|| {
        let c1 = frob6_c1();
        let mut out = [Fq2::one(); 6];
        for i in 0..6 {
            out[i] = c1[i].square();
        }
        out
    })
}

impl Fq6 {
    /// Zero.
    pub const ZERO: Self = Self {
        c0: Fq2::ZERO,
        c1: Fq2::ZERO,
        c2: Fq2::ZERO,
    };

    /// Builds from coefficients.
    pub const fn new(c0: Fq2, c1: Fq2, c2: Fq2) -> Self {
        Self { c0, c1, c2 }
    }

    /// Multiplication by `v`: `(c0 + c1 v + c2 v^2) * v = xi*c2 + c0 v + c1 v^2`.
    pub fn mul_by_v(&self) -> Self {
        Self {
            c0: self.c2.mul_by_nonresidue(),
            c1: self.c0,
            c2: self.c1,
        }
    }

    /// Multiplies by a sparse element `b0 + b1 v` (zero `v^2` slot) in
    /// 5 `Fq2` multiplications instead of the generic 6 — the inner
    /// kernel of the pairing engine's sparse line multiplication.
    pub fn mul_by_01(&self, b0: Fq2, b1: Fq2) -> Self {
        let v0 = self.c0 * b0;
        let v1 = self.c1 * b1;
        Self {
            c0: ((self.c1 + self.c2) * b1 - v1).mul_by_nonresidue() + v0,
            c1: (self.c0 + self.c1) * (b0 + b1) - v0 - v1,
            c2: (self.c0 + self.c2) * b0 - v0 + v1,
        }
    }

    /// Scales every coefficient by an `Fq2` element.
    pub fn scale(&self, k: Fq2) -> Self {
        Self {
            c0: self.c0 * k,
            c1: self.c1 * k,
            c2: self.c2 * k,
        }
    }

    /// The `q^i`-power Frobenius endomorphism.
    pub fn frobenius(&self, power: usize) -> Self {
        let i = power % 6;
        Self {
            c0: if i % 2 == 0 { self.c0 } else { self.c0.conjugate() },
            c1: (if i % 2 == 0 { self.c1 } else { self.c1.conjugate() }) * frob6_c1()[i],
            c2: (if i % 2 == 0 { self.c2 } else { self.c2.conjugate() }) * frob6_c2()[i],
        }
    }
}

impl fmt::Debug for Fq6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fq6({:?}, {:?}, {:?})", self.c0, self.c1, self.c2)
    }
}

impl Add for Fq6 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            c0: self.c0 + rhs.c0,
            c1: self.c1 + rhs.c1,
            c2: self.c2 + rhs.c2,
        }
    }
}

impl Sub for Fq6 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            c0: self.c0 - rhs.c0,
            c1: self.c1 - rhs.c1,
            c2: self.c2 - rhs.c2,
        }
    }
}

impl Neg for Fq6 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            c0: -self.c0,
            c1: -self.c1,
            c2: -self.c2,
        }
    }
}

impl Mul for Fq6 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Toom/Karatsuba-style (CH-SQR3 layout): 6 Fq2 multiplications.
        let v0 = self.c0 * rhs.c0;
        let v1 = self.c1 * rhs.c1;
        let v2 = self.c2 * rhs.c2;
        let t0 = ((self.c1 + self.c2) * (rhs.c1 + rhs.c2) - v1 - v2).mul_by_nonresidue() + v0;
        let t1 = (self.c0 + self.c1) * (rhs.c0 + rhs.c1) - v0 - v1 + v2.mul_by_nonresidue();
        let t2 = (self.c0 + self.c2) * (rhs.c0 + rhs.c2) - v0 - v2 + v1;
        Self {
            c0: t0,
            c1: t1,
            c2: t2,
        }
    }
}

impl AddAssign for Fq6 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fq6 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fq6 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Field for Fq6 {
    fn zero() -> Self {
        Self::ZERO
    }

    fn one() -> Self {
        Self {
            c0: Fq2::one(),
            c1: Fq2::zero(),
            c2: Fq2::zero(),
        }
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero() && self.c2.is_zero()
    }

    fn square(&self) -> Self {
        *self * *self
    }

    fn inverse(&self) -> Option<Self> {
        // Standard formula via the adjugate:
        // A = c0^2 - xi c1 c2, B = xi c2^2 - c0 c1, C = c1^2 - c0 c2
        // det = c0 A + xi (c2 B + c1 C)
        let a = self.c0.square() - (self.c1 * self.c2).mul_by_nonresidue();
        let b = self.c2.square().mul_by_nonresidue() - self.c0 * self.c1;
        let c = self.c1.square() - self.c0 * self.c2;
        let det = self.c0 * a + ((self.c2 * b + self.c1 * c).mul_by_nonresidue());
        det.inverse().map(|dinv| Self {
            c0: a * dinv,
            c1: b * dinv,
            c2: c * dinv,
        })
    }

    fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self {
            c0: Fq2::random(rng),
            c1: Fq2::random(rng),
            c2: Fq2::random(rng),
        }
    }

    fn from_u64(v: u64) -> Self {
        Self {
            c0: Fq2::from_u64(v),
            c1: Fq2::zero(),
            c2: Fq2::zero(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(6)
    }

    #[test]
    fn v_cubed_is_xi() {
        let v = Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero());
        let xi6 = Fq6::new(Fq2::xi(), Fq2::zero(), Fq2::zero());
        assert_eq!(v * v * v, xi6);
    }

    #[test]
    fn mul_by_01_matches_generic() {
        let mut rng = rng();
        for _ in 0..20 {
            let a = Fq6::random(&mut rng);
            let b0 = Fq2::random(&mut rng);
            let b1 = Fq2::random(&mut rng);
            let sparse = Fq6::new(b0, b1, Fq2::zero());
            assert_eq!(a.mul_by_01(b0, b1), a * sparse);
        }
        // degenerate slots
        let a = Fq6::random(&mut rng);
        assert_eq!(a.mul_by_01(Fq2::zero(), Fq2::zero()), Fq6::ZERO);
        assert_eq!(a.mul_by_01(Fq2::one(), Fq2::zero()), a);
    }

    #[test]
    fn mul_by_v_matches_mul() {
        let mut rng = rng();
        let v = Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero());
        for _ in 0..10 {
            let a = Fq6::random(&mut rng);
            assert_eq!(a.mul_by_v(), a * v);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = rng();
        for _ in 0..10 {
            let a = Fq6::random(&mut rng);
            assert_eq!(a * a.inverse().unwrap(), Fq6::one());
        }
    }

    #[test]
    fn frobenius_matches_pow() {
        let mut rng = rng();
        let a = Fq6::random(&mut rng);
        let frob = a.frobenius(1);
        let pow = a.pow(&FqParams::MODULUS);
        assert_eq!(frob, pow);
    }

    #[test]
    fn frobenius_composes() {
        let mut rng = rng();
        let a = Fq6::random(&mut rng);
        assert_eq!(a.frobenius(1).frobenius(1), a.frobenius(2));
        assert_eq!(a.frobenius(3).frobenius(3), a.frobenius(6));
        assert_eq!(a.frobenius(6), a.frobenius(0));
    }

    #[test]
    fn associativity() {
        let mut rng = rng();
        let (a, b, c) = (
            Fq6::random(&mut rng),
            Fq6::random(&mut rng),
            Fq6::random(&mut rng),
        );
        assert_eq!((a * b) * c, a * (b * c));
    }
}
