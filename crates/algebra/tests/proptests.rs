//! Property-based tests for the algebra crate: field axioms, curve group
//! laws and serialization roundtrips under randomized inputs.

use dsaudit_algebra::curve::Projective;
use dsaudit_algebra::field::Field;
use dsaudit_algebra::fp12::Fq12;
use dsaudit_algebra::fp2::Fq2;
use dsaudit_algebra::fp6::Fq6;
use dsaudit_algebra::g1::{G1Affine, G1Projective};
use dsaudit_algebra::g2::{G2Affine, G2Projective};
use dsaudit_algebra::msm::{msm, msm_naive};
use dsaudit_algebra::pairing::{
    final_exponentiation, miller_loop_generic, multi_miller_loop, G2Prepared,
};
use dsaudit_algebra::poly::DensePoly;
use dsaudit_algebra::{Fq, Fr};
use proptest::prelude::*;

fn arb_fq() -> impl Strategy<Value = Fq> {
    any::<[u8; 64]>().prop_map(|b| Fq::from_bytes_wide(&b))
}

fn arb_fr() -> impl Strategy<Value = Fr> {
    any::<[u8; 64]>().prop_map(|b| Fr::from_bytes_wide(&b))
}

fn arb_fq2() -> impl Strategy<Value = Fq2> {
    (arb_fq(), arb_fq()).prop_map(|(c0, c1)| Fq2::new(c0, c1))
}

fn arb_g1() -> impl Strategy<Value = G1Projective> {
    arb_fr().prop_map(|k| G1Projective::generator().mul(k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fq_field_axioms(a in arb_fq(), b in arb_fq(), c in arb_fq()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + (-a), Fq::zero());
        if !a.is_zero() {
            prop_assert_eq!(a * a.inverse().unwrap(), Fq::one());
        }
    }

    #[test]
    fn fr_field_axioms(a in arb_fr(), b in arb_fr()) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a - a, Fr::zero());
        prop_assert_eq!(a.square(), a * a);
        prop_assert_eq!(a.double(), a + a);
    }

    #[test]
    fn fq_bytes_roundtrip(a in arb_fq()) {
        prop_assert_eq!(Fq::from_bytes_be(&a.to_bytes_be()).unwrap(), a);
    }

    #[test]
    fn fq2_axioms(a in arb_fq2(), b in arb_fq2()) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a.square(), a * a);
        if !a.is_zero() {
            prop_assert_eq!(a * a.inverse().unwrap(), Fq2::one());
        }
        // conjugation is multiplicative
        prop_assert_eq!((a * b).conjugate(), a.conjugate() * b.conjugate());
    }

    #[test]
    fn g1_group_laws(p in arb_g1(), q in arb_g1()) {
        prop_assert_eq!(p.add(&q), q.add(&p));
        prop_assert_eq!(p.add(&p), p.double());
        prop_assert!(p.add(&p.neg()).is_identity());
        prop_assert!(p.to_affine().is_on_curve());
    }

    #[test]
    fn g1_scalar_mul_linear(k1 in arb_fr(), k2 in arb_fr()) {
        let g = G1Projective::generator();
        prop_assert_eq!(g.mul(k1 + k2), g.mul(k1).add(&g.mul(k2)));
    }

    #[test]
    fn g1_compression_roundtrip(p in arb_g1()) {
        let aff = p.to_affine();
        prop_assert_eq!(G1Affine::from_compressed(&aff.to_compressed()).unwrap(), aff);
    }

    #[test]
    fn kzg_division_identity(coeffs in prop::collection::vec(arb_fr(), 1..24), r in arb_fr(), x in arb_fr()) {
        let p = DensePoly::from_coeffs(coeffs);
        let (q, rem) = p.divide_by_linear(r);
        prop_assert_eq!(rem, p.evaluate(r));
        prop_assert_eq!(p.evaluate(x), q.evaluate(x) * (x - r) + rem);
    }
}

/// Scalars that stress digit extraction: the shared adversarial fixture
/// from `dsaudit_algebra::msm` (canonical max `r - 1`, all-ones pattern,
/// top-bit-set, constants around zero) mixed with uniform ones.
fn arb_msm_scalar() -> impl Strategy<Value = Fr> {
    (any::<u8>(), any::<[u8; 64]>()).prop_map(|(sel, b)| {
        let fixed = dsaudit_algebra::msm::adversarial_scalars();
        let sel = sel as usize % (2 * fixed.len());
        if sel < fixed.len() {
            fixed[sel]
        } else {
            Fr::from_bytes_wide(&b)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Differential test of the signed-digit Pippenger against the naive
    /// oracle, pinned to the window-size breakpoints (0, 1, 2, 31->32,
    /// 255->256) so any digit-extraction or bucket regression at a window
    /// boundary is caught. `same_base` floods the buckets with one point,
    /// stressing the batch-affine doubling/cancellation lanes.
    #[test]
    fn msm_differential_vs_naive(
        sel in any::<u8>(),
        pool in prop::collection::vec(arb_msm_scalar(), 1..12),
        kbase in arb_fr(),
        same_base in any::<bool>(),
    ) {
        let lens = [0usize, 1, 2, 31, 32, 255, 256];
        let n = lens[(sel as usize) % lens.len()];
        let scalars: Vec<Fr> = (0..n).map(|i| pool[i % pool.len()]).collect();
        let g = G1Projective::generator();
        let bases_proj: Vec<G1Projective> = (0..n)
            .map(|i| {
                if same_base {
                    g.mul(kbase)
                } else {
                    g.mul(kbase + Fr::from_u64(i as u64 + 1))
                }
            })
            .collect();
        let bases = Projective::batch_to_affine(&bases_proj);
        prop_assert_eq!(msm(&bases, &scalars), msm_naive(&bases, &scalars));
        // the GLV-split variant must agree everywhere too (including the
        // small-n fallback and identity points among the bases)
        prop_assert_eq!(
            dsaudit_algebra::endo::msm_g1(&bases, &scalars),
            msm_naive(&bases, &scalars)
        );
    }
}

fn arb_fq6() -> impl Strategy<Value = Fq6> {
    (arb_fq2(), arb_fq2(), arb_fq2()).prop_map(|(c0, c1, c2)| Fq6::new(c0, c1, c2))
}

fn arb_fq12() -> impl Strategy<Value = Fq12> {
    (arb_fq6(), arb_fq6()).prop_map(|(c0, c1)| Fq12::new(c0, c1))
}

/// A uniformly sampled element of the cyclotomic subgroup, via the easy
/// part of the final exponentiation (`f -> f^{(q^6-1)(q^2+1)}`).
fn arb_cyclotomic() -> impl Strategy<Value = Fq12> {
    arb_fq12().prop_map(|f| {
        let f = if f.is_zero() { Fq12::one() } else { f };
        let t = f.conjugate() * f.inverse().expect("nonzero");
        t.frobenius(2) * t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The sparse line kernel agrees with a generic 18-mul `Fq12`
    /// multiplication against the densely embedded line value.
    #[test]
    fn sparse_mul_034_matches_generic(f in arb_fq12(), c0 in arb_fq2(), c3 in arb_fq2(), c4 in arb_fq2()) {
        let dense = Fq12::new(
            Fq6::new(c0, Fq2::zero(), Fq2::zero()),
            Fq6::new(c3, c4, Fq2::zero()),
        );
        prop_assert_eq!(f.mul_by_034(c0, c3, c4), f * dense);
    }

    /// The sparse-by-sparse line product agrees with the generic product
    /// of the two densely embedded lines.
    #[test]
    fn sparse_mul_034_by_034_matches_generic(
        a in (arb_fq2(), arb_fq2(), arb_fq2()),
        b in (arb_fq2(), arb_fq2(), arb_fq2()),
    ) {
        let dense = |t: (Fq2, Fq2, Fq2)| Fq12::new(
            Fq6::new(t.0, Fq2::zero(), Fq2::zero()),
            Fq6::new(t.1, t.2, Fq2::zero()),
        );
        prop_assert_eq!(Fq12::mul_034_by_034(a, b), dense(a) * dense(b));
    }

    /// Granger–Scott squaring agrees with the generic square on the
    /// cyclotomic subgroup (where all final-exponentiation work lives).
    #[test]
    fn cyclotomic_square_matches_square(u in arb_cyclotomic()) {
        prop_assert!(u.is_cyclotomic());
        prop_assert_eq!(u.cyclotomic_square(), u.square());
    }

    /// The Karabina compressed chain and the NAF cyclotomic
    /// exponentiation agree with generic square-and-multiply.
    #[test]
    fn cyclotomic_exponentiation_matches_generic(u in arb_cyclotomic(), k in arb_fr()) {
        prop_assert_eq!(u.cyclotomic_pow_x(), u.pow_x());
        let exp = k.to_canonical();
        prop_assert_eq!(u.cyclotomic_exp(&exp), u.pow(&exp));
    }
}

/// A G1/G2 input pair for the pairing engines: mostly random points, with
/// identity points mixed in as the adversarial edge case.
fn arb_pairing_input() -> impl Strategy<Value = (G1Affine, G2Affine)> {
    (arb_fr(), arb_fr(), any::<u8>()).prop_map(|(a, b, sel)| {
        let p = if sel % 5 == 3 {
            G1Affine::identity()
        } else {
            G1Projective::generator().mul(a).to_affine()
        };
        let q = if sel % 5 == 4 {
            G2Affine::identity()
        } else {
            G2Projective::generator().mul(b).to_affine()
        };
        (p, q)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The prepared projective multi-Miller loop agrees with the product
    /// of generic affine Miller loops, compared in GT (the projective
    /// lines carry extra subfield factors that the final exponentiation
    /// kills). Inputs include identity points on either side.
    #[test]
    fn prepared_multi_miller_matches_generic_product(
        inputs in prop::collection::vec(arb_pairing_input(), 1..4),
    ) {
        let prepared: Vec<G2Prepared> =
            inputs.iter().map(|(_, q)| G2Prepared::from_affine(q)).collect();
        let refs: Vec<(&G1Affine, &G2Prepared)> = inputs
            .iter()
            .zip(&prepared)
            .map(|((p, _), qp)| (p, qp))
            .collect();
        let mut generic = Fq12::one();
        for (p, q) in &inputs {
            generic *= miller_loop_generic(p, q);
        }
        prop_assert_eq!(
            final_exponentiation(&multi_miller_loop(&refs)),
            final_exponentiation(&generic)
        );
    }
}
