//! Property-based tests for the algebra crate: field axioms, curve group
//! laws and serialization roundtrips under randomized inputs.

use dsaudit_algebra::curve::Projective;
use dsaudit_algebra::field::Field;
use dsaudit_algebra::fp2::Fq2;
use dsaudit_algebra::g1::{G1Affine, G1Projective};
use dsaudit_algebra::msm::{msm, msm_naive};
use dsaudit_algebra::poly::DensePoly;
use dsaudit_algebra::{Fq, Fr};
use proptest::prelude::*;

fn arb_fq() -> impl Strategy<Value = Fq> {
    any::<[u8; 64]>().prop_map(|b| Fq::from_bytes_wide(&b))
}

fn arb_fr() -> impl Strategy<Value = Fr> {
    any::<[u8; 64]>().prop_map(|b| Fr::from_bytes_wide(&b))
}

fn arb_fq2() -> impl Strategy<Value = Fq2> {
    (arb_fq(), arb_fq()).prop_map(|(c0, c1)| Fq2::new(c0, c1))
}

fn arb_g1() -> impl Strategy<Value = G1Projective> {
    arb_fr().prop_map(|k| G1Projective::generator().mul(k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fq_field_axioms(a in arb_fq(), b in arb_fq(), c in arb_fq()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + (-a), Fq::zero());
        if !a.is_zero() {
            prop_assert_eq!(a * a.inverse().unwrap(), Fq::one());
        }
    }

    #[test]
    fn fr_field_axioms(a in arb_fr(), b in arb_fr()) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a - a, Fr::zero());
        prop_assert_eq!(a.square(), a * a);
        prop_assert_eq!(a.double(), a + a);
    }

    #[test]
    fn fq_bytes_roundtrip(a in arb_fq()) {
        prop_assert_eq!(Fq::from_bytes_be(&a.to_bytes_be()).unwrap(), a);
    }

    #[test]
    fn fq2_axioms(a in arb_fq2(), b in arb_fq2()) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a.square(), a * a);
        if !a.is_zero() {
            prop_assert_eq!(a * a.inverse().unwrap(), Fq2::one());
        }
        // conjugation is multiplicative
        prop_assert_eq!((a * b).conjugate(), a.conjugate() * b.conjugate());
    }

    #[test]
    fn g1_group_laws(p in arb_g1(), q in arb_g1()) {
        prop_assert_eq!(p.add(&q), q.add(&p));
        prop_assert_eq!(p.add(&p), p.double());
        prop_assert!(p.add(&p.neg()).is_identity());
        prop_assert!(p.to_affine().is_on_curve());
    }

    #[test]
    fn g1_scalar_mul_linear(k1 in arb_fr(), k2 in arb_fr()) {
        let g = G1Projective::generator();
        prop_assert_eq!(g.mul(k1 + k2), g.mul(k1).add(&g.mul(k2)));
    }

    #[test]
    fn g1_compression_roundtrip(p in arb_g1()) {
        let aff = p.to_affine();
        prop_assert_eq!(G1Affine::from_compressed(&aff.to_compressed()).unwrap(), aff);
    }

    #[test]
    fn kzg_division_identity(coeffs in prop::collection::vec(arb_fr(), 1..24), r in arb_fr(), x in arb_fr()) {
        let p = DensePoly::from_coeffs(coeffs);
        let (q, rem) = p.divide_by_linear(r);
        prop_assert_eq!(rem, p.evaluate(r));
        prop_assert_eq!(p.evaluate(x), q.evaluate(x) * (x - r) + rem);
    }
}

/// Scalars that stress digit extraction: the shared adversarial fixture
/// from `dsaudit_algebra::msm` (canonical max `r - 1`, all-ones pattern,
/// top-bit-set, constants around zero) mixed with uniform ones.
fn arb_msm_scalar() -> impl Strategy<Value = Fr> {
    (any::<u8>(), any::<[u8; 64]>()).prop_map(|(sel, b)| {
        let fixed = dsaudit_algebra::msm::adversarial_scalars();
        let sel = sel as usize % (2 * fixed.len());
        if sel < fixed.len() {
            fixed[sel]
        } else {
            Fr::from_bytes_wide(&b)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Differential test of the signed-digit Pippenger against the naive
    /// oracle, pinned to the window-size breakpoints (0, 1, 2, 31->32,
    /// 255->256) so any digit-extraction or bucket regression at a window
    /// boundary is caught. `same_base` floods the buckets with one point,
    /// stressing the batch-affine doubling/cancellation lanes.
    #[test]
    fn msm_differential_vs_naive(
        sel in any::<u8>(),
        pool in prop::collection::vec(arb_msm_scalar(), 1..12),
        kbase in arb_fr(),
        same_base in any::<bool>(),
    ) {
        let lens = [0usize, 1, 2, 31, 32, 255, 256];
        let n = lens[(sel as usize) % lens.len()];
        let scalars: Vec<Fr> = (0..n).map(|i| pool[i % pool.len()]).collect();
        let g = G1Projective::generator();
        let bases_proj: Vec<G1Projective> = (0..n)
            .map(|i| {
                if same_base {
                    g.mul(kbase)
                } else {
                    g.mul(kbase + Fr::from_u64(i as u64 + 1))
                }
            })
            .collect();
        let bases = Projective::batch_to_affine(&bases_proj);
        prop_assert_eq!(msm(&bases, &scalars), msm_naive(&bases, &scalars));
    }
}
