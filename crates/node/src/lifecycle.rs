//! The challenge lifecycle state machine.
//!
//! Every challenge an auditor daemon issues moves through
//!
//! ```text
//!            retransmit (backoff)             verify
//! Issued ----------------------> Delivered --------> Proven --> Settled(Accept)
//!   |  \_______________________/     |                  |   \--> Settled(Reject)
//!   |        Ack received            |                  |
//!   +--------- TTL elapsed ----------+------------------+-----> Expired(Penalty)
//! ```
//!
//! and terminates in **exactly one** of `Settled(Accept)`,
//! `Settled(Reject)` or `Expired` — the terminal outcome is written
//! once and never overwritten, so a late proof racing the TTL cannot
//! double-settle, and the TTL guarantees no challenge is ever lost.

#![deny(missing_docs)]

use dsaudit_core::{RoundChallenge, Verdict};
use dsaudit_crypto::sha256::sha256;

use crate::frame::ChallengeId;
use crate::transport::{Millis, PeerId};

/// Non-terminal progress of one challenge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChallengePhase {
    /// Challenge sent; no sign of life from the provider yet.
    Issued,
    /// Provider acknowledged receipt (or signalled overload).
    Delivered,
    /// A proof arrived and verified (or failed); settlement recorded.
    Proven,
}

/// The single terminal outcome of a challenge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// A proof arrived in time and was judged.
    Settled(Verdict),
    /// The TTL elapsed without a judged proof; the provider is
    /// penalized via the contract's timeout path.
    Expired,
}

impl Outcome {
    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Settled(Verdict::Accept) => "settled_accept",
            Outcome::Settled(Verdict::Reject(_)) => "settled_reject",
            Outcome::Expired => "expired",
        }
    }
}

/// Bounded retransmission with exponential backoff and deterministic
/// jitter.
///
/// The jitter is derived from the challenge id and the attempt number,
/// not from an RNG: two runs of the same schedule retry at identical
/// times, and two challenges never synchronize their retry storms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First retransmission delay, ms.
    pub base_ms: u64,
    /// Backoff cap, ms.
    pub max_backoff_ms: u64,
    /// Retransmissions after the initial send (0 = never retransmit).
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base_ms: 200,
            max_backoff_ms: 5_000,
            max_retries: 6,
        }
    }
}

impl RetryPolicy {
    /// Delay before retransmission number `attempt` (1-based): the
    /// doubled base, capped, plus up to 50% deterministic jitter.
    pub fn backoff_ms(&self, id: &ChallengeId, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(20);
        let exp = self
            .base_ms
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_ms.max(1));
        let mut buf = Vec::with_capacity(36);
        buf.extend_from_slice(id);
        buf.extend_from_slice(&attempt.to_le_bytes());
        let h = sha256(&buf);
        let word = u64::from_le_bytes([h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]]);
        exp + word % (exp / 2 + 1)
    }
}

/// Auditor-side bookkeeping for one in-flight challenge.
#[derive(Clone, Copy, Debug)]
pub struct ChallengeTrack {
    /// The provider under audit.
    pub provider: PeerId,
    /// The round-stamped challenge.
    pub rc: RoundChallenge,
    /// Beacon round the challenge derives from.
    pub beacon_round: u64,
    /// Issue time (virtual ms).
    pub issued_at: Millis,
    /// Hard settlement deadline: at this instant an unsettled challenge
    /// expires into the penalty path.
    pub deadline: Millis,
    /// Retransmissions performed so far.
    pub attempt: u32,
    /// Next scheduled retransmission, if retries remain.
    pub next_send: Option<Millis>,
    /// Lifecycle phase while non-terminal.
    pub phase: ChallengePhase,
    /// Terminal outcome; written exactly once.
    pub outcome: Option<Outcome>,
}

impl ChallengeTrack {
    /// Whether the challenge has reached its single terminal state.
    pub fn is_terminal(&self) -> bool {
        self.outcome.is_some()
    }

    /// Records the terminal outcome. Returns `false` (and changes
    /// nothing) when an outcome was already recorded — the caller
    /// counts that as an attempted double settlement.
    pub fn settle(&mut self, outcome: Outcome) -> bool {
        if self.outcome.is_some() {
            return false;
        }
        self.outcome = Some(outcome);
        self.phase = ChallengePhase::Proven;
        self.next_send = None;
        true
    }

    /// The earliest future instant this track needs attention: its next
    /// retransmission or, failing that, its expiry deadline.
    pub fn next_wakeup(&self) -> Option<Millis> {
        if self.is_terminal() {
            return None;
        }
        match self.next_send {
            Some(t) => Some(t.min(self.deadline)),
            None => Some(self.deadline),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsaudit_core::Challenge;
    use rand::SeedableRng;

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy {
            base_ms: 100,
            max_backoff_ms: 1_000,
            max_retries: 8,
        };
        let id = [3u8; 32];
        let mut prev = 0;
        for attempt in 1..=8 {
            let d = p.backoff_ms(&id, attempt);
            assert_eq!(d, p.backoff_ms(&id, attempt), "deterministic");
            let exp = (100u64 << (attempt - 1)).min(1_000);
            assert!(d >= exp && d <= exp + exp / 2, "attempt {attempt}: {d}");
            assert!(d + exp >= prev, "monotone up to jitter");
            prev = d;
        }
        // different challenges desynchronize
        assert_ne!(p.backoff_ms(&[3u8; 32], 3), p.backoff_ms(&[4u8; 32], 3));
    }

    #[test]
    fn settle_is_write_once() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut track = ChallengeTrack {
            provider: 2,
            rc: RoundChallenge {
                round: 0,
                challenge: Challenge::random(&mut rng),
            },
            beacon_round: 1,
            issued_at: 0,
            deadline: 1_000,
            attempt: 0,
            next_send: Some(200),
            phase: ChallengePhase::Issued,
            outcome: None,
        };
        assert_eq!(track.next_wakeup(), Some(200));
        assert!(track.settle(Outcome::Settled(Verdict::Accept)));
        assert!(!track.settle(Outcome::Expired), "second settle refused");
        assert_eq!(track.outcome, Some(Outcome::Settled(Verdict::Accept)));
        assert_eq!(track.next_wakeup(), None);
    }

    #[test]
    fn wakeup_falls_back_to_the_deadline() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let track = ChallengeTrack {
            provider: 1,
            rc: RoundChallenge {
                round: 2,
                challenge: Challenge::random(&mut rng),
            },
            beacon_round: 9,
            issued_at: 0,
            deadline: 5_000,
            attempt: 6,
            next_send: None,
            phase: ChallengePhase::Delivered,
            outcome: None,
        };
        assert_eq!(track.next_wakeup(), Some(5_000));
    }
}
