//! Seeded soak runner: hundreds of challenge sessions across named
//! fault schedules, checked against the lifecycle invariant.
//!
//! Every challenge must terminate in exactly one of `Settled(Accept)`,
//! `Settled(Reject)` or `Expired` — no challenge lost, no double
//! settlement. The report is a pure function of the seed: running the
//! same [`SoakConfig`] twice yields byte-identical JSON, which CI
//! exploits to catch nondeterminism as well as lifecycle violations.

#![deny(missing_docs)]

use dsaudit_chain::beacon::TrustedBeacon;
use dsaudit_core::{AuditParams, DataOwner, StorageProvider};
use rand::{rngs::StdRng, SeedableRng};

use crate::auditor::{AuditorConfig, AuditorNode};
use crate::harness::Cluster;
use crate::lifecycle::RetryPolicy;
use crate::provider::{ProviderConfig, ProviderNode};
use crate::transport::{
    InProcTransport, NetFaultConfig, PartitionWindow, PeerId, TransportStats,
};

/// Soak dimensions.
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Total challenge sessions, split evenly across the schedules.
    pub sessions: u32,
    /// Providers per cluster.
    pub providers: u32,
    /// Challenge TTL, virtual ms.
    pub ttl_ms: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        Self {
            seed: 0x50a4_da3e,
            sessions: 504,
            providers: 3,
            ttl_ms: 20_000,
        }
    }
}

/// Per-schedule outcome and fault counters.
#[derive(Clone, Debug)]
pub struct ScheduleReport {
    /// Schedule name.
    pub name: &'static str,
    /// Sessions issued under this schedule.
    pub sessions: u64,
    /// Challenges settled with an accepted proof.
    pub settled_accept: u64,
    /// Challenges settled with a rejected proof.
    pub settled_reject: u64,
    /// Challenges expired into the penalty path.
    pub expired: u64,
    /// Challenge retransmissions.
    pub retries: u64,
    /// Overload sheds observed by the auditor.
    pub overloaded: u64,
    /// Corrupt frames seen (auditor + providers).
    pub corrupt_frames: u64,
    /// Proofs arriving after their challenge was already terminal.
    pub late_proofs: u64,
    /// Proofs proven once but re-sent from the provider memo.
    pub proofs_resent: u64,
    /// Transport fault-layer counters.
    pub transport: TransportStats,
    /// Virtual ms the schedule took to quiesce.
    pub virtual_ms: u64,
    /// Lifecycle invariant violations (empty = invariant holds).
    pub violations: Vec<String>,
}

/// The full soak result.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Seed the run derived from.
    pub seed: u64,
    /// One entry per fault schedule.
    pub schedules: Vec<ScheduleReport>,
}

impl SoakReport {
    /// Whether every schedule upheld the lifecycle invariant.
    pub fn ok(&self) -> bool {
        self.schedules.iter().all(|s| s.violations.is_empty())
    }

    /// Total sessions across schedules.
    pub fn total_sessions(&self) -> u64 {
        self.schedules.iter().map(|s| s.sessions).sum()
    }

    /// All violations, prefixed with their schedule name.
    pub fn violations(&self) -> Vec<String> {
        self.schedules
            .iter()
            .flat_map(|s| s.violations.iter().map(|v| format!("{}: {v}", s.name)))
            .collect()
    }

    /// Stable JSON rendering (byte-identical across runs of the same
    /// config — the reproducibility contract CI checks).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"total_sessions\": {},\n", self.total_sessions()));
        out.push_str(&format!("  \"ok\": {},\n", self.ok()));
        out.push_str("  \"schedules\": [\n");
        for (i, s) in self.schedules.iter().enumerate() {
            let t = s.transport;
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", s.name));
            out.push_str(&format!("      \"sessions\": {},\n", s.sessions));
            out.push_str(&format!("      \"settled_accept\": {},\n", s.settled_accept));
            out.push_str(&format!("      \"settled_reject\": {},\n", s.settled_reject));
            out.push_str(&format!("      \"expired\": {},\n", s.expired));
            out.push_str(&format!("      \"retries\": {},\n", s.retries));
            out.push_str(&format!("      \"overloaded\": {},\n", s.overloaded));
            out.push_str(&format!("      \"corrupt_frames\": {},\n", s.corrupt_frames));
            out.push_str(&format!("      \"late_proofs\": {},\n", s.late_proofs));
            out.push_str(&format!("      \"proofs_resent\": {},\n", s.proofs_resent));
            out.push_str(&format!(
                "      \"transport\": {{\"sent\": {}, \"delivered\": {}, \"dropped\": {}, \"partitioned\": {}, \"duplicated\": {}, \"delayed\": {}, \"reordered\": {}, \"corrupted\": {}}},\n",
                t.sent, t.delivered, t.dropped, t.partitioned, t.duplicated, t.delayed, t.reordered, t.corrupted
            ));
            out.push_str(&format!("      \"virtual_ms\": {},\n", s.virtual_ms));
            out.push_str(&format!(
                "      \"violations\": [{}]\n",
                s.violations
                    .iter()
                    .map(|v| format!("\"{}\"", v.replace('"', "'")))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            out.push_str(if i + 1 == self.schedules.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The three named fault schedules of the soak.
fn schedules(cfg: &SoakConfig) -> Vec<(&'static str, NetFaultConfig, bool)> {
    // (name, network faults, whether one provider holds corrupted data)
    let baseline = NetFaultConfig {
        drop_rate: 0.02,
        delay_rate: 0.10,
        max_extra_delay_ms: 40,
        duplicate_rate: 0.02,
        reorder_rate: 0.02,
        corrupt_rate: 0.02,
        ..NetFaultConfig::reliable(5)
    };
    let lossy = NetFaultConfig {
        drop_rate: 0.20,
        delay_rate: 0.30,
        max_extra_delay_ms: 250,
        duplicate_rate: 0.10,
        reorder_rate: 0.10,
        corrupt_rate: 0.10,
        ..NetFaultConfig::reliable(8)
    };
    // the last provider is cut off for the entire run: all its
    // challenges must expire into the penalty path
    let partitioned = NetFaultConfig {
        drop_rate: 0.05,
        delay_rate: 0.10,
        max_extra_delay_ms: 60,
        duplicate_rate: 0.05,
        reorder_rate: 0.05,
        corrupt_rate: 0.05,
        partitions: vec![PartitionWindow {
            peer: cfg.providers,
            from: 0,
            until: u64::MAX,
        }],
        ..NetFaultConfig::reliable(5)
    };
    vec![
        ("baseline", baseline, false),
        ("lossy", lossy, true),
        ("partitioned", partitioned, false),
    ]
}

fn provider_handle(seed: u64, corrupt: bool) -> StorageProvider {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = AuditParams::new(4, 3).expect("static soak params");
    let owner = DataOwner::generate(&mut rng, params);
    let bundle = owner.outsource(&mut rng, &[0xabu8; 700]);
    let mut provider = StorageProvider::ingest(&mut rng, bundle).expect("honest soak bundle");
    if corrupt {
        // zero every chunk so any sampled subset detects the loss
        for i in 0..provider.meta().num_chunks {
            provider.drop_chunk(i);
        }
    }
    provider
}

fn run_schedule(
    cfg: &SoakConfig,
    index: u64,
    name: &'static str,
    faults: NetFaultConfig,
    corrupt_one: bool,
    sessions: u32,
) -> ScheduleReport {
    let _span = dsaudit_obs::span("node.schedule");
    dsaudit_obs::point("node.schedule", name);
    let auditor_cfg = AuditorConfig {
        ttl_ms: cfg.ttl_ms,
        retry: RetryPolicy {
            base_ms: 200,
            max_backoff_ms: 4_000,
            max_retries: 8,
        },
    };
    let transport = InProcTransport::new(cfg.seed ^ (index.wrapping_mul(0x9e37)), faults);
    let mut cluster = Cluster::new(transport, AuditorNode::new(0, auditor_cfg));
    let mut beacon = TrustedBeacon::new(&cfg.seed.to_le_bytes());
    let provider_cfg = ProviderConfig {
        max_inflight: 3,
        queue_capacity: 6,
        prove_ms: 40,
        retry_after_ms: 400,
        memo_capacity: 256,
    };
    for p in 1..=cfg.providers {
        // the "lossy" schedule gives the second provider corrupted
        // holdings, so rejects flow through the same faulty network
        let corrupt = corrupt_one && p == 2;
        let handle = provider_handle(cfg.seed ^ (index << 8) ^ p as u64, corrupt);
        cluster
            .auditor
            .register_target(p as PeerId, handle.public_key().clone(), handle.meta());
        cluster.add_provider(ProviderNode::new(
            p as PeerId,
            handle,
            provider_cfg,
            cfg.seed ^ (p as u64) << 16,
        ));
    }

    // issue in bursts big enough to trip backpressure, then let the
    // cluster quiesce before the next wave
    let wave = (cfg.providers * 12).max(1);
    let mut issued = 0u32;
    let mut beacon_round = index * 1_000_000; // disjoint per schedule
    let mut lost = false;
    while issued < sessions {
        let batch = wave.min(sessions - issued);
        for i in 0..batch {
            let provider = 1 + (issued + i) % cfg.providers;
            cluster.issue(provider as PeerId, &mut beacon, beacon_round);
            beacon_round += 1;
        }
        issued += batch;
        // horizon: every challenge's ttl plus generous slack
        let horizon = cluster.now + cfg.ttl_ms + 60_000;
        if !cluster.run_until_settled(horizon) {
            lost = true;
            break;
        }
    }

    let mut violations = cluster.auditor.audit_invariants();
    if lost {
        violations.push("event loop hit its horizon with challenges still pending".into());
    }
    if cluster.auditor.stats.issued != sessions as u64 {
        violations.push(format!(
            "issued {} of {sessions} planned sessions",
            cluster.auditor.stats.issued
        ));
    }
    let a = cluster.auditor.stats;
    let (resent, corrupt_p) = cluster
        .providers
        .values()
        .fold((0, 0), |(r, c), p| {
            (r + p.stats.proofs_resent, c + p.stats.corrupt_frames)
        });
    ScheduleReport {
        name,
        sessions: a.issued,
        settled_accept: a.settled_accept,
        settled_reject: a.settled_reject,
        expired: a.expired,
        retries: a.retries,
        overloaded: a.overloaded,
        corrupt_frames: a.corrupt_frames + corrupt_p,
        late_proofs: a.late_proofs,
        proofs_resent: resent,
        transport: cluster.transport.stats,
        virtual_ms: cluster.now,
        violations,
    }
}

/// Runs the full soak: `cfg.sessions` challenge sessions split across
/// the three fault schedules.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let plans = schedules(cfg);
    let per = cfg.sessions / plans.len() as u32;
    let mut remainder = cfg.sessions % plans.len() as u32;
    let mut reports = Vec::with_capacity(plans.len());
    for (i, (name, faults, corrupt_one)) in plans.into_iter().enumerate() {
        let extra = u32::from(remainder > 0);
        remainder = remainder.saturating_sub(1);
        reports.push(run_schedule(cfg, i as u64, name, faults, corrupt_one, per + extra));
    }
    SoakReport {
        seed: cfg.seed,
        schedules: reports,
    }
}
