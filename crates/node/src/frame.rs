//! The node wire protocol: length-prefixed [`Codec`] frames.
//!
//! Every message between an auditor daemon and a provider daemon is one
//! [`Frame`], carried on the wire as `len (4 B LE) || tag (1 B) ||
//! payload || checksum (4 B)`. The length prefix covers tag + payload,
//! so a receiver can delimit frames on a byte stream; the checksum (a
//! truncated SHA-256 of tag + payload) catches accidental corruption
//! anywhere in the frame. [`Frame::from_wire`] rejects any prefix that
//! disagrees with the bytes actually present, and every malformed byte
//! surfaces as a typed [`DsAuditError`] — a corrupted frame is data
//! loss to be retried, never a panic and never a verdict.

#![deny(missing_docs)]

use dsaudit_algebra::Fr;
use dsaudit_backend::{BackendId, BackendProof};
use dsaudit_core::codec::{ByteReader, Codec};
use dsaudit_core::{Challenge, DsAuditError};
use dsaudit_crypto::sha256::sha256;

/// A challenge's globally unique, deterministic identifier.
///
/// Derived by [`derive_challenge_id`] from the audited file's on-chain
/// name and the beacon/session round counters, so every retransmission
/// of the same logical challenge carries the same id — receivers dedup
/// on it, which is what makes retries idempotent.
pub type ChallengeId = [u8; 32];

/// Derives the idempotent id of one challenge.
///
/// Any party holding the file name and the round counters derives the
/// same id, so the id itself never needs to be trusted: a provider can
/// recompute it from the frame's fields.
pub fn derive_challenge_id(file_name: &Fr, beacon_round: u64, session_round: u64) -> ChallengeId {
    let mut buf = Vec::with_capacity(25 + 32 + 16);
    buf.extend_from_slice(b"dsaudit/node/challenge-id");
    buf.extend_from_slice(&file_name.to_bytes_be());
    buf.extend_from_slice(&beacon_round.to_le_bytes());
    buf.extend_from_slice(&session_round.to_le_bytes());
    sha256(&buf)
}

/// Challenge issuance: auditor → provider. Retransmitted verbatim on
/// retry (same `challenge_id`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChallengeFrame {
    /// Deterministic challenge id (see [`derive_challenge_id`]).
    pub challenge_id: ChallengeId,
    /// The proof-of-storage scheme this challenge must be answered
    /// with. One id byte on the wire; an unknown id fails decode with
    /// a typed error — it can never reach verdict logic.
    pub backend: BackendId,
    /// Beacon round the challenge was derived from.
    pub beacon_round: u64,
    /// The audit session's round counter.
    pub round: u64,
    /// Virtual-clock deadline (ms) after which the auditor settles the
    /// challenge as expired; providers drop work past it.
    pub expires_at: u64,
    /// The beacon-derived challenge itself.
    pub challenge: Challenge,
}

/// Receipt acknowledgment: provider → auditor. Moves the lifecycle from
/// `Issued` to `Delivered`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckFrame {
    /// The acknowledged challenge.
    pub challenge_id: ChallengeId,
}

/// Proof of storage: provider → auditor. The erased, backend-tagged
/// proof body (288 B for the pairing scheme, variable for others),
/// echoing the session round so the auditor can match response to
/// round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofFrame {
    /// The challenge being answered.
    pub challenge_id: ChallengeId,
    /// The session round the proof answers.
    pub round: u64,
    /// The backend-tagged proof body. The frame layer treats the
    /// payload as opaque bytes — only the daemon holding the matching
    /// commitment interprets them.
    pub proof: BackendProof,
}

/// Backpressure shed: provider → auditor. The provider's in-flight and
/// queued session budgets are both full; the auditor should retry after
/// the hinted delay instead of the regular backoff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverloadedFrame {
    /// The shed challenge.
    pub challenge_id: ChallengeId,
    /// Provider's hint: earliest useful retry, in ms from receipt.
    pub retry_after_ms: u64,
}

/// Settlement notice: auditor → provider. Lets the provider drop its
/// memoized proof for the challenge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SettleFrame {
    /// The settled challenge.
    pub challenge_id: ChallengeId,
    /// Whether the proof was accepted.
    pub accepted: bool,
}

/// One message of the node protocol.
///
/// `Frame` is `Clone`, not `Copy`: a `Proof` body is variable-length
/// per backend (288 B pairing, `O(k · depth)` Merkle paths, 128 B
/// Groth16), so the proof payload lives in a heap buffer. Frames are
/// still short-lived values — cloned only when memoized for
/// retransmission, never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Auditor → provider: open a challenge.
    Challenge(ChallengeFrame),
    /// Provider → auditor: challenge received.
    Ack(AckFrame),
    /// Provider → auditor: proof of storage.
    Proof(ProofFrame),
    /// Provider → auditor: session budget full, retry later.
    Overloaded(OverloadedFrame),
    /// Auditor → provider: challenge settled.
    Settle(SettleFrame),
}

const TAG_CHALLENGE: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_PROOF: u8 = 3;
const TAG_OVERLOADED: u8 = 4;
const TAG_SETTLE: u8 = 5;

impl Frame {
    /// The challenge id every frame variant carries.
    pub fn challenge_id(&self) -> &ChallengeId {
        match self {
            Frame::Challenge(f) => &f.challenge_id,
            Frame::Ack(f) => &f.challenge_id,
            Frame::Proof(f) => &f.challenge_id,
            Frame::Overloaded(f) => &f.challenge_id,
            Frame::Settle(f) => &f.challenge_id,
        }
    }

    /// Bytes of the integrity checksum trailing every wire frame.
    pub const CHECKSUM_BYTES: usize = 4;

    /// Serializes as wire bytes:
    /// `len (4 B LE) || tag || payload || checksum (4 B)`.
    ///
    /// The checksum is the truncated SHA-256 of `tag || payload`. It is
    /// not authentication — a deliberate forger just recomputes it —
    /// but it guarantees *accidental* corruption anywhere in the frame
    /// is caught at decode and treated as loss (retried), so a flipped
    /// bit in a proof body can never masquerade as a failed audit.
    pub fn to_wire(&self) -> Vec<u8> {
        let body_len = self.encoded_len();
        let mut out = Vec::with_capacity(4 + body_len + Self::CHECKSUM_BYTES);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        self.encode_into(&mut out);
        let digest = sha256(&out[4..]);
        out.extend_from_slice(&digest[..Self::CHECKSUM_BYTES]);
        out
    }

    /// Parses wire bytes produced by [`Frame::to_wire`].
    ///
    /// # Errors
    /// Typed [`DsAuditError`] when the length prefix disagrees with the
    /// bytes present, the checksum does not match, the tag is unknown,
    /// or any payload field is malformed — including single flipped
    /// bits anywhere in the frame.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, DsAuditError> {
        let mut r = ByteReader::new(bytes, Self::TYPE_NAME);
        let len = r.u32_le("length prefix")? as usize;
        if len + Self::CHECKSUM_BYTES != r.remaining() {
            return Err(r.malformed("length prefix"));
        }
        let body = r.take(len, "body")?;
        let digest = sha256(body);
        let checksum = r.array::<{ Self::CHECKSUM_BYTES }>("checksum")?;
        if digest[..Self::CHECKSUM_BYTES] != checksum {
            return Err(r.malformed("checksum"));
        }
        let mut body_reader = ByteReader::new(body, Self::TYPE_NAME);
        let frame = Self::decode_from(&mut body_reader)?;
        body_reader.finish()?;
        r.finish()?;
        Ok(frame)
    }
}

impl Codec for Frame {
    const TYPE_NAME: &'static str = "Frame";

    fn encoded_len(&self) -> usize {
        1 + match self {
            Frame::Challenge(f) => 32 + 1 + 8 + 8 + 8 + f.challenge.encoded_len(),
            Frame::Ack(_) => 32,
            Frame::Proof(f) => 32 + 8 + f.proof.encoded_len(),
            Frame::Overloaded(_) => 32 + 8,
            Frame::Settle(_) => 32 + 1,
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Challenge(f) => {
                out.push(TAG_CHALLENGE);
                out.extend_from_slice(&f.challenge_id);
                out.push(f.backend.as_u8());
                out.extend_from_slice(&f.beacon_round.to_le_bytes());
                out.extend_from_slice(&f.round.to_le_bytes());
                out.extend_from_slice(&f.expires_at.to_le_bytes());
                f.challenge.encode_into(out);
            }
            Frame::Ack(f) => {
                out.push(TAG_ACK);
                out.extend_from_slice(&f.challenge_id);
            }
            Frame::Proof(f) => {
                out.push(TAG_PROOF);
                out.extend_from_slice(&f.challenge_id);
                out.extend_from_slice(&f.round.to_le_bytes());
                f.proof.encode_into(out);
            }
            Frame::Overloaded(f) => {
                out.push(TAG_OVERLOADED);
                out.extend_from_slice(&f.challenge_id);
                out.extend_from_slice(&f.retry_after_ms.to_le_bytes());
            }
            Frame::Settle(f) => {
                out.push(TAG_SETTLE);
                out.extend_from_slice(&f.challenge_id);
                out.push(u8::from(f.accepted));
            }
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, DsAuditError> {
        let tag = u8::from_le_bytes(r.array::<1>("tag")?);
        match tag {
            TAG_CHALLENGE => {
                let challenge_id = r.array::<32>("challenge_id")?;
                let backend = BackendId::from_u8(u8::from_le_bytes(r.array::<1>("backend id")?))
                    .ok_or_else(|| r.malformed("backend id"))?;
                let beacon_round = u64::from_le_bytes(r.array::<8>("beacon_round")?);
                let round = u64::from_le_bytes(r.array::<8>("round")?);
                let expires_at = u64::from_le_bytes(r.array::<8>("expires_at")?);
                let challenge = Challenge::decode_from(r)?;
                Ok(Frame::Challenge(ChallengeFrame {
                    challenge_id,
                    backend,
                    beacon_round,
                    round,
                    expires_at,
                    challenge,
                }))
            }
            TAG_ACK => Ok(Frame::Ack(AckFrame {
                challenge_id: r.array::<32>("challenge_id")?,
            })),
            TAG_PROOF => {
                let challenge_id = r.array::<32>("challenge_id")?;
                let round = u64::from_le_bytes(r.array::<8>("round")?);
                let proof = BackendProof::decode_from(r)?;
                Ok(Frame::Proof(ProofFrame {
                    challenge_id,
                    round,
                    proof,
                }))
            }
            TAG_OVERLOADED => {
                let challenge_id = r.array::<32>("challenge_id")?;
                let retry_after_ms = u64::from_le_bytes(r.array::<8>("retry_after_ms")?);
                Ok(Frame::Overloaded(OverloadedFrame {
                    challenge_id,
                    retry_after_ms,
                }))
            }
            TAG_SETTLE => {
                let challenge_id = r.array::<32>("challenge_id")?;
                let flag = u8::from_le_bytes(r.array::<1>("accepted")?);
                if flag > 1 {
                    return Err(r.malformed("accepted"));
                }
                Ok(Frame::Settle(SettleFrame {
                    challenge_id,
                    accepted: flag == 1,
                }))
            }
            _ => Err(r.malformed("tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsaudit_algebra::field::Field;
    use rand::{RngCore, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xf2a8e)
    }

    fn sample_frames(rng: &mut rand::rngs::StdRng) -> Vec<Frame> {
        let mut id = [0u8; 32];
        rng.fill_bytes(&mut id);
        let challenge = Challenge::random(rng);
        vec![
            Frame::Challenge(ChallengeFrame {
                challenge_id: id,
                backend: BackendId::Pairing,
                beacon_round: 7,
                round: 3,
                expires_at: 90_000,
                challenge,
            }),
            Frame::Challenge(ChallengeFrame {
                challenge_id: id,
                backend: BackendId::Groth16Merkle,
                beacon_round: 7,
                round: 3,
                expires_at: 90_000,
                challenge,
            }),
            Frame::Ack(AckFrame { challenge_id: id }),
            Frame::Proof(ProofFrame {
                challenge_id: id,
                round: 3,
                // the frame layer is backend-agnostic: any tagged
                // payload rides in a Proof frame
                proof: BackendProof {
                    backend: BackendId::Merkle,
                    bytes: vec![0xaa; 37],
                },
            }),
            Frame::Overloaded(OverloadedFrame {
                challenge_id: id,
                retry_after_ms: 250,
            }),
            Frame::Settle(SettleFrame {
                challenge_id: id,
                accepted: true,
            }),
            Frame::Settle(SettleFrame {
                challenge_id: id,
                accepted: false,
            }),
        ]
    }

    #[test]
    fn frames_roundtrip_on_the_wire() {
        let mut rng = rng();
        for frame in sample_frames(&mut rng) {
            let wire = frame.to_wire();
            assert_eq!(Frame::from_wire(&wire).unwrap(), frame);
            assert_eq!(wire.len(), 4 + frame.encoded_len() + Frame::CHECKSUM_BYTES);
        }
    }

    #[test]
    fn inconsistent_length_prefix_rejected() {
        let mut rng = rng();
        let frame = sample_frames(&mut rng).remove(1);
        let mut wire = frame.to_wire();
        wire[0] ^= 1;
        assert!(matches!(
            Frame::from_wire(&wire),
            Err(DsAuditError::Malformed { ty: "Frame", .. } | DsAuditError::Truncated { .. })
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        // hand-frame a body with an unknown tag and a *valid* checksum,
        // so the failure is attributed to the tag, not the checksum
        let mut body = vec![99u8];
        body.extend_from_slice(&[9u8; 32]);
        let mut wire = (body.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&body);
        wire.extend_from_slice(&crate::frame::sha256(&body)[..Frame::CHECKSUM_BYTES]);
        assert_eq!(
            Frame::from_wire(&wire),
            Err(DsAuditError::Malformed {
                ty: "Frame",
                field: "tag"
            })
        );
    }

    #[test]
    fn every_single_byte_flip_is_a_typed_error() {
        // the checksum makes corruption anywhere in the frame — length
        // prefix, tag, payload or the checksum itself — fail decode with
        // a typed error: it can never panic, and it can never surface as
        // a different (or worse, the same) well-formed frame, so a
        // flipped bit is always a retry and never a verdict
        let mut rng = rng();
        for frame in sample_frames(&mut rng) {
            let wire = frame.to_wire();
            for i in 0..wire.len() {
                let mut bad = wire.clone();
                bad[i] ^= 0x40;
                assert!(
                    Frame::from_wire(&bad).is_err(),
                    "flip at byte {i} slipped through the checksum"
                );
            }
        }
    }

    #[test]
    fn unknown_backend_id_is_a_typed_decode_error_not_a_verdict() {
        let mut rng = rng();
        for (frame_idx, byte_off) in [(0usize, 1 + 32), (3, 1 + 32 + 8)] {
            // challenge frame: backend byte follows the id; proof
            // frame: the BackendProof's own id byte follows the round
            let frame = sample_frames(&mut rng).remove(frame_idx);
            let mut body = frame.encode();
            body[byte_off] = 0x7f;
            let mut wire = (body.len() as u32).to_le_bytes().to_vec();
            wire.extend_from_slice(&body);
            wire.extend_from_slice(&crate::frame::sha256(&body)[..Frame::CHECKSUM_BYTES]);
            assert_eq!(
                Frame::from_wire(&wire),
                Err(DsAuditError::Malformed {
                    ty: "Frame",
                    field: "backend id"
                })
            );
        }
    }

    #[test]
    fn challenge_id_is_deterministic_and_round_scoped() {
        let name = Fr::from_u64(42);
        let a = derive_challenge_id(&name, 5, 0);
        assert_eq!(a, derive_challenge_id(&name, 5, 0));
        assert_ne!(a, derive_challenge_id(&name, 6, 0));
        assert_ne!(a, derive_challenge_id(&name, 5, 1));
        assert_ne!(a, derive_challenge_id(&Fr::from_u64(43), 5, 0));
    }
}
