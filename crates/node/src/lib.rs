//! `dsaudit-node`: provider and auditor audit daemons over a
//! fault-injected transport, driving a deadline-bound challenge
//! lifecycle.
//!
//! The paper's protocol says *what* a proof-of-storage interaction
//! computes; this crate pins down *how it survives a real network*.
//! Daemons exchange length-prefixed [`Codec`](dsaudit_core::Codec)
//! frames ([`frame`]) over a pluggable [`transport::Transport`];
//! the deterministic in-process implementation injects seeded drops,
//! delays, duplicates, reorders, partitions and byte corruption.
//! On top sits the challenge lifecycle ([`lifecycle`]): challenges are
//! derived from the chain's randomness beacon with idempotent ids,
//! retransmitted with bounded exponential backoff and deterministic
//! jitter, bounded by a TTL that expires silence into the contract's
//! penalty path, and shed with a typed `Overloaded` reply when a
//! provider's budgets fill. The invariant the whole crate exists to
//! uphold: **every issued challenge terminates in exactly one of
//! `Settled(Accept)`, `Settled(Reject)` or `Expired` — none lost, none
//! settled twice** — which [`soak`] checks over hundreds of sessions
//! and three fault schedules, reproducibly.
//!
//! Everything runs on a virtual millisecond clock; there is no wall
//! clock, no threads and no async runtime, so any run is a pure
//! function of its seeds.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod auditor;
pub mod frame;
pub mod harness;
pub mod lifecycle;
pub mod provider;
pub mod soak;
pub mod transport;

pub use auditor::{AuditorConfig, AuditorNode, AuditorStats};
pub use frame::{derive_challenge_id, ChallengeId, Frame};
pub use harness::Cluster;
pub use lifecycle::{ChallengePhase, ChallengeTrack, Outcome, RetryPolicy};
pub use provider::{ProviderConfig, ProviderNode, ProviderStats};
pub use soak::{run_soak, ScheduleReport, SoakConfig, SoakReport};
pub use transport::{
    InProcTransport, Millis, NetFaultConfig, PartitionWindow, PeerId, Transport, TransportStats,
};
