//! Deterministic event loop driving one auditor daemon and a set of
//! provider daemons over a shared transport on a virtual clock.
//!
//! The loop steps every daemon at the current instant, then advances
//! the clock to the earliest of the transport's next delivery and the
//! daemons' next timer wakeups — no busy-waiting, no wall clock, so a
//! run is a pure function of the seeds and the issue schedule.

#![deny(missing_docs)]

use std::collections::BTreeMap;

use dsaudit_chain::beacon::Beacon;

use crate::auditor::AuditorNode;
use crate::frame::ChallengeId;
use crate::provider::ProviderNode;
use crate::transport::{Millis, PeerId, Transport};

/// One auditor + N providers on a shared transport.
pub struct Cluster<T: Transport> {
    /// The shared (typically fault-injecting) transport.
    pub transport: T,
    /// The auditor daemon.
    pub auditor: AuditorNode,
    /// Provider daemons by transport address.
    pub providers: BTreeMap<PeerId, ProviderNode>,
    /// The virtual clock, ms.
    pub now: Millis,
}

impl<T: Transport> Cluster<T> {
    /// A cluster at virtual time zero.
    pub fn new(transport: T, auditor: AuditorNode) -> Self {
        Self {
            transport,
            auditor,
            providers: BTreeMap::new(),
            now: 0,
        }
    }

    /// Attaches a provider daemon (keyed by its peer id).
    pub fn add_provider(&mut self, node: ProviderNode) {
        self.providers.insert(node.peer(), node);
    }

    /// Issues one challenge against `provider` from the beacon's
    /// `beacon_round` output at the current instant.
    pub fn issue(
        &mut self,
        provider: PeerId,
        beacon: &mut dyn Beacon,
        beacon_round: u64,
    ) -> Option<ChallengeId> {
        self.auditor
            .issue(self.now, provider, beacon, beacon_round, &mut self.transport)
    }

    /// Runs the event loop until every issued challenge is terminal or
    /// the virtual clock passes `horizon`. Returns `true` when all
    /// challenges terminated (the lifecycle invariant); `false` means
    /// the horizon was too short — callers treat that as a lost
    /// challenge.
    pub fn run_until_settled(&mut self, horizon: Millis) -> bool {
        // horizon is the outer deadline; each challenge's ttl is the
        // inner one, so termination needs horizon > max ttl deadline
        while self.auditor.pending() > 0 {
            if self.now > horizon {
                return false;
            }
            // the cluster's virtual time drives obs timestamps, so a
            // trace of a deterministic run is itself reproducible
            dsaudit_obs::tick_virtual(self.now);
            self.auditor.step(self.now, &mut self.transport);
            for provider in self.providers.values_mut() {
                provider.step(self.now, &mut self.transport);
            }
            let mut next = self.transport.next_delivery();
            let mut merge = |t: Option<Millis>| {
                next = match (next, t) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            };
            merge(self.auditor.next_wakeup());
            for provider in self.providers.values() {
                merge(provider.next_wakeup());
            }
            self.now = match next {
                Some(t) if t > self.now => t,
                // an event is due now (e.g. a reordered frame landed at
                // this instant): re-step after a minimal advance
                _ => self.now + 1,
            };
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::AuditorConfig;
    use crate::lifecycle::{Outcome, RetryPolicy};
    use crate::provider::{ProviderConfig, ProviderNode};
    use crate::transport::{InProcTransport, NetFaultConfig, PartitionWindow};
    use dsaudit_chain::beacon::TrustedBeacon;
    use dsaudit_core::{AuditParams, DataOwner, StorageProvider, Verdict};
    use rand::SeedableRng;

    fn provider_handle(seed: u64, corrupt: bool) -> StorageProvider {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let params = AuditParams::new(4, 3).unwrap();
        let owner = DataOwner::generate(&mut rng, params);
        let bundle = owner.outsource(&mut rng, &[0x5au8; 700]);
        let mut provider = StorageProvider::ingest(&mut rng, bundle).unwrap();
        if corrupt {
            // zero every chunk so any sampled subset detects the loss
            for i in 0..provider.meta().num_chunks {
                provider.drop_chunk(i);
            }
        }
        provider
    }

    fn cluster(
        faults: NetFaultConfig,
        cfg: AuditorConfig,
    ) -> (Cluster<InProcTransport>, TrustedBeacon) {
        let transport = InProcTransport::new(0xc1u64, faults);
        let auditor = AuditorNode::new(0, cfg);
        (Cluster::new(transport, auditor), TrustedBeacon::new(b"harness"))
    }

    fn attach(cluster: &mut Cluster<InProcTransport>, peer: PeerId, corrupt: bool, cfg: ProviderConfig) {
        let handle = provider_handle(0x9000 + peer as u64, corrupt);
        cluster
            .auditor
            .register_target(peer, handle.public_key().clone(), handle.meta());
        cluster.add_provider(ProviderNode::new(peer, handle, cfg, 0x400 + peer as u64));
    }

    #[test]
    fn honest_provider_settles_accept_over_reliable_network() {
        let (mut cluster, mut beacon) = cluster(
            NetFaultConfig::reliable(5),
            AuditorConfig::default(),
        );
        attach(&mut cluster, 1, false, ProviderConfig::default());
        let id = cluster.issue(1, &mut beacon, 0).unwrap();
        assert!(cluster.run_until_settled(60_000));
        let track = &cluster.auditor.tracks()[&id];
        assert_eq!(track.outcome, Some(Outcome::Settled(Verdict::Accept)));
        assert!(cluster.auditor.audit_invariants().is_empty());
    }

    #[test]
    fn corrupted_data_settles_reject_not_expiry() {
        let (mut cluster, mut beacon) = cluster(
            NetFaultConfig::reliable(5),
            AuditorConfig::default(),
        );
        attach(&mut cluster, 1, true, ProviderConfig::default());
        let id = cluster.issue(1, &mut beacon, 0).unwrap();
        assert!(cluster.run_until_settled(60_000));
        assert!(matches!(
            cluster.auditor.tracks()[&id].outcome,
            Some(Outcome::Settled(Verdict::Reject(_)))
        ));
    }

    #[test]
    fn partitioned_provider_expires_into_the_penalty_path() {
        let faults = NetFaultConfig {
            partitions: vec![PartitionWindow {
                peer: 1,
                from: 0,
                until: u64::MAX,
            }],
            ..NetFaultConfig::reliable(5)
        };
        let (mut cluster, mut beacon) = cluster(faults, AuditorConfig::default());
        attach(&mut cluster, 1, false, ProviderConfig::default());
        let id = cluster.issue(1, &mut beacon, 0).unwrap();
        assert!(cluster.run_until_settled(60_000));
        assert_eq!(cluster.auditor.tracks()[&id].outcome, Some(Outcome::Expired));
        assert!(cluster.auditor.stats.retries > 0, "silence must be retried first");
        assert!(cluster.auditor.audit_invariants().is_empty());
    }

    #[test]
    fn burst_beyond_budgets_is_shed_with_overloaded_then_recovers() {
        let (mut cluster, mut beacon) = cluster(
            NetFaultConfig::reliable(2),
            AuditorConfig {
                ttl_ms: 30_000,
                retry: RetryPolicy::default(),
            },
        );
        let tight = ProviderConfig {
            max_inflight: 2,
            queue_capacity: 2,
            prove_ms: 100,
            ..ProviderConfig::default()
        };
        attach(&mut cluster, 1, false, tight);
        for round in 0..10u64 {
            cluster.issue(1, &mut beacon, round).unwrap();
        }
        assert!(cluster.run_until_settled(120_000));
        let (accept, reject, expired, pending) = cluster.auditor.outcome_counts();
        assert_eq!((accept, reject, expired, pending), (10, 0, 0, 0));
        assert!(
            cluster.auditor.stats.overloaded > 0,
            "a 10-challenge burst against budgets of 2+2 must shed"
        );
        let provider = &cluster.providers[&1];
        assert_eq!(provider.stats.overloaded_sent, cluster.auditor.stats.overloaded);
        assert!(cluster.auditor.audit_invariants().is_empty());
    }

    #[test]
    fn reissuing_the_same_beacon_round_is_idempotent() {
        let (mut cluster, mut beacon) = cluster(
            NetFaultConfig::reliable(5),
            AuditorConfig::default(),
        );
        attach(&mut cluster, 1, false, ProviderConfig::default());
        let a = cluster.issue(1, &mut beacon, 0).unwrap();
        // a duplicate issue of the same beacon round is a no-op, even
        // while the challenge is still in flight
        assert_eq!(cluster.issue(1, &mut beacon, 0), Some(a));
        assert_eq!(cluster.auditor.stats.issued, 1);
        assert!(cluster.run_until_settled(60_000));
        // ... and after settlement too: the terminal track is kept
        assert_eq!(cluster.issue(1, &mut beacon, 0), Some(a));
        assert_eq!(cluster.auditor.stats.issued, 1);
        // a new beacon round yields a fresh id
        let b = cluster.issue(1, &mut beacon, 1).unwrap();
        assert_ne!(a, b);
        assert!(cluster.run_until_settled(120_000));
        assert_eq!(cluster.auditor.stats.issued, 2);
        assert!(cluster.auditor.audit_invariants().is_empty());
    }
}
