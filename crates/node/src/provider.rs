//! The provider daemon: answers challenges over the transport with
//! bounded concurrency and idempotent replies.
//!
//! Backpressure policy: at most `max_inflight` proofs are being
//! computed at once; up to `queue_capacity` further challenges wait in
//! arrival order; anything beyond that is shed immediately with a typed
//! [`Frame::Overloaded`] reply (never buffered unboundedly). Completed
//! proofs are memoized until the auditor's `Settle` notice, so a
//! retransmitted challenge is answered from the memo instead of being
//! proven twice.

#![deny(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dsaudit_backend::{BackendId, BackendProof};
use dsaudit_core::codec::Codec;
use dsaudit_core::{RoundChallenge, StorageProvider};
use rand::{rngs::StdRng, SeedableRng};

use crate::frame::{AckFrame, ChallengeFrame, ChallengeId, Frame, OverloadedFrame, ProofFrame};
use crate::transport::{Millis, PeerId, Transport};

/// Tuning knobs of a [`ProviderNode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProviderConfig {
    /// Proofs computed concurrently before new work queues.
    pub max_inflight: usize,
    /// Challenges waiting behind the in-flight set before shedding.
    pub queue_capacity: usize,
    /// Virtual time one proof takes to compute, ms.
    pub prove_ms: u64,
    /// `retry_after_ms` hint attached to `Overloaded` replies.
    pub retry_after_ms: u64,
    /// Completed proofs memoized for retransmitted challenges.
    pub memo_capacity: usize,
}

impl Default for ProviderConfig {
    fn default() -> Self {
        Self {
            max_inflight: 4,
            queue_capacity: 8,
            prove_ms: 40,
            retry_after_ms: 300,
            memo_capacity: 1024,
        }
    }
}

/// Counters over everything a provider daemon did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProviderStats {
    /// Well-formed frames received.
    pub received: u64,
    /// Frames that failed to decode (treated as loss; the auditor's
    /// retransmission recovers them).
    pub corrupt_frames: u64,
    /// Challenge retransmissions deduplicated by id.
    pub duplicates: u64,
    /// Challenges shed with an `Overloaded` reply.
    pub overloaded_sent: u64,
    /// Proofs computed and sent.
    pub proofs_sent: u64,
    /// Proofs re-sent from the memo for retransmitted challenges.
    pub proofs_resent: u64,
    /// Jobs dropped because their challenge deadline had passed.
    pub shed_stale: u64,
    /// Challenges for a backend this daemon holds no kit for (dropped;
    /// the auditor's TTL expires them into the penalty path).
    pub backend_mismatches: u64,
}

#[derive(Clone, Copy, Debug)]
struct Job {
    auditor: PeerId,
    rc: RoundChallenge,
    expires_at: Millis,
    ready_at: Millis,
}

/// A storage provider attached to the transport as a daemon.
pub struct ProviderNode {
    peer: PeerId,
    provider: StorageProvider,
    cfg: ProviderConfig,
    rng: StdRng,
    active: BTreeMap<ChallengeId, Job>,
    queued: VecDeque<(ChallengeId, Job)>,
    /// Completed proofs awaiting the auditor's settle notice, with FIFO
    /// eviction order.
    memo: BTreeMap<ChallengeId, (u64, BackendProof)>,
    memo_order: VecDeque<ChallengeId>,
    settled: BTreeSet<ChallengeId>,
    /// Daemon counters.
    pub stats: ProviderStats,
}

impl ProviderNode {
    /// Attaches `provider` to the transport as `peer`; `seed` fixes the
    /// proof-blinding randomness.
    pub fn new(peer: PeerId, provider: StorageProvider, cfg: ProviderConfig, seed: u64) -> Self {
        Self {
            peer,
            provider,
            cfg,
            rng: StdRng::seed_from_u64(seed),
            active: BTreeMap::new(),
            queued: VecDeque::new(),
            memo: BTreeMap::new(),
            memo_order: VecDeque::new(),
            settled: BTreeSet::new(),
            stats: ProviderStats::default(),
        }
    }

    /// This daemon's transport address.
    pub fn peer(&self) -> PeerId {
        self.peer
    }

    /// The underlying storage-provider role handle (for fault
    /// injection in tests: corrupting or dropping held data).
    pub fn provider_mut(&mut self) -> &mut StorageProvider {
        &mut self.provider
    }

    /// Sessions currently proving or queued.
    pub fn load(&self) -> usize {
        self.active.len() + self.queued.len()
    }

    /// Earliest future instant a proof finishes, if any.
    pub fn next_wakeup(&self) -> Option<Millis> {
        self.active.values().map(|j| j.ready_at).min()
    }

    /// One scheduling step at virtual time `now`: ingest frames, shed
    /// stale work, emit finished proofs, refill the in-flight set.
    pub fn step<T: Transport>(&mut self, now: Millis, transport: &mut T) {
        // ingest; bounded per step by what the stale-deadline shedding
        // below and the backpressure budgets admit
        while let Some((from, wire)) = transport.recv(now, self.peer) {
            match Frame::from_wire(&wire) {
                Ok(frame) => {
                    self.stats.received += 1;
                    self.handle(now, from, frame, transport);
                }
                Err(_) => self.stats.corrupt_frames += 1,
            }
        }
        // shed anything whose settlement deadline already passed — the
        // auditor has expired it, so the proof would be wasted work
        let stale: Vec<ChallengeId> = self
            .active
            .iter()
            .filter(|(_, j)| now >= j.expires_at)
            .map(|(id, _)| *id)
            .collect();
        for id in stale {
            self.active.remove(&id);
            self.stats.shed_stale += 1;
        }
        self.queued.retain(|(_, j)| {
            let fresh = now < j.expires_at;
            if !fresh {
                self.stats.shed_stale += 1;
            }
            fresh
        });
        // emit proofs whose virtual compute time has elapsed
        let ready: Vec<ChallengeId> = self
            .active
            .iter()
            .filter(|(_, j)| now >= j.ready_at)
            .map(|(id, _)| *id)
            .collect();
        for id in ready {
            let Some(job) = self.active.remove(&id) else {
                continue;
            };
            let response = self.provider.respond_round(&mut self.rng, &job.rc);
            // the daemon speaks the pairing scheme; the proof crosses
            // the wire as an erased, backend-tagged body
            let proof = BackendProof {
                backend: BackendId::Pairing,
                bytes: response.proof.encode(),
            };
            let frame = Frame::Proof(ProofFrame {
                challenge_id: id,
                round: response.round,
                proof: proof.clone(),
            });
            transport.send(now, self.peer, job.auditor, frame.to_wire());
            self.stats.proofs_sent += 1;
            dsaudit_obs::counter_inc("node.provider.proofs_sent");
            self.memoize(id, response.round, proof);
        }
        // refill the in-flight set from the queue
        while self.active.len() < self.cfg.max_inflight {
            let Some((id, mut job)) = self.queued.pop_front() else {
                break;
            };
            job.ready_at = now + self.cfg.prove_ms;
            self.active.insert(id, job);
        }
    }

    fn memoize(&mut self, id: ChallengeId, round: u64, proof: BackendProof) {
        if self.memo.insert(id, (round, proof)).is_none() {
            self.memo_order.push_back(id);
        }
        while self.memo.len() > self.cfg.memo_capacity.max(1) {
            let Some(evict) = self.memo_order.pop_front() else {
                break;
            };
            self.memo.remove(&evict);
        }
    }

    fn handle<T: Transport>(&mut self, now: Millis, from: PeerId, frame: Frame, transport: &mut T) {
        match frame {
            Frame::Challenge(c) => self.handle_challenge(now, from, c, transport),
            Frame::Settle(s) => {
                // idempotent: the memo and any in-flight work for this
                // challenge are released exactly once
                self.settled.insert(s.challenge_id);
                if self.memo.remove(&s.challenge_id).is_some() {
                    self.memo_order.retain(|id| id != &s.challenge_id);
                }
                self.active.remove(&s.challenge_id);
                self.queued.retain(|(id, _)| id != &s.challenge_id);
            }
            // auditor-bound frames echoed back by a confused peer are
            // ignored; the protocol stays silent rather than amplifying
            Frame::Ack(_) | Frame::Proof(_) | Frame::Overloaded(_) => {}
        }
    }

    fn handle_challenge<T: Transport>(
        &mut self,
        now: Millis,
        from: PeerId,
        c: ChallengeFrame,
        transport: &mut T,
    ) {
        let id = c.challenge_id;
        if c.backend != BackendId::Pairing {
            // this daemon holds only pairing kits; a challenge for a
            // backend it cannot answer is dropped, never guessed at
            self.stats.backend_mismatches += 1;
            return;
        }
        if self.settled.contains(&id) {
            self.stats.duplicates += 1;
            return;
        }
        if let Some((round, proof)) = self.memo.get(&id) {
            // already proven: answer from the memo, never prove twice
            let frame = Frame::Proof(ProofFrame {
                challenge_id: id,
                round: *round,
                proof: proof.clone(),
            });
            transport.send(now, self.peer, from, frame.to_wire());
            self.stats.proofs_resent += 1;
            dsaudit_obs::counter_inc("node.provider.proofs_resent");
            return;
        }
        if self.active.contains_key(&id) || self.queued.iter().any(|(qid, _)| qid == &id) {
            // retransmission of work in progress: re-ack so the auditor
            // knows the challenge was delivered
            self.stats.duplicates += 1;
            let ack = Frame::Ack(AckFrame { challenge_id: id });
            transport.send(now, self.peer, from, ack.to_wire());
            return;
        }
        if now >= c.expires_at {
            // past its settlement deadline: proving would be wasted
            self.stats.shed_stale += 1;
            return;
        }
        let job = Job {
            auditor: from,
            rc: RoundChallenge {
                round: c.round,
                challenge: c.challenge,
            },
            expires_at: c.expires_at,
            ready_at: now + self.cfg.prove_ms,
        };
        if self.active.len() < self.cfg.max_inflight {
            self.active.insert(id, job);
        } else if self.queued.len() < self.cfg.queue_capacity {
            self.queued.push_back((id, job));
        } else {
            // both budgets full: shed with a typed reply instead of
            // buffering without bound
            let frame = Frame::Overloaded(OverloadedFrame {
                challenge_id: id,
                retry_after_ms: self.cfg.retry_after_ms,
            });
            transport.send(now, self.peer, from, frame.to_wire());
            self.stats.overloaded_sent += 1;
            dsaudit_obs::counter_inc("node.provider.overloaded_sent");
            return;
        }
        let ack = Frame::Ack(AckFrame { challenge_id: id });
        transport.send(now, self.peer, from, ack.to_wire());
    }
}
