//! Pluggable frame transport with a deterministic, fault-injecting
//! in-process implementation.
//!
//! A [`Transport`] moves opaque wire bytes between peers on a virtual
//! millisecond clock; daemons poll it with [`Transport::recv`] inside
//! their step functions. [`InProcTransport`] is the deterministic
//! reference implementation: a seeded RNG decides, per send, whether
//! the frame is dropped, delayed, duplicated, reordered ahead of older
//! traffic, or byte-corrupted, and scheduled partition windows make a
//! peer unreachable for a span of virtual time. All state lives in
//! ordered maps keyed by `(recipient, deliver_at, sequence)`, so a run
//! is a pure function of the seed and the send schedule.

#![deny(missing_docs)]

use std::collections::BTreeMap;

use rand::{rngs::StdRng, RngCore, SeedableRng};

/// Virtual-clock milliseconds.
pub type Millis = u64;

/// A node's address on the transport.
pub type PeerId = u32;

/// Moves wire bytes between peers on a shared virtual clock.
pub trait Transport {
    /// Queues `wire` for delivery from `from` to `to`, subject to the
    /// implementation's fault model.
    fn send(&mut self, now: Millis, from: PeerId, to: PeerId, wire: Vec<u8>);

    /// The next frame deliverable to `peer` at or before `now`, with
    /// its sender, or `None` when nothing is due.
    fn recv(&mut self, now: Millis, peer: PeerId) -> Option<(PeerId, Vec<u8>)>;

    /// Earliest delivery time of any in-flight frame (lets an event
    /// loop advance the clock without busy-waiting).
    fn next_delivery(&self) -> Option<Millis>;
}

/// A span of virtual time during which one peer is unreachable: every
/// frame to or from it is silently lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionWindow {
    /// The cut-off peer.
    pub peer: PeerId,
    /// Window start (inclusive), virtual ms.
    pub from: Millis,
    /// Window end (exclusive), virtual ms.
    pub until: Millis,
}

impl PartitionWindow {
    fn cuts(&self, now: Millis, a: PeerId, b: PeerId) -> bool {
        (self.peer == a || self.peer == b) && now >= self.from && now < self.until
    }
}

/// Per-send fault probabilities and latency shape of an
/// [`InProcTransport`].
#[derive(Clone, Debug, PartialEq)]
pub struct NetFaultConfig {
    /// Fixed one-way latency added to every delivered frame, ms. Must
    /// be at least 1 so delivery is never instantaneous.
    pub base_latency_ms: u64,
    /// Probability a frame is silently lost.
    pub drop_rate: f64,
    /// Probability a frame takes extra latency.
    pub delay_rate: f64,
    /// Upper bound of the extra latency, ms.
    pub max_extra_delay_ms: u64,
    /// Probability a frame is delivered twice.
    pub duplicate_rate: f64,
    /// Probability a frame jumps ahead of older in-flight traffic.
    pub reorder_rate: f64,
    /// Probability one byte of the frame is flipped in flight.
    pub corrupt_rate: f64,
    /// Scheduled unreachability windows.
    pub partitions: Vec<PartitionWindow>,
}

impl NetFaultConfig {
    /// A perfectly reliable network with the given latency.
    pub fn reliable(base_latency_ms: u64) -> Self {
        Self {
            base_latency_ms: base_latency_ms.max(1),
            drop_rate: 0.0,
            delay_rate: 0.0,
            max_extra_delay_ms: 0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            corrupt_rate: 0.0,
            partitions: Vec::new(),
        }
    }
}

/// Counters over everything the fault layer did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames handed to [`Transport::send`].
    pub sent: u64,
    /// Frames handed out by [`Transport::recv`].
    pub delivered: u64,
    /// Frames lost to the drop fault.
    pub dropped: u64,
    /// Frames lost to a partition window.
    pub partitioned: u64,
    /// Extra copies enqueued by the duplicate fault.
    pub duplicated: u64,
    /// Frames that took extra latency.
    pub delayed: u64,
    /// Frames that jumped the queue.
    pub reordered: u64,
    /// Frames with a byte flipped in flight.
    pub corrupted: u64,
}

/// Deterministic in-process transport with seeded fault injection.
pub struct InProcTransport {
    rng: StdRng,
    cfg: NetFaultConfig,
    /// In-flight frames keyed by `(to, deliver_at, seq)`; the sequence
    /// number breaks ties deterministically in send order.
    inflight: BTreeMap<(PeerId, Millis, u64), (PeerId, Vec<u8>)>,
    seq: u64,
    /// Fault-layer counters.
    pub stats: TransportStats,
}

fn chance(rng: &mut StdRng, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    u < p
}

impl InProcTransport {
    /// A transport whose fault decisions are a pure function of `seed`.
    pub fn new(seed: u64, cfg: NetFaultConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            cfg,
            inflight: BTreeMap::new(),
            seq: 0,
            stats: TransportStats::default(),
        }
    }

    /// Frames currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    fn enqueue(&mut self, to: PeerId, deliver_at: Millis, from: PeerId, wire: Vec<u8>) {
        self.inflight.insert((to, deliver_at, self.seq), (from, wire));
        self.seq += 1;
    }

    /// One delivery's scheduled time: base latency, possibly stretched
    /// by the delay fault, possibly collapsed to `now + 1` by the
    /// reorder fault (jumping ahead of older traffic still in flight).
    fn schedule_one(&mut self, now: Millis) -> Millis {
        let mut latency = self.cfg.base_latency_ms.max(1);
        if chance(&mut self.rng, self.cfg.delay_rate) && self.cfg.max_extra_delay_ms > 0 {
            latency += 1 + self.rng.next_u64() % self.cfg.max_extra_delay_ms;
            self.stats.delayed += 1;
        }
        if chance(&mut self.rng, self.cfg.reorder_rate) {
            self.stats.reordered += 1;
            return now + 1;
        }
        now + latency
    }
}

impl Transport for InProcTransport {
    fn send(&mut self, now: Millis, from: PeerId, to: PeerId, mut wire: Vec<u8>) {
        self.stats.sent += 1;
        if self.cfg.partitions.iter().any(|w| w.cuts(now, from, to)) {
            self.stats.partitioned += 1;
            return;
        }
        if chance(&mut self.rng, self.cfg.drop_rate) {
            self.stats.dropped += 1;
            return;
        }
        if chance(&mut self.rng, self.cfg.corrupt_rate) && !wire.is_empty() {
            let idx = (self.rng.next_u64() % wire.len() as u64) as usize;
            // flip a bit rather than a whole byte so even minimal
            // corruption must be caught by the typed decode path
            if let Some(byte) = wire.get_mut(idx) {
                *byte ^= 0x20;
            }
            self.stats.corrupted += 1;
        }
        let duplicate = chance(&mut self.rng, self.cfg.duplicate_rate);
        let deliver_at = self.schedule_one(now);
        if duplicate {
            let dup_at = self.schedule_one(now);
            self.stats.duplicated += 1;
            self.enqueue(to, dup_at, from, wire.clone());
        }
        self.enqueue(to, deliver_at, from, wire);
    }

    fn recv(&mut self, now: Millis, peer: PeerId) -> Option<(PeerId, Vec<u8>)> {
        let key = self
            .inflight
            .range((peer, 0, 0)..=(peer, now, u64::MAX))
            .map(|(k, _)| *k)
            .next()?;
        let (from, wire) = self.inflight.remove(&key)?;
        self.stats.delivered += 1;
        Some((from, wire))
    }

    fn next_delivery(&self) -> Option<Millis> {
        self.inflight.keys().map(|&(_, at, _)| at).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_transport_delivers_in_order_after_latency() {
        let mut t = InProcTransport::new(1, NetFaultConfig::reliable(5));
        t.send(0, 1, 2, vec![0xa]);
        t.send(0, 1, 2, vec![0xb]);
        assert_eq!(t.recv(4, 2), None, "latency not yet elapsed");
        assert_eq!(t.next_delivery(), Some(5));
        assert_eq!(t.recv(5, 2), Some((1, vec![0xa])));
        assert_eq!(t.recv(5, 2), Some((1, vec![0xb])));
        assert_eq!(t.recv(5, 2), None);
        let s = t.stats;
        assert_eq!((s.sent, s.delivered, s.dropped), (2, 2, 0));
    }

    #[test]
    fn recv_is_per_peer() {
        let mut t = InProcTransport::new(1, NetFaultConfig::reliable(1));
        t.send(0, 1, 2, vec![0xa]);
        assert_eq!(t.recv(10, 3), None, "frame addressed to peer 2");
        assert_eq!(t.recv(10, 2), Some((1, vec![0xa])));
    }

    #[test]
    fn partitions_cut_both_directions() {
        let cfg = NetFaultConfig {
            partitions: vec![PartitionWindow {
                peer: 2,
                from: 10,
                until: 20,
            }],
            ..NetFaultConfig::reliable(1)
        };
        let mut t = InProcTransport::new(1, cfg);
        t.send(10, 1, 2, vec![1]);
        t.send(15, 2, 1, vec![2]);
        t.send(20, 1, 2, vec![3]); // window closed
        assert_eq!(t.stats.partitioned, 2);
        assert_eq!(t.recv(30, 2), Some((1, vec![3])));
        assert_eq!(t.recv(30, 1), None);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let cfg = NetFaultConfig {
            drop_rate: 0.3,
            delay_rate: 0.3,
            max_extra_delay_ms: 40,
            duplicate_rate: 0.2,
            reorder_rate: 0.2,
            corrupt_rate: 0.2,
            ..NetFaultConfig::reliable(3)
        };
        let run = |seed: u64| {
            let mut t = InProcTransport::new(seed, cfg.clone());
            let mut log = Vec::new();
            for i in 0..200u64 {
                t.send(i, 1, 2, vec![i as u8, 7, 9]);
            }
            let mut now = 0;
            while t.in_flight() > 0 {
                now += 1;
                while let Some(got) = t.recv(now, 2) {
                    log.push((now, got));
                }
            }
            (log, t.stats)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds, different schedules");
        let (_, stats) = run(42);
        assert!(stats.dropped > 0 && stats.duplicated > 0 && stats.corrupted > 0);
        assert!(stats.reordered > 0 && stats.delayed > 0);
        assert_eq!(
            stats.delivered + stats.dropped,
            stats.sent + stats.duplicated
        );
    }

    #[test]
    fn corruption_touches_exactly_one_bit() {
        let cfg = NetFaultConfig {
            corrupt_rate: 1.0,
            ..NetFaultConfig::reliable(1)
        };
        let mut t = InProcTransport::new(9, cfg);
        let original = vec![0u8; 32];
        t.send(0, 1, 2, original.clone());
        let (_, got) = t.recv(5, 2).unwrap();
        let flipped: u32 = got
            .iter()
            .zip(&original)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }
}
