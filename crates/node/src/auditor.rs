//! The auditor daemon: issues beacon-derived challenges, tracks each
//! one through the lifecycle state machine, and settles it exactly
//! once.
//!
//! Challenges are derived deterministically from [`Beacon`] output, so
//! any two verifiers watching the same beacon issue byte-identical
//! challenges with identical idempotent ids. Unanswered challenges are
//! retransmitted with exponential backoff and deterministic jitter
//! until the TTL, at which point the challenge auto-expires into the
//! contract's penalty path ([`Outcome::Expired`]).

#![deny(missing_docs)]

use std::collections::BTreeMap;

use dsaudit_backend::BackendId;
use dsaudit_chain::beacon::Beacon;
use dsaudit_core::codec::Codec;
use dsaudit_core::{
    Auditor, Challenge, FileMeta, PrivateProof, PublicKey, RoundChallenge, Verdict,
};

use crate::frame::{
    derive_challenge_id, ChallengeFrame, ChallengeId, Frame, ProofFrame, SettleFrame,
};
use crate::lifecycle::{ChallengePhase, ChallengeTrack, Outcome, RetryPolicy};
use crate::transport::{Millis, PeerId, Transport};

/// Tuning knobs of an [`AuditorNode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuditorConfig {
    /// Challenge time-to-live: an unsettled challenge expires into the
    /// penalty path this many ms after issue.
    pub ttl_ms: u64,
    /// Retransmission policy.
    pub retry: RetryPolicy,
}

impl Default for AuditorConfig {
    fn default() -> Self {
        Self {
            ttl_ms: 10_000,
            retry: RetryPolicy::default(),
        }
    }
}

/// Counters over everything an auditor daemon did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditorStats {
    /// Challenges issued (unique ids).
    pub issued: u64,
    /// Challenge retransmissions.
    pub retries: u64,
    /// Acks received for live challenges.
    pub acks: u64,
    /// Overload sheds received; each schedules a later retry.
    pub overloaded: u64,
    /// Proofs verified (pairing check run).
    pub proofs_verified: u64,
    /// Terminal `Settled(Accept)` outcomes.
    pub settled_accept: u64,
    /// Terminal `Settled(Reject)` outcomes.
    pub settled_reject: u64,
    /// Terminal `Expired` outcomes.
    pub expired: u64,
    /// Frames that failed to decode (loss; retries recover).
    pub corrupt_frames: u64,
    /// Proofs for already-terminal challenges (refused: settlement is
    /// write-once, so these can never double-settle).
    pub late_proofs: u64,
    /// Proofs answering the wrong session round (refused).
    pub round_mismatches: u64,
    /// Frames referencing unknown challenge ids.
    pub unknown_ids: u64,
    /// Proof bodies tagged for a backend this auditor cannot verify,
    /// or whose payload failed its backend decode (refused; the
    /// challenge stays open and the retry path recovers).
    pub backend_mismatches: u64,
}

struct Target {
    pk: PublicKey,
    meta: FileMeta,
}

/// An auditor attached to the transport as a daemon.
pub struct AuditorNode {
    peer: PeerId,
    auditor: Auditor,
    cfg: AuditorConfig,
    targets: BTreeMap<PeerId, Target>,
    tracks: BTreeMap<ChallengeId, ChallengeTrack>,
    /// Daemon counters.
    pub stats: AuditorStats,
}

impl AuditorNode {
    /// An auditor daemon at transport address `peer`.
    pub fn new(peer: PeerId, cfg: AuditorConfig) -> Self {
        Self {
            peer,
            auditor: Auditor::new(),
            cfg,
            targets: BTreeMap::new(),
            tracks: BTreeMap::new(),
            stats: AuditorStats::default(),
        }
    }

    /// This daemon's transport address.
    pub fn peer(&self) -> PeerId {
        self.peer
    }

    /// Registers a provider to audit: its public key and the audited
    /// file's metadata.
    pub fn register_target(&mut self, provider: PeerId, pk: PublicKey, meta: FileMeta) {
        self.targets.insert(provider, Target { pk, meta });
    }

    /// Issues one challenge against `provider`, derived from the
    /// beacon's output for `beacon_round`. The audit session round *is*
    /// the beacon round: both sides derive it independently.
    ///
    /// The id is a deterministic function of the file name and the
    /// beacon round, so re-issuing the same `(provider, beacon_round)`
    /// pair is idempotent: the existing track is kept and its id
    /// returned, whatever state it is in.
    pub fn issue<T: Transport>(
        &mut self,
        now: Millis,
        provider: PeerId,
        beacon: &mut dyn Beacon,
        beacon_round: u64,
        transport: &mut T,
    ) -> Option<ChallengeId> {
        let target = self.targets.get(&provider)?;
        let session_round = beacon_round;
        let id = derive_challenge_id(&target.meta.name, beacon_round, session_round);
        if self.tracks.contains_key(&id) {
            return Some(id);
        }
        let challenge = Challenge::from_beacon(&beacon.randomness(beacon_round));
        let track = ChallengeTrack {
            provider,
            rc: RoundChallenge {
                round: session_round,
                challenge,
            },
            beacon_round,
            issued_at: now,
            deadline: now + self.cfg.ttl_ms,
            attempt: 0,
            next_send: Some(now + self.cfg.retry.backoff_ms(&id, 1)),
            phase: ChallengePhase::Issued,
            outcome: None,
        };
        self.send_challenge(now, &id, &track, transport);
        self.tracks.insert(id, track);
        self.stats.issued += 1;
        dsaudit_obs::counter_inc("node.session.issued");
        Some(id)
    }

    fn send_challenge<T: Transport>(
        &self,
        now: Millis,
        id: &ChallengeId,
        track: &ChallengeTrack,
        transport: &mut T,
    ) {
        let frame = Frame::Challenge(ChallengeFrame {
            challenge_id: *id,
            backend: BackendId::Pairing,
            beacon_round: track.beacon_round,
            round: track.rc.round,
            expires_at: track.deadline,
            challenge: track.rc.challenge,
        });
        transport.send(now, self.peer, track.provider, frame.to_wire());
    }

    /// One scheduling step at virtual time `now`: ingest frames, then
    /// run the timer wheel (expiry first, then retransmissions).
    pub fn step<T: Transport>(&mut self, now: Millis, transport: &mut T) {
        // ingest; every frame belongs to a track bounded by its ttl
        // deadline below, so this loop cannot outlive the ttl horizon
        while let Some((from, wire)) = transport.recv(now, self.peer) {
            match Frame::from_wire(&wire) {
                Ok(frame) => self.handle(now, from, frame, transport),
                Err(_) => {
                    self.stats.corrupt_frames += 1;
                    dsaudit_obs::counter_inc("node.corrupt_frames");
                }
            }
        }
        // timer wheel over the ordered track map
        let ids: Vec<ChallengeId> = self.tracks.keys().copied().collect();
        for id in ids {
            let Some(track) = self.tracks.get_mut(&id) else {
                continue;
            };
            if track.is_terminal() {
                continue;
            }
            if now >= track.deadline {
                // ttl elapsed: the challenge expires into the penalty
                // path, exactly once
                if track.settle(Outcome::Expired) {
                    self.stats.expired += 1;
                    dsaudit_obs::counter_inc("node.session.expired");
                }
                continue;
            }
            if let Some(at) = track.next_send {
                if now >= at {
                    track.attempt += 1;
                    track.next_send = if track.attempt < self.cfg.retry.max_retries {
                        Some(now + self.cfg.retry.backoff_ms(&id, track.attempt + 1))
                    } else {
                        None
                    };
                    let snapshot = *track;
                    self.stats.retries += 1;
                    dsaudit_obs::counter_inc("node.retries");
                    self.send_challenge(now, &id, &snapshot, transport);
                }
            }
        }
    }

    fn handle<T: Transport>(&mut self, now: Millis, from: PeerId, frame: Frame, transport: &mut T) {
        let id = *frame.challenge_id();
        let Some(track) = self.tracks.get_mut(&id) else {
            self.stats.unknown_ids += 1;
            return;
        };
        if track.provider != from {
            // a frame about someone else's challenge: ignore
            self.stats.unknown_ids += 1;
            return;
        }
        match frame {
            Frame::Ack(_) => {
                if !track.is_terminal() && track.phase == ChallengePhase::Issued {
                    track.phase = ChallengePhase::Delivered;
                    dsaudit_obs::counter_inc("node.session.delivered");
                }
                self.stats.acks += 1;
                dsaudit_obs::counter_inc("node.acks");
            }
            Frame::Overloaded(o) => {
                self.stats.overloaded += 1;
                dsaudit_obs::counter_inc("node.sheds");
                if !track.is_terminal() {
                    track.phase = ChallengePhase::Delivered;
                    // honor the provider's hint, clamped to the ttl
                    let at = (now + o.retry_after_ms.max(1)).min(track.deadline);
                    track.next_send = Some(at);
                }
            }
            Frame::Proof(p) => self.handle_proof(now, id, p, transport),
            // provider-bound frames echoed back: ignore
            Frame::Challenge(_) | Frame::Settle(_) => {}
        }
    }

    fn handle_proof<T: Transport>(
        &mut self,
        now: Millis,
        id: ChallengeId,
        p: ProofFrame,
        transport: &mut T,
    ) {
        let Some(track) = self.tracks.get(&id) else {
            return;
        };
        if track.is_terminal() {
            // write-once settlement: a proof racing the ttl (or a
            // duplicated frame) cannot settle a second time, but we do
            // re-send the settle notice when one exists
            self.stats.late_proofs += 1;
            dsaudit_obs::counter_inc("node.late_proofs");
            if let Some(Outcome::Settled(v)) = track.outcome {
                let frame = Frame::Settle(SettleFrame {
                    challenge_id: id,
                    accepted: v.accepted(),
                });
                transport.send(now, self.peer, track.provider, frame.to_wire());
            }
            return;
        }
        if p.round != track.rc.round {
            // wrong session round: refuse, keep the challenge open
            self.stats.round_mismatches += 1;
            dsaudit_obs::counter_inc("node.round_mismatches");
            return;
        }
        // the erased body must be tagged for the scheme this auditor
        // verifies, and its payload must decode under it — wire-level
        // problems refuse the proof (retries recover), never settle
        if p.proof.backend != BackendId::Pairing {
            self.stats.backend_mismatches += 1;
            return;
        }
        let Ok(proof) = PrivateProof::decode(&p.proof.bytes) else {
            self.stats.backend_mismatches += 1;
            return;
        };
        let Some(target) = self.targets.get(&track.provider) else {
            return;
        };
        let verdict = self
            .auditor
            .verify_private(&target.pk, &target.meta, &track.rc.challenge, &proof);
        self.stats.proofs_verified += 1;
        dsaudit_obs::counter_inc("node.proofs_verified");
        let verdict = match verdict {
            Ok(v) => v,
            // metadata was validated at registration; an input error
            // here means the proof did not convince the auditor
            Err(_) => Verdict::Reject(dsaudit_core::RejectReason::Equation2),
        };
        let provider = track.provider;
        let Some(track) = self.tracks.get_mut(&id) else {
            return;
        };
        if track.settle(Outcome::Settled(verdict)) {
            match verdict {
                Verdict::Accept => self.stats.settled_accept += 1,
                Verdict::Reject(_) => self.stats.settled_reject += 1,
            }
            dsaudit_obs::counter_inc(if verdict.accepted() {
                "node.session.settled_accept"
            } else {
                "node.session.settled_reject"
            });
            let frame = Frame::Settle(SettleFrame {
                challenge_id: id,
                accepted: verdict.accepted(),
            });
            transport.send(now, self.peer, provider, frame.to_wire());
        }
    }

    /// Challenges not yet terminal.
    pub fn pending(&self) -> usize {
        self.tracks.values().filter(|t| !t.is_terminal()).count()
    }

    /// Earliest future instant any track needs attention.
    pub fn next_wakeup(&self) -> Option<Millis> {
        self.tracks.values().filter_map(|t| t.next_wakeup()).min()
    }

    /// All tracks, keyed by challenge id (terminal and pending).
    pub fn tracks(&self) -> &BTreeMap<ChallengeId, ChallengeTrack> {
        &self.tracks
    }

    /// `(accept, reject, expired, pending)` counts over all tracks.
    pub fn outcome_counts(&self) -> (u64, u64, u64, u64) {
        let mut counts = (0, 0, 0, 0);
        for track in self.tracks.values() {
            match track.outcome {
                Some(Outcome::Settled(Verdict::Accept)) => counts.0 += 1,
                Some(Outcome::Settled(Verdict::Reject(_))) => counts.1 += 1,
                Some(Outcome::Expired) => counts.2 += 1,
                None => counts.3 += 1,
            }
        }
        counts
    }

    /// Checks the terminal-state invariant over all tracks: every
    /// challenge has exactly one terminal outcome and the stats agree.
    /// Returns human-readable violations (empty = invariant holds).
    pub fn audit_invariants(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let (accept, reject, expired, pending) = self.outcome_counts();
        if pending > 0 {
            violations.push(format!("{pending} challenge(s) never reached a terminal state"));
        }
        if accept + reject + expired + pending != self.stats.issued {
            violations.push(format!(
                "issued {} but tracked {} outcomes",
                self.stats.issued,
                accept + reject + expired + pending
            ));
        }
        if (accept, reject, expired)
            != (
                self.stats.settled_accept,
                self.stats.settled_reject,
                self.stats.expired,
            )
        {
            violations.push(format!(
                "settlement counters ({}, {}, {}) disagree with track outcomes ({accept}, {reject}, {expired}) — a challenge settled more than once",
                self.stats.settled_accept, self.stats.settled_reject, self.stats.expired
            ));
        }
        violations
    }
}
