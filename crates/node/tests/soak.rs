//! The acceptance soak: ≥500 challenge sessions across three fault
//! schedules, every challenge terminal, zero lost, zero double-settled,
//! and the whole report byte-for-byte reproducible.

use dsaudit_node::soak::{run_soak, SoakConfig};

#[test]
fn soak_terminates_every_challenge_and_reproduces_exactly() {
    let cfg = SoakConfig::default();
    assert!(cfg.sessions >= 500, "acceptance floor");

    let first = run_soak(&cfg);
    assert!(
        first.ok(),
        "lifecycle invariant violated:\n{}",
        first.violations().join("\n")
    );
    assert_eq!(first.total_sessions(), cfg.sessions as u64);

    // every schedule exercised its intended failure mode
    let by_name = |n: &str| {
        first
            .schedules
            .iter()
            .find(|s| s.name == n)
            .unwrap_or_else(|| panic!("schedule {n} missing"))
    };
    let baseline = by_name("baseline");
    assert!(baseline.settled_accept > 0, "baseline must mostly accept");
    let lossy = by_name("lossy");
    assert!(
        lossy.settled_reject > 0,
        "the corrupted-data provider must draw rejects through the lossy net"
    );
    assert!(lossy.retries > 0, "a 20% drop rate must force retries");
    assert!(lossy.corrupt_frames > 0, "corrupt frames must surface as typed errors");
    let partitioned = by_name("partitioned");
    assert!(
        partitioned.expired > 0,
        "the fully partitioned provider's challenges must expire"
    );

    // a dropped/corrupted frame is a retry, never a verdict: rejects
    // happen only where data is actually bad (the lossy schedule's
    // corrupted provider)
    assert_eq!(baseline.settled_reject, 0, "transport faults must not reject");
    assert_eq!(partitioned.settled_reject, 0, "partition must expire, not reject");

    // byte-for-byte reproducibility of the full report
    let second = run_soak(&cfg);
    assert_eq!(first.to_json(), second.to_json(), "soak must be deterministic");
}

#[test]
fn soak_json_is_well_formed_enough_for_ci() {
    let cfg = SoakConfig {
        sessions: 30,
        ..SoakConfig::default()
    };
    let report = run_soak(&cfg);
    let json = report.to_json();
    assert!(json.contains("\"ok\": true"), "{json}");
    assert!(json.contains("\"schedules\""));
    assert_eq!(
        json.matches("\"name\"").count(),
        3,
        "one entry per schedule"
    );
    // crude balance check: same number of braces both ways
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}
