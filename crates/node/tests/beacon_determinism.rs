//! Satellite property: challenge derivation is a pure function of the
//! beacon output. Any two verifiers holding the same beacon round must
//! derive byte-identical challenges and identical challenge ids —
//! there is no per-auditor randomness left in the derivation path.

use dsaudit_chain::beacon::{Beacon, TrustedBeacon};
use dsaudit_core::{Challenge, Codec};
use dsaudit_node::frame::derive_challenge_id;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two independent verifiers, same beacon seed and round: the
    /// derived challenges encode to identical bytes and the derived
    /// challenge ids match.
    #[test]
    fn two_verifiers_derive_identical_challenges(
        seed in prop::collection::vec(any::<u8>(), 1..64),
        round in any::<u64>(),
        name_word in any::<u64>(),
    ) {
        let mut verifier_a = TrustedBeacon::new(&seed);
        let mut verifier_b = TrustedBeacon::new(&seed);

        let out_a = verifier_a.randomness(round);
        let out_b = verifier_b.randomness(round);
        prop_assert_eq!(out_a, out_b, "beacon output is a pure function of (seed, round)");

        let ch_a = Challenge::from_beacon(&out_a);
        let ch_b = Challenge::from_beacon(&out_b);
        prop_assert_eq!(
            ch_a.encode(), ch_b.encode(),
            "challenge derivation adds no verifier-local randomness"
        );

        use dsaudit_algebra::field::Field;
        let file_name = dsaudit_algebra::Fr::from_u64(name_word);
        prop_assert_eq!(
            derive_challenge_id(&file_name, round, round),
            derive_challenge_id(&file_name, round, round),
            "challenge ids are idempotent"
        );
    }

    /// Distinct beacon rounds give distinct challenges (the PRF does
    /// not collapse), and querying rounds out of order changes nothing.
    #[test]
    fn rounds_are_independent_and_order_insensitive(
        seed in prop::collection::vec(any::<u8>(), 1..64),
        round in any::<u64>(),
    ) {
        let other = round.wrapping_add(1);
        let mut forward = TrustedBeacon::new(&seed);
        let a_then_b = (forward.randomness(round), forward.randomness(other));
        let mut backward = TrustedBeacon::new(&seed);
        let b_then_a = (backward.randomness(other), backward.randomness(round));
        prop_assert_eq!(a_then_b.0, b_then_a.1, "order does not matter");
        prop_assert_eq!(a_then_b.1, b_then_a.0, "order does not matter");
        prop_assert_ne!(
            Challenge::from_beacon(&a_then_b.0).encode(),
            Challenge::from_beacon(&a_then_b.1).encode(),
            "distinct rounds yield distinct challenges"
        );
    }
}
