//! `lint.toml`: audited suppressions for the interprocedural passes.
//!
//! Pass findings (panic-reachability, secret-taint, ct-closure) are
//! whole-program properties — there is no single line an inline
//! `lint:allow` could sit on — so their allow-list lives in a file at
//! the workspace root, one `[[allow]]` table per audit:
//!
//! ```toml
//! [[allow]]
//! rule = "panic-reachability"
//! fn = "Fq12::mul"                # or `file = "crates/algebra/src/fp12.rs"`
//! reason = "divisor is the fixed nonzero modulus"
//! ```
//!
//! `rule` and `reason` are mandatory; exactly one of `fn` (a
//! `Type::name` qualified name or a bare fn name) or `file` (a
//! workspace-relative path) selects the target. Malformed or unused
//! entries are findings under the `suppression` meta-rule — the
//! allow-list must stay exact, or audits rot.
//!
//! The parser handles exactly the subset above (`[[allow]]` headers,
//! `key = "string"` pairs, `#` comments); it is not a general TOML
//! implementation, by design — the build environment is offline and
//! the format is ours.

use std::cell::RefCell;
use std::collections::BTreeSet;

use crate::report::{Finding, Suppression};

/// One `[[allow]]` entry.
#[derive(Debug, Clone, Default)]
pub struct AllowEntry {
    /// 1-based line of the `[[allow]]` header.
    pub line: u32,
    /// Rule id being allowed.
    pub rule: String,
    /// Target function: `Type::name` or a bare name.
    pub fn_name: Option<String>,
    /// Target file (workspace-relative, `/` separators).
    pub file: Option<String>,
    /// The mandatory justification.
    pub reason: String,
}

/// Parsed allow-list plus usage tracking.
#[derive(Debug, Default)]
pub struct LintConfig {
    /// Well-formed entries, in file order.
    pub entries: Vec<AllowEntry>,
    /// Indices of entries that matched at least one finding.
    used: RefCell<BTreeSet<usize>>,
}

/// Rules whose findings may be suppressed via `lint.toml`.
const TOML_RULES: &[&str] = &["panic-reachability", "secret-taint", "ct-closure", "deadline"];

impl LintConfig {
    /// Parses `lint.toml` source. Malformed entries become findings
    /// (attributed to `path`) and are dropped from the allow-list.
    pub fn parse(src: &str, path: &str) -> (LintConfig, Vec<Finding>) {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut findings = Vec::new();
        let mut current: Option<AllowEntry> = None;

        let finish = |entry: Option<AllowEntry>, findings: &mut Vec<Finding>, entries: &mut Vec<AllowEntry>| {
            let Some(e) = entry else { return };
            let problem = if e.rule.is_empty() {
                Some("missing `rule`".to_string())
            } else if !TOML_RULES.contains(&e.rule.as_str()) {
                Some(format!(
                    "unknown or non-toml rule `{}` (lint.toml covers: {})",
                    e.rule,
                    TOML_RULES.join(", ")
                ))
            } else if e.reason.trim().is_empty() {
                Some("missing `reason`".to_string())
            } else if e.fn_name.is_none() && e.file.is_none() {
                Some("needs a `fn` or `file` target".to_string())
            } else {
                None
            };
            match problem {
                Some(p) => findings.push(Finding {
                    file: path.to_string(),
                    line: e.line,
                    rule: "suppression",
                    message: format!("malformed [[allow]] entry: {p}"),
                    hint: "each [[allow]] needs rule = \"...\", reason = \"...\", and fn/file",
                }),
                None => entries.push(e),
            }
        };

        for (i, raw) in src.lines().enumerate() {
            let lineno = (i + 1) as u32;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                finish(current.take(), &mut findings, &mut entries);
                current = Some(AllowEntry {
                    line: lineno,
                    ..AllowEntry::default()
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                findings.push(Finding {
                    file: path.to_string(),
                    line: lineno,
                    rule: "suppression",
                    message: format!("unparseable lint.toml line: `{raw}`"),
                    hint: "only [[allow]] tables with string key = \"value\" pairs are supported",
                });
                continue;
            };
            let key = key.trim();
            let value = value.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .map(str::to_string);
            let (Some(entry), Some(value)) = (current.as_mut(), value) else {
                findings.push(Finding {
                    file: path.to_string(),
                    line: lineno,
                    rule: "suppression",
                    message: format!("key outside [[allow]] or non-string value: `{raw}`"),
                    hint: "only [[allow]] tables with string key = \"value\" pairs are supported",
                });
                continue;
            };
            match key {
                "rule" => entry.rule = value,
                "fn" => entry.fn_name = Some(value),
                "file" => entry.file = Some(value),
                "reason" => entry.reason = value,
                other => findings.push(Finding {
                    file: path.to_string(),
                    line: lineno,
                    rule: "suppression",
                    message: format!("unknown lint.toml key `{other}`"),
                    hint: "valid keys: rule, fn, file, reason",
                }),
            }
        }
        finish(current.take(), &mut findings, &mut entries);

        (
            LintConfig {
                entries,
                used: RefCell::new(BTreeSet::new()),
            },
            findings,
        )
    }

    /// Loads `lint.toml` from the workspace root; a missing file is an
    /// empty allow-list, not an error.
    pub fn load(root: &std::path::Path) -> (LintConfig, Vec<Finding>) {
        match std::fs::read_to_string(root.join("lint.toml")) {
            Ok(src) => LintConfig::parse(&src, "lint.toml"),
            Err(_) => (LintConfig::default(), Vec::new()),
        }
    }

    /// Finds an allow entry covering (`rule`, fn `qname`/`bare` in
    /// `file`) and marks it used. Returns a [`Suppression`] carrying
    /// the audit reason.
    pub fn match_allow(
        &self,
        rule: &str,
        qname: &str,
        bare: &str,
        file: &str,
    ) -> Option<Suppression> {
        for (i, e) in self.entries.iter().enumerate() {
            if e.rule != rule {
                continue;
            }
            let hit = match (&e.fn_name, &e.file) {
                (Some(f), _) => f == qname || f == bare,
                (None, Some(p)) => p == file,
                (None, None) => false,
            };
            if hit {
                self.used.borrow_mut().insert(i);
                return Some(Suppression {
                    line: e.line,
                    comment_line: e.line,
                    rule: e.rule.clone(),
                    reason: e.reason.clone(),
                });
            }
        }
        None
    }

    /// Findings for entries that matched nothing this run — stale
    /// audits are removed, not accumulated.
    pub fn unused_findings(&self) -> Vec<Finding> {
        let used = self.used.borrow();
        self.entries
            .iter()
            .enumerate()
            .filter(|(i, _)| !used.contains(i))
            .map(|(_, e)| Finding {
                file: "lint.toml".to_string(),
                line: e.line,
                rule: "suppression",
                message: format!(
                    "unused [[allow]] entry for rule `{}` ({}): it matched no finding",
                    e.rule,
                    e.fn_name
                        .as_deref()
                        .map(|f| format!("fn = \"{f}\""))
                        .unwrap_or_else(|| format!(
                            "file = \"{}\"",
                            e.file.as_deref().unwrap_or("")
                        )),
                ),
                hint: "delete stale allow entries so the audit list stays exact",
            })
            .collect()
    }
}

/// Strips a `#` comment, ignoring `#` characters inside a quoted
/// string (reasons routinely quote code or doc headings).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_inside_quoted_reason_is_not_a_comment() {
        let src = "[[allow]]\nrule = \"panic-reachability\"\nfile = \"a.rs\"\nreason = \"documented # Panics contract\" # trailing comment\n";
        let (cfg, findings) = LintConfig::parse(src, "lint.toml");
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(cfg.entries[0].reason, "documented # Panics contract");
    }

    #[test]
    fn parses_well_formed_entries() {
        let src = "# audited allows\n\n[[allow]]\nrule = \"panic-reachability\"\nfn = \"Fq12::mul\"\nreason = \"divisor is the fixed modulus\"\n\n[[allow]]\nrule = \"ct-closure\"\nfile = \"crates/algebra/src/fp.rs\"\nreason = \"word-level ops only\"\n";
        let (cfg, findings) = LintConfig::parse(src, "lint.toml");
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(cfg.entries.len(), 2);
        assert_eq!(cfg.entries[0].fn_name.as_deref(), Some("Fq12::mul"));
        assert_eq!(cfg.entries[1].file.as_deref(), Some("crates/algebra/src/fp.rs"));
    }

    #[test]
    fn missing_reason_is_a_finding() {
        let src = "[[allow]]\nrule = \"secret-taint\"\nfn = \"f\"\n";
        let (cfg, findings) = LintConfig::parse(src, "lint.toml");
        assert!(cfg.entries.is_empty());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "suppression");
        assert!(findings[0].message.contains("reason"));
    }

    #[test]
    fn unknown_rule_is_a_finding() {
        let src = "[[allow]]\nrule = \"no-such-rule\"\nfn = \"f\"\nreason = \"x\"\n";
        let (_, findings) = LintConfig::parse(src, "lint.toml");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no-such-rule"));
    }

    #[test]
    fn token_rules_are_rejected_from_toml() {
        // inline lint:allow remains the only channel for token rules
        let src = "[[allow]]\nrule = \"no-panic\"\nfn = \"f\"\nreason = \"x\"\n";
        let (_, findings) = LintConfig::parse(src, "lint.toml");
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn matching_marks_used_and_unused_reports() {
        let src = "[[allow]]\nrule = \"ct-closure\"\nfn = \"mul\"\nreason = \"r\"\n\n[[allow]]\nrule = \"ct-closure\"\nfn = \"never_called\"\nreason = \"r\"\n";
        let (cfg, _) = LintConfig::parse(src, "lint.toml");
        let s = cfg.match_allow("ct-closure", "Fq::mul", "mul", "a.rs");
        assert!(s.is_some());
        assert_eq!(s.expect("matched").reason, "r");
        assert!(cfg.match_allow("secret-taint", "Fq::mul", "mul", "a.rs").is_none());
        let unused = cfg.unused_findings();
        assert_eq!(unused.len(), 1);
        assert!(unused[0].message.contains("never_called"));
    }
}
