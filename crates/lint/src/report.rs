//! Finding and report types, plus the text and JSON renderers.
//!
//! JSON is hand-rolled (the workspace has no serde) with full string
//! escaping, matching the style of `dsaudit-bench`'s metrics emitter.

use crate::rules::RULES;

/// One rule violation at a specific source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Stable rule id (see [`RULES`]).
    pub rule: &'static str,
    /// What was found.
    pub message: String,
    /// One-line fix hint.
    pub hint: &'static str,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} — hint: {}",
            self.file, self.line, self.rule, self.message, self.hint
        )
    }
}

/// A parsed, well-formed `lint:allow` comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    /// The code line the suppression covers.
    pub line: u32,
    /// The line the comment itself sits on.
    pub comment_line: u32,
    /// Rule id being allowed.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
}

/// Per-file analysis result.
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    /// Unsuppressed (live) findings.
    pub findings: Vec<Finding>,
    /// Findings silenced by an audited `lint:allow`, with the matching
    /// suppression so reports can show the recorded reason.
    pub suppressed: Vec<(Finding, Suppression)>,
}

/// Whole-workspace analysis result.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of functions in the workspace call graph (0 when the
    /// interprocedural passes were not run).
    pub callgraph_fns: usize,
    /// Live findings across all files, in path order.
    pub findings: Vec<Finding>,
    /// Audited suppressions across all files, in path order.
    pub suppressed: Vec<(Finding, Suppression)>,
}

impl WorkspaceReport {
    /// Number of rules the analyzer enforces.
    pub fn rules_enforced(&self) -> usize {
        RULES.len()
    }

    /// Live findings under `rule`.
    pub fn count_findings(&self, rule: &str) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// Audited (suppressed) findings under `rule`.
    pub fn count_suppressed(&self, rule: &str) -> usize {
        self.suppressed.iter().filter(|(f, _)| f.rule == rule).count()
    }

    /// Restricts the report to a single rule (for `--only`).
    #[must_use]
    pub fn only_rule(mut self, rule: &str) -> WorkspaceReport {
        self.findings.retain(|f| f.rule == rule);
        self.suppressed.retain(|(f, _)| f.rule == rule);
        self
    }

    /// Human-readable report (one line per finding, then a summary).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "dsaudit-lint: {} file(s) scanned, {} fn(s) in call graph, {} rule(s), {} finding(s), {} audited suppression(s)\n",
            self.files_scanned,
            self.callgraph_fns,
            RULES.len(),
            self.findings.len(),
            self.suppressed.len()
        ));
        out
    }

    /// Machine-readable report. The schema is stable (snapshot-tested
    /// in `tests/json_schema.rs`): top-level keys `files_scanned`,
    /// `callgraph_fns`, `rules`, `counts`, `findings`, `suppressed`;
    /// findings carry `file`/`line`/`rule`/`message`/`hint` (+`reason`
    /// when suppressed). New keys may be added; none are removed or
    /// renamed.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"callgraph_fns\": {},\n", self.callgraph_fns));
        out.push_str("  \"counts\": {");
        for (i, r) in RULES.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{}: {{\"findings\": {}, \"suppressed\": {}}}",
                json_str(r.id),
                self.count_findings(r.id),
                self.count_suppressed(r.id)
            ));
        }
        out.push_str("},\n");
        out.push_str("  \"rules\": [");
        for (i, r) in RULES.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(r.id));
        }
        out.push_str("],\n");
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&finding_json(f, None));
            out.push_str(if i + 1 < self.findings.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"suppressed\": [\n");
        for (i, (f, s)) in self.suppressed.iter().enumerate() {
            out.push_str(&finding_json(f, Some(&s.reason)));
            out.push_str(if i + 1 < self.suppressed.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn finding_json(f: &Finding, reason: Option<&str>) -> String {
    let mut s = format!(
        "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"hint\": {}",
        json_str(&f.file),
        f.line,
        json_str(f.rule),
        json_str(&f.message),
        json_str(f.hint)
    );
    if let Some(r) = reason {
        s.push_str(&format!(", \"reason\": {}", json_str(r)));
    }
    s.push('}');
    s
}

/// JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn report_json_is_well_formed_ish() {
        let rep = WorkspaceReport {
            files_scanned: 2,
            findings: vec![Finding {
                file: "a.rs".into(),
                line: 3,
                rule: "no-panic",
                message: "x".into(),
                hint: "h",
            }],
            suppressed: vec![],
            ..WorkspaceReport::default()
        };
        let j = rep.render_json();
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("\"rule\": \"no-panic\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
