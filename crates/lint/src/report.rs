//! Finding and report types, plus the text and JSON renderers.
//!
//! JSON is hand-rolled (the workspace has no serde) with full string
//! escaping, matching the style of `dsaudit-bench`'s metrics emitter.

use crate::rules::RULES;

/// One rule violation at a specific source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Stable rule id (see [`RULES`]).
    pub rule: &'static str,
    /// What was found.
    pub message: String,
    /// One-line fix hint.
    pub hint: &'static str,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} — hint: {}",
            self.file, self.line, self.rule, self.message, self.hint
        )
    }
}

/// A parsed, well-formed `lint:allow` comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    /// The code line the suppression covers.
    pub line: u32,
    /// The line the comment itself sits on.
    pub comment_line: u32,
    /// Rule id being allowed.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
}

/// Per-file analysis result.
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    /// Unsuppressed (live) findings.
    pub findings: Vec<Finding>,
    /// Findings silenced by an audited `lint:allow`, with the matching
    /// suppression so reports can show the recorded reason.
    pub suppressed: Vec<(Finding, Suppression)>,
}

/// Whole-workspace analysis result.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Live findings across all files, in path order.
    pub findings: Vec<Finding>,
    /// Audited suppressions across all files, in path order.
    pub suppressed: Vec<(Finding, Suppression)>,
}

impl WorkspaceReport {
    /// Number of rules the analyzer enforces.
    pub fn rules_enforced(&self) -> usize {
        RULES.len()
    }

    /// Human-readable report (one line per finding, then a summary).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "dsaudit-lint: {} file(s) scanned, {} rule(s), {} finding(s), {} audited suppression(s)\n",
            self.files_scanned,
            RULES.len(),
            self.findings.len(),
            self.suppressed.len()
        ));
        out
    }

    /// Machine-readable report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"rules\": [");
        for (i, r) in RULES.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(r.id));
        }
        out.push_str("],\n");
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&finding_json(f, None));
            out.push_str(if i + 1 < self.findings.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"suppressed\": [\n");
        for (i, (f, s)) in self.suppressed.iter().enumerate() {
            out.push_str(&finding_json(f, Some(&s.reason)));
            out.push_str(if i + 1 < self.suppressed.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn finding_json(f: &Finding, reason: Option<&str>) -> String {
    let mut s = format!(
        "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"hint\": {}",
        json_str(&f.file),
        f.line,
        json_str(f.rule),
        json_str(&f.message),
        json_str(f.hint)
    );
    if let Some(r) = reason {
        s.push_str(&format!(", \"reason\": {}", json_str(r)));
    }
    s.push('}');
    s
}

/// JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn report_json_is_well_formed_ish() {
        let rep = WorkspaceReport {
            files_scanned: 2,
            findings: vec![Finding {
                file: "a.rs".into(),
                line: 3,
                rule: "no-panic",
                message: "x".into(),
                hint: "h",
            }],
            suppressed: vec![],
        };
        let j = rep.render_json();
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("\"rule\": \"no-panic\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
