//! Workspace-wide call graph over the parsed ASTs.
//!
//! Nodes are every `fn` in the workspace (free functions, inherent and
//! trait-impl methods, trait default bodies, nested fns). Edges are
//! resolved conservatively:
//!
//! * **free calls** `f(..)` / `path::f(..)` resolve by last path
//!   segment against free functions; `Type::method(..)` paths resolve
//!   against that type's impls first, then trait declarations.
//! * **method calls** `recv.m(..)` resolve by receiver type when the
//!   receiver is `self`, a typed parameter, a type-ascribed local, or a
//!   constructor result — otherwise they **over-approximate** to every
//!   workspace method named `m`.
//! * trait-method calls additionally fan out to every impl of the
//!   trait (dynamic dispatch is indistinguishable from static here).
//!   This includes `dyn Trait` receivers: `Box<dyn AuditBackend>`
//!   unwraps to the trait name, so a call through a trait object
//!   resolves to every implementor.
//! * locals bound from a free-fn call (`let b = backend_for(id)`) type
//!   as the fn's declared return when every same-named free fn agrees
//!   on it — registry-style factories returning `Box<dyn Trait>` pin
//!   dispatch to the trait's impls instead of every same-named method.
//!
//! Calls that resolve to nothing in the workspace (std, vendored deps)
//! produce no edge: the passes treat external code per their own
//! policies. All containers are `BTreeMap`/`BTreeSet`-ordered so graph
//! dumps and finding order are deterministic.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{walk_stmts, Ast, Expr, FnDef};
use crate::lexer::{Lexed, TokenKind};

/// A fully-qualified function node.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative file path (`/` separators).
    pub file: String,
    /// Container type name for methods (`Fq12` in `impl Fq12`), empty
    /// for free functions.
    pub self_ty: String,
    /// Trait name when the fn lives in a `impl Trait for Type` block or
    /// a trait declaration.
    pub trait_name: Option<String>,
    /// The parsed definition.
    pub def: FnDef,
    /// Whether the fn is test-only (`#[test]`, `#[cfg(test)]` module,
    /// or under a `tests/`/`benches/` directory).
    pub in_test: bool,
    /// Whether this is a bodyless trait declaration (`fn f(..);`).
    pub is_trait_decl: bool,
    /// Whether the fn carries a `// lint:ct` annotation.
    pub is_ct: bool,
}

impl FnNode {
    /// `Type::name` for methods, bare `name` for free fns — the id used
    /// in reports and `lint.toml` matching.
    pub fn qname(&self) -> String {
        if self.self_ty.is_empty() {
            self.def.name.clone()
        } else {
            format!("{}::{}", self.self_ty, self.def.name)
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Indices into [`CallGraph::fns`] of every possible callee.
    pub callees: Vec<usize>,
    /// Source line of the call.
    pub line: u32,
    /// Display form (`frobenius`, `Fr::new`, `.unwrap`).
    pub display: String,
    /// Argument count (receiver excluded for method calls).
    pub n_args: usize,
    /// For method calls: 1-based receiver marker; unused otherwise.
    pub is_method: bool,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every function node, in deterministic (file, line) order.
    pub fns: Vec<FnNode>,
    /// Resolved call sites per function (same index space as `fns`).
    pub calls: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// Builds the graph from `(file, lexed, ast)` triples.
    pub fn build(files: &[(String, Lexed, Ast)]) -> CallGraph {
        let mut fns = Vec::new();
        for (file, lexed, ast) in files {
            let path_test = ["tests/", "benches/", "examples/"]
                .iter()
                .any(|d| file.starts_with(d) || file.contains(&format!("/{d}")));
            let ct_lines = ct_annotation_kw_indices(lexed);
            ast.visit_fns(&mut |def, self_ty, trait_name, in_test, is_trait_decl| {
                fns.push(FnNode {
                    file: file.clone(),
                    self_ty: self_ty.unwrap_or("").to_string(),
                    trait_name: trait_name.map(str::to_string),
                    def: def.clone(),
                    in_test: in_test || def.is_test || path_test,
                    is_trait_decl,
                    is_ct: ct_lines.contains(&def.kw_idx),
                });
            });
        }
        // deterministic node order regardless of visit order
        fns.sort_by(|a, b| (a.file.as_str(), a.def.line).cmp(&(b.file.as_str(), b.def.line)));

        let maps = ResolutionMaps::new(&fns);
        let calls = fns
            .iter()
            .map(|node| extract_calls(node, &maps))
            .collect();
        CallGraph { fns, calls }
    }

    /// Index lookup by qualified name (first match).
    pub fn find(&self, qname: &str) -> Option<usize> {
        self.fns.iter().position(|f| f.qname() == qname)
    }

    /// Reverse adjacency: `callers[i]` = every fn with an edge to `i`.
    pub fn reverse_edges(&self) -> Vec<Vec<usize>> {
        let mut rev = vec![Vec::new(); self.fns.len()];
        for (caller, sites) in self.calls.iter().enumerate() {
            for site in sites {
                for &callee in &site.callees {
                    rev[callee].push(caller);
                }
            }
        }
        for v in &mut rev {
            v.sort_unstable();
            v.dedup();
        }
        rev
    }
}

/// Token indices of `fn` keywords annotated by a standalone
/// `// lint:ct` comment — the first `fn` token after the comment line
/// (doc comments and attributes may intervene), matching the scheme of
/// the token-level `ct-branch` rule.
fn ct_annotation_kw_indices(lexed: &Lexed) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    for c in &lexed.comments {
        if c.text.trim() != "lint:ct" {
            continue;
        }
        let idx = lexed
            .tokens
            .iter()
            .enumerate()
            .position(|(i, t)| {
                t.line > c.line
                    && t.kind == TokenKind::Ident
                    && t.text == "fn"
                    && lexed
                        .tokens
                        .get(i + 1)
                        .is_some_and(|n| n.kind == TokenKind::Ident)
            });
        if let Some(i) = idx {
            out.insert(i);
        }
    }
    out
}

/// Method names that collide with the std prelude/collections API:
/// an *unknown-receiver* call to one of these is overwhelmingly a std
/// call, so it resolves to no workspace edge rather than fanning out
/// to every same-named method. Typed receivers still resolve exactly.
const UBIQUITOUS_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "clone",
    "get",
    "get_mut",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "iter",
    "next",
    "extend",
    "clear",
    "fmt",
    "new",
    "default",
    "as_bytes",
    "to_vec",
    "to_string",
    "write",
    "read",
    // digest-API name (in-tree Sha256 and every hasher idiom): an
    // untyped `.finalize()` is a hash being read out, not the
    // simulator's report assembly
    "finalize",
    // atomic API names: an untyped `.load(Ordering::..)`/`.store(..)`
    // receiver is a static atomic (the obs enabled gate), not
    // `Provider::load` or a config loader
    "load",
    "store",
];

/// Name→candidate-index maps used during edge resolution.
struct ResolutionMaps {
    /// Free functions by bare name.
    free_by_name: BTreeMap<String, Vec<usize>>,
    /// All methods (any container) by bare name.
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Methods by `(container, name)`.
    methods_by_ty_name: BTreeMap<(String, String), Vec<usize>>,
    /// Impls of each trait: trait name → container names.
    impls_of_trait: BTreeMap<String, Vec<String>>,
    /// Declared return type of free fns, by bare name — only when every
    /// free fn with that name agrees on it (ambiguous names type
    /// nothing). `Box<dyn Trait>` returns unwrap to the trait name.
    free_fn_ret: BTreeMap<String, String>,
    /// Constructor returns: `(container, method)` for methods returning
    /// `Self`/their own type, used to type `let x = Foo::new(..)`.
    secret_ctor_unused: (),
}

impl ResolutionMaps {
    fn new(fns: &[FnNode]) -> ResolutionMaps {
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut methods_by_ty_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut impls_of_trait: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut ret_candidates: BTreeMap<String, Option<String>> = BTreeMap::new();
        for (i, node) in fns.iter().enumerate() {
            if node.self_ty.is_empty() {
                free_by_name.entry(node.def.name.clone()).or_default().push(i);
                let ret = main_type_name(&node.def.ret);
                ret_candidates
                    .entry(node.def.name.clone())
                    .and_modify(|e| {
                        if *e != ret {
                            *e = None;
                        }
                    })
                    .or_insert(ret);
            } else {
                methods_by_name
                    .entry(node.def.name.clone())
                    .or_default()
                    .push(i);
                methods_by_ty_name
                    .entry((node.self_ty.clone(), node.def.name.clone()))
                    .or_default()
                    .push(i);
                if let Some(tr) = &node.trait_name {
                    let v = impls_of_trait.entry(tr.clone()).or_default();
                    if !node.is_trait_decl && !v.contains(&node.self_ty) {
                        v.push(node.self_ty.clone());
                    }
                }
            }
        }
        let free_fn_ret = ret_candidates
            .into_iter()
            .filter_map(|(name, ret)| ret.map(|r| (name, r)))
            .collect();
        ResolutionMaps {
            free_by_name,
            methods_by_name,
            methods_by_ty_name,
            impls_of_trait,
            free_fn_ret,
            secret_ctor_unused: (),
        }
    }

    /// Resolves `Type::name` — inherent/impl methods of `Type` first;
    /// if `Type` is a trait, fan out to every implementor; fall back to
    /// the trait declaration itself (for default bodies).
    fn resolve_qualified(&self, ty: &str, name: &str) -> Vec<usize> {
        let mut out = self
            .methods_by_ty_name
            .get(&(ty.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default();
        if let Some(impls) = self.impls_of_trait.get(ty) {
            for imp in impls {
                if let Some(v) = self.methods_by_ty_name.get(&(imp.clone(), name.to_string())) {
                    out.extend(v.iter().copied());
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Resolves `recv.name(..)` given an optional receiver type.
    fn resolve_method(&self, recv_ty: Option<&str>, name: &str) -> Vec<usize> {
        if let Some(ty) = recv_ty {
            let hit = self.resolve_qualified(ty, name);
            if !hit.is_empty() {
                return hit;
            }
        }
        // Unknown receiver: conservative over-approximation — except
        // for method names that collide with the std prelude on every
        // second type (`.len()` on an untyped receiver is almost never
        // the workspace's `BoundedCache::len`). Those resolve to
        // nothing; a documented under-approximation.
        if UBIQUITOUS_METHODS.contains(&name) {
            return Vec::new();
        }
        self.methods_by_name.get(name).cloned().unwrap_or_default()
    }
}

/// Best-effort local typing environment: maps local variable names to
/// type names gleaned from params, `let` ascriptions, constructor
/// calls (`let k = SecretKey::new(..)`), and free-fn declared returns
/// (`let b = backend_for(id)` with `fn backend_for(..) -> Box<dyn T>`).
fn local_types(node: &FnNode, rets: &BTreeMap<String, String>) -> BTreeMap<String, String> {
    let mut env = BTreeMap::new();
    if !node.self_ty.is_empty() {
        env.insert("self".to_string(), node.self_ty.clone());
        env.insert("Self".to_string(), node.self_ty.clone());
    }
    for p in &node.def.params {
        if let Some(name) = p.names.first() {
            if let Some(ty) = main_type_name(&p.ty) {
                env.insert(name.clone(), ty);
            }
        }
    }
    let Some(body) = &node.def.body else { return env };
    walk_lets(body, rets, &mut env);
    env
}

fn walk_lets(
    stmts: &[crate::ast::Stmt],
    rets: &BTreeMap<String, String>,
    env: &mut BTreeMap<String, String>,
) {
    use crate::ast::Stmt;
    for s in stmts {
        match s {
            Stmt::Let { names, ty, init, els, .. } => {
                if names.len() == 1 {
                    if let Some(t) = main_type_name(ty) {
                        env.insert(names[0].clone(), t);
                    } else if let Some(Expr::Call { segs, .. }) = init {
                        // `let k = SecretKey::new(..)` / `Foo::default()`
                        let qual = segs.len() >= 2
                            && segs[segs.len() - 2]
                                .chars()
                                .next()
                                .is_some_and(char::is_uppercase);
                        if qual {
                            env.insert(names[0].clone(), segs[segs.len() - 2].clone());
                        } else if let Some(ret) = rets.get(&segs[segs.len() - 1]) {
                            // free fn (bare or `module::f`) with a known
                            // declared return type
                            env.insert(names[0].clone(), ret.clone());
                        }
                    }
                }
                if let Some(e) = init {
                    walk_expr_lets(e, rets, env);
                }
                if let Some(b) = els {
                    walk_lets(b, rets, env);
                }
            }
            Stmt::Expr(e) => walk_expr_lets(e, rets, env),
            Stmt::Item(_) => {}
        }
    }
}

fn walk_expr_lets(
    e: &Expr,
    rets: &BTreeMap<String, String>,
    env: &mut BTreeMap<String, String>,
) {
    e.walk(&mut |x| {
        if let Expr::Block { stmts, .. } = x {
            walk_lets(stmts, rets, env);
        }
    });
}

/// Picks the "main" type name from a type-identifier bag: the first
/// uppercase-initial identifier that is not a well-known wrapper.
fn main_type_name(ty: &[String]) -> Option<String> {
    const WRAPPERS: &[&str] = &["Option", "Result", "Vec", "Box", "Rc", "Arc", "Cow"];
    let mut fallback = None;
    for t in ty {
        if t.chars().next().is_some_and(char::is_uppercase) {
            if WRAPPERS.contains(&t.as_str()) {
                fallback.get_or_insert_with(|| t.clone());
                continue;
            }
            return Some(t.clone());
        }
    }
    fallback
}

/// Extracts and resolves every call site in `node`'s body.
fn extract_calls(node: &FnNode, maps: &ResolutionMaps) -> Vec<CallSite> {
    let _ = &maps.secret_ctor_unused;
    let Some(body) = &node.def.body else {
        return Vec::new();
    };
    let env = local_types(node, &maps.free_fn_ret);
    let mut sites = Vec::new();
    walk_stmts(body, &mut |e| match e {
        Expr::Call { segs, args, line } => {
            let callees = if segs.len() >= 2 {
                let ty = &segs[segs.len() - 2];
                let name = &segs[segs.len() - 1];
                let ty = if ty == "Self" && !node.self_ty.is_empty() {
                    node.self_ty.as_str()
                } else {
                    ty.as_str()
                };
                if ty.chars().next().is_some_and(char::is_uppercase) {
                    maps.resolve_qualified(ty, name)
                } else {
                    // `module::f(..)` — resolve as a free fn
                    maps.free_by_name.get(name).cloned().unwrap_or_default()
                }
            } else {
                maps.free_by_name
                    .get(&segs[0])
                    .cloned()
                    .unwrap_or_default()
            };
            sites.push(CallSite {
                callees,
                line: *line,
                display: segs.join("::"),
                n_args: args.len(),
                is_method: false,
            });
        }
        Expr::Method { recv, name, args, line } => {
            let recv_ty = receiver_type(recv, &env, node);
            let callees = maps.resolve_method(recv_ty.as_deref(), name);
            sites.push(CallSite {
                callees,
                line: *line,
                display: format!(".{name}"),
                n_args: args.len(),
                is_method: true,
            });
        }
        _ => {}
    });
    sites
}

/// Types a method receiver expression when possible.
fn receiver_type(
    recv: &Expr,
    env: &BTreeMap<String, String>,
    node: &FnNode,
) -> Option<String> {
    match recv {
        Expr::Path { segs, .. } if segs.len() == 1 => env.get(&segs[0]).cloned(),
        Expr::Path { segs, .. } => {
            // `a::B` path receiver — associated const etc.; type unknown
            let last = segs.last().expect("nonempty path");
            if last.chars().next().is_some_and(char::is_uppercase) {
                Some(last.clone())
            } else {
                None
            }
        }
        Expr::Call { segs, .. } if segs.len() >= 2 => {
            // `Foo::new(..).method()` — receiver is Foo
            let ty = &segs[segs.len() - 2];
            if ty == "Self" {
                Some(node.self_ty.clone()).filter(|s| !s.is_empty())
            } else if ty.chars().next().is_some_and(char::is_uppercase) {
                Some(ty.clone())
            } else {
                None
            }
        }
        Expr::Unary { inner } | Expr::Cast { inner } => receiver_type(inner, env, node),
        Expr::Struct { segs, .. } => segs.last().cloned(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let triples: Vec<(String, Lexed, Ast)> = files
            .iter()
            .map(|(name, src)| {
                let lexed = lex(src);
                let ast = parse(&lexed);
                ((*name).to_string(), lexed, ast)
            })
            .collect();
        CallGraph::build(&triples)
    }

    fn edges(g: &CallGraph, caller: &str) -> Vec<String> {
        let i = g.find(caller).expect("caller present");
        let mut out: Vec<String> = g.calls[i]
            .iter()
            .flat_map(|s| s.callees.iter().map(|&c| g.fns[c].qname()))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn free_and_qualified_calls_resolve() {
        let g = graph_of(&[(
            "a.rs",
            "fn leaf() {}\nfn mid() { leaf(); }\nstruct T;\nimpl T {\n    fn new() -> T { T }\n    fn run(&self) { helper(); }\n}\nfn helper() {}\nfn top() { mid(); T::new(); }\n",
        )]);
        assert_eq!(edges(&g, "mid"), ["leaf"]);
        assert_eq!(edges(&g, "top"), ["T::new", "mid"]);
        assert_eq!(edges(&g, "T::run"), ["helper"]);
    }

    #[test]
    fn typed_receiver_narrows_method_dispatch() {
        let g = graph_of(&[(
            "a.rs",
            "struct A;\nstruct B;\nimpl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\nfn f(a: A) { a.go(); }\nfn g(x: &UnknownTy) { x.go(); }\n",
        )]);
        assert_eq!(edges(&g, "f"), ["A::go"]);
        // unknown receiver over-approximates to both
        assert_eq!(edges(&g, "g"), ["A::go", "B::go"]);
    }

    #[test]
    fn trait_calls_fan_out_to_impls() {
        let g = graph_of(&[(
            "a.rs",
            "trait Codec {\n    fn decode_from(r: u8) -> Self;\n    fn decode(b: u8) -> Self where Self: Sized { Self::decode_from(b) }\n}\nstruct X;\nimpl Codec for X { fn decode_from(r: u8) -> X { X } }\nfn call_it(b: u8) -> X { Codec::decode(b); X::decode_from(b) }\n",
        )]);
        // Codec::decode resolves to the default body; X::decode_from to the impl
        let e = edges(&g, "call_it");
        assert!(e.contains(&"Codec::decode".to_string()), "{e:?}");
        assert!(e.contains(&"X::decode_from".to_string()), "{e:?}");
        // the default body's Self::decode_from fans out to the impl
        let d = edges(&g, "Codec::decode");
        assert!(d.contains(&"X::decode_from".to_string()), "{d:?}");
    }

    #[test]
    fn constructor_results_type_locals() {
        let g = graph_of(&[(
            "a.rs",
            "struct K;\nimpl K {\n    fn new() -> K { K }\n    fn use_it(&self) {}\n}\nstruct Other;\nimpl Other { fn use_it(&self) {} }\nfn f() {\n    let k = K::new();\n    k.use_it();\n}\n",
        )]);
        assert_eq!(edges(&g, "f"), ["K::new", "K::use_it"]);
    }

    #[test]
    fn dyn_trait_receivers_fan_out_to_all_impls() {
        let g = graph_of(&[(
            "a.rs",
            "trait AuditBackend { fn prove(&self); }\n\
             struct Pairing;\nstruct Merkle;\n\
             impl AuditBackend for Pairing { fn prove(&self) {} }\n\
             impl AuditBackend for Merkle { fn prove(&self) {} }\n\
             fn drive(b: &dyn AuditBackend) { b.prove(); }\n",
        )]);
        let e = edges(&g, "drive");
        assert!(e.contains(&"Pairing::prove".to_string()), "{e:?}");
        assert!(e.contains(&"Merkle::prove".to_string()), "{e:?}");
    }

    #[test]
    fn registry_return_types_pin_dyn_dispatch() {
        let g = graph_of(&[(
            "a.rs",
            "trait AuditBackend { fn prove(&self); }\n\
             struct Pairing;\nstruct Merkle;\nstruct Decoy;\n\
             impl AuditBackend for Pairing { fn prove(&self) {} }\n\
             impl AuditBackend for Merkle { fn prove(&self) {} }\n\
             impl Decoy { fn prove(&self) {} }\n\
             fn backend_for(id: u8) -> Box<dyn AuditBackend> { Box::new(Pairing) }\n\
             fn drive(id: u8) { let b = backend_for(id); b.prove(); }\n",
        )]);
        let e = edges(&g, "drive");
        // the declared return type pins dispatch to the trait's impls,
        // not every same-named method in the workspace
        assert!(e.contains(&"Pairing::prove".to_string()), "{e:?}");
        assert!(e.contains(&"Merkle::prove".to_string()), "{e:?}");
        assert!(!e.contains(&"Decoy::prove".to_string()), "{e:?}");
    }

    #[test]
    fn ct_annotations_attach_to_fns() {
        let g = graph_of(&[(
            "a.rs",
            "/// docs\n// lint:ct\npub fn kernel(x: u64) -> u64 { x }\npub fn plain(x: u64) -> u64 { x }\n",
        )]);
        let k = g.find("kernel").expect("kernel");
        let p = g.find("plain").expect("plain");
        assert!(g.fns[k].is_ct);
        assert!(!g.fns[p].is_ct);
    }
}
