//! The rule engine: zones, spans, suppressions and the six rules.
//!
//! Each rule is a pure function of the token stream plus precomputed
//! *spans* (token-index ranges): `#[cfg(test)]` blocks, `impl Codec for`
//! blocks, `fn decode*` bodies and `ct`-annotated bodies. Zones are
//! path predicates. See `docs/LINTS.md` for the catalogue.

use crate::lexer::{lex, Lexed, Token, TokenKind};
use crate::report::{Finding, FileReport, Suppression};

/// Static description of one rule, for `--json` and the docs.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable rule id, as used in suppression comments.
    pub id: &'static str,
    /// One-line description of what the rule enforces.
    pub summary: &'static str,
}

/// Every rule the analyzer knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-panic",
        summary: "no unwrap()/expect()/panic!/unimplemented!/todo! in panic-free zones \
                  (codec surfaces, storage wire/erasure, Codec impls)",
    },
    RuleInfo {
        id: "no-index",
        summary: "no slice indexing `x[i]` on decode surfaces (core codec, storage wire, \
                  Codec impls); use get()/split_first() and return a typed error",
    },
    RuleInfo {
        id: "determinism",
        summary: "no HashMap/HashSet/Instant/SystemTime/thread_rng/Date-like calls in \
                  crates/{sim,chain,storage}: seed-reproducibility is contractual",
    },
    RuleInfo {
        id: "secret-debug",
        summary: "secret types (SecretKey, HmacKey, SmallDomainPrp) may not derive or \
                  impl Debug/Display",
    },
    RuleInfo {
        id: "ct-branch",
        summary: "bodies annotated `lint:ct` may not contain if/match/&&/||/return; \
                  branches on provably public data need an audited allow",
    },
    RuleInfo {
        id: "decode-bounds",
        summary: "Vec::with_capacity/vec! in decode bodies must be preceded by a \
                  remaining()/len() bound so forged prefixes cannot force allocations",
    },
    RuleInfo {
        id: "suppression",
        summary: "every lint:allow must name a known rule and carry a non-empty reason",
    },
    RuleInfo {
        id: "panic-reachability",
        summary: "interprocedural: no panic site (panic!/unwrap/indexing/div) may be \
                  reachable through the call graph from a Codec::decode impl or verify_* \
                  entry point",
    },
    RuleInfo {
        id: "secret-taint",
        summary: "interprocedural: SecretKey/HmacKey/PRF-derived values may not flow into \
                  Debug/format!-family/log/wire-encode sinks, across function boundaries",
    },
    RuleInfo {
        id: "ct-closure",
        summary: "interprocedural: lint:ct functions may only call other ct-annotated or \
                  lint.toml-allowlisted functions",
    },
    RuleInfo {
        id: "obs-purity",
        summary: "interprocedural: observability is write-only — no verdict/codec/ct-\
                  reachable function may consume an obs return value (statement position \
                  or `let _x = ...` only), and lint:ct kernels may not call obs at all",
    },
    RuleInfo {
        id: "deadline",
        summary: "interprocedural: every loop in crates/node awaiting a transport receive \
                  (recv/try_recv) must be reachable from a timeout/TTL check in the same \
                  function; unbounded daemon drains spin forever on partitioned peers",
    },
];

/// Types whose in-memory representation is secret material.
const SECRET_TYPES: &[&str] = &["SecretKey", "HmacKey", "SmallDomainPrp"];

/// Identifiers that break seed-reproducibility when they appear in the
/// deterministic crates.
const NONDETERMINISTIC_IDENTS: &[&str] =
    &["HashMap", "HashSet", "Instant", "SystemTime", "thread_rng"];

/// Files (workspace-relative, `/`-separated) whose whole body is a
/// panic-free zone: the adversarial-bytes decode surfaces.
const PANIC_FREE_FILES: &[&str] = &[
    "crates/core/src/codec.rs",
    "crates/storage/src/wire.rs",
    "crates/storage/src/erasure.rs",
];

/// Files where slice indexing is additionally banned. Narrower than the
/// panic-free list: the erasure matrix kernels index with loop-bounded
/// counters, where `get()` chains would obscure the algebra; their
/// decode entry points are covered by the `Codec` impls in `wire.rs`.
const NO_INDEX_FILES: &[&str] = &["crates/core/src/codec.rs", "crates/storage/src/wire.rs"];

/// Crate source trees where determinism is contractual.
const DETERMINISTIC_TREES: &[&str] = &["crates/sim/src/", "crates/chain/src/", "crates/storage/src/"];

/// A half-open token-index range.
type Span = (usize, usize);

fn in_spans(spans: &[Span], idx: usize) -> bool {
    spans.iter().any(|&(a, b)| idx >= a && idx < b)
}

/// Index of the `}` matching the `{` at `open` (or `tokens.len()`).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Punct {
            match tokens[i].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    tokens.len()
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

/// Spans of `#[cfg(test)]` items (the following braced item).
fn cfg_test_spans(tokens: &[Token]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 4 < tokens.len() {
        if is_punct(&tokens[i], "#")
            && is_punct(&tokens[i + 1], "[")
            && is_ident(&tokens[i + 2], "cfg")
            && is_punct(&tokens[i + 3], "(")
            && is_ident(&tokens[i + 4], "test")
        {
            // Find the braced item the attribute decorates: the first `{`
            // before a `;` ends the search (an attribute on a `use` or
            // field has no body to exempt).
            let mut j = i + 5;
            while j < tokens.len() && !is_punct(&tokens[j], "{") && !is_punct(&tokens[j], ";") {
                j += 1;
            }
            if j < tokens.len() && is_punct(&tokens[j], "{") {
                let end = matching_brace(tokens, j);
                spans.push((j, end + 1));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Spans of `impl ... Codec for ... { ... }` bodies.
fn codec_impl_spans(tokens: &[Token]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_ident(&tokens[i], "impl") {
            let mut j = i + 1;
            let mut saw_codec = false;
            let mut saw_for = false;
            while j < tokens.len() && !is_punct(&tokens[j], "{") && !is_punct(&tokens[j], ";") {
                if is_ident(&tokens[j], "Codec") {
                    saw_codec = true;
                }
                if is_ident(&tokens[j], "for") {
                    saw_for = true;
                }
                j += 1;
            }
            if saw_codec && saw_for && j < tokens.len() && is_punct(&tokens[j], "{") {
                let end = matching_brace(tokens, j);
                spans.push((j, end + 1));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Body spans of functions whose name starts with `decode`.
fn decode_fn_spans(tokens: &[Token]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if is_ident(&tokens[i], "fn")
            && tokens[i + 1].kind == TokenKind::Ident
            && tokens[i + 1].text.starts_with("decode")
        {
            let mut j = i + 2;
            while j < tokens.len() && !is_punct(&tokens[j], "{") && !is_punct(&tokens[j], ";") {
                j += 1;
            }
            if j < tokens.len() && is_punct(&tokens[j], "{") {
                let end = matching_brace(tokens, j);
                spans.push((j, end + 1));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Body spans of functions annotated with a `lint:ct` comment: the
/// annotation must sit on its own line directly above the function item
/// (attributes and doc comments may intervene).
fn ct_spans(lexed: &Lexed) -> Vec<Span> {
    let tokens = &lexed.tokens;
    let mut spans = Vec::new();
    for c in &lexed.comments {
        if c.text.trim() != "lint:ct" {
            continue;
        }
        // first `fn` token after the annotation line
        let Some(fn_idx) = tokens
            .iter()
            .position(|t| t.line > c.line && is_ident(t, "fn"))
        else {
            continue;
        };
        let mut j = fn_idx + 1;
        while j < tokens.len() && !is_punct(&tokens[j], "{") && !is_punct(&tokens[j], ";") {
            j += 1;
        }
        if j < tokens.len() && is_punct(&tokens[j], "{") {
            spans.push((j, matching_brace(tokens, j) + 1));
        }
    }
    spans
}

/// Parsed suppressions plus findings for malformed ones.
fn parse_suppressions(lexed: &Lexed, file: &str) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        let t = c.text.trim();
        let Some(rest) = t.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad.push(Finding {
                file: file.to_string(),
                line: c.line,
                rule: "suppression",
                message: "unterminated lint:allow(...)".into(),
                hint: "write `lint:allow(<rule>) — <reason>`",
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let reason: String = rest[close + 1..]
            .trim_start_matches(|ch: char| {
                ch.is_whitespace() || ch == '—' || ch == '–' || ch == '-' || ch == ':'
            })
            .trim()
            .to_string();
        if !RULES.iter().any(|r| r.id == rule) {
            bad.push(Finding {
                file: file.to_string(),
                line: c.line,
                rule: "suppression",
                message: format!("lint:allow names unknown rule `{rule}`"),
                hint: "rule ids are listed in docs/LINTS.md",
            });
            continue;
        }
        if reason.is_empty() {
            bad.push(Finding {
                file: file.to_string(),
                line: c.line,
                rule: "suppression",
                message: format!("lint:allow({rule}) carries no reason"),
                hint: "every suppression must say why it is sound: \
                       `lint:allow(<rule>) — <reason>`",
            });
            continue;
        }
        // A trailing comment suppresses its own line; a standalone
        // comment suppresses the next line that has code on it.
        let target = if lexed.has_token_on_line(c.line) {
            c.line
        } else {
            lexed.next_token_line_after(c.line).unwrap_or(c.line)
        };
        sups.push(Suppression {
            line: target,
            comment_line: c.line,
            rule: rule.clone(),
            reason,
        });
    }
    (sups, bad)
}

/// Everything the per-token rules need to know about a file.
struct FileContext<'a> {
    path: &'a str,
    tokens: &'a [Token],
    /// File lives under tests/, benches/ or examples/.
    test_file: bool,
    test_spans: Vec<Span>,
    codec_spans: Vec<Span>,
    decode_spans: Vec<Span>,
    ct_spans: Vec<Span>,
}

impl FileContext<'_> {
    fn is_test(&self, idx: usize) -> bool {
        self.test_file || in_spans(&self.test_spans, idx)
    }

    fn panic_free(&self, idx: usize) -> bool {
        !self.is_test(idx)
            && (PANIC_FREE_FILES.contains(&self.path) || in_spans(&self.codec_spans, idx))
    }

    fn no_index(&self, idx: usize) -> bool {
        !self.is_test(idx)
            && (NO_INDEX_FILES.contains(&self.path) || in_spans(&self.codec_spans, idx))
    }

    fn deterministic(&self, idx: usize) -> bool {
        !self.is_test(idx) && DETERMINISTIC_TREES.iter().any(|t| self.path.starts_with(t))
    }

    fn finding(&self, line: u32, rule: &'static str, message: String, hint: &'static str) -> Finding {
        Finding {
            file: self.path.to_string(),
            line,
            rule,
            message,
            hint,
        }
    }
}

fn check_no_panic(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !ctx.panic_free(i) || t.kind != TokenKind::Ident {
            continue;
        }
        let next_is = |s: &str| ctx.tokens.get(i + 1).is_some_and(|n| is_punct(n, s));
        let prev_is_dot = i > 0 && is_punct(&ctx.tokens[i - 1], ".");
        match t.text.as_str() {
            "unwrap" | "expect" if next_is("(") && prev_is_dot => {
                out.push(ctx.finding(
                    t.line,
                    "no-panic",
                    format!(".{}() on a decode surface", t.text),
                    "return a typed DsAuditError (ok_or_else + reader.malformed(...)) instead",
                ));
            }
            "panic" | "unimplemented" | "todo" if next_is("!") => {
                out.push(ctx.finding(
                    t.line,
                    "no-panic",
                    format!("{}! on a decode surface", t.text),
                    "decode paths must return errors, never abort",
                ));
            }
            _ => {}
        }
    }
}

fn check_no_index(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !ctx.no_index(i) || !is_punct(t, "[") || i == 0 {
            continue;
        }
        let prev = &ctx.tokens[i - 1];
        // `[` in postfix position (after an ident, `)` or `]`) is an
        // index expression; after `#`, `!`, `=`, `(` etc. it is an
        // attribute, macro bracket, or array literal/type. `mut`/`dyn`
        // precede slice *types* (`&mut [u8]`), never an indexed value.
        let postfix = (prev.kind == TokenKind::Ident && prev.text != "mut" && prev.text != "dyn")
            || (prev.kind == TokenKind::Punct && (prev.text == ")" || prev.text == "]"));
        if postfix {
            out.push(ctx.finding(
                t.line,
                "no-index",
                "slice/array indexing on a decode surface".into(),
                "use get()/get_mut() and surface a typed error on None",
            ));
        }
    }
}

fn check_determinism(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !ctx.deterministic(i) || t.kind != TokenKind::Ident {
            continue;
        }
        if NONDETERMINISTIC_IDENTS.contains(&t.text.as_str()) || t.text.contains("Date") {
            out.push(ctx.finding(
                t.line,
                "determinism",
                format!("`{}` in a seed-reproducible crate", t.text),
                "use BTreeMap/BTreeSet and simulated clocks; wall time and hash order \
                 diverge between verifiers",
            ));
        }
    }
}

fn check_secret_debug(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    for (i, t) in tokens.iter().enumerate() {
        // derive(..., Debug/Display, ...) on a secret struct/enum
        if (is_ident(t, "struct") || is_ident(t, "enum"))
            && tokens
                .get(i + 1)
                .is_some_and(|n| SECRET_TYPES.contains(&n.text.as_str()))
        {
            // scan the attribute window above the item (stop at the
            // previous item boundary)
            let mut j = i;
            let mut derive_window = Vec::new();
            while j > 0 {
                j -= 1;
                let p = &tokens[j];
                if is_punct(p, ";") || is_punct(p, "}") || is_punct(p, "{") {
                    break;
                }
                derive_window.push(p);
            }
            let has_derive = derive_window.iter().any(|p| is_ident(p, "derive"));
            let bad = derive_window
                .iter()
                .find(|p| is_ident(p, "Debug") || is_ident(p, "Display"));
            if has_derive {
                if let Some(b) = bad {
                    out.push(ctx.finding(
                        tokens[i + 1].line,
                        "secret-debug",
                        format!(
                            "secret type `{}` derives {}",
                            tokens[i + 1].text, b.text
                        ),
                        "secrets must not be formattable; drop the derive (add a manual \
                         redacting impl on the container if needed)",
                    ));
                }
            }
        }
        // impl Debug/Display for <secret>
        if is_ident(t, "impl") {
            let mut j = i + 1;
            let mut fmt_trait = None;
            let mut saw_for = false;
            let mut target_secret = None;
            while j < tokens.len() && !is_punct(&tokens[j], "{") && !is_punct(&tokens[j], ";") {
                let p = &tokens[j];
                if is_ident(p, "Debug") || is_ident(p, "Display") {
                    fmt_trait = Some(p.text.clone());
                }
                if is_ident(p, "for") {
                    saw_for = true;
                }
                if saw_for && SECRET_TYPES.contains(&p.text.as_str()) {
                    target_secret = Some(p.text.clone());
                }
                j += 1;
            }
            if let (Some(tr), Some(sec)) = (fmt_trait, target_secret) {
                out.push(ctx.finding(
                    t.line,
                    "secret-debug",
                    format!("manual {tr} impl for secret type `{sec}`"),
                    "secrets must not be formattable",
                ));
            }
        }
    }
}

fn check_ct_branch(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !in_spans(&ctx.ct_spans, i) {
            continue;
        }
        let construct = match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, "if") => Some("if"),
            (TokenKind::Ident, "match") => Some("match"),
            (TokenKind::Ident, "return") => Some("early return"),
            (TokenKind::Punct, "&&") => Some("&&"),
            (TokenKind::Punct, "||") => Some("||"),
            _ => None,
        };
        if let Some(c) = construct {
            out.push(ctx.finding(
                t.line,
                "ct-branch",
                format!("`{c}` inside a lint:ct (constant-time) body"),
                "rewrite branch-free, or add an audited allow stating why the \
                 branched-on data is public",
            ));
        }
    }
}

fn check_decode_bounds(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for &(start, end) in &ctx.decode_spans {
        let mut bounded = false;
        for i in start..end.min(ctx.tokens.len()) {
            let t = &ctx.tokens[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            match t.text.as_str() {
                // a consulted length bound: ByteReader::remaining() or a
                // slice/collection len() before the allocation
                "remaining" | "len" => bounded = true,
                "with_capacity" | "vec"
                    if !ctx.is_test(i)
                        && ctx.tokens.get(i + 1).is_some_and(|n| {
                            is_punct(n, "(") || is_punct(n, "!")
                        })
                        && !bounded =>
                {
                    out.push(ctx.finding(
                        t.line,
                        "decode-bounds",
                        "allocation in a decode body before any length bound".into(),
                        "check reader.remaining() (or an input len()) against the \
                         announced count first, so forged prefixes cannot force \
                         huge allocations",
                    ));
                }
                _ => {}
            }
        }
    }
}

/// Analyzes one file's source. `path` must be workspace-relative with
/// `/` separators — zone membership is decided from it.
pub fn analyze_source(path: &str, src: &str) -> FileReport {
    let lexed = lex(src);
    let (sups, mut findings) = parse_suppressions(&lexed, path);
    let ctx = FileContext {
        path,
        tokens: &lexed.tokens,
        test_file: path.contains("/tests/")
            || path.contains("/benches/")
            || path.contains("/examples/")
            || path.starts_with("tests/")
            || path.starts_with("benches/")
            || path.starts_with("examples/"),
        test_spans: cfg_test_spans(&lexed.tokens),
        codec_spans: codec_impl_spans(&lexed.tokens),
        decode_spans: decode_fn_spans(&lexed.tokens),
        ct_spans: ct_spans(&lexed),
    };
    check_no_panic(&ctx, &mut findings);
    check_no_index(&ctx, &mut findings);
    check_determinism(&ctx, &mut findings);
    check_secret_debug(&ctx, &mut findings);
    check_ct_branch(&ctx, &mut findings);
    check_decode_bounds(&ctx, &mut findings);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    // `HashMap<K, V> = HashMap::new()` should read as one finding, not two
    findings.dedup_by(|a, b| a.line == b.line && a.rule == b.rule && a.message == b.message);

    // split into suppressed / live. Malformed suppressions ("suppression"
    // rule) are never themselves suppressible.
    let mut live = Vec::new();
    let mut suppressed = Vec::new();
    for f in findings {
        let s = (f.rule != "suppression")
            .then(|| sups.iter().find(|s| s.line == f.line && s.rule == f.rule))
            .flatten();
        match s {
            Some(s) => suppressed.push((f, s.clone())),
            None => live.push(f),
        }
    }
    FileReport {
        findings: live,
        suppressed,
    }
}
