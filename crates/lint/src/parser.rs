//! A total recursive-descent parser over the [`crate::lexer`] token
//! stream producing the [`crate::ast`] item tree.
//!
//! Design constraints, in order:
//!
//! 1. **Totality.** The parser never fails and never loops: every
//!    construct it does not model collapses to `Expr::Unknown` or
//!    `ItemKind::Opaque` with guaranteed forward progress. The
//!    compiler, not the linter, is the arbiter of validity.
//! 2. **Span discipline.** Every item records the half-open
//!    token-index range it consumed; the differential gate asserts the
//!    item tree tiles the token stream exactly, so dropped or
//!    double-consumed tokens are test failures, not silent holes in the
//!    call graph.
//! 3. **Just enough grammar.** Bodies parse down to the expressions the
//!    interprocedural passes consume — calls, method calls, macros,
//!    field projections, indexing, assignments, control flow — with
//!    struct-literal/`if`-condition disambiguation, turbofish, match
//!    guards, closures, ranges, and let-else handled; types are
//!    collected as bags of identifiers.

use crate::ast::{Ast, Expr, FnDef, ImplDef, Item, ItemKind, Param, Stmt};
use crate::lexer::{Lexed, Token, TokenKind};

/// Keywords that introduce an item in statement position.
const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "use",
    "struct",
    "enum",
    "union",
    "impl",
    "trait",
    "mod",
    "static",
    "type",
    "macro_rules",
];

/// Parses a lexed file into its item tree. Never fails.
pub fn parse(lexed: &Lexed) -> Ast {
    let mut p = Parser {
        toks: &lexed.tokens,
        pos: 0,
    };
    let items = p.parse_items(lexed.tokens.len(), false);
    let mut ast = Ast {
        items,
        num_tokens: lexed.tokens.len(),
    };
    mark_ct_fns(&mut ast, lexed);
    ast
}

/// Marks functions annotated with a standalone `// lint:ct` comment:
/// the annotated function is the one whose `fn` keyword is the first
/// one after the comment line (same scheme as the token-level rule).
fn mark_ct_fns(_ast: &mut Ast, _lexed: &Lexed) {
    // ct-annotation matching happens in the call-graph builder, which
    // has the flat function list; nothing to do at parse time.
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    // ---- token helpers --------------------------------------------------

    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + off)
    }

    fn line(&self) -> u32 {
        self.peek().map_or(0, |t| t.line)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, s: &str) -> bool {
        self.peek()
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
    }

    fn punct_at(&self, off: usize, s: &str) -> bool {
        self.peek_at(off)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek()
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == s)
    }

    fn at_any_ident(&self) -> bool {
        self.peek().is_some_and(|t| t.kind == TokenKind::Ident)
    }

    fn eat_punct(&mut self, s: &str) -> bool {
        if self.at_punct(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Index of the token closing the delimiter at `open` (which must
    /// be `(`, `[` or `{`). Tracks all three delimiter kinds jointly.
    /// Returns `toks.len() - 1`-ish fallbacks on malformed input.
    fn matching(&self, open: usize) -> usize {
        let mut depth = 0i64;
        let mut i = open;
        while i < self.toks.len() {
            let t = &self.toks[i];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth <= 0 {
                            return i;
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        self.toks.len().saturating_sub(1).max(open)
    }

    /// Skips a balanced `<...>` generic-argument/parameter list; `pos`
    /// must be at the `<`. `>` preceded by `-` (i.e. `->`) does not
    /// close; `(`/`[`/`{` groups are jumped over whole.
    fn skip_angles(&mut self) {
        debug_assert!(self.at_punct("<"));
        let mut depth = 0i64;
        while let Some(t) = self.peek() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        let arrow = self.pos > 0
                            && self.toks[self.pos - 1].kind == TokenKind::Punct
                            && self.toks[self.pos - 1].text == "-";
                        if !arrow {
                            depth -= 1;
                            if depth == 0 {
                                self.pos += 1;
                                return;
                            }
                        }
                    }
                    "(" | "[" | "{" => {
                        let close = self.matching(self.pos);
                        self.pos = close; // +1 below
                    }
                    ";" => return, // malformed; bail without consuming
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }

    /// Skips a type: `&`/`*` prefixes, path segments, balanced angle
    /// lists, parenthesized/array types, `dyn`/`impl` markers. Stops at
    /// anything else. Collects identifiers into `out`.
    fn skip_type(&mut self, out: &mut Vec<String>) {
        loop {
            if self.at_punct("&") || self.at_punct("&&") || self.at_punct("*") {
                self.pos += 1;
                continue;
            }
            if self.peek().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                self.pos += 1;
                continue;
            }
            if self.at_ident("mut") || self.at_ident("const") || self.at_ident("dyn") {
                self.pos += 1;
                continue;
            }
            if self.at_punct("(") || self.at_punct("[") {
                let close = self.matching(self.pos);
                for t in &self.toks[self.pos..=close.min(self.toks.len() - 1)] {
                    if t.kind == TokenKind::Ident {
                        out.push(t.text.clone());
                    }
                }
                self.pos = close + 1;
                // tuple/array type may be followed by more path (rare) — stop
                return;
            }
            if self.at_any_ident() {
                // a path segment (including `impl Trait`, `fn(..)` pointers)
                let t = self.bump().expect("ident");
                if t.text != "impl" && t.text != "fn" && t.text != "as" {
                    out.push(t.text.clone());
                }
                if t.text == "fn" && self.at_punct("(") {
                    let close = self.matching(self.pos);
                    for t in &self.toks[self.pos..=close.min(self.toks.len() - 1)] {
                        if t.kind == TokenKind::Ident {
                            out.push(t.text.clone());
                        }
                    }
                    self.pos = close + 1;
                }
                if self.at_punct("<") {
                    let before = self.pos;
                    self.skip_angles();
                    for t in &self.toks[before..self.pos] {
                        if t.kind == TokenKind::Ident {
                            out.push(t.text.clone());
                        }
                    }
                }
                if self.punct_at(0, ":") && self.punct_at(1, ":") {
                    self.pos += 2;
                    continue;
                }
                if self.at_punct("+") {
                    // trait bound union: `impl A + B`
                    self.pos += 1;
                    continue;
                }
                if self.at_punct("-") && self.punct_at(1, ">") {
                    // fn-pointer return: `fn(..) -> T`
                    self.pos += 2;
                    continue;
                }
                return;
            }
            return;
        }
    }

    // ---- items ----------------------------------------------------------

    /// Parses items until token index `end`.
    fn parse_items(&mut self, end: usize, in_test: bool) -> Vec<Item> {
        let mut items = Vec::new();
        while self.pos < end {
            let before = self.pos;
            let item = self.parse_item(end, in_test);
            items.push(item);
            if self.pos == before {
                // absolute progress guard — cannot happen, but never loop
                self.pos += 1;
            }
        }
        items
    }

    /// Parses one item starting at the current position (attributes
    /// included in its span). Unknown leading tokens become `Opaque`.
    fn parse_item(&mut self, end: usize, in_test: bool) -> Item {
        let start = self.pos;
        let mut is_test_attr = false;

        // attributes: `#[...]` / `#![...]`
        while self.at_punct("#") && self.pos < end {
            let mut j = self.pos + 1;
            if self.punct_at(1, "!") {
                j += 1;
            }
            if !(self.toks.get(j).is_some_and(|t| t.kind == TokenKind::Punct && t.text == "[")) {
                break;
            }
            let save = self.pos;
            self.pos = j;
            let close = self.matching(self.pos);
            for t in &self.toks[save..=close.min(self.toks.len() - 1)] {
                if t.kind == TokenKind::Ident && t.text == "test" {
                    is_test_attr = true;
                }
            }
            self.pos = close + 1;
        }

        // visibility
        if self.eat_ident("pub") && self.at_punct("(") {
            let close = self.matching(self.pos);
            self.pos = close + 1;
        }

        // qualifiers before `fn`
        loop {
            if self.at_ident("const") {
                // `const fn` vs `const NAME: ...` item
                let next = self.peek_at(1);
                let is_fn_qualifier = next.is_some_and(|t| {
                    t.kind == TokenKind::Ident
                        && matches!(t.text.as_str(), "fn" | "unsafe" | "extern" | "async")
                });
                if is_fn_qualifier {
                    self.pos += 1;
                    continue;
                }
                break;
            }
            if self.at_ident("async") || self.at_ident("unsafe") || self.at_ident("default") {
                self.pos += 1;
                continue;
            }
            if self.at_ident("extern") {
                self.pos += 1;
                if self.peek().is_some_and(|t| t.kind == TokenKind::Str) {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }

        let kind = if self.at_ident("fn") {
            ItemKind::Fn(self.parse_fn(is_test_attr))
        } else if self.at_ident("impl") {
            ItemKind::Impl(self.parse_impl(in_test))
        } else if self.at_ident("mod") {
            self.pos += 1;
            let name = self.bump_ident_name();
            if self.at_punct("{") {
                let close = self.matching(self.pos);
                self.pos += 1; // into the braces
                let items = self.parse_items(close, in_test || is_test_attr);
                self.pos = close + 1;
                ItemKind::Mod {
                    name,
                    is_test: is_test_attr,
                    items,
                }
            } else {
                self.eat_punct(";");
                ItemKind::Mod {
                    name,
                    is_test: is_test_attr,
                    items: Vec::new(),
                }
            }
        } else if self.at_ident("trait") {
            self.pos += 1;
            let name = self.bump_ident_name();
            if self.at_punct("<") {
                self.skip_angles();
            }
            // supertrait bounds / where clause: skip to the body
            while self.pos < end && !self.at_punct("{") && !self.at_punct(";") {
                if self.at_punct("<") {
                    self.skip_angles();
                } else if self.at_punct("(") || self.at_punct("[") {
                    let close = self.matching(self.pos);
                    self.pos = close + 1;
                } else {
                    self.pos += 1;
                }
            }
            if self.at_punct("{") {
                let close = self.matching(self.pos);
                self.pos += 1;
                let items = self.parse_items(close, in_test);
                self.pos = close + 1;
                ItemKind::Trait { name, items }
            } else {
                self.eat_punct(";");
                ItemKind::Trait {
                    name,
                    items: Vec::new(),
                }
            }
        } else if self.at_ident("struct") || self.at_ident("enum") || self.at_ident("union") {
            let what = self.bump().expect("kw").text.clone();
            let name = if self.at_any_ident() {
                Some(self.bump_ident_name())
            } else {
                None
            };
            // skip generics, tuple body, where clause, braced body / `;`
            while self.pos < end {
                if self.at_punct("<") {
                    self.skip_angles();
                } else if self.at_punct("(") {
                    let close = self.matching(self.pos);
                    self.pos = close + 1;
                } else if self.at_punct("{") {
                    let close = self.matching(self.pos);
                    self.pos = close + 1;
                    break;
                } else if self.eat_punct(";") {
                    break;
                } else {
                    self.pos += 1;
                }
            }
            ItemKind::Other { what, name }
        } else if self.at_ident("macro_rules") {
            self.pos += 1; // macro_rules
            self.eat_punct("!");
            let name = if self.at_any_ident() {
                Some(self.bump_ident_name())
            } else {
                None
            };
            if self.at_punct("{") || self.at_punct("(") || self.at_punct("[") {
                let close = self.matching(self.pos);
                self.pos = close + 1;
            }
            self.eat_punct(";");
            ItemKind::Other {
                what: "macro_rules".into(),
                name,
            }
        } else if self.at_ident("use")
            || self.at_ident("type")
            || self.at_ident("static")
            || self.at_ident("const")
        {
            let what = self.bump().expect("kw").text.clone();
            let name = if self.at_any_ident() {
                Some(self.toks[self.pos].text.clone())
            } else {
                None
            };
            // skip to the `;` closing the item, jumping groups whole
            while self.pos < end {
                if self.at_punct("(") || self.at_punct("[") || self.at_punct("{") {
                    let close = self.matching(self.pos);
                    self.pos = close + 1;
                } else if self.eat_punct(";") {
                    break;
                } else if self.at_punct("<") {
                    self.skip_angles();
                } else {
                    self.pos += 1;
                }
            }
            ItemKind::Other { what, name }
        } else if self.at_any_ident()
            && self.punct_at(1, "!")
            && (self.punct_at(2, "(") || self.punct_at(2, "[") || self.punct_at(2, "{"))
        {
            // item-position macro invocation: `proptest! { ... }`,
            // `criterion_group!(...)`. Brace-delimited contents are
            // parsed as items so fns inside (proptest bodies) reach
            // the call graph; other delimiters are skipped whole.
            let name = self.bump().expect("macro name").text.clone();
            self.pos += 1; // !
            let braced = self.at_punct("{");
            let close = self.matching(self.pos);
            let items = if braced {
                self.pos += 1;
                let items = self.parse_items(close, in_test);
                self.pos = close + 1;
                items
            } else {
                self.pos = close + 1;
                self.eat_punct(";");
                Vec::new()
            };
            ItemKind::Mod {
                name: format!("{name}!"),
                is_test: is_test_attr,
                items,
            }
        } else {
            // not an item start: consume a single token as Opaque, but
            // only if nothing (attr/vis/qualifier) was consumed yet —
            // otherwise record what we did consume as an opaque item.
            if self.pos == start {
                self.pos += 1;
            }
            ItemKind::Opaque
        };

        Item {
            kind,
            span: (start, self.pos),
        }
    }

    fn bump_ident_name(&mut self) -> String {
        if self.at_any_ident() {
            self.bump().expect("ident").text.clone()
        } else {
            String::new()
        }
    }

    /// Parses `impl<G> Trait for Type<G> where ... { items }`; `pos` is
    /// at the `impl` keyword.
    fn parse_impl(&mut self, in_test: bool) -> ImplDef {
        self.pos += 1; // impl
        if self.at_punct("<") {
            self.skip_angles();
        }
        // Collect the header: everything to the `{` at depth 0.
        let mut before_for: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut saw_for = false;
        while self.pos < self.toks.len() && !self.at_punct("{") && !self.at_punct(";") {
            if self.at_punct("<") {
                self.skip_angles();
                continue;
            }
            if self.at_ident("where") {
                // skip the where clause wholesale
                while self.pos < self.toks.len() && !self.at_punct("{") && !self.at_punct(";") {
                    if self.at_punct("<") {
                        self.skip_angles();
                    } else if self.at_punct("(") || self.at_punct("[") {
                        let close = self.matching(self.pos);
                        self.pos = close + 1;
                    } else {
                        self.pos += 1;
                    }
                }
                break;
            }
            if self.at_ident("for") {
                saw_for = true;
                self.pos += 1;
                continue;
            }
            if self.at_any_ident() {
                let name = self.bump().expect("ident").text.clone();
                if saw_for {
                    after_for.push(name);
                } else {
                    before_for.push(name);
                }
                continue;
            }
            self.pos += 1;
        }
        let (self_ty, trait_name) = if saw_for {
            (
                after_for.last().cloned().unwrap_or_default(),
                before_for.last().cloned(),
            )
        } else {
            (before_for.last().cloned().unwrap_or_default(), None)
        };
        let items = if self.at_punct("{") {
            let close = self.matching(self.pos);
            self.pos += 1;
            let items = self.parse_items(close, in_test);
            self.pos = close + 1;
            items
        } else {
            self.eat_punct(";");
            Vec::new()
        };
        ImplDef {
            self_ty,
            trait_name,
            items,
        }
    }

    /// Parses a `fn` item; `pos` is at the `fn` keyword.
    fn parse_fn(&mut self, is_test: bool) -> FnDef {
        let kw_idx = self.pos;
        let line = self.line();
        self.pos += 1; // fn
        let name = self.bump_ident_name();
        if self.at_punct("<") {
            self.skip_angles();
        }
        let params = if self.at_punct("(") {
            let close = self.matching(self.pos);
            let params = self.parse_params(close);
            self.pos = close + 1;
            params
        } else {
            Vec::new()
        };
        // return type
        let mut ret = Vec::new();
        if self.at_punct("-") && self.punct_at(1, ">") {
            self.pos += 2;
            while self.pos < self.toks.len()
                && !self.at_punct("{")
                && !self.at_punct(";")
                && !self.at_ident("where")
            {
                if self.at_punct("<") {
                    let before = self.pos;
                    self.skip_angles();
                    for t in &self.toks[before..self.pos] {
                        if t.kind == TokenKind::Ident {
                            ret.push(t.text.clone());
                        }
                    }
                    continue;
                }
                if self.at_punct("(") || self.at_punct("[") {
                    let close = self.matching(self.pos);
                    for t in &self.toks[self.pos..=close.min(self.toks.len() - 1)] {
                        if t.kind == TokenKind::Ident {
                            ret.push(t.text.clone());
                        }
                    }
                    self.pos = close + 1;
                    continue;
                }
                if self.at_any_ident() {
                    ret.push(self.toks[self.pos].text.clone());
                }
                self.pos += 1;
            }
        }
        // where clause (group contents jumped whole: `[u8; 48]` has a
        // `;` that must not read as the item terminator)
        if self.at_ident("where") {
            while self.pos < self.toks.len() && !self.at_punct("{") && !self.at_punct(";") {
                if self.at_punct("<") {
                    self.skip_angles();
                } else if self.at_punct("(") || self.at_punct("[") {
                    let close = self.matching(self.pos);
                    self.pos = close + 1;
                } else {
                    self.pos += 1;
                }
            }
        }
        // body
        let body = if self.at_punct("{") {
            let close = self.matching(self.pos);
            self.pos += 1;
            let stmts = self.parse_block(close);
            self.pos = close + 1;
            Some(stmts)
        } else {
            self.eat_punct(";");
            None
        };
        FnDef {
            name,
            line,
            kw_idx,
            params,
            ret,
            body,
            is_test,
        }
    }

    /// Parses the parameter list between the `(` at `pos` and `close`.
    fn parse_params(&mut self, close: usize) -> Vec<Param> {
        self.pos += 1; // (
        let mut params = Vec::new();
        while self.pos < close {
            // one parameter: tokens up to the next comma at depth 0
            let mut param = Param::default();
            let mut seen_colon = false;
            while self.pos < close {
                if self.at_punct(",") {
                    self.pos += 1;
                    break;
                }
                if self.at_punct("<") {
                    let before = self.pos;
                    self.skip_angles();
                    if seen_colon {
                        for t in &self.toks[before..self.pos] {
                            if t.kind == TokenKind::Ident {
                                param.ty.push(t.text.clone());
                            }
                        }
                    }
                    continue;
                }
                if self.at_punct("(") || self.at_punct("[") || self.at_punct("{") {
                    let group_close = self.matching(self.pos);
                    for t in &self.toks[self.pos..=group_close.min(self.toks.len() - 1)] {
                        if t.kind == TokenKind::Ident {
                            if seen_colon {
                                param.ty.push(t.text.clone());
                            } else if !matches!(t.text.as_str(), "mut" | "ref") {
                                param.names.push(t.text.clone());
                            }
                        }
                    }
                    self.pos = group_close + 1;
                    continue;
                }
                if self.at_punct(":") {
                    seen_colon = true;
                    self.pos += 1;
                    continue;
                }
                if self.at_any_ident() {
                    let text = self.toks[self.pos].text.clone();
                    self.pos += 1;
                    if text == "self" && !seen_colon {
                        param.is_self = true;
                    } else if seen_colon {
                        param.ty.push(text);
                    } else if !matches!(text.as_str(), "mut" | "ref" | "_") {
                        param.names.push(text);
                    }
                    continue;
                }
                self.pos += 1;
            }
            if param.is_self || !param.names.is_empty() || !param.ty.is_empty() {
                params.push(param);
            }
        }
        params
    }

    // ---- statements -----------------------------------------------------

    /// Parses the statements between the current position and `end`
    /// (exclusive; the caller already stepped past the opening `{`).
    fn parse_block(&mut self, end: usize) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        while self.pos < end {
            let before = self.pos;
            if self.eat_punct(";") {
                continue;
            }
            // statement-position attributes
            if self.at_punct("#") {
                let mut j = self.pos + 1;
                if self.punct_at(1, "!") {
                    j += 1;
                }
                if self.toks.get(j).is_some_and(|t| t.kind == TokenKind::Punct && t.text == "[") {
                    self.pos = j;
                    let close = self.matching(self.pos);
                    self.pos = close + 1;
                    continue;
                }
            }
            if self.at_ident("let") {
                stmts.push(self.parse_let(end));
            } else if self
                .peek()
                .is_some_and(|t| t.kind == TokenKind::Ident && ITEM_KEYWORDS.contains(&t.text.as_str()))
                || (self.at_ident("pub"))
                || (self.at_ident("const")
                    && self
                        .peek_at(1)
                        .is_some_and(|t| t.kind == TokenKind::Ident && t.text != "fn")
                    && !self.punct_at(1, "{"))
            {
                // nested item (fn/use/struct/... in statement position).
                // NB `const { ... }` blocks and `const fn` fall through
                // to the item parser's qualifier handling.
                let item = self.parse_item(end, false);
                stmts.push(Stmt::Item(Box::new(item)));
            } else {
                let e = self.parse_expr(end, false);
                stmts.push(Stmt::Expr(e));
                self.eat_punct(";");
            }
            if self.pos == before {
                stmts.push(Stmt::Expr(Expr::Unknown { line: self.line() }));
                self.pos += 1;
            }
        }
        stmts
    }

    /// Parses a `let` statement; `pos` is at `let`.
    fn parse_let(&mut self, end: usize) -> Stmt {
        let line = self.line();
        self.pos += 1; // let
        let names = self.parse_pattern_names(end, &["=", ":", ";"]);
        let mut ty = Vec::new();
        if self.at_punct(":") {
            self.pos += 1;
            while self.pos < end && !self.at_punct("=") && !self.at_punct(";") {
                if self.at_punct("<") {
                    let before = self.pos;
                    self.skip_angles();
                    for t in &self.toks[before..self.pos] {
                        if t.kind == TokenKind::Ident {
                            ty.push(t.text.clone());
                        }
                    }
                    continue;
                }
                if self.at_punct("(") || self.at_punct("[") {
                    let close = self.matching(self.pos);
                    for t in &self.toks[self.pos..=close.min(self.toks.len() - 1)] {
                        if t.kind == TokenKind::Ident {
                            ty.push(t.text.clone());
                        }
                    }
                    self.pos = close + 1;
                    continue;
                }
                if self.at_any_ident() {
                    ty.push(self.toks[self.pos].text.clone());
                }
                self.pos += 1;
            }
        }
        let mut init = None;
        let mut els = None;
        if self.eat_punct("=") {
            init = Some(self.parse_expr(end, false));
            if self.eat_ident("else") && self.at_punct("{") {
                let close = self.matching(self.pos);
                self.pos += 1;
                els = Some(self.parse_block(close));
                self.pos = close + 1;
            }
        }
        self.eat_punct(";");
        Stmt::Let {
            names,
            ty,
            init,
            els,
            line,
        }
    }

    /// Collects binding identifiers of a pattern, advancing until one
    /// of `stops` appears at delimiter depth 0 (the stop token is not
    /// consumed). Also stops at `in` (for-loop patterns) and before
    /// `=` when it is part of `==`/`=>`/`..=`.
    fn parse_pattern_names(&mut self, end: usize, stops: &[&str]) -> Vec<String> {
        let mut names = Vec::new();
        while self.pos < end {
            if let Some(t) = self.peek() {
                if t.kind == TokenKind::Punct {
                    if stops.contains(&t.text.as_str()) {
                        if t.text == "=" {
                            // `..=` range pattern: the `=` belongs to the range
                            let prev_dot = self.pos > 0
                                && self.toks[self.pos - 1].kind == TokenKind::Punct
                                && self.toks[self.pos - 1].text == ".";
                            if prev_dot {
                                self.pos += 1;
                                continue;
                            }
                        }
                        return names;
                    }
                    if matches!(t.text.as_str(), "(" | "[" | "{") {
                        let close = self.matching(self.pos);
                        // collect nested binding idents too
                        let mut j = self.pos + 1;
                        while j < close {
                            let tj = &self.toks[j];
                            if tj.kind == TokenKind::Ident
                                && !matches!(tj.text.as_str(), "mut" | "ref" | "_")
                                && !(j + 2 < close
                                    && self.toks[j + 1].kind == TokenKind::Punct
                                    && self.toks[j + 1].text == ":"
                                    && self.toks[j + 2].kind == TokenKind::Punct
                                    && self.toks[j + 2].text == ":")
                            {
                                names.push(tj.text.clone());
                            }
                            j += 1;
                        }
                        self.pos = close + 1;
                        continue;
                    }
                } else if t.kind == TokenKind::Ident {
                    if t.text == "in" && stops.contains(&"in") {
                        return names;
                    }
                    if t.text == "if" && stops.contains(&"if") {
                        return names;
                    }
                    if !matches!(t.text.as_str(), "mut" | "ref" | "_" | "in") {
                        names.push(t.text.clone());
                    }
                    self.pos += 1;
                    continue;
                }
            }
            self.pos += 1;
        }
        names
    }

    // ---- expressions ----------------------------------------------------

    /// Parses one expression. `no_struct` disables struct-literal
    /// parsing (if/while/match-scrutinee position). Stops before any
    /// token that cannot continue the expression.
    fn parse_expr(&mut self, end: usize, no_struct: bool) -> Expr {
        let lhs = self.parse_prefix(end, no_struct);
        self.parse_binop_chain(lhs, end, no_struct)
    }

    fn parse_binop_chain(&mut self, mut lhs: Expr, end: usize, no_struct: bool) -> Expr {
        loop {
            if self.pos >= end {
                return lhs;
            }
            let Some(t) = self.peek() else { return lhs };
            if t.kind == TokenKind::Ident && t.text == "as" {
                self.pos += 1;
                let mut sink = Vec::new();
                self.skip_type(&mut sink);
                lhs = Expr::Cast {
                    inner: Box::new(lhs),
                };
                continue;
            }
            if t.kind != TokenKind::Punct {
                return lhs;
            }
            let line = t.line;
            match t.text.as_str() {
                "&&" | "||" => {
                    let op = t.text.clone();
                    self.pos += 1;
                    let rhs = self.parse_prefix(end, no_struct);
                    lhs = Expr::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        line,
                    };
                }
                "=" => {
                    if self.punct_at(1, "=") {
                        self.pos += 2;
                        let rhs = self.parse_prefix(end, no_struct);
                        lhs = Expr::Binary {
                            op: "==".into(),
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                            line,
                        };
                    } else if self.punct_at(1, ">") {
                        // `=>` match arm arrow: not ours
                        return lhs;
                    } else {
                        self.pos += 1;
                        let value = self.parse_expr(end, no_struct);
                        return Expr::Assign {
                            target: Box::new(lhs),
                            value: Box::new(value),
                            line,
                        };
                    }
                }
                "!" if self.punct_at(1, "=") => {
                    self.pos += 2;
                    let rhs = self.parse_prefix(end, no_struct);
                    lhs = Expr::Binary {
                        op: "!=".into(),
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        line,
                    };
                }
                "." if self.punct_at(1, ".") => {
                    // range: `..` / `..=`
                    self.pos += 2;
                    self.eat_punct("=");
                    let hi = if self.range_has_upper(end) {
                        Some(Box::new(self.parse_prefix_postfix_only(end, no_struct)))
                    } else {
                        None
                    };
                    lhs = Expr::Range {
                        lo: Some(Box::new(lhs)),
                        hi,
                        line,
                    };
                }
                "+" | "-" | "*" | "/" | "%" | "^" | "&" | "|" | "<" | ">" => {
                    let mut op = t.text.clone();
                    self.pos += 1;
                    // multi-char operators built from single-char tokens
                    if (op == "<" && self.at_punct("<")) || (op == ">" && self.at_punct(">")) {
                        op.push_str(&self.bump().expect("shift").text);
                    }
                    if self.at_punct("=") {
                        match op.as_str() {
                            "<" | ">" => {
                                // comparison <= / >=
                                self.pos += 1;
                                op.push('=');
                            }
                            _ => {
                                // compound assignment
                                self.pos += 1;
                                let value = self.parse_expr(end, no_struct);
                                return Expr::Assign {
                                    target: Box::new(lhs),
                                    value: Box::new(value),
                                    line,
                                };
                            }
                        }
                    }
                    let rhs = self.parse_prefix(end, no_struct);
                    lhs = Expr::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        line,
                    };
                }
                _ => return lhs,
            }
        }
    }

    /// Whether a range expression has an upper bound here (vs `a..` at
    /// the end of a slice index or struct-update position).
    fn range_has_upper(&self, end: usize) -> bool {
        if self.pos >= end {
            return false;
        }
        match self.peek() {
            None => false,
            Some(t) => !(t.kind == TokenKind::Punct
                && matches!(t.text.as_str(), ")" | "]" | "}" | "," | ";" | "{")),
        }
    }

    /// Prefix + primary + postfix, without binary continuation (used
    /// for range upper bounds where `..a + b` grouping is irrelevant).
    fn parse_prefix_postfix_only(&mut self, end: usize, no_struct: bool) -> Expr {
        self.parse_prefix(end, no_struct)
    }

    fn parse_prefix(&mut self, end: usize, no_struct: bool) -> Expr {
        if self.pos >= end {
            return Expr::Unknown { line: self.line() };
        }
        // prefix operators
        if self.at_punct("&") || self.at_punct("&&") || self.at_punct("*") || self.at_punct("-")
            || (self.at_punct("!") && !self.punct_at(1, "="))
        {
            self.pos += 1;
            self.eat_ident("mut");
            let inner = self.parse_prefix(end, no_struct);
            return Expr::Unary {
                inner: Box::new(inner),
            };
        }
        let primary = self.parse_primary(end, no_struct);
        self.parse_postfix(primary, end, no_struct)
    }

    fn parse_postfix(&mut self, mut e: Expr, end: usize, no_struct: bool) -> Expr {
        loop {
            if self.pos >= end {
                return e;
            }
            if self.at_punct("?") {
                self.pos += 1;
                continue;
            }
            if self.at_punct(".") {
                if self.punct_at(1, ".") {
                    // range — belongs to the binop chain
                    return e;
                }
                let line = self.line();
                match self.peek_at(1) {
                    Some(t) if t.kind == TokenKind::Ident => {
                        let name = t.text.clone();
                        self.pos += 2;
                        if name == "await" {
                            continue;
                        }
                        // turbofish between name and call parens
                        if self.punct_at(0, ":") && self.punct_at(1, ":") {
                            self.pos += 2;
                            if self.at_punct("<") {
                                self.skip_angles();
                            }
                        }
                        if self.at_punct("(") {
                            let close = self.matching(self.pos);
                            let args = self.parse_expr_list(close);
                            self.pos = close + 1;
                            e = Expr::Method {
                                recv: Box::new(e),
                                name,
                                args,
                                line,
                            };
                        } else {
                            e = Expr::Field {
                                base: Box::new(e),
                                name,
                                line,
                            };
                        }
                        continue;
                    }
                    Some(t) if t.kind == TokenKind::Num => {
                        let name = t.text.clone();
                        self.pos += 2;
                        e = Expr::Field {
                            base: Box::new(e),
                            name,
                            line,
                        };
                        continue;
                    }
                    _ => return e,
                }
            }
            if self.at_punct("(") {
                let line = self.line();
                let close = self.matching(self.pos);
                let args = self.parse_expr_list(close);
                self.pos = close + 1;
                e = match e {
                    Expr::Path { segs, .. } => Expr::Call { segs, args, line },
                    other => Expr::CallExpr {
                        callee: Box::new(other),
                        args,
                        line,
                    },
                };
                continue;
            }
            if self.at_punct("[") {
                let line = self.line();
                let close = self.matching(self.pos);
                self.pos += 1;
                let index = if self.pos < close {
                    self.parse_expr(close, false)
                } else {
                    Expr::Unknown { line }
                };
                self.pos = close + 1;
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(index),
                    line,
                };
                continue;
            }
            let _ = no_struct;
            return e;
        }
    }

    /// Parses a comma-separated expression list up to (exclusive) the
    /// token index `close`; `pos` is at the opening delimiter.
    fn parse_expr_list(&mut self, close: usize) -> Vec<Expr> {
        self.pos += 1; // opening delimiter
        let mut out = Vec::new();
        while self.pos < close {
            let before = self.pos;
            let e = self.parse_expr(close, false);
            out.push(e);
            if self.at_punct(",") || self.at_punct(";") {
                self.pos += 1;
            }
            if self.pos == before {
                self.pos += 1; // skip an unparseable token (e.g. pattern in matches!)
            }
        }
        out
    }

    fn parse_primary(&mut self, end: usize, no_struct: bool) -> Expr {
        let line = self.line();
        if self.pos >= end {
            return Expr::Unknown { line };
        }
        let t = self.toks[self.pos].clone();

        // labels: `'outer: loop { ... }`
        if t.kind == TokenKind::Lifetime {
            self.pos += 1;
            self.eat_punct(":");
            return self.parse_primary(end, no_struct);
        }

        match t.kind {
            TokenKind::Num | TokenKind::Str | TokenKind::Char => {
                self.pos += 1;
                return Expr::Lit { line };
            }
            TokenKind::Punct => match t.text.as_str() {
                "(" => {
                    let close = self.matching(self.pos);
                    let items = self.parse_expr_list(close);
                    self.pos = close + 1;
                    return if items.len() == 1 {
                        items.into_iter().next().expect("one element")
                    } else {
                        Expr::Tuple { items, line }
                    };
                }
                "[" => {
                    let close = self.matching(self.pos);
                    let items = self.parse_expr_list(close);
                    self.pos = close + 1;
                    return Expr::Array { items, line };
                }
                "{" => {
                    let close = self.matching(self.pos);
                    self.pos += 1;
                    let stmts = self.parse_block(close);
                    self.pos = close + 1;
                    return Expr::Block { stmts, line };
                }
                "|" | "||" => {
                    // closure
                    let params = if t.text == "|" {
                        self.pos += 1;
                        self.closure_params(end)
                    } else {
                        self.pos += 1;
                        Vec::new()
                    };
                    // optional return type forces a block body
                    if self.at_punct("-") && self.punct_at(1, ">") {
                        self.pos += 2;
                        while self.pos < end && !self.at_punct("{") {
                            if self.at_punct("<") {
                                self.skip_angles();
                            } else {
                                self.pos += 1;
                            }
                        }
                    }
                    let body = self.parse_expr(end, false);
                    return Expr::Closure {
                        params,
                        body: Box::new(body),
                        line,
                    };
                }
                _ => {
                    self.pos += 1;
                    return Expr::Unknown { line };
                }
            },
            TokenKind::Ident => {}
            TokenKind::Lifetime => unreachable!("handled above"),
        }

        // identifier-led constructs
        match t.text.as_str() {
            "move" => {
                self.pos += 1;
                // `move |...| body` / `move || body`
                return self.parse_primary(end, no_struct);
            }
            "return" | "break" => {
                self.pos += 1;
                if self.peek().is_some_and(|n| n.kind == TokenKind::Lifetime) {
                    self.pos += 1; // break label
                }
                let value = if self.expr_follows(end) {
                    Some(Box::new(self.parse_expr(end, no_struct)))
                } else {
                    None
                };
                return Expr::Return { value, line };
            }
            "continue" => {
                self.pos += 1;
                if self.peek().is_some_and(|n| n.kind == TokenKind::Lifetime) {
                    self.pos += 1;
                }
                return Expr::Return { value: None, line };
            }
            "if" => return self.parse_if(end),
            "match" => return self.parse_match(end),
            "loop" => {
                self.pos += 1;
                let body = self.braced_block(end);
                return Expr::Loop {
                    cond: None,
                    body,
                    line,
                };
            }
            "while" => {
                self.pos += 1;
                if self.eat_ident("let") {
                    let _pat = self.parse_pattern_names(end, &["="]);
                    self.eat_punct("=");
                }
                let cond = self.parse_expr(end, true);
                let body = self.braced_block(end);
                return Expr::Loop {
                    cond: Some(Box::new(cond)),
                    body,
                    line,
                };
            }
            "for" => {
                self.pos += 1;
                let pat_names = self.parse_pattern_names(end, &["in"]);
                self.eat_ident("in");
                let iter = self.parse_expr(end, true);
                let body = self.braced_block(end);
                return Expr::For {
                    pat_names,
                    iter: Box::new(iter),
                    body,
                    line,
                };
            }
            "unsafe" | "async" => {
                self.pos += 1;
                if self.at_punct("{") {
                    let close = self.matching(self.pos);
                    self.pos += 1;
                    let stmts = self.parse_block(close);
                    self.pos = close + 1;
                    return Expr::Block { stmts, line };
                }
                return Expr::Unknown { line };
            }
            _ => {}
        }

        // path
        let mut segs = vec![self.bump().expect("ident").text.clone()];
        loop {
            if self.punct_at(0, ":") && self.punct_at(1, ":") {
                self.pos += 2;
                if self.at_punct("<") {
                    self.skip_angles();
                    continue;
                }
                if self.at_any_ident() {
                    segs.push(self.bump().expect("ident").text.clone());
                    continue;
                }
                break;
            }
            break;
        }

        // macro invocation
        if self.at_punct("!")
            && (self.punct_at(1, "(") || self.punct_at(1, "[") || self.punct_at(1, "{"))
        {
            self.pos += 1; // !
            let close = self.matching(self.pos);
            let args = self.parse_expr_list(close);
            self.pos = close + 1;
            return Expr::Macro { segs, args, line };
        }

        // struct literal
        if self.at_punct("{") && !no_struct {
            let close = self.matching(self.pos);
            self.pos += 1; // {
            let mut fields = Vec::new();
            let mut base = None;
            while self.pos < close {
                let before = self.pos;
                if self.at_punct(".") && self.punct_at(1, ".") {
                    self.pos += 2;
                    base = Some(Box::new(self.parse_expr(close, false)));
                } else if self.at_any_ident() || self.peek().is_some_and(|t| t.kind == TokenKind::Num) {
                    let fname = self.bump().expect("field").text.clone();
                    if self.eat_punct(":") {
                        let v = self.parse_expr(close, false);
                        fields.push((fname, v));
                    } else {
                        // shorthand field
                        let fline = self.line();
                        fields.push((
                            fname.clone(),
                            Expr::Path {
                                segs: vec![fname],
                                line: fline,
                            },
                        ));
                    }
                }
                if self.at_punct(",") {
                    self.pos += 1;
                }
                if self.pos == before {
                    self.pos += 1;
                }
            }
            self.pos = close + 1;
            return Expr::Struct {
                segs,
                fields,
                base,
                line,
            };
        }

        Expr::Path { segs, line }
    }

    /// Collects closure parameter names; `pos` is just past the
    /// opening `|`. Consumes through the closing `|`.
    fn closure_params(&mut self, end: usize) -> Vec<String> {
        let mut names = Vec::new();
        let mut after_colon = false;
        while self.pos < end {
            if self.at_punct("|") {
                self.pos += 1;
                return names;
            }
            if self.at_punct(",") {
                after_colon = false;
                self.pos += 1;
                continue;
            }
            if self.at_punct(":") {
                after_colon = true;
                self.pos += 1;
                continue;
            }
            if self.at_punct("(") || self.at_punct("[") || self.at_punct("<") {
                if self.at_punct("<") {
                    self.skip_angles();
                } else {
                    let close = self.matching(self.pos);
                    if !after_colon {
                        for t in &self.toks[self.pos..=close.min(self.toks.len() - 1)] {
                            if t.kind == TokenKind::Ident
                                && !matches!(t.text.as_str(), "mut" | "ref" | "_")
                            {
                                names.push(t.text.clone());
                            }
                        }
                    }
                    self.pos = close + 1;
                }
                continue;
            }
            if self.at_any_ident() {
                let text = self.bump().expect("ident").text.clone();
                if !after_colon && !matches!(text.as_str(), "mut" | "ref" | "_") {
                    names.push(text);
                }
                continue;
            }
            self.pos += 1;
        }
        names
    }

    /// Whether an expression plausibly starts at the current token
    /// (used after `return`/`break`).
    fn expr_follows(&self, end: usize) -> bool {
        if self.pos >= end {
            return false;
        }
        match self.peek() {
            None => false,
            Some(t) => match t.kind {
                TokenKind::Punct => {
                    matches!(t.text.as_str(), "(" | "[" | "{" | "&" | "&&" | "*" | "-" | "!" | "|" | "||")
                }
                TokenKind::Ident => !matches!(t.text.as_str(), "else"),
                _ => true,
            },
        }
    }

    /// Parses the `{ ... }` block expected next; recovers by returning
    /// an empty block when it is missing.
    fn braced_block(&mut self, _end: usize) -> Vec<Stmt> {
        if self.at_punct("{") {
            let close = self.matching(self.pos);
            self.pos += 1;
            let stmts = self.parse_block(close);
            self.pos = close + 1;
            stmts
        } else {
            Vec::new()
        }
    }

    fn parse_if(&mut self, end: usize) -> Expr {
        let line = self.line();
        self.pos += 1; // if
        if self.eat_ident("let") {
            let _pat = self.parse_pattern_names(end, &["="]);
            self.eat_punct("=");
        }
        let cond = self.parse_expr(end, true);
        let then = self.braced_block(end);
        let alt = if self.eat_ident("else") {
            if self.at_ident("if") {
                Some(Box::new(self.parse_if(end)))
            } else {
                let bline = self.line();
                Some(Box::new(Expr::Block {
                    stmts: self.braced_block(end),
                    line: bline,
                }))
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then,
            alt,
            line,
        }
    }

    fn parse_match(&mut self, end: usize) -> Expr {
        let line = self.line();
        self.pos += 1; // match
        let scrutinee = self.parse_expr(end, true);
        let mut arms = Vec::new();
        if self.at_punct("{") {
            let close = self.matching(self.pos);
            self.pos += 1;
            while self.pos < close {
                let before = self.pos;
                // pattern up to `=>` or an `if` guard at depth 0
                let _pat = self.parse_pattern_names(close, &["=", "if"]);
                let guard = if self.eat_ident("if") {
                    Some(self.parse_expr(close, true))
                } else {
                    None
                };
                // expect `=>` (= then >)
                if self.at_punct("=") && self.punct_at(1, ">") {
                    self.pos += 2;
                    let value = self.parse_expr(close, false);
                    self.eat_punct(",");
                    arms.push((guard, value));
                } else if self.pos == before {
                    self.pos += 1;
                }
            }
            self.pos = close + 1;
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, ItemKind, Stmt};
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src))
    }

    fn only_fn(ast: &Ast) -> &FnDef {
        for item in &ast.items {
            if let ItemKind::Fn(f) = &item.kind {
                return f;
            }
        }
        panic!("no fn parsed");
    }

    /// Collects (variant-name, detail) facts from a body for asserts.
    fn facts(f: &FnDef) -> Vec<String> {
        let mut out = Vec::new();
        crate::ast::walk_stmts(f.body.as_ref().expect("body"), &mut |e| match e {
            Expr::Call { segs, .. } => out.push(format!("call:{}", segs.join("::"))),
            Expr::Method { name, .. } => out.push(format!("method:{name}")),
            Expr::Macro { segs, .. } => out.push(format!("macro:{}", segs.join("::"))),
            Expr::Index { .. } => out.push("index".into()),
            Expr::Field { name, .. } => out.push(format!("field:{name}")),
            _ => {}
        });
        out
    }

    #[test]
    fn fn_signature_and_body_basics() {
        let ast = parse_src(
            "pub fn verify(sk: &SecretKey, proof: Proof) -> Result<bool, Error> {\
             \n    let x = proof.agg.decompress();\
             \n    check(x, sk.inner)\
             \n}",
        );
        let f = only_fn(&ast);
        assert_eq!(f.name, "verify");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].names, ["sk"]);
        assert!(f.params[0].ty.contains(&"SecretKey".to_string()));
        assert!(f.ret.contains(&"Result".to_string()));
        let facts = facts(f);
        assert!(facts.contains(&"method:decompress".to_string()));
        assert!(facts.contains(&"call:check".to_string()));
        assert!(facts.contains(&"field:agg".to_string()));
        assert!(facts.contains(&"field:inner".to_string()));
    }

    #[test]
    fn impl_blocks_carry_self_type_and_trait() {
        let ast = parse_src(
            "impl Codec for Vec<G1Affine> {\n    fn decode_from(r: &mut R) -> X { f(r) }\n}\
             \nimpl<'a> ByteReader<'a> {\n    fn take(&mut self) {}\n}",
        );
        let mut seen = Vec::new();
        ast.visit_fns(&mut |f, self_ty, trait_name, _, _| {
            seen.push((
                f.name.clone(),
                self_ty.unwrap_or("").to_string(),
                trait_name.unwrap_or("").to_string(),
            ));
        });
        assert_eq!(
            seen,
            vec![
                ("decode_from".into(), "Vec".to_string(), "Codec".to_string()),
                ("take".into(), "ByteReader".to_string(), String::new()),
            ]
        );
    }

    #[test]
    fn struct_literals_vs_if_blocks() {
        let ast = parse_src(
            "fn f(c: bool) -> P {\n    if c { g() } else { h() };\n    P { x: 1, y: k() }\n}",
        );
        let facts = facts(only_fn(&ast));
        assert!(facts.contains(&"call:g".to_string()));
        assert!(facts.contains(&"call:h".to_string()));
        assert!(facts.contains(&"call:k".to_string()));
    }

    #[test]
    fn match_guards_and_arms_are_parsed() {
        let ast = parse_src(
            "fn f(x: Option<u8>) -> u8 {\n    match x {\n        Some(v) if big(v) => use_it(v),\n        Some(1..=9) => 1,\n        _ => fallback(),\n    }\n}",
        );
        let facts = facts(only_fn(&ast));
        assert!(facts.contains(&"call:big".to_string()), "{facts:?}");
        assert!(facts.contains(&"call:use_it".to_string()));
        assert!(facts.contains(&"call:fallback".to_string()));
    }

    #[test]
    fn closures_ranges_turbofish_compound_assign() {
        let ast = parse_src(
            "fn f(v: &[u8]) -> u64 {\n    let mut acc = 0u64;\n    acc += v.iter().map(|b| *b as u64).sum::<u64>();\n    for i in 0..v.len() { acc *= helper(v[i]); }\n    acc\n}",
        );
        let facts = facts(only_fn(&ast));
        assert!(facts.contains(&"method:iter".to_string()));
        assert!(facts.contains(&"method:map".to_string()));
        assert!(facts.contains(&"method:sum".to_string()));
        assert!(facts.contains(&"method:len".to_string()));
        assert!(facts.contains(&"call:helper".to_string()));
        assert!(facts.contains(&"index".to_string()));
    }

    #[test]
    fn macros_expose_inner_calls() {
        let ast = parse_src(
            "fn f(sk: SecretKey) {\n    println!(\"{:?}\", derive(sk));\n    assert_eq!(a(), b());\n}",
        );
        let facts = facts(only_fn(&ast));
        assert!(facts.contains(&"macro:println".to_string()));
        assert!(facts.contains(&"call:derive".to_string()));
        assert!(facts.contains(&"macro:assert_eq".to_string()));
        assert!(facts.contains(&"call:a".to_string()));
        assert!(facts.contains(&"call:b".to_string()));
    }

    #[test]
    fn let_else_and_nested_items() {
        let ast = parse_src(
            "fn f(o: Option<u8>) -> u8 {\n    let Some(x) = o else { return fallback(); };\n    fn nested(q: u8) -> u8 { inner(q) }\n    nested(x)\n}",
        );
        let f = only_fn(&ast);
        let facts = facts(f);
        assert!(facts.contains(&"call:fallback".to_string()), "{facts:?}");
        assert!(facts.contains(&"call:nested".to_string()));
        // the nested fn is reachable via visit_fns
        let mut names = Vec::new();
        ast.visit_fns(&mut |fd, _, _, _, _| names.push(fd.name.clone()));
        assert!(names.contains(&"nested".to_string()));
    }

    #[test]
    fn tiling_holds_on_mixed_items() {
        let src = "//! doc\nuse std::fmt;\n\nconst N: usize = 4;\n\n#[derive(Clone)]\npub struct S<T> { x: T }\n\nimpl<T> S<T> {\n    pub fn get(&self) -> &T { &self.x }\n}\n\nmod inner {\n    pub fn f() {}\n}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(true); }\n}\n";
        let lexed = lex(src);
        let ast = parse(&lexed);
        ast.check_span_tiling(&lexed.tokens).expect("tiling");
        assert_eq!(ast.opaque_tokens(), 0);
    }

    #[test]
    fn cfg_test_mod_marks_fns() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper() {}\n}";
        let ast = parse_src(src);
        let mut flags = Vec::new();
        ast.visit_fns(&mut |f, _, _, in_test, _| flags.push((f.name.clone(), in_test)));
        assert_eq!(flags, vec![("helper".to_string(), true)]);
    }

    #[test]
    fn trait_methods_with_defaults() {
        let src = "pub trait Codec: Sized {\n    const TYPE_NAME: &'static str;\n    fn decode_from(r: &mut R) -> Result<Self, E>;\n    fn decode(bytes: &[u8]) -> Result<Self, E> {\n        Self::decode_from(&mut R::new(bytes))\n    }\n}";
        let ast = parse_src(src);
        let mut seen = Vec::new();
        ast.visit_fns(&mut |f, self_ty, _, _, is_decl| {
            seen.push((f.name.clone(), self_ty.unwrap_or("").to_string(), is_decl, f.body.is_some()));
        });
        assert_eq!(
            seen,
            vec![
                ("decode_from".to_string(), "Codec".to_string(), true, false),
                ("decode".to_string(), "Codec".to_string(), true, true),
            ]
        );
    }

    #[test]
    fn statement_vs_expression_edge_cases() {
        // trailing-dot float, tuple field access, shift operators
        let ast = parse_src(
            "fn f(t: (u8, (u8, u8))) -> f64 {\n    let a = t.1.0;\n    let b = 1u64 << 3 >> 1;\n    let c = 0.;\n    c + a as f64 + b as f64\n}",
        );
        let f = only_fn(&ast);
        assert_eq!(f.name, "f");
        let mut tuple_fields = 0;
        crate::ast::walk_stmts(f.body.as_ref().expect("body"), &mut |e| {
            if let Expr::Field { name, .. } = e {
                if name.chars().all(|c| c.is_ascii_digit()) {
                    tuple_fields += 1;
                }
            }
        });
        assert_eq!(tuple_fields, 2, "t.1.0 is two tuple-field hops");
    }

    #[test]
    fn let_collects_types_and_names() {
        let ast = parse_src("fn f() {\n    let (a, b): (Fr, Fr) = pair();\n    let key: SecretKey = gen();\n}");
        let f = only_fn(&ast);
        let body = f.body.as_ref().expect("body");
        match &body[0] {
            Stmt::Let { names, ty, .. } => {
                assert_eq!(names, &["a", "b"]);
                assert_eq!(ty, &["Fr", "Fr"]);
            }
            other => panic!("expected let, got {other:?}"),
        }
        match &body[1] {
            Stmt::Let { names, ty, .. } => {
                assert_eq!(names, &["key"]);
                assert_eq!(ty, &["SecretKey"]);
            }
            other => panic!("expected let, got {other:?}"),
        }
    }
}
