//! The lightweight AST produced by [`crate::parser`].
//!
//! This is not a faithful Rust grammar: it models exactly what the
//! interprocedural passes need — the item tree (functions, impls,
//! traits, modules) and, inside function bodies, the expression shapes
//! that carry analysis facts: calls, method calls, macros, field
//! projections, indexing, assignments and control flow. Everything
//! else parses to [`Expr::Unknown`] without failing; the parser is
//! total and records token-index spans so the differential gate can
//! assert the item tree tiles the lexer stream exactly.

use crate::lexer::Token;

/// A parsed source file: the item list plus the token stream length it
/// was parsed from (for span/tiling checks).
#[derive(Clone, Debug, Default)]
pub struct Ast {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Length of the token stream the file parsed from.
    pub num_tokens: usize,
}

/// One item, with the half-open token-index range it covers (including
/// its attributes).
#[derive(Clone, Debug)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// Half-open `[start, end)` token-index span.
    pub span: (usize, usize),
}

/// The item kinds the analyzer distinguishes.
#[derive(Clone, Debug)]
pub enum ItemKind {
    /// A function (free, impl method, or trait method).
    Fn(FnDef),
    /// An `impl` block with its child items.
    Impl(ImplDef),
    /// An inline `mod name { ... }` with its child items.
    Mod {
        /// Module name.
        name: String,
        /// Whether the module carries `#[cfg(test)]`.
        is_test: bool,
        /// Items inside the braces.
        items: Vec<Item>,
    },
    /// A `trait` definition with its child items (method signatures
    /// and provided-default methods).
    Trait {
        /// Trait name.
        name: String,
        /// Items inside the braces.
        items: Vec<Item>,
    },
    /// Any other item (struct/enum/use/const/static/type/macro_rules):
    /// recorded only for span tiling.
    Other {
        /// Which keyword introduced it.
        what: String,
        /// Its name, when one follows the keyword.
        name: Option<String>,
    },
    /// A token the item parser could not attach to any item. The
    /// differential gate counts these; a healthy parse has none.
    Opaque,
}

/// An `impl` block.
#[derive(Clone, Debug)]
pub struct ImplDef {
    /// Last path segment of the implemented-for type (`Vec` for
    /// `impl Codec for Vec<G1Affine>`).
    pub self_ty: String,
    /// Last path segment of the trait, for trait impls.
    pub trait_name: Option<String>,
    /// Child items (methods, associated consts/types).
    pub items: Vec<Item>,
}

/// One function parameter.
#[derive(Clone, Debug, Default)]
pub struct Param {
    /// Every binding identifier in the pattern (one for `x: T`,
    /// several for destructuring patterns).
    pub names: Vec<String>,
    /// Every identifier appearing in the type annotation.
    pub ty: Vec<String>,
    /// Whether this is a `self` receiver.
    pub is_self: bool,
}

/// A function definition (or bodiless trait-method signature).
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword (used to match `lint:ct`
    /// comment annotations to their function).
    pub kw_idx: usize,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Identifiers appearing in the return type.
    pub ret: Vec<String>,
    /// The parsed body; `None` for trait-method signatures.
    pub body: Option<Vec<Stmt>>,
    /// Whether the item carries `#[test]` or `#[cfg(test)]`.
    pub is_test: bool,
}

/// One statement inside a function body.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// A `let` binding (including `let ... else { ... }`).
    Let {
        /// Binding identifiers in the pattern.
        names: Vec<String>,
        /// Identifiers in the type ascription, when present.
        ty: Vec<String>,
        /// Initializer expression, when present.
        init: Option<Expr>,
        /// The `else` diverging block of a let-else, when present.
        els: Option<Vec<Stmt>>,
        /// 1-based line of the `let`.
        line: u32,
    },
    /// An expression statement.
    Expr(Expr),
    /// A nested item (e.g. a fn defined inside a body).
    Item(Box<Item>),
}

/// One expression. Each variant keeps the 1-based line it starts on.
#[derive(Clone, Debug)]
pub enum Expr {
    /// A path used as a value: `x`, `self`, `Fr::ZERO`.
    Path {
        /// Path segments (turbofish generics dropped).
        segs: Vec<String>,
        /// Start line.
        line: u32,
    },
    /// A literal (number/string/char); content dropped.
    Lit {
        /// Start line.
        line: u32,
    },
    /// A call through a path: `foo(a)`, `Fr::new(x)`.
    Call {
        /// Callee path segments.
        segs: Vec<String>,
        /// Arguments.
        args: Vec<Expr>,
        /// Start line.
        line: u32,
    },
    /// A call of a non-path callee (closure, field): `(f)(x)`, `self.f(x)`
    /// where `f` is a field holding a closure.
    CallExpr {
        /// The callee expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Start line.
        line: u32,
    },
    /// A method call: `recv.name(args)`.
    Method {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Start line.
        line: u32,
    },
    /// A field projection: `base.name`, `base.0`.
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name (`"0"`-style for tuple fields).
        name: String,
        /// Start line.
        line: u32,
    },
    /// An index/slice expression: `base[index]`.
    Index {
        /// Base expression.
        base: Box<Expr>,
        /// The index expression (a [`Expr::Range`] for slicing).
        index: Box<Expr>,
        /// Start line.
        line: u32,
    },
    /// A macro invocation: `name!(args)`.
    Macro {
        /// Macro path segments.
        segs: Vec<String>,
        /// Best-effort parsed arguments.
        args: Vec<Expr>,
        /// Start line.
        line: u32,
    },
    /// A binary operation.
    Binary {
        /// The operator text (`"/"`, `"=="`, `"&&"`, ...).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Start line.
        line: u32,
    },
    /// An assignment, plain or compound (`x = v`, `x += v`).
    Assign {
        /// Assignment target.
        target: Box<Expr>,
        /// Assigned value.
        value: Box<Expr>,
        /// Start line.
        line: u32,
    },
    /// A prefix-operator expression (`&x`, `*x`, `-x`, `!x`).
    Unary {
        /// The operand.
        inner: Box<Expr>,
    },
    /// A struct literal: `Path { field: expr, .. }`.
    Struct {
        /// Struct path segments.
        segs: Vec<String>,
        /// Field initializers (shorthand fields map to a `Path`).
        fields: Vec<(String, Expr)>,
        /// The `..base` expression, when present.
        base: Option<Box<Expr>>,
        /// Start line.
        line: u32,
    },
    /// A tuple or parenthesized expression.
    Tuple {
        /// Elements (a 1-tuple is a plain paren group).
        items: Vec<Expr>,
        /// Start line.
        line: u32,
    },
    /// An array literal `[a, b]` or `[x; n]`.
    Array {
        /// Element expressions (both forms flattened).
        items: Vec<Expr>,
        /// Start line.
        line: u32,
    },
    /// A block expression `{ ... }`.
    Block {
        /// Statements inside.
        stmts: Vec<Stmt>,
        /// Start line.
        line: u32,
    },
    /// An `if`/`if let` expression.
    If {
        /// The condition (the bound expression for `if let`).
        cond: Box<Expr>,
        /// The then-block.
        then: Vec<Stmt>,
        /// The else branch (a nested `If` or a `Block`).
        alt: Option<Box<Expr>>,
        /// Start line.
        line: u32,
    },
    /// A `match` expression.
    Match {
        /// The scrutinee.
        scrutinee: Box<Expr>,
        /// Arms: optional guard expression plus arm value.
        arms: Vec<(Option<Expr>, Expr)>,
        /// Start line.
        line: u32,
    },
    /// A `loop` or `while`/`while let` (condition folded into `cond`).
    Loop {
        /// The loop condition, when the loop has one.
        cond: Option<Box<Expr>>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Start line.
        line: u32,
    },
    /// A `for` loop.
    For {
        /// Pattern binding identifiers.
        pat_names: Vec<String>,
        /// The iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Start line.
        line: u32,
    },
    /// A closure.
    Closure {
        /// Parameter binding identifiers.
        params: Vec<String>,
        /// The closure body.
        body: Box<Expr>,
        /// Start line.
        line: u32,
    },
    /// `return`/`break` with an optional value.
    Return {
        /// The returned expression, when present.
        value: Option<Box<Expr>>,
        /// Start line.
        line: u32,
    },
    /// A range `lo..hi` / `lo..=hi` with optional endpoints.
    Range {
        /// Lower endpoint.
        lo: Option<Box<Expr>>,
        /// Upper endpoint.
        hi: Option<Box<Expr>>,
        /// Start line.
        line: u32,
    },
    /// An `expr as Type` cast (type dropped).
    Cast {
        /// The cast operand.
        inner: Box<Expr>,
    },
    /// A token sequence the parser could not classify.
    Unknown {
        /// Start line.
        line: u32,
    },
}

impl Expr {
    /// The 1-based line the expression starts on.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line }
            | Expr::Call { line, .. }
            | Expr::CallExpr { line, .. }
            | Expr::Method { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Struct { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Array { line, .. }
            | Expr::Block { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::Loop { line, .. }
            | Expr::For { line, .. }
            | Expr::Closure { line, .. }
            | Expr::Return { line, .. }
            | Expr::Range { line, .. }
            | Expr::Unknown { line } => *line,
            Expr::Unary { inner } | Expr::Cast { inner } => inner.line(),
        }
    }

    /// Preorder walk over this expression and every nested expression,
    /// descending into blocks, arms, closures and nested statements.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Unknown { .. } => {}
            Expr::Call { args, .. } | Expr::Macro { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::CallExpr { callee, args, .. } => {
                callee.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Method { recv, args, .. } => {
                recv.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Field { base, .. } => base.walk(f),
            Expr::Index { base, index, .. } => {
                base.walk(f);
                index.walk(f);
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Assign { target, value, .. } => {
                target.walk(f);
                value.walk(f);
            }
            Expr::Unary { inner } | Expr::Cast { inner } => inner.walk(f),
            Expr::Struct { fields, base, .. } => {
                for (_, e) in fields {
                    e.walk(f);
                }
                if let Some(b) = base {
                    b.walk(f);
                }
            }
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                for e in items {
                    e.walk(f);
                }
            }
            Expr::Block { stmts, .. } => walk_stmts(stmts, f),
            Expr::If {
                cond, then, alt, ..
            } => {
                cond.walk(f);
                walk_stmts(then, f);
                if let Some(a) = alt {
                    a.walk(f);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                scrutinee.walk(f);
                for (guard, value) in arms {
                    if let Some(g) = guard {
                        g.walk(f);
                    }
                    value.walk(f);
                }
            }
            Expr::Loop { cond, body, .. } => {
                if let Some(c) = cond {
                    c.walk(f);
                }
                walk_stmts(body, f);
            }
            Expr::For { iter, body, .. } => {
                iter.walk(f);
                walk_stmts(body, f);
            }
            Expr::Closure { body, .. } => body.walk(f),
            Expr::Return { value, .. } => {
                if let Some(v) = value {
                    v.walk(f);
                }
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(l) = lo {
                    l.walk(f);
                }
                if let Some(h) = hi {
                    h.walk(f);
                }
            }
        }
    }
}

/// Walks every expression under a statement list (see [`Expr::walk`]).
pub fn walk_stmts(stmts: &[Stmt], f: &mut impl FnMut(&Expr)) {
    for s in stmts {
        match s {
            Stmt::Let { init, els, .. } => {
                if let Some(e) = init {
                    e.walk(f);
                }
                if let Some(b) = els {
                    walk_stmts(b, f);
                }
            }
            Stmt::Expr(e) => e.walk(f),
            // nested items are analyzed as their own graph nodes
            Stmt::Item(_) => {}
        }
    }
}

impl Ast {
    /// Visits every function in the tree with its container context:
    /// `(fn, impl_self_ty, trait_name, inside_test_mod, is_trait_decl)`.
    pub fn visit_fns(
        &self,
        f: &mut impl FnMut(&FnDef, Option<&str>, Option<&str>, bool, bool),
    ) {
        fn walk_items(
            items: &[Item],
            self_ty: Option<&str>,
            trait_name: Option<&str>,
            in_test: bool,
            is_trait_decl: bool,
            f: &mut impl FnMut(&FnDef, Option<&str>, Option<&str>, bool, bool),
        ) {
            for item in items {
                match &item.kind {
                    ItemKind::Fn(fd) => {
                        f(fd, self_ty, trait_name, in_test, is_trait_decl);
                        if let Some(body) = &fd.body {
                            walk_nested(body, in_test || fd.is_test, f);
                        }
                    }
                    ItemKind::Impl(im) => walk_items(
                        &im.items,
                        Some(&im.self_ty),
                        im.trait_name.as_deref(),
                        in_test,
                        false,
                        f,
                    ),
                    ItemKind::Mod {
                        items, is_test, ..
                    } => walk_items(items, None, None, in_test || *is_test, false, f),
                    ItemKind::Trait { name, items } => {
                        walk_items(items, Some(name), Some(name), in_test, true, f)
                    }
                    ItemKind::Other { .. } | ItemKind::Opaque => {}
                }
            }
        }
        fn walk_nested(
            stmts: &[Stmt],
            in_test: bool,
            f: &mut impl FnMut(&FnDef, Option<&str>, Option<&str>, bool, bool),
        ) {
            for s in stmts {
                if let Stmt::Item(item) = s {
                    walk_items(std::slice::from_ref(item), None, None, in_test, false, f);
                }
            }
        }
        walk_items(&self.items, None, None, false, false, f)
    }

    /// Flattens the item tree's token spans and checks they tile
    /// `[0, num_tokens)` exactly: top-level items are contiguous and
    /// non-overlapping, and child items nest strictly inside their
    /// parent. Returns a description of the first violation.
    pub fn check_span_tiling(&self, tokens: &[Token]) -> Result<(), String> {
        let mut cursor = 0usize;
        for item in &self.items {
            if item.span.0 != cursor {
                return Err(format!(
                    "gap/overlap at token {} (item starts at {}, near line {})",
                    cursor,
                    item.span.0,
                    tokens.get(cursor).map_or(0, |t| t.line)
                ));
            }
            if item.span.1 < item.span.0 {
                return Err(format!("inverted span {:?}", item.span));
            }
            check_children(item)?;
            cursor = item.span.1;
        }
        if cursor != self.num_tokens {
            return Err(format!(
                "trailing tokens: tiled {} of {}",
                cursor, self.num_tokens
            ));
        }
        return Ok(());

        fn check_children(item: &Item) -> Result<(), String> {
            let kids: &[Item] = match &item.kind {
                ItemKind::Impl(im) => &im.items,
                ItemKind::Mod { items, .. } | ItemKind::Trait { items, .. } => items,
                _ => return Ok(()),
            };
            let mut cursor = item.span.0;
            for kid in kids {
                if kid.span.0 < cursor || kid.span.1 > item.span.1 {
                    return Err(format!(
                        "child span {:?} escapes/overlaps parent {:?}",
                        kid.span, item.span
                    ));
                }
                check_children(kid)?;
                cursor = kid.span.1;
            }
            Ok(())
        }
    }

    /// Counts [`ItemKind::Opaque`] items anywhere in the tree.
    pub fn opaque_tokens(&self) -> usize {
        fn count(items: &[Item]) -> usize {
            items
                .iter()
                .map(|i| match &i.kind {
                    ItemKind::Opaque => 1,
                    ItemKind::Impl(im) => count(&im.items),
                    ItemKind::Mod { items, .. } | ItemKind::Trait { items, .. } => count(items),
                    _ => 0,
                })
                .sum()
        }
        count(&self.items)
    }
}
