//! The interprocedural passes over the workspace call graph:
//! panic-reachability, secret-taint, ct-closure, deadline, and
//! obs-purity.
//!
//! All of them consume the [`CallGraph`] plus the audited allow-list from
//! `lint.toml` ([`crate::config::LintConfig`]): pass findings are
//! whole-program properties with no single line to hang an inline
//! `lint:allow` on, so their suppressions live in the config file where
//! each carries a rule, a target, and a reason.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::ast::{walk_stmts, Expr, Stmt};
use crate::callgraph::{CallGraph, CallSite, FnNode};
use crate::config::LintConfig;
use crate::report::{Finding, Suppression};

/// Output of one pass run: live findings plus config-suppressed ones.
#[derive(Debug, Default)]
pub struct PassResult {
    /// Live findings.
    pub findings: Vec<Finding>,
    /// Findings audited away by a `lint.toml` entry.
    pub suppressed: Vec<(Finding, Suppression)>,
}

impl PassResult {
    fn push(&mut self, f: Finding, cfg: &LintConfig, node: &FnNode) {
        match cfg.match_allow(f.rule, &node.qname(), &node.def.name, &node.file) {
            Some(reason_suppression) => self.suppressed.push((f, reason_suppression)),
            None => self.findings.push(f),
        }
    }
}

// ---------------------------------------------------------------------------
// panic-reachability
// ---------------------------------------------------------------------------

/// One intrinsic (local, non-transitive) panic site.
#[derive(Debug, Clone)]
struct PanicSite {
    line: u32,
    what: String,
}

/// Macros that abort on expansion (debug_assert* compiles out in
/// release verifiers, so it does not count).
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "unimplemented",
    "todo",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Collects the intrinsic panic sites of one function body.
fn intrinsic_panic_sites(node: &FnNode) -> Vec<PanicSite> {
    let mut sites = Vec::new();
    let Some(body) = &node.def.body else {
        return sites;
    };
    walk_stmts(body, &mut |e| match e {
        Expr::Macro { segs, line, .. } => {
            let name = segs.last().map(String::as_str).unwrap_or("");
            if PANIC_MACROS.contains(&name) {
                sites.push(PanicSite {
                    line: *line,
                    what: format!("{name}!"),
                });
            }
        }
        Expr::Method { name, line, .. } if name == "unwrap" || name == "expect" => {
            sites.push(PanicSite {
                line: *line,
                what: format!(".{name}()"),
            });
        }
        Expr::Index { line, .. } => {
            sites.push(PanicSite {
                line: *line,
                what: "slice/array indexing".into(),
            });
        }
        // division by a literal cannot raise a divide-by-zero panic
        // (overflow `MIN / -1` aside, which the kernels avoid by
        // operating on unsigned words)
        Expr::Binary { op, rhs, line, .. }
            if (op == "/" || op == "%") && !matches!(rhs.as_ref(), Expr::Lit { .. }) =>
        {
            sites.push(PanicSite {
                line: *line,
                what: format!("`{op}` with non-literal divisor"),
            });
        }
        _ => {}
    });
    sites
}

/// Whether `node` is a panic-reachability entry point: a `Codec`
/// decode impl or a `verify_*`/`verify` function, outside test code.
fn is_panic_entry(node: &FnNode) -> bool {
    if node.in_test || node.is_trait_decl {
        return false;
    }
    let is_decode_impl =
        node.trait_name.as_deref() == Some("Codec") && node.def.name.starts_with("decode");
    let is_verify = node.def.name == "verify" || node.def.name.starts_with("verify_");
    is_decode_impl || is_verify
}

/// **panic-reachability**: reports every entry point from which a panic
/// site is reachable through the call graph, with the full call chain.
pub fn panic_reachability(graph: &CallGraph, cfg: &LintConfig) -> PassResult {
    let n = graph.fns.len();

    // Intrinsic sites, with config-level suppression applied *at the
    // site*: allowing `fn = "Fq12::mul"` under this rule audits the
    // panic potential of that body, killing every chain through it.
    let mut out = PassResult::default();
    let mut sites: Vec<Vec<PanicSite>> = Vec::with_capacity(n);
    for node in &graph.fns {
        if node.in_test {
            sites.push(Vec::new());
            continue;
        }
        let s = intrinsic_panic_sites(node);
        let sup = if s.is_empty() {
            None
        } else {
            cfg.match_allow("panic-reachability", &node.qname(), &node.def.name, &node.file)
        };
        if let Some(sup) = sup {
            // One audit record per audited fn (anchored at its first
            // site) so the suppressed counts reflect the audit surface.
            out.suppressed.push((
                Finding {
                    file: node.file.clone(),
                    line: s[0].line,
                    rule: "panic-reachability",
                    message: format!(
                        "{} panic site(s) in `{}` audited (first: {})",
                        s.len(),
                        node.qname(),
                        s[0].what
                    ),
                    hint: "return a typed error on the panicking path, or audit it in \
                           lint.toml with a reason",
                },
                sup,
            ));
            sites.push(Vec::new());
        } else {
            sites.push(s);
        }
    }

    // Transitive can-panic set via reverse BFS from intrinsic fns.
    // Edges through test fns are ignored (test callers may assert).
    let rev = graph.reverse_edges();
    let mut can_panic = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for i in 0..n {
        if !sites[i].is_empty() {
            can_panic[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for &caller in &rev[i] {
            if !can_panic[caller] && !graph.fns[caller].in_test {
                can_panic[caller] = true;
                queue.push_back(caller);
            }
        }
    }

    // For each entry that can panic, BFS forward for the shortest
    // chain to a fn with an intrinsic site; one finding per
    // (entry, sink fn) pair so audits can address sinks one by one.
    for (entry, node) in graph.fns.iter().enumerate() {
        if !is_panic_entry(node) || !can_panic[entry] {
            continue;
        }
        let chains = shortest_chains_to_sinks(graph, entry, &sites, &can_panic);
        for (sink, chain) in chains {
            let site = &sites[sink][0];
            let chain_str = chain
                .iter()
                .map(|&i| graph.fns[i].qname())
                .collect::<Vec<_>>()
                .join(" -> ");
            let f = Finding {
                file: node.file.clone(),
                line: node.def.line,
                rule: "panic-reachability",
                message: format!(
                    "panic reachable from entry point `{}`: {} ({} at {}:{})",
                    node.qname(),
                    chain_str,
                    site.what,
                    graph.fns[sink].file,
                    site.line
                ),
                hint: "return a typed error on the panicking path, or audit it in lint.toml \
                       with a reason",
            };
            out.push(f, cfg, node);
        }
    }
    out
}

/// BFS from `entry` through can-panic nodes; returns, per sink fn
/// (one with intrinsic sites), the shortest chain `entry..=sink`.
fn shortest_chains_to_sinks(
    graph: &CallGraph,
    entry: usize,
    sites: &[Vec<PanicSite>],
    can_panic: &[bool],
) -> Vec<(usize, Vec<usize>)> {
    let n = graph.fns.len();
    let mut prev: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[entry] = true;
    queue.push_back(entry);
    let mut order = Vec::new();
    while let Some(i) = queue.pop_front() {
        order.push(i);
        for site in &graph.calls[i] {
            for &callee in &site.callees {
                if !seen[callee] && can_panic[callee] && !graph.fns[callee].in_test {
                    seen[callee] = true;
                    prev[callee] = Some(i);
                    queue.push_back(callee);
                }
            }
        }
    }
    let mut out = Vec::new();
    for i in order {
        if sites[i].is_empty() {
            continue;
        }
        let mut chain = vec![i];
        let mut cur = i;
        while let Some(p) = prev[cur] {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        out.push((i, chain));
    }
    out
}

// ---------------------------------------------------------------------------
// secret-taint
// ---------------------------------------------------------------------------

/// Types whose values are secret material (mirrors the token rule).
const SECRET_TYPES: &[&str] = &["SecretKey", "HmacKey", "SmallDomainPrp"];

/// Format-family macros: anything that can render a value to text.
const FORMAT_MACROS: &[&str] = &[
    "format",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "dbg",
];

/// Methods that return structurally non-secret data even on a secret
/// receiver (sizes, emptiness) — they terminate taint propagation.
const NONPROPAGATING_METHODS: &[&str] = &["len", "is_empty"];

/// Where a tainted value originated.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Origin {
    /// Taint entered through parameter `i` — meaningful only inside a
    /// summary; resolved to a concrete origin at the call site.
    Param(usize),
    /// A concrete secret source, with a human-readable description.
    Concrete(String),
}

type Taint = BTreeSet<Origin>;

/// Per-function dataflow summary, computed to fixpoint.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct FnSummary {
    /// Parameter indices that flow into the return value.
    param_to_ret: BTreeSet<usize>,
    /// Whether the fn *originates* a secret in its return value
    /// (constructor of a secret type, PRF derivation).
    ret_secret: Option<String>,
    /// Parameter indices that reach a sink inside this fn (or deeper),
    /// with a description of the sink for chain reporting.
    param_to_sink: BTreeMap<usize, String>,
}

/// A sink hit found while analyzing one body.
#[derive(Debug)]
struct SinkHit {
    line: u32,
    sink_desc: String,
    origins: Taint,
}

/// **secret-taint**: tracks `SecretKey`/`HmacKey`/PRF-derived values
/// through assignments, projections, and calls; reports any flow into
/// a Debug/format!/log/wire-encode sink.
pub fn secret_taint(graph: &CallGraph, cfg: &LintConfig) -> PassResult {
    let n = graph.fns.len();
    let mut summaries: Vec<FnSummary> = vec![FnSummary::default(); n];

    // Seed: secret-type constructors and PRF derivations originate
    // secrets in their return values.
    for (i, node) in graph.fns.iter().enumerate() {
        let ret_ty = node.def.ret.iter().any(|t| SECRET_TYPES.contains(&t.as_str()));
        let ctor_of_secret = SECRET_TYPES.contains(&node.self_ty.as_str())
            && node.def.ret.iter().any(|t| t == "Self" || SECRET_TYPES.contains(&t.as_str()));
        if ret_ty || ctor_of_secret {
            summaries[i].ret_secret = Some(format!("`{}` (returns secret material)", node.qname()));
        }
    }

    // Fixpoint over summaries (bounded; the lattice is finite).
    for _ in 0..12 {
        let mut changed = false;
        for i in 0..n {
            let node = &graph.fns[i];
            if node.def.body.is_none() {
                continue;
            }
            let (summary, _) = analyze_body(node, graph, i, &summaries);
            let merged = FnSummary {
                ret_secret: summaries[i].ret_secret.clone().or(summary.ret_secret.clone()),
                ..summary
            };
            if merged != summaries[i] {
                summaries[i] = merged;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Final pass: collect concrete sink hits.
    let mut out = PassResult::default();
    for (i, node) in graph.fns.iter().enumerate() {
        if node.in_test || node.def.body.is_none() {
            continue;
        }
        let (_, hits) = analyze_body(node, graph, i, &summaries);
        for hit in hits {
            let concrete: Vec<&String> = hit
                .origins
                .iter()
                .filter_map(|o| match o {
                    Origin::Concrete(d) => Some(d),
                    Origin::Param(_) => None,
                })
                .collect();
            let Some(first) = concrete.first() else {
                continue; // param-only taint: reported at an outer call site
            };
            let f = Finding {
                file: node.file.clone(),
                line: hit.line,
                rule: "secret-taint",
                message: format!(
                    "secret value from {} reaches {} in `{}`",
                    first,
                    hit.sink_desc,
                    node.qname()
                ),
                hint: "redact the secret before formatting/encoding, or audit the flow in \
                       lint.toml with a reason",
            };
            out.push(f, cfg, node);
        }
    }
    out
}

/// Analyzes one body against current summaries; returns the new
/// summary for the fn plus every sink hit (with unresolved `Param`
/// origins left in place for the caller to resolve).
fn analyze_body(
    node: &FnNode,
    graph: &CallGraph,
    self_idx: usize,
    summaries: &[FnSummary],
) -> (FnSummary, Vec<SinkHit>) {
    let _ = self_idx;
    let body = node.def.body.as_ref().expect("caller checked body");
    let mut env: BTreeMap<String, Taint> = BTreeMap::new();
    let mut hits: Vec<SinkHit> = Vec::new();
    let mut summary = FnSummary::default();

    // Seed parameters.
    for (pi, p) in node.def.params.iter().enumerate() {
        let mut t = Taint::new();
        t.insert(Origin::Param(pi));
        if p.ty.iter().any(|x| SECRET_TYPES.contains(&x.as_str())) {
            let pname = p.names.first().map(String::as_str).unwrap_or("self");
            let ty = p
                .ty
                .iter()
                .find(|x| SECRET_TYPES.contains(&x.as_str()))
                .expect("checked");
            t.insert(Origin::Concrete(format!(
                "{ty} parameter `{pname}` of `{}`",
                node.qname()
            )));
        }
        if p.is_self && SECRET_TYPES.contains(&node.self_ty.as_str()) {
            t.insert(Origin::Concrete(format!(
                "secret receiver `self: {}` of `{}`",
                node.self_ty,
                node.qname()
            )));
        }
        let name = if p.is_self {
            "self".to_string()
        } else {
            p.names.first().cloned().unwrap_or_default()
        };
        if !name.is_empty() {
            env.insert(name, t);
        }
    }

    let mut ret_taint = Taint::new();
    // The block value (tail-expression taint) is the return value.
    let tail = eval_stmts(body, node, graph, summaries, &mut env, &mut hits, &mut ret_taint);
    ret_taint.extend(tail);

    for o in &ret_taint {
        match o {
            Origin::Param(pi) => {
                summary.param_to_ret.insert(*pi);
            }
            Origin::Concrete(d) => {
                summary.ret_secret.get_or_insert_with(|| d.clone());
            }
        }
    }
    for hit in &hits {
        for o in &hit.origins {
            if let Origin::Param(pi) = o {
                summary
                    .param_to_sink
                    .entry(*pi)
                    .or_insert_with(|| hit.sink_desc.clone());
            }
        }
    }
    (summary, hits)
}

/// Evaluates statements in order; returns the block's value taint
/// (the tail expression's) and accumulates explicit-`return` taint
/// into `ret_taint`.
fn eval_stmts(
    stmts: &[crate::ast::Stmt],
    node: &FnNode,
    graph: &CallGraph,
    summaries: &[FnSummary],
    env: &mut BTreeMap<String, Taint>,
    hits: &mut Vec<SinkHit>,
    ret_taint: &mut Taint,
) -> Taint {
    use crate::ast::Stmt;
    let mut tail = Taint::new();
    for (si, s) in stmts.iter().enumerate() {
        let is_last = si + 1 == stmts.len();
        match s {
            Stmt::Let { names, ty, init, els, .. } => {
                let mut t = Taint::new();
                if let Some(e) = init {
                    t = eval(e, node, graph, summaries, env, hits);
                }
                // type ascription alone marks secrecy (e.g. a secret
                // deserialized from a store)
                if ty.iter().any(|x| SECRET_TYPES.contains(&x.as_str())) {
                    let ty_name = ty
                        .iter()
                        .find(|x| SECRET_TYPES.contains(&x.as_str()))
                        .expect("checked");
                    t.insert(Origin::Concrete(format!(
                        "{ty_name} local in `{}`",
                        node.qname()
                    )));
                }
                for nm in names {
                    env.entry(nm.clone()).or_default().extend(t.iter().cloned());
                }
                if let Some(b) = els {
                    let _ = eval_stmts(b, node, graph, summaries, env, hits, ret_taint);
                }
            }
            Stmt::Expr(e) => {
                if let Expr::Return { value: Some(v), .. } = e {
                    let t = eval(v, node, graph, summaries, env, hits);
                    ret_taint.extend(t);
                } else {
                    let t = eval(e, node, graph, summaries, env, hits);
                    if is_last {
                        tail = t;
                    }
                }
            }
            Stmt::Item(_) => {}
        }
    }
    tail
}

/// Evaluates an expression's taint, recording sink hits on the way.
fn eval(
    e: &Expr,
    node: &FnNode,
    graph: &CallGraph,
    summaries: &[FnSummary],
    env: &mut BTreeMap<String, Taint>,
    hits: &mut Vec<SinkHit>,
) -> Taint {
    match e {
        Expr::Path { segs, .. } => {
            if segs.len() == 1 {
                env.get(&segs[0]).cloned().unwrap_or_default()
            } else {
                Taint::new()
            }
        }
        Expr::Lit { .. } | Expr::Unknown { .. } => Taint::new(),
        Expr::Field { base, .. } => eval(base, node, graph, summaries, env, hits),
        Expr::Unary { inner } | Expr::Cast { inner } => {
            eval(inner, node, graph, summaries, env, hits)
        }
        Expr::Index { base, index, .. } => {
            let mut t = eval(base, node, graph, summaries, env, hits);
            t.extend(eval(index, node, graph, summaries, env, hits));
            t
        }
        Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
            let mut t = Taint::new();
            for it in items {
                t.extend(eval(it, node, graph, summaries, env, hits));
            }
            t
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let mut t = eval(lhs, node, graph, summaries, env, hits);
            t.extend(eval(rhs, node, graph, summaries, env, hits));
            // Comparisons produce a 1-bit public verdict (accepting or
            // rejecting a proof IS the protocol); the secret does not
            // survive into the boolean.
            if matches!(op.as_str(), "==" | "!=" | "<" | ">" | "<=" | ">=" | "&&" | "||") {
                return Taint::new();
            }
            t
        }
        Expr::Range { lo, hi, .. } => {
            let mut t = Taint::new();
            if let Some(l) = lo {
                t.extend(eval(l, node, graph, summaries, env, hits));
            }
            if let Some(h) = hi {
                t.extend(eval(h, node, graph, summaries, env, hits));
            }
            t
        }
        Expr::Assign { target, value, .. } => {
            let t = eval(value, node, graph, summaries, env, hits);
            // x = v / x.f = v : taint the root variable
            if let Some(root) = root_var(target) {
                env.entry(root).or_default().extend(t.iter().cloned());
            }
            Taint::new()
        }
        Expr::Struct { fields, base, .. } => {
            let mut t = Taint::new();
            for (_, v) in fields {
                t.extend(eval(v, node, graph, summaries, env, hits));
            }
            if let Some(b) = base {
                t.extend(eval(b, node, graph, summaries, env, hits));
            }
            t
        }
        Expr::Block { stmts, .. } => {
            let mut ret = Taint::new();
            let tail = eval_stmts(stmts, node, graph, summaries, env, hits, &mut ret);
            ret.extend(tail);
            ret
        }
        Expr::If { cond, then, alt, .. } => {
            let _ = eval(cond, node, graph, summaries, env, hits);
            let mut ret = Taint::new();
            let tail = eval_stmts(then, node, graph, summaries, env, hits, &mut ret);
            ret.extend(tail);
            if let Some(a) = alt {
                ret.extend(eval(a, node, graph, summaries, env, hits));
            }
            ret
        }
        Expr::Match { scrutinee, arms, .. } => {
            let scr = eval(scrutinee, node, graph, summaries, env, hits);
            let mut ret = scr;
            for (guard, value) in arms {
                if let Some(g) = guard {
                    let _ = eval(g, node, graph, summaries, env, hits);
                }
                ret.extend(eval(value, node, graph, summaries, env, hits));
            }
            ret
        }
        Expr::Loop { cond, body, .. } => {
            if let Some(c) = cond {
                let _ = eval(c, node, graph, summaries, env, hits);
            }
            let mut ret = Taint::new();
            eval_stmts(body, node, graph, summaries, env, hits, &mut ret);
            ret
        }
        Expr::For { iter, body, pat_names, .. } => {
            let it = eval(iter, node, graph, summaries, env, hits);
            for nm in pat_names {
                env.entry(nm.clone()).or_default().extend(it.iter().cloned());
            }
            let mut ret = Taint::new();
            eval_stmts(body, node, graph, summaries, env, hits, &mut ret);
            ret
        }
        Expr::Closure { body, .. } => eval(body, node, graph, summaries, env, hits),
        Expr::Return { value, .. } => {
            if let Some(v) = value {
                eval(v, node, graph, summaries, env, hits)
            } else {
                Taint::new()
            }
        }
        Expr::Macro { segs, args, line } => {
            let name = segs.last().map(String::as_str).unwrap_or("");
            let mut t = Taint::new();
            for a in args {
                t.extend(eval(a, node, graph, summaries, env, hits));
            }
            if FORMAT_MACROS.contains(&name) && !t.is_empty() {
                hits.push(SinkHit {
                    line: *line,
                    sink_desc: format!("`{name}!` formatting sink"),
                    origins: t.clone(),
                });
            }
            // format! *returns* a rendering of its inputs: the secret
            // is in the output string too
            if name == "format" { t } else { Taint::new() }
        }
        Expr::Call { segs, args, line } => {
            let arg_taints: Vec<Taint> = args
                .iter()
                .map(|a| eval(a, node, graph, summaries, env, hits))
                .collect();
            call_taint(node, graph, summaries, segs.join("::"), find_callees(graph, node, e), &arg_taints, None, *line, hits)
        }
        Expr::CallExpr { callee, args, line } => {
            let mut t = eval(callee, node, graph, summaries, env, hits);
            for a in args {
                t.extend(eval(a, node, graph, summaries, env, hits));
            }
            let _ = line;
            t
        }
        Expr::Method { recv, name, args, line } => {
            let recv_taint = eval(recv, node, graph, summaries, env, hits);
            let arg_taints: Vec<Taint> = args
                .iter()
                .map(|a| eval(a, node, graph, summaries, env, hits))
                .collect();
            if NONPROPAGATING_METHODS.contains(&name.as_str()) {
                return Taint::new();
            }
            // direct sinks: wire-encode and Formatter::fmt on tainted data
            let all: Taint = recv_taint
                .iter()
                .cloned()
                .chain(arg_taints.iter().flatten().cloned())
                .collect();
            if (name == "encode" || name == "encode_to" || name == "encode_into" || name == "fmt")
                && !recv_taint.is_empty()
            {
                hits.push(SinkHit {
                    line: *line,
                    sink_desc: format!("wire/format sink `.{name}()`"),
                    origins: recv_taint.clone(),
                });
            }
            call_taint(
                node,
                graph,
                summaries,
                format!(".{name}"),
                find_callees(graph, node, e),
                &arg_taints,
                Some(all),
                *line,
                hits,
            )
        }
    }
}

/// Root variable of an assignment target (`x`, `x.f`, `x[i]`).
fn root_var(e: &Expr) -> Option<String> {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 => Some(segs[0].clone()),
        Expr::Field { base, .. } | Expr::Index { base, .. } => root_var(base),
        Expr::Unary { inner } => root_var(inner),
        _ => None,
    }
}

/// Callee indices for a call/method expression, via the prebuilt call
/// sites (matched by line + display).
fn find_callees(graph: &CallGraph, node: &FnNode, e: &Expr) -> Vec<usize> {
    let idx = graph
        .fns
        .iter()
        .position(|f| std::ptr::eq(f, node))
        .unwrap_or(usize::MAX);
    let Some(sites) = graph.calls.get(idx) else {
        return Vec::new();
    };
    let (line, display) = match e {
        Expr::Call { segs, line, .. } => (*line, segs.join("::")),
        Expr::Method { name, line, .. } => (*line, format!(".{name}")),
        _ => return Vec::new(),
    };
    for s in sites {
        if s.line == line && s.display == display {
            return s.callees.clone();
        }
    }
    Vec::new()
}

/// Applies callee summaries at a call site: propagates param→ret
/// flows into the result taint and reports param→sink flows as hits
/// at this call site.
#[allow(clippy::too_many_arguments)]
fn call_taint(
    node: &FnNode,
    graph: &CallGraph,
    summaries: &[FnSummary],
    display: String,
    callees: Vec<usize>,
    arg_taints: &[Taint],
    method_all: Option<Taint>,
    line: u32,
    hits: &mut Vec<SinkHit>,
) -> Taint {
    let _ = node;
    let mut out = Taint::new();
    // Summaries are applied only at *unambiguous* call sites: when
    // over-approximated dispatch fans a `.decode()` out to twenty
    // impls, unioning their summaries would give every decode call
    // `SecretKey::decode_from`'s secret return. The taint pass trades
    // that soundness for precision (documented under-approximation);
    // panic-reachability keeps the conservative fan-out.
    if callees.len() > 1 {
        for t in arg_taints {
            out.extend(t.iter().cloned());
        }
        if let Some(all) = &method_all {
            out.extend(all.iter().cloned());
        }
        return out;
    }
    for &c in &callees {
        let s = &summaries[c];
        if let Some(desc) = &s.ret_secret {
            out.insert(Origin::Concrete(desc.clone()));
        }
        // method calls: arg 0 in the callee's param space is the
        // receiver for inherent methods with `self`
        let offset = usize::from(method_all.is_some() && graph.fns[c].def.params.first().is_some_and(|p| p.is_self));
        for &pi in &s.param_to_ret {
            if let Some(t) = index_taint(arg_taints, &method_all, pi, offset) {
                out.extend(t.iter().cloned());
            }
        }
        for (pi, sink_desc) in &s.param_to_sink {
            if let Some(t) = index_taint(arg_taints, &method_all, *pi, offset) {
                if !t.is_empty() {
                    hits.push(SinkHit {
                        line,
                        sink_desc: format!(
                            "{} (inside `{}` via `{display}`)",
                            sink_desc,
                            graph.fns[c].qname()
                        ),
                        origins: t.clone(),
                    });
                }
            }
        }
    }
    // Unresolved calls: be permissive for returns (no workspace callee
    // means std/vendored code that the token rules cover), but keep
    // the arg taint flowing for wrapper types (Some(x), Ok(x)).
    if callees.is_empty() {
        for t in arg_taints {
            out.extend(t.iter().cloned());
        }
        if let Some(all) = &method_all {
            out.extend(all.iter().cloned());
        }
    }
    out
}

/// Taint of the callee's parameter `pi`, accounting for the receiver
/// offset on method calls.
fn index_taint<'a>(
    arg_taints: &'a [Taint],
    method_all: &'a Option<Taint>,
    pi: usize,
    offset: usize,
) -> Option<&'a Taint> {
    if offset == 1 && pi == 0 {
        return method_all.as_ref();
    }
    arg_taints.get(pi.checked_sub(offset)?)
}

// ---------------------------------------------------------------------------
// ct-closure
// ---------------------------------------------------------------------------

/// **ct-closure**: every `lint:ct` function may only call other
/// ct-annotated or allowlisted functions (the constant-time contract
/// is not compositional otherwise). Calls that resolve to nothing in
/// the workspace (std, core intrinsics) are out of scope — the token
/// rule already bans branching constructs inside the body itself.
pub fn ct_closure(graph: &CallGraph, cfg: &LintConfig) -> PassResult {
    let mut out = PassResult::default();
    for (i, node) in graph.fns.iter().enumerate() {
        if !node.is_ct {
            continue;
        }
        for site in &graph.calls[i] {
            if site.callees.is_empty() {
                continue;
            }
            // Over-approximated dispatch can include unrelated
            // same-named methods; require that NO candidate satisfies
            // the closure before firing (documented under-approximation).
            let ok = site.callees.iter().any(|&c| {
                let callee = &graph.fns[c];
                callee.is_ct
                    || cfg
                        .match_allow("ct-closure", &callee.qname(), &callee.def.name, &callee.file)
                        .is_some()
            });
            if ok {
                // consume the allow so it does not count as unused
                for &c in &site.callees {
                    let callee = &graph.fns[c];
                    let _ = cfg.match_allow(
                        "ct-closure",
                        &callee.qname(),
                        &callee.def.name,
                        &callee.file,
                    );
                }
                continue;
            }
            let names: Vec<String> = site
                .callees
                .iter()
                .map(|&c| graph.fns[c].qname())
                .collect();
            let f = Finding {
                file: node.file.clone(),
                line: site.line,
                rule: "ct-closure",
                message: format!(
                    "`{}` is lint:ct but calls non-ct function(s) {} via `{}`",
                    node.qname(),
                    names.join(", "),
                    site.display
                ),
                hint: "annotate the callee lint:ct (and fix its branches), or allowlist it in \
                       lint.toml with a reason",
            };
            out.push(f, cfg, node);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// deadline
// ---------------------------------------------------------------------------

/// Identifier fragments that witness a timeout/TTL bound (checked
/// case-insensitively as substrings, so `expires_at`, `Ttl`,
/// `poll_timeout` and `horizon_ms` all count).
const DEADLINE_WITNESSES: &[&str] = &["deadline", "ttl", "timeout", "expir", "horizon"];

/// Method/function names that receive from a transport.
const RECV_NAMES: &[&str] = &["recv", "try_recv"];

fn mentions_witness(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    DEADLINE_WITNESSES.iter().any(|w| lower.contains(w))
}

/// `deadline`: every loop in `crates/node` that awaits a transport
/// receive (`recv`/`try_recv`) must be reachable from a timeout/TTL
/// check — concretely, the enclosing function must mention a deadline
/// witness (`deadline`, `ttl`, `timeout`, `expir…`, `horizon`) in its
/// parameters or body. A daemon loop that drains a transport with no
/// such bound can spin forever on a partitioned or silent peer, which
/// is exactly the liveness failure the challenge lifecycle's TTL-expiry
/// path exists to prevent. Suppression goes through `lint.toml` like
/// the other whole-program rules.
pub fn deadline(graph: &CallGraph, cfg: &LintConfig) -> PassResult {
    let mut out = PassResult::default();
    for node in &graph.fns {
        if node.in_test || node.def.is_test || !node.file.starts_with("crates/node/src/") {
            continue;
        }
        let Some(body) = &node.def.body else {
            continue;
        };

        // A witness anywhere in the function bounds every loop in it:
        // the TTL check and the drain loop are usually siblings
        // (`step(now)` checks expiries then drains the mailbox).
        let mut witnessed = node.def.params.iter().any(|p| {
            p.names.iter().any(|n| mentions_witness(n)) || p.ty.iter().any(|t| mentions_witness(t))
        });
        if !witnessed {
            walk_stmts(body, &mut |e| {
                witnessed |= match e {
                    Expr::Path { segs, .. }
                    | Expr::Call { segs, .. }
                    | Expr::Macro { segs, .. } => segs.iter().any(|s| mentions_witness(s)),
                    Expr::Method { name, .. } | Expr::Field { name, .. } => {
                        mentions_witness(name)
                    }
                    Expr::Struct { fields, .. } => {
                        fields.iter().any(|(n, _)| mentions_witness(n))
                    }
                    _ => false,
                };
            });
        }
        if witnessed {
            continue;
        }

        // Any loop whose subtree (including a while-let condition, where
        // the recv call usually lives) touches a transport receive.
        let mut recv_loop_lines: Vec<u32> = Vec::new();
        walk_stmts(body, &mut |e| {
            let line = match e {
                Expr::Loop { line, .. } | Expr::For { line, .. } => *line,
                _ => return,
            };
            let mut has_recv = false;
            e.walk(&mut |inner| {
                has_recv |= match inner {
                    Expr::Method { name, .. } => RECV_NAMES.contains(&name.as_str()),
                    Expr::Call { segs, .. } => {
                        segs.last().is_some_and(|s| RECV_NAMES.contains(&s.as_str()))
                    }
                    _ => false,
                };
            });
            if has_recv {
                recv_loop_lines.push(line);
            }
        });
        for line in recv_loop_lines {
            let f = Finding {
                file: node.file.clone(),
                line,
                rule: "deadline",
                message: format!(
                    "`{}` loops over a transport receive with no reachable timeout/TTL \
                     check — a silent or partitioned peer would spin this loop forever",
                    node.qname()
                ),
                hint: "bound the loop with a deadline (ttl/timeout/expires_at/horizon) \
                       checked in the same function, or audit it in lint.toml with a reason",
            };
            out.push(f, cfg, node);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// obs-purity
// ---------------------------------------------------------------------------

/// Source prefix of the telemetry crate; a call counts as an obs call
/// when *every* resolved callee lives here.
const OBS_PREFIX: &str = "crates/obs/src/";

/// Whether `site` resolves exclusively to functions in the obs crate.
/// Requiring *all* candidates (and at least one) keeps over-approximated
/// method dispatch from tarring unrelated same-named methods — a
/// documented under-approximation compensated by the obs crate's
/// distinctive public names (`counter_add`, `sample_count`, ...).
fn is_obs_site(graph: &CallGraph, site: &CallSite) -> bool {
    !site.callees.is_empty()
        && site
            .callees
            .iter()
            .all(|&c| graph.fns.get(c).is_some_and(|f| f.file.starts_with(OBS_PREFIX)))
}

/// `(line, display)` key of a call/method expression, matching how
/// [`CallSite::display`] is built.
fn call_key(e: &Expr) -> Option<(u32, String)> {
    match e {
        Expr::Call { segs, line, .. } => Some((*line, segs.join("::"))),
        Expr::Method { name, line, .. } => Some((*line, format!(".{name}"))),
        _ => None,
    }
}

/// Records the *discarded-result* call positions of one statement list
/// (not nested lists): expression statements, and `let` initializers
/// whose every binding is underscore-prefixed (the span-guard idiom
/// `let _span = dsaudit_obs::span(..)`). Recurses only into let-else
/// diverging blocks, which no expression owns.
fn mark_discard_level(stmts: &[Stmt], out: &mut BTreeMap<(u32, String), u32>) {
    for st in stmts {
        match st {
            Stmt::Expr(e) => {
                if let Some(k) = call_key(e) {
                    *out.entry(k).or_insert(0) += 1;
                }
            }
            Stmt::Let { names, init, els, .. } => {
                if let Some(e) = init {
                    if !names.is_empty() && names.iter().all(|n| n.starts_with('_')) {
                        if let Some(k) = call_key(e) {
                            *out.entry(k).or_insert(0) += 1;
                        }
                    }
                }
                if let Some(b) = els {
                    mark_discard_level(b, out);
                }
            }
            Stmt::Item(_) => {}
        }
    }
}

/// Multiset of `(line, display)` keys at which a call's result is
/// provably discarded anywhere in `body`. Every nested statement list
/// is owned by a `Block`/`If`/`Loop`/`For` expression (which the walk
/// visits exactly once) except let-else blocks, which
/// [`mark_discard_level`] chases itself.
fn discard_positions(body: &[Stmt]) -> BTreeMap<(u32, String), u32> {
    let mut out = BTreeMap::new();
    mark_discard_level(body, &mut out);
    walk_stmts(body, &mut |e| match e {
        Expr::Block { stmts, .. } => mark_discard_level(stmts, &mut out),
        Expr::If { then, .. } => mark_discard_level(then, &mut out),
        Expr::Loop { body, .. } | Expr::For { body, .. } => mark_discard_level(body, &mut out),
        _ => {}
    });
    out
}

/// **obs-purity**: observability must be write-only. Over the call
/// graph, (a) no function on a path from a verdict/codec entry point
/// (`is_panic_entry`) or a `lint:ct` kernel may *consume* an obs
/// return value — every obs call must sit in statement position or bind
/// to an underscore-prefixed local (the span-guard idiom) — and (b) no
/// `lint:ct` kernel may call into the obs crate at all (even a disabled
/// check is a data-independent-timing hazard inside a ct region).
/// Together these prove, structurally, that enabling telemetry cannot
/// change a verdict, a codec result, or ct behavior.
pub fn obs_purity(graph: &CallGraph, cfg: &LintConfig) -> PassResult {
    let n = graph.fns.len();
    let mut out = PassResult::default();

    // (b) ct kernels are obs-free, reachable or not.
    for (i, node) in graph.fns.iter().enumerate() {
        if !node.is_ct || node.in_test {
            continue;
        }
        for site in &graph.calls[i] {
            if !is_obs_site(graph, site) {
                continue;
            }
            let names: Vec<String> =
                site.callees.iter().map(|&c| graph.fns[c].qname()).collect();
            let f = Finding {
                file: node.file.clone(),
                line: site.line,
                rule: "obs-purity",
                message: format!(
                    "`{}` is lint:ct but calls obs function(s) {} via `{}` — telemetry \
                     is forbidden inside constant-time kernels",
                    node.qname(),
                    names.join(", "),
                    site.display
                ),
                hint: "instrument the non-ct wrapper around the kernel instead",
            };
            out.push(f, cfg, node);
        }
    }

    // Forward reachability from verdict/codec entries and ct kernels,
    // skipping test code (tests may snapshot and assert on telemetry).
    let mut reach = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, node) in graph.fns.iter().enumerate() {
        if is_panic_entry(node) || (node.is_ct && !node.in_test && !node.is_trait_decl) {
            reach[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for site in &graph.calls[i] {
            for &callee in &site.callees {
                if !reach[callee] && !graph.fns[callee].in_test {
                    reach[callee] = true;
                    queue.push_back(callee);
                }
            }
        }
    }

    // (a) on every reachable function, each obs call site must appear
    // at a discarded-result position at least as often as it occurs.
    for (i, node) in graph.fns.iter().enumerate() {
        if !reach[i] || node.in_test || node.is_ct || node.file.starts_with(OBS_PREFIX) {
            continue;
        }
        let Some(body) = &node.def.body else {
            continue;
        };
        let allowed = discard_positions(body);
        let mut obs_sites: BTreeMap<(u32, String), u32> = BTreeMap::new();
        for site in &graph.calls[i] {
            if is_obs_site(graph, site) {
                *obs_sites.entry((site.line, site.display.clone())).or_insert(0) += 1;
            }
        }
        for ((line, display), count) in obs_sites {
            if count <= allowed.get(&(line, display.clone())).copied().unwrap_or(0) {
                continue;
            }
            let f = Finding {
                file: node.file.clone(),
                line,
                rule: "obs-purity",
                message: format!(
                    "`{}` consumes the return value of obs call `{}` on a \
                     verdict/codec/ct-reachable path — observability must be write-only",
                    node.qname(),
                    display
                ),
                hint: "call obs in statement position, or bind its guard to an \
                       underscore-prefixed local (`let _span = ...`)",
            };
            out.push(f, cfg, node);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Ast;
    use crate::lexer::{lex, Lexed};
    use crate::parser::parse;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let triples: Vec<(String, Lexed, Ast)> = files
            .iter()
            .map(|(name, src)| {
                let lexed = lex(src);
                let ast = parse(&lexed);
                ((*name).to_string(), lexed, ast)
            })
            .collect();
        CallGraph::build(&triples)
    }

    fn empty_cfg() -> LintConfig {
        LintConfig::default()
    }

    #[test]
    fn panic_chain_is_reported_end_to_end() {
        let g = graph_of(&[(
            "crates/x/src/lib.rs",
            "fn verify_thing(v: &[u8]) -> bool { helper(v) }\n\
             fn helper(v: &[u8]) -> bool { deep(v) }\n\
             fn deep(v: &[u8]) -> bool { v[0] == 1 }\n",
        )]);
        let r = panic_reachability(&g, &empty_cfg());
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        let f = &r.findings[0];
        assert_eq!(f.rule, "panic-reachability");
        assert!(
            f.message.contains("verify_thing -> helper -> deep"),
            "chain missing: {}",
            f.message
        );
        assert!(f.message.contains("slice/array indexing"));
    }

    #[test]
    fn clean_verify_has_no_findings() {
        let g = graph_of(&[(
            "crates/x/src/lib.rs",
            "fn verify_thing(v: &[u8]) -> bool { v.first().copied() == Some(1) }\n",
        )]);
        let r = panic_reachability(&g, &empty_cfg());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn test_fns_do_not_create_chains() {
        let g = graph_of(&[(
            "crates/x/src/lib.rs",
            "fn verify_thing(v: &[u8]) -> bool { v.is_empty() }\n\
             #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { assert!(verify_thing(&[])); }\n}\n",
        )]);
        let r = panic_reachability(&g, &empty_cfg());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn taint_flows_across_function_boundaries() {
        let g = graph_of(&[(
            "crates/x/src/lib.rs",
            "struct SecretKey { bytes: Vec<u8> }\n\
             fn log_bytes(d: &[u8]) { println!(\"{:?}\", d); }\n\
             fn derive(sk: &SecretKey) -> Vec<u8> { expand(sk) }\n\
             fn expand(sk: &SecretKey) -> Vec<u8> { sk.bytes.clone() }\n\
             fn leak(sk: &SecretKey) { let d = derive(sk); log_bytes(&d); }\n",
        )]);
        let r = secret_taint(&g, &empty_cfg());
        assert!(
            r.findings.iter().any(|f| f.rule == "secret-taint" && f.message.contains("log_bytes")
                || f.message.contains("println")),
            "expected a cross-function taint finding, got {:?}",
            r.findings
        );
    }

    #[test]
    fn len_does_not_propagate_taint() {
        let g = graph_of(&[(
            "crates/x/src/lib.rs",
            "struct SecretKey { bytes: Vec<u8> }\n\
             fn report(sk: &SecretKey) { println!(\"{}\", sk.bytes.len()); }\n",
        )]);
        let r = secret_taint(&g, &empty_cfg());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn direct_format_of_secret_param_fires() {
        let g = graph_of(&[(
            "crates/x/src/lib.rs",
            "struct HmacKey;\nfn bad(key: &HmacKey) { println!(\"{:?}\", key); }\n",
        )]);
        let r = secret_taint(&g, &empty_cfg());
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert!(r.findings[0].message.contains("HmacKey parameter `key`"));
    }

    #[test]
    fn ct_closure_flags_non_ct_callee() {
        let g = graph_of(&[(
            "crates/x/src/lib.rs",
            "// lint:ct\nfn kernel(x: u64) -> u64 { helper(x) }\n\
             fn helper(x: u64) -> u64 { x.wrapping_mul(3) }\n",
        )]);
        let r = ct_closure(&g, &empty_cfg());
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert!(r.findings[0].message.contains("helper"));
    }

    #[test]
    fn ct_closure_accepts_ct_callees() {
        let g = graph_of(&[(
            "crates/x/src/lib.rs",
            "// lint:ct\nfn kernel(x: u64) -> u64 { inner(x) }\n\
             // lint:ct\nfn inner(x: u64) -> u64 { x.wrapping_mul(3) }\n",
        )]);
        let r = ct_closure(&g, &empty_cfg());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn unbounded_recv_loop_in_node_is_flagged() {
        let g = graph_of(&[(
            "crates/node/src/pump.rs",
            "fn pump(t: &mut Mailbox) {\n\
                 while let Some(m) = t.recv(0, 1) {\n\
                     handle(m);\n\
                 }\n\
             }\n\
             fn handle(_m: u8) {}\n",
        )]);
        let r = deadline(&g, &empty_cfg());
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "deadline");
        assert!(r.findings[0].message.contains("pump"), "{:?}", r.findings);
    }

    #[test]
    fn deadline_witness_in_the_same_function_silences_the_rule() {
        // the witness can be a field access (`expires_at`), a local
        // (`deadline`), or a parameter — all idioms the daemons use
        let g = graph_of(&[(
            "crates/node/src/pump.rs",
            "fn pump(t: &mut Mailbox, deadline: u64) {\n\
                 while let Some(m) = t.recv(0, 1) {\n\
                     if m.at > deadline { break; }\n\
                     handle(m);\n\
                 }\n\
             }\n\
             fn drain(t: &mut Mailbox, now: u64) {\n\
                 expire_overdue(now);\n\
                 loop {\n\
                     let m = t.try_recv(now);\n\
                     if m.is_none() { break; }\n\
                 }\n\
             }\n\
             fn expire_overdue(_now: u64) {}\n\
             fn handle(_m: u8) {}\n",
        )]);
        let r = deadline(&g, &empty_cfg());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn recv_loops_outside_crates_node_are_not_the_rules_business() {
        let g = graph_of(&[(
            "crates/sim/src/engine.rs",
            "fn pump(t: &mut Mailbox) {\n\
                 while let Some(m) = t.recv(0, 1) {\n\
                     handle(m);\n\
                 }\n\
             }\n\
             fn handle(_m: u8) {}\n",
        )]);
        let r = deadline(&g, &empty_cfg());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    /// A fake obs crate plus an instrumented verify chain, all clean:
    /// statement-position calls and an underscore-bound span guard.
    const OBS_SRC: (&str, &str) = (
        "crates/obs/src/lib.rs",
        "pub fn counter_inc(name: &str) {}\n\
         pub fn observe(name: &str, value: u64) {}\n\
         pub fn span(name: &str) -> Span { Span }\n\
         pub struct Span;\n",
    );

    #[test]
    fn obs_purity_accepts_discarded_obs_calls() {
        let g = graph_of(&[
            OBS_SRC,
            (
                "crates/x/src/lib.rs",
                "fn verify_thing(v: &[u8]) -> bool {\n\
                     let _span = dsaudit_obs::span(\"x.verify\");\n\
                     dsaudit_obs::counter_inc(\"x.calls\");\n\
                     if v.is_empty() {\n\
                         dsaudit_obs::observe(\"x.len\", 0);\n\
                     }\n\
                     true\n\
                 }\n",
            ),
        ]);
        let r = obs_purity(&g, &empty_cfg());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn obs_purity_flags_consumed_return_value() {
        let g = graph_of(&[
            OBS_SRC,
            (
                "crates/x/src/lib.rs",
                "fn verify_thing(v: &[u8]) -> bool {\n\
                     let guard = dsaudit_obs::span(\"x.verify\");\n\
                     helper(&guard)\n\
                 }\n\
                 fn helper(_g: &Span) -> bool { true }\n",
            ),
        ]);
        let r = obs_purity(&g, &empty_cfg());
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "obs-purity");
        assert!(r.findings[0].message.contains("dsaudit_obs::span"), "{:?}", r.findings);
    }

    #[test]
    fn obs_purity_flags_obs_call_inside_ct_kernel() {
        let g = graph_of(&[
            OBS_SRC,
            (
                "crates/x/src/lib.rs",
                "// lint:ct\nfn kernel(x: u64) -> u64 {\n\
                     dsaudit_obs::counter_inc(\"x.kernel\");\n\
                     x.wrapping_mul(3)\n\
                 }\n",
            ),
        ]);
        let r = obs_purity(&g, &empty_cfg());
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert!(
            r.findings[0].message.contains("lint:ct"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn obs_purity_ignores_unreachable_consumers() {
        // snapshot/export plumbing consumes obs values legitimately —
        // it is not on any verify/decode/ct path.
        let g = graph_of(&[
            OBS_SRC,
            (
                "crates/bench/src/lib.rs",
                "fn render() -> Span { dsaudit_obs::span(\"bench\") }\n",
            ),
        ]);
        let r = obs_purity(&g, &empty_cfg());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn loops_without_a_receive_are_ignored() {
        let g = graph_of(&[(
            "crates/node/src/math.rs",
            "fn sum(xs: &[u64]) -> u64 {\n\
                 let mut acc = 0u64;\n\
                 for x in xs {\n\
                     acc += x;\n\
                 }\n\
                 acc\n\
             }\n",
        )]);
        let r = deadline(&g, &empty_cfg());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }
}
