//! SARIF 2.1.0 output — the interchange format CI systems turn into
//! inline code annotations. Hand-rolled JSON like the rest of the
//! workspace (no serde in the offline build environment).
//!
//! The emitted document is the minimal conforming subset: one run,
//! a `tool.driver` carrying the rule catalogue, one `result` per
//! finding with a `physicalLocation` region, and suppressed findings
//! included with `suppressions[]` entries carrying the audit reason
//! (SARIF viewers render those as dismissed).

use crate::report::{Finding, WorkspaceReport};
use crate::rules::RULES;

/// Renders the workspace report as a SARIF 2.1.0 document.
pub fn render_sarif(report: &WorkspaceReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"dsaudit-lint\",\n");
    out.push_str("          \"informationUri\": \"docs/LINTS.md\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{}\n",
            json_str(r.id),
            json_str(r.summary),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let total = report.findings.len() + report.suppressed.len();
    let mut emitted = 0usize;
    for f in &report.findings {
        emitted += 1;
        out.push_str(&result_json(f, None, emitted < total));
    }
    for (f, s) in &report.suppressed {
        emitted += 1;
        out.push_str(&result_json(f, Some(&s.reason), emitted < total));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn result_json(f: &Finding, suppressed_reason: Option<&str>, comma: bool) -> String {
    let mut s = String::from("        {\n");
    s.push_str(&format!("          \"ruleId\": {},\n", json_str(f.rule)));
    s.push_str(&format!(
        "          \"level\": {},\n",
        json_str(if suppressed_reason.is_some() { "note" } else { "error" })
    ));
    s.push_str(&format!(
        "          \"message\": {{\"text\": {}}},\n",
        json_str(&format!("{} — hint: {}", f.message, f.hint))
    ));
    s.push_str(&format!(
        "          \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]",
        json_str(&f.file),
        f.line.max(1)
    ));
    if let Some(reason) = suppressed_reason {
        s.push_str(&format!(
            ",\n          \"suppressions\": [{{\"kind\": \"inSource\", \"justification\": {}}}]",
            json_str(reason)
        ));
    }
    s.push_str("\n        }");
    s.push_str(if comma { ",\n" } else { "\n" });
    s
}

/// JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Suppression;

    #[test]
    fn sarif_structure_and_balance() {
        let rep = WorkspaceReport {
            files_scanned: 1,
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                rule: "panic-reachability",
                message: "panic reachable from `verify`".into(),
                hint: "fix it",
            }],
            suppressed: vec![(
                Finding {
                    file: "crates/y/src/lib.rs".into(),
                    line: 3,
                    rule: "ct-closure",
                    message: "non-ct call".into(),
                    hint: "audit",
                },
                Suppression {
                    line: 3,
                    comment_line: 3,
                    rule: "ct-closure".into(),
                    reason: "word ops only".into(),
                },
            )],
            ..WorkspaceReport::default()
        };
        let s = render_sarif(&rep);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"dsaudit-lint\""));
        assert!(s.contains("\"ruleId\": \"panic-reachability\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("\"justification\": \"word ops only\""));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
        // every rule in the catalogue is declared
        for r in RULES {
            assert!(s.contains(&format!("\"id\": \"{}\"", r.id)), "{}", r.id);
        }
    }
}
