//! A hand-rolled Rust lexer — just enough tokenization for the lint
//! rules, with no `syn` and no registry dependency.
//!
//! The lexer understands exactly the constructs that would otherwise
//! produce false findings: line comments, nested block comments, string
//! and byte-string literals, raw strings with arbitrary `#` fences, raw
//! identifiers, character literals, and lifetimes. Everything the rules
//! match on (`unwrap`, `HashMap`, `if`, `&&`, `[`) is delivered as a
//! [`Token`] with a 1-based line number; comment text is delivered
//! separately so suppression and `ct` annotations can be parsed without
//! confusing them with code.

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `if`, `struct`, ...).
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// String, byte-string or raw-string literal (content dropped).
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Punctuation. One character, except the two-character `&&` / `||`
    /// which the ct-branch rule needs as single tokens.
    Punct,
}

/// One significant lexeme of a source file.
#[derive(Clone, Debug)]
pub struct Token {
    /// The kind of lexeme.
    pub kind: TokenKind,
    /// The text (identifier name, punctuation characters; literals keep
    /// only a placeholder since rules never match literal content).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block), with delimiters stripped.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text after `//` (or between `/*` and `*/`), untrimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Output of [`lex`]: the token stream plus the comment stream.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// All significant tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// True when some token sits on `line` (used to decide whether a
    /// suppression comment is trailing code or stands on its own line).
    pub fn has_token_on_line(&self, line: u32) -> bool {
        self.tokens.iter().any(|t| t.line == line)
    }

    /// The first token line strictly after `line`, if any.
    pub fn next_token_line_after(&self, line: u32) -> Option<u32> {
        self.tokens
            .iter()
            .map(|t| t.line)
            .filter(|&l| l > line)
            .min()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`. Never fails: unterminated literals or comments
/// simply end at end-of-file (the compiler, not the linter, is the
/// arbiter of validity — the linter only needs to not misclassify).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    // Helper closures would need to capture `line` mutably alongside the
    // main loop, so the scanning is written inline instead.
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // -- whitespace ---------------------------------------------------
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // -- comments -----------------------------------------------------
        if c == '/' && next == Some('/') {
            let start_line = line;
            let mut text = String::new();
            i += 2;
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                i += 1;
            }
            out.comments.push(Comment {
                text,
                line: start_line,
            });
            continue;
        }
        if c == '/' && next == Some('*') {
            let start_line = line;
            let mut text = String::new();
            let mut depth = 1u32;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    text.push_str("/*");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    text.push(chars[i]);
                    i += 1;
                }
            }
            out.comments.push(Comment {
                text,
                line: start_line,
            });
            continue;
        }

        // -- raw strings / raw identifiers / byte literals ---------------
        if c == 'r' || c == 'b' {
            // Possible prefixes: r"  r#"  r#ident  b"  b'  br"  br#"
            let mut j = i + 1;
            let saw_b = c == 'b';
            let mut saw_r = c == 'r';
            if saw_b && chars.get(j) == Some(&'r') {
                saw_r = true;
                j += 1;
            }
            if saw_r {
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    // raw (byte) string: ends at `"` followed by `hashes` #s
                    let start_line = line;
                    j += 1;
                    loop {
                        match chars.get(j) {
                            None => break,
                            Some(&'"') => {
                                let mut k = j + 1;
                                let mut seen = 0usize;
                                while seen < hashes && chars.get(k) == Some(&'#') {
                                    seen += 1;
                                    k += 1;
                                }
                                if seen == hashes {
                                    j = k;
                                    break;
                                }
                                j += 1;
                            }
                            Some(&'\n') => {
                                line += 1;
                                j += 1;
                            }
                            Some(_) => j += 1,
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text: String::new(),
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
                if !saw_b && hashes == 1 && chars.get(j).copied().is_some_and(is_ident_start) {
                    // raw identifier r#ident
                    let start = j;
                    while chars.get(j).copied().is_some_and(is_ident_continue) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: chars[start..j].iter().collect(),
                        line,
                    });
                    i = j;
                    continue;
                }
            }
            if saw_b && !saw_r && chars.get(i + 1) == Some(&'"') {
                // b"..." — fall through to plain string handling below by
                // consuming the `b` prefix.
                i += 1;
                // handled by the string branch on the next iteration
                continue;
            }
            if saw_b && !saw_r && chars.get(i + 1) == Some(&'\'') {
                // b'x' byte literal: consume the `b`, then the char branch.
                i += 1;
                continue;
            }
            // plain identifier starting with r/b
        }

        // -- string literal ----------------------------------------------
        if c == '"' {
            let start_line = line;
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: String::new(),
                line: start_line,
            });
            continue;
        }

        // -- char literal vs lifetime ------------------------------------
        if c == '\'' {
            match next {
                Some('\\') => {
                    // escaped char literal: skip escape, scan to closing quote
                    i += 3; // ' \ x  (multi-char escapes handled by the scan)
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text: String::new(),
                        line,
                    });
                    continue;
                }
                Some(n) if is_ident_start(n) => {
                    // 'a' is a char literal; 'a without a closing quote is a
                    // lifetime. Scan the identifier, then look for the quote.
                    let mut j = i + 1;
                    while chars.get(j).copied().is_some_and(is_ident_continue) {
                        j += 1;
                    }
                    if chars.get(j) == Some(&'\'') {
                        out.tokens.push(Token {
                            kind: TokenKind::Char,
                            text: String::new(),
                            line,
                        });
                        i = j + 1;
                    } else {
                        out.tokens.push(Token {
                            kind: TokenKind::Lifetime,
                            text: chars[i + 1..j].iter().collect(),
                            line,
                        });
                        i = j;
                    }
                    continue;
                }
                Some(_) => {
                    // char literal of a single punctuation char: '(' etc.
                    if chars.get(i + 2) == Some(&'\'') {
                        out.tokens.push(Token {
                            kind: TokenKind::Char,
                            text: String::new(),
                            line,
                        });
                        i += 3;
                        continue;
                    }
                    // stray quote; treat as punctuation and move on
                    out.tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: "'".into(),
                        line,
                    });
                    i += 1;
                    continue;
                }
                None => {
                    i += 1;
                    continue;
                }
            }
        }

        // -- identifiers --------------------------------------------------
        if is_ident_start(c) {
            let start = i;
            while chars.get(i).copied().is_some_and(is_ident_continue) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }

        // -- numbers ------------------------------------------------------
        if c.is_ascii_digit() {
            // After a `.` token this number is a tuple-field index
            // (`x.0`, `x.0.1`): scan digits only, so the second `.` in
            // `x.0.1` stays a field separator instead of turning the
            // index into the float `0.1`.
            let field_position = out
                .tokens
                .last()
                .is_some_and(|t| t.kind == TokenKind::Punct && t.text == ".");
            let start = i;
            while i < chars.len() {
                let d = chars[i];
                if is_ident_continue(d) {
                    i += 1;
                } else if d == '.' && !field_position {
                    let after = chars.get(i + 1).copied();
                    if after.is_some_and(|n| n.is_ascii_digit()) {
                        // float like 1.5
                        i += 1;
                    } else if after != Some('.') && !after.is_some_and(is_ident_start) {
                        // trailing-dot float like `0.` — but not a range
                        // `0..n` and not a method call `0.max(x)`
                        i += 1;
                        break;
                    } else {
                        break;
                    }
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Num,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }

        // -- punctuation --------------------------------------------------
        if (c == '&' && next == Some('&')) || (c == '|' && next == Some('|')) {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: format!("{c}{c}"),
                line,
            });
            i += 2;
            continue;
        }
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_content() {
        let l = lex(r#"let s = "x.unwrap()"; s.len()"#);
        assert!(idents(r#"let s = "x.unwrap()"; s.len()"#).contains(&"len".to_string()));
        assert!(!l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "unwrap"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let s = r##\"contains \"# and unwrap()\"##; done()";
        assert_eq!(idents(src), vec!["let", "s", "done"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* x.unwrap() */ still comment */ b";
        assert_eq!(idents(src), vec!["a", "b"]);
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("unwrap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            1
        );
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "a\n/* two\nlines */\n\"str\nstr\"\nb";
        let l = lex(src);
        let b = l.tokens.iter().find(|t| t.text == "b").expect("b token");
        assert_eq!(b.line, 6);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let x = b\"unwrap()\"; let y = b'\\n'; let z = br#\"if || &&\"#; end()";
        assert_eq!(idents(src), vec!["let", "x", "let", "y", "let", "z", "end"]);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#fn = 1;"), vec!["let", "fn"]);
    }

    #[test]
    fn raw_identifiers_with_keyword_names() {
        // every raw-identifier shape the workspace could plausibly use
        assert_eq!(idents("let r#type = 1; let r#impl = r#fn;"),
                   vec!["let", "type", "let", "impl", "fn"]);
        // an `r` variable on its own is a plain identifier, not a raw prefix
        assert_eq!(idents("let r = 1; r.abs()"), vec!["let", "r", "r", "abs"]);
        // `br` with no quote is an ordinary identifier too
        assert_eq!(idents("let br = broken;"), vec!["let", "br", "broken"]);
    }

    #[test]
    fn byte_string_variants() {
        // b"..." with escapes, br"..." with fences, b'..' byte chars
        let src = r####"let a = b"\x00.unwrap()"; let b2 = br##"has "# inside"##; let c = b'\\';"####;
        assert_eq!(idents(src), vec!["let", "a", "let", "b2", "let", "c"]);
        let l = lex(src);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            2
        );
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Char).count(),
            1
        );
    }

    #[test]
    fn float_vs_tuple_field_access() {
        // `x.0.1` is two tuple-field accesses, never the float `0.1`
        let l = lex("x.0.1");
        let nums: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "1"]);
        // `0.` with nothing after the dot is one (trailing-dot) float
        let l = lex("let x = 0.;");
        let nums: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0."]);
        // `0.5` stays one float; `0..n` stays a range; `0.max(x)` keeps
        // the dot as a method-call separator
        assert_eq!(lex("0.5").tokens.len(), 1);
        let range = lex("0..9");
        assert_eq!(
            range.tokens.iter().filter(|t| t.kind == TokenKind::Num).count(),
            2
        );
        assert_eq!(
            range.tokens.iter().filter(|t| t.text == ".").count(),
            2
        );
        let m = lex("0.max(x)");
        assert_eq!(m.tokens[0].text, "0");
        assert!(m.tokens.iter().any(|t| t.text == "max"));
    }

    #[test]
    fn double_amp_and_pipe_are_single_tokens() {
        let l = lex("a && b || c & d | e");
        let puncts: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec!["&&", "||", "&", "|"]);
    }
}
