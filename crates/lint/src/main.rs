//! The `dsaudit-lint` binary: run from anywhere in the workspace with
//! `cargo run -p dsaudit-lint`. Exits nonzero when unsuppressed findings
//! exist; `--json` switches to the machine-readable report.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: dsaudit-lint [--json] [WORKSPACE_ROOT]");
        println!("  exits 0 when the workspace has zero unsuppressed findings");
        return ExitCode::SUCCESS;
    }
    let json = args.iter().any(|a| a == "--json");
    // explicit root > the workspace this binary was built from > cwd
    let root: PathBuf = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
        });
    match dsaudit_lint::analyze_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("dsaudit-lint: cannot analyze {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
