//! The `dsaudit-lint` binary: run from anywhere in the workspace with
//! `cargo run -p dsaudit-lint`. Exits nonzero when unsuppressed findings
//! exist; `--json` and `--sarif` switch to machine-readable reports.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: dsaudit-lint [OPTIONS] [WORKSPACE_ROOT]
  --json           machine-readable report (stable schema)
  --sarif          SARIF 2.1.0 report (for CI annotations)
  --only <rule>    restrict output to one rule id
  --list-rules     print the rule catalogue and exit
  --help           this text
exits 0 when the workspace has zero unsuppressed findings";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list-rules") {
        for r in dsaudit_lint::RULES {
            println!("{:<20} {}", r.id, r.summary.split_whitespace().collect::<Vec<_>>().join(" "));
        }
        return ExitCode::SUCCESS;
    }
    let json = args.iter().any(|a| a == "--json");
    let sarif = args.iter().any(|a| a == "--sarif");
    let only: Option<String> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if let Some(rule) = &only {
        if !dsaudit_lint::RULES.iter().any(|r| r.id == rule) {
            eprintln!("dsaudit-lint: unknown rule `{rule}` (see --list-rules)");
            return ExitCode::from(2);
        }
    }
    // explicit root > the workspace this binary was built from > cwd
    let mut positional = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--only" {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            positional.push(a.clone());
        }
    }
    let root: PathBuf = positional.first().map(PathBuf::from).unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });
    match dsaudit_lint::analyze_workspace(&root) {
        Ok(report) => {
            let report = match &only {
                Some(rule) => report.only_rule(rule),
                None => report,
            };
            if sarif {
                print!("{}", dsaudit_lint::sarif::render_sarif(&report));
            } else if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("dsaudit-lint: cannot analyze {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
