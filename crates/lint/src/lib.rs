//! `dsaudit-lint`: repo-specific static analysis for the dsaudit
//! workspace.
//!
//! Three invariant classes in this codebase are *protocol* requirements,
//! not style preferences, and were previously enforced only by
//! convention:
//!
//! * **panic-freedom** — the wire/codec surfaces must survive adversarial
//!   bytes without aborting (any two verifiers must reach a verdict);
//! * **determinism** — the simulator, chain and storage crates must be
//!   byte-for-byte reproducible from a seed (verdict agreement dies the
//!   moment iteration order differs between verifiers);
//! * **secret-hygiene** — secret key material must not be formattable,
//!   and annotated crypto hot paths must not branch on secret data.
//!
//! This crate walks every workspace `.rs` file with a hand-rolled,
//! comment/string/raw-string-aware lexer (no `syn`; the build
//! environment is offline) and enforces the rule catalogue in
//! `docs/LINTS.md`. Findings carry `file:line`, a stable rule id and a
//! fix hint; intentional exceptions are audited in place via
//! `lint:allow(<rule>)` comments that must carry a reason.
//!
//! Shipped three ways: the `dsaudit-lint` binary (nonzero exit on
//! findings, `--json` for machine-readable reports), the
//! `workspace_clean` integration test (so `cargo test` is a gate), and a
//! CI step.

#![forbid(unsafe_code)]

pub mod ast;
pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod parser;
pub mod passes;
pub mod report;
pub mod rules;
pub mod sarif;

use std::path::{Path, PathBuf};

pub use report::{FileReport, Finding, Suppression, WorkspaceReport};
pub use rules::{analyze_source, RuleInfo, RULES};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github"];

/// Collects every `.rs` file under `root` (skipping [`SKIP_DIRS`]),
/// sorted for deterministic reports.
fn rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Loads every workspace `.rs` file under `root` as
/// `(relative_path, lexed, ast)` triples — the shared input of the
/// token rules, the call graph, and the differential parser gate.
///
/// # Errors
/// Propagates I/O errors from the directory walk or file reads.
pub fn parse_workspace(root: &Path) -> std::io::Result<Vec<(String, lexer::Lexed, ast::Ast)>> {
    let mut out = Vec::new();
    for path in rust_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&path)?;
        let lexed = lexer::lex(&src);
        let ast = parser::parse(&lexed);
        out.push((rel, lexed, ast));
    }
    Ok(out)
}

/// Analyzes every workspace `.rs` file under `root`: the per-file
/// token rules, then the workspace call graph and the five
/// interprocedural passes (panic-reachability, secret-taint,
/// ct-closure, deadline, obs-purity) with `lint.toml` suppressions
/// applied.
///
/// `root` should be the workspace root (the directory holding the
/// top-level `Cargo.toml`); paths in findings are reported relative to
/// it with `/` separators, which is also what zone membership keys on.
///
/// # Errors
/// Propagates I/O errors from the directory walk or file reads.
pub fn analyze_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();
    let files = parse_workspace(root)?;

    // Per-file token rules (re-lexes via analyze_source to keep its
    // signature; lexing is a few ms for the whole tree).
    for (rel, _, _) in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let file_report = analyze_source(rel, &src);
        report.files_scanned += 1;
        report.findings.extend(file_report.findings);
        report.suppressed.extend(file_report.suppressed);
    }

    // Interprocedural passes over the workspace call graph.
    let graph = callgraph::CallGraph::build(&files);
    report.callgraph_fns = graph.fns.len();
    let (cfg, mut cfg_findings) = config::LintConfig::load(root);
    for pass in [
        passes::panic_reachability(&graph, &cfg),
        passes::secret_taint(&graph, &cfg),
        passes::ct_closure(&graph, &cfg),
        passes::deadline(&graph, &cfg),
        passes::obs_purity(&graph, &cfg),
    ] {
        report.findings.extend(pass.findings);
        report.suppressed.extend(pass.suppressed);
    }
    report.findings.append(&mut cfg_findings);
    report.findings.extend(cfg.unused_findings());

    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(report)
}
