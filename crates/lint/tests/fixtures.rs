//! Fixture tests: for every rule, at least one firing and one
//! non-firing source, plus the lexer edge cases that would turn a
//! text-match linter into a false-positive machine.

use dsaudit_lint::analyze_source;

/// Rules of the live (unsuppressed) findings for `src` analyzed at `path`.
fn live_rules(path: &str, src: &str) -> Vec<&'static str> {
    analyze_source(path, src)
        .findings
        .iter()
        .map(|f| f.rule)
        .collect()
}

// --- no-panic --------------------------------------------------------------

#[test]
fn no_panic_fires_in_a_panic_free_file() {
    let src = "pub fn read(r: &R) -> u8 { r.next().unwrap() }";
    assert_eq!(live_rules("crates/core/src/codec.rs", src), ["no-panic"]);
    let src = "pub fn read(r: &R) -> u8 { r.next().expect(\"byte\") }";
    assert_eq!(live_rules("crates/storage/src/wire.rs", src), ["no-panic"]);
    let src = "pub fn read() { panic!(\"boom\") }";
    assert_eq!(live_rules("crates/storage/src/erasure.rs", src), ["no-panic"]);
    let src = "pub fn read() { todo!() }";
    assert_eq!(live_rules("crates/core/src/codec.rs", src), ["no-panic"]);
}

#[test]
fn no_panic_fires_inside_codec_impls_anywhere() {
    let src = "impl Codec for Foo {\n    fn decode_from(r: &mut R) -> Foo { r.next().unwrap() }\n}";
    assert_eq!(live_rules("crates/anywhere/src/thing.rs", src), ["no-panic"]);
}

#[test]
fn no_panic_silent_outside_zones_and_in_tests() {
    let src = "pub fn read(r: &R) -> u8 { r.next().unwrap() }";
    assert!(live_rules("crates/sim/src/engine.rs", src).is_empty());
    // #[cfg(test)] items inside a zone file are exempt
    let src = "#[cfg(test)]\nmod tests {\n    fn t(r: &R) { r.next().unwrap(); }\n}";
    assert!(live_rules("crates/core/src/codec.rs", src).is_empty());
    // tests/-directory files are exempt wholesale
    let src = "fn t(r: &R) { r.next().unwrap(); }";
    assert!(live_rules("crates/core/tests/proptests.rs", src).is_empty());
    // `unwrap` that is not a `.unwrap()` call (a local fn) does not fire
    let src = "fn unwrap_layers(x: u8) -> u8 { unwrap(x) }\nfn unwrap(x: u8) -> u8 { x }";
    assert!(live_rules("crates/core/src/codec.rs", src).is_empty());
}

// --- no-index --------------------------------------------------------------

#[test]
fn no_index_fires_on_postfix_indexing() {
    let src = "pub fn first(b: &[u8]) -> u8 { b[0] }";
    assert_eq!(live_rules("crates/core/src/codec.rs", src), ["no-index"]);
    // indexing a call result and chained indexing
    let src = "pub fn f(m: &M) -> u8 { m.rows()[1] }";
    assert_eq!(live_rules("crates/storage/src/wire.rs", src), ["no-index"]);
}

#[test]
fn no_index_ignores_attributes_literals_and_types() {
    let src = "#[derive(Clone)]\npub struct A;\nconst B: [u8; 4] = [0; 4];\npub fn f(x: &mut [u8], v: Vec<u8>) -> Vec<u8> { vec![0u8; 3] }";
    assert!(live_rules("crates/core/src/codec.rs", src).is_empty());
    // indexing outside the zones is fine (erasure kernels, sim, ...)
    let src = "pub fn first(b: &[u8]) -> u8 { b[0] }";
    assert!(live_rules("crates/storage/src/erasure.rs", src).is_empty());
}

// --- determinism -----------------------------------------------------------

#[test]
fn determinism_fires_in_deterministic_trees() {
    let src = "use std::collections::HashMap;";
    assert_eq!(live_rules("crates/sim/src/engine.rs", src), ["determinism"]);
    let src = "fn now() -> Instant { Instant::now() }";
    assert_eq!(live_rules("crates/chain/src/chain.rs", src), ["determinism"]);
    let src = "fn s() { let _ = SystemTime::now(); }";
    assert_eq!(live_rules("crates/storage/src/network.rs", src), ["determinism"]);
    // any Date-like identifier counts
    let src = "fn d() { let _ = LocalDate::today(); }";
    assert_eq!(live_rules("crates/sim/src/clock.rs", src), ["determinism"]);
}

#[test]
fn determinism_silent_elsewhere_and_in_tests() {
    let src = "use std::collections::HashMap;";
    assert!(live_rules("crates/core/src/codec_helpers.rs", src).is_empty());
    let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}";
    assert!(live_rules("crates/sim/src/engine.rs", src).is_empty());
}

#[test]
fn determinism_dedups_double_mentions_on_one_line() {
    let src = "fn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
    assert_eq!(live_rules("crates/sim/src/engine.rs", src), ["determinism"]);
}

// --- secret-debug ----------------------------------------------------------

#[test]
fn secret_debug_fires_on_derive_and_manual_impls() {
    let src = "#[derive(Clone, Debug)]\npub struct SecretKey { x: u64 }";
    assert_eq!(live_rules("crates/core/src/keys.rs", src), ["secret-debug"]);
    let src = "#[derive(Display)]\npub struct HmacKey;";
    assert_eq!(live_rules("crates/crypto/src/hmac.rs", src), ["secret-debug"]);
    let src = "impl core::fmt::Debug for SmallDomainPrp {\n    fn fmt(&self, f: &mut F) -> R { Ok(()) }\n}";
    assert_eq!(live_rules("crates/crypto/src/prp.rs", src), ["secret-debug"]);
}

#[test]
fn secret_debug_silent_on_public_types_and_clean_secrets() {
    let src = "#[derive(Clone, Debug)]\npub struct PublicKey { v: u64 }";
    assert!(live_rules("crates/core/src/keys.rs", src).is_empty());
    let src = "#[derive(Clone, PartialEq)]\npub struct SecretKey { x: u64 }";
    assert!(live_rules("crates/core/src/keys.rs", src).is_empty());
    // Debug impl for a *different* type in a file that also defines a secret
    let src = "pub struct SecretKey;\nimpl std::fmt::Debug for Wrapper {\n    fn fmt(&self, f: &mut F) -> R { Ok(()) }\n}";
    assert!(live_rules("crates/core/src/keys.rs", src).is_empty());
}

// --- ct-branch -------------------------------------------------------------

#[test]
fn ct_branch_fires_on_each_construct() {
    for (body, what) in [
        ("if x > 0 { 1 } else { 0 }", "if"),
        ("match x { 0 => 1, _ => 0 }", "match"),
        ("{ return x; }", "return"),
        ("(x > 0 && x < 9) as u64", "&&"),
        ("(x == 0 || x == 1) as u64", "||"),
    ] {
        let src = format!("// lint:ct\nfn f(x: u64) -> u64 {{ {body} }}");
        assert_eq!(
            live_rules("crates/crypto/src/prf.rs", &src),
            ["ct-branch"],
            "construct: {what}"
        );
    }
}

#[test]
fn ct_branch_only_covers_the_annotated_body() {
    // branch-free annotated body: clean
    let src = "// lint:ct\nfn f(x: u64) -> u64 { x.wrapping_mul(3) ^ (x >> 7) }";
    assert!(live_rules("crates/crypto/src/prf.rs", src).is_empty());
    // branches in the *next* (unannotated) function: clean
    let src = "// lint:ct\nfn f(x: u64) -> u64 { x ^ 1 }\nfn g(x: u64) -> u64 { if x > 0 { 1 } else { 0 } }";
    assert!(live_rules("crates/crypto/src/prf.rs", src).is_empty());
    // doc comments and attributes may sit between annotation and fn
    let src = "// lint:ct\n/// Docs.\n#[inline]\nfn f(x: u64) -> u64 { if x > 0 { 1 } else { 0 } }";
    assert_eq!(live_rules("crates/crypto/src/prf.rs", src), ["ct-branch"]);
}

// --- decode-bounds ---------------------------------------------------------

#[test]
fn decode_bounds_fires_on_unbounded_allocation() {
    let src = "fn decode_from(r: &mut R) -> Result<V, E> {\n    let count = r.u32_le(\"count\")? as usize;\n    let out = Vec::with_capacity(count);\n    Ok(out)\n}";
    assert_eq!(live_rules("crates/core/src/tag.rs", src), ["decode-bounds"]);
    let src = "fn decode_header(r: &mut R) -> Result<V, E> {\n    let count = r.u32_le(\"count\")? as usize;\n    Ok(vec![0u8; count])\n}";
    assert_eq!(live_rules("crates/core/src/tag.rs", src), ["decode-bounds"]);
}

#[test]
fn decode_bounds_satisfied_by_a_preceding_length_check() {
    let src = "fn decode_from(r: &mut R) -> Result<V, E> {\n    let count = r.u32_le(\"count\")? as usize;\n    if r.remaining() < 32 * count { return Err(E::Truncated); }\n    let out = Vec::with_capacity(count);\n    Ok(out)\n}";
    assert!(live_rules("crates/core/src/tag.rs", src).is_empty());
    // a slice len() bound also counts
    let src = "fn decode_all(bytes: &[u8]) -> Vec<u8> {\n    let n = bytes.len();\n    Vec::with_capacity(n)\n}";
    assert!(live_rules("crates/core/src/tag.rs", src).is_empty());
    // allocations outside decode fns are unconstrained
    let src = "fn encode_into(&self, n: usize) -> Vec<u8> { Vec::with_capacity(n) }";
    assert!(live_rules("crates/core/src/tag.rs", src).is_empty());
}

// --- suppression -----------------------------------------------------------

#[test]
fn well_formed_allow_suppresses_exactly_its_target() {
    // trailing comment suppresses its own line
    let src = "pub fn read(r: &R) -> u8 { r.next().unwrap() } // lint:allow(no-panic) — fixture";
    let rep = analyze_source("crates/core/src/codec.rs", src);
    assert!(rep.findings.is_empty());
    assert_eq!(rep.suppressed.len(), 1);
    assert_eq!(rep.suppressed[0].0.rule, "no-panic");
    assert_eq!(rep.suppressed[0].1.reason, "fixture");
    // standalone comment suppresses the next code line
    let src = "// lint:allow(no-panic) — fixture\npub fn read(r: &R) -> u8 { r.next().unwrap() }";
    let rep = analyze_source("crates/core/src/codec.rs", src);
    assert!(rep.findings.is_empty());
    assert_eq!(rep.suppressed.len(), 1);
}

#[test]
fn allow_does_not_leak_to_other_lines_or_rules() {
    // the allow covers line 2; the unwrap on line 3 still fires
    let src = "// lint:allow(no-panic) — fixture\npub fn a(r: &R) -> u8 { r.next().unwrap() }\npub fn b(r: &R) -> u8 { r.next().unwrap() }";
    let rep = analyze_source("crates/core/src/codec.rs", src);
    assert_eq!(rep.findings.len(), 1);
    assert_eq!(rep.suppressed.len(), 1);
    // an allow for a different rule suppresses nothing
    let src = "pub fn read(b: &[u8]) -> u8 { b[0] } // lint:allow(no-panic) — wrong rule";
    let rep = analyze_source("crates/core/src/codec.rs", src);
    assert_eq!(
        rep.findings.iter().map(|f| f.rule).collect::<Vec<_>>(),
        ["no-index"]
    );
}

#[test]
fn malformed_suppressions_are_findings_and_unsuppressible() {
    let src = "// lint:allow(no-such-rule) — reason\nfn f() {}";
    assert_eq!(live_rules("crates/core/src/misc.rs", src), ["suppression"]);
    let src = "// lint:allow(no-panic)\nfn f() {}";
    assert_eq!(live_rules("crates/core/src/misc.rs", src), ["suppression"]);
    let src = "// lint:allow(no-panic — unterminated\nfn f() {}";
    assert_eq!(live_rules("crates/core/src/misc.rs", src), ["suppression"]);
    // a reason made only of dashes/colons is still empty after trimming
    let src = "// lint:allow(no-panic) — - :\nfn f() {}";
    assert_eq!(live_rules("crates/core/src/misc.rs", src), ["suppression"]);
}

// --- lexer edge cases at the rule level ------------------------------------

#[test]
fn string_literals_never_fire() {
    let src = "const S: &str = \"x.unwrap() and panic! and b[0]\";";
    assert!(live_rules("crates/core/src/codec.rs", src).is_empty());
    let src = "const S: &str = r#\"HashMap::new() and \"quoted\" unwrap()\"#;";
    assert!(live_rules("crates/sim/src/engine.rs", src).is_empty());
    let src = "const S: &[u8] = br#\"Instant::now()\"#;";
    assert!(live_rules("crates/chain/src/chain.rs", src).is_empty());
}

#[test]
fn comments_never_fire() {
    let src = "// calls x.unwrap() — prose, not code\nfn f() {}";
    assert!(live_rules("crates/core/src/codec.rs", src).is_empty());
    let src = "/* outer /* nested HashMap::new() */ still comment */\nfn f() {}";
    assert!(live_rules("crates/sim/src/engine.rs", src).is_empty());
}

#[test]
fn lifetimes_do_not_confuse_char_literals() {
    // `'a` lifetimes next to char literals containing quote-like chars
    let src = "fn f<'a>(x: &'a str) -> char { '\\'' }\nconst C: char = '[';";
    assert!(live_rules("crates/core/src/codec.rs", src).is_empty());
}

#[test]
fn line_numbers_attribute_findings_correctly() {
    let src = "\n\nfn read(r: &R) -> u8 {\n    r.next().unwrap()\n}";
    let rep = analyze_source("crates/core/src/codec.rs", src);
    assert_eq!(rep.findings.len(), 1);
    assert_eq!(rep.findings[0].line, 4);
}
