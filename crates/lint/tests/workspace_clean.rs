//! The gate: the workspace itself must be lint-clean. This is the same
//! check CI runs via `cargo run -p dsaudit-lint`, wired into `cargo
//! test` so a plain test run also refuses unsuppressed findings.

use std::path::Path;

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = dsaudit_lint::analyze_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "unsuppressed findings:\n{}",
        report.render_text()
    );
    // every suppression names a known rule and carries a reason — the
    // parser enforces this, so here we only assert the invariant held
    for (f, s) in &report.suppressed {
        assert!(
            !s.reason.is_empty(),
            "reason-less suppression survived at {}:{}",
            f.file,
            f.line
        );
        assert_eq!(f.rule, s.rule, "suppression/rule mismatch at {}:{}", f.file, f.line);
    }
}
