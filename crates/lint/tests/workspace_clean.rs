//! The gate: the workspace itself must be lint-clean. This is the same
//! check CI runs via `cargo run -p dsaudit-lint`, wired into `cargo
//! test` so a plain test run also refuses unsuppressed findings.

use std::path::Path;

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = dsaudit_lint::analyze_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "unsuppressed findings:\n{}",
        report.render_text()
    );
    // every suppression names a known rule and carries a reason — the
    // parser enforces this, so here we only assert the invariant held
    for (f, s) in &report.suppressed {
        assert!(
            !s.reason.is_empty(),
            "reason-less suppression survived at {}:{}",
            f.file,
            f.line
        );
        assert_eq!(f.rule, s.rule, "suppression/rule mismatch at {}:{}", f.file, f.line);
    }
}

#[test]
fn interprocedural_passes_ran_over_the_whole_graph() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = dsaudit_lint::analyze_workspace(&root).expect("workspace scan");
    assert!(
        report.callgraph_fns > 500,
        "call graph looks truncated: {} fns",
        report.callgraph_fns
    );
    // The kernels carry real (audited) panic sites; if the
    // panic-reachability pass stopped seeing them this gate must fail
    // rather than report a vacuous clean bill.
    assert!(
        report.count_suppressed("panic-reachability") > 20,
        "panic-reachability audited only {} site group(s) — pass degraded?",
        report.count_suppressed("panic-reachability")
    );
    assert!(
        report.count_suppressed("secret-taint") > 0,
        "secret-taint found nothing, not even the audited harness flows"
    );
    for rule in ["panic-reachability", "secret-taint", "ct-closure"] {
        assert_eq!(
            report.count_findings(rule),
            0,
            "unsuppressed {rule} findings:\n{}",
            report.render_text()
        );
    }
}
