//! Snapshot of the `--json` schema. Downstream consumers (CI artifact
//! scrapers, the bench harness) key on these exact names; renaming or
//! removing any of them is a breaking change this test makes loud.
//! Adding keys is allowed.

use dsaudit_lint::report::{Finding, Suppression, WorkspaceReport};

fn sample_report() -> WorkspaceReport {
    WorkspaceReport {
        files_scanned: 3,
        callgraph_fns: 42,
        findings: vec![Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: "no-panic",
            message: "panic! in non-test code".into(),
            hint: "return a typed error",
        }],
        suppressed: vec![(
            Finding {
                file: "crates/y/src/lib.rs".into(),
                line: 11,
                rule: "panic-reachability",
                message: "2 panic site(s) in `Fq::mul` audited".into(),
                hint: "audit it in lint.toml",
            },
            Suppression {
                line: 3,
                comment_line: 3,
                rule: "panic-reachability".into(),
                reason: "fixed-limb arrays".into(),
            },
        )],
    }
}

#[test]
fn json_top_level_keys_are_stable() {
    let j = sample_report().render_json();
    for key in [
        "\"files_scanned\"",
        "\"callgraph_fns\"",
        "\"counts\"",
        "\"rules\"",
        "\"findings\"",
        "\"suppressed\"",
    ] {
        assert!(j.contains(key), "missing top-level key {key} in:\n{j}");
    }
}

#[test]
fn json_finding_shape_is_stable() {
    let j = sample_report().render_json();
    assert!(j.contains(
        "{\"file\": \"crates/x/src/lib.rs\", \"line\": 7, \"rule\": \"no-panic\", \
         \"message\": \"panic! in non-test code\", \"hint\": \"return a typed error\"}"
    ));
    // suppressed findings additionally carry the audit reason
    assert!(j.contains("\"reason\": \"fixed-limb arrays\""));
}

#[test]
fn json_counts_cover_every_rule() {
    let rep = sample_report();
    let j = rep.render_json();
    for rule in [
        "no-panic",
        "no-index",
        "determinism",
        "secret-debug",
        "ct-branch",
        "decode-bounds",
        "suppression",
        "panic-reachability",
        "secret-taint",
        "ct-closure",
    ] {
        assert!(
            j.contains(&format!("\"{rule}\": {{\"findings\":")),
            "no counts entry for {rule} in:\n{j}"
        );
    }
    assert!(j.contains("\"panic-reachability\": {\"findings\": 0, \"suppressed\": 1}"));
    assert!(j.contains("\"no-panic\": {\"findings\": 1, \"suppressed\": 0}"));
}

#[test]
fn json_is_balanced_and_escaped() {
    let mut rep = sample_report();
    rep.findings[0].message = "quote \" backslash \\ newline \n".into();
    let j = rep.render_json();
    assert_eq!(j.matches('{').count(), j.matches('}').count());
    assert_eq!(j.matches('[').count(), j.matches(']').count());
    assert!(j.contains("quote \\\" backslash \\\\ newline \\n"));
}
