//! Differential parser gate: every workspace `.rs` file must parse
//! with the item tree tiling the token stream *exactly* — each token
//! consumed by exactly one top-level item, children nested inside
//! their parents — and with zero opaque (unrecognized) items.
//!
//! This is the guarantee the interprocedural passes stand on: a parser
//! that silently dropped a function or a call site would turn the
//! panic-reachability and taint analyses into false negatives. Any new
//! syntax the parser cannot model fails here first, loudly.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn every_workspace_file_parses_with_exact_tiling() {
    let files = dsaudit_lint::parse_workspace(&workspace_root()).expect("workspace walk");
    assert!(
        files.len() >= 100,
        "workspace walk found only {} files — wrong root?",
        files.len()
    );
    let mut bad = Vec::new();
    for (rel, lexed, ast) in &files {
        if let Err(e) = ast.check_span_tiling(&lexed.tokens) {
            bad.push(format!("{rel}: {e}"));
        }
    }
    assert!(bad.is_empty(), "span tiling violated:\n{}", bad.join("\n"));
}

#[test]
fn no_opaque_items_anywhere() {
    let files = dsaudit_lint::parse_workspace(&workspace_root()).expect("workspace walk");
    let mut bad = Vec::new();
    for (rel, lexed, ast) in &files {
        let opaque = ast.opaque_tokens();
        if opaque > 0 {
            // locate the first opaque span for the error message
            let mut detail = String::new();
            find_opaque(&ast.items, &lexed.tokens, &mut detail);
            bad.push(format!("{rel}: {opaque} opaque token(s): {detail}"));
        }
    }
    assert!(
        bad.is_empty(),
        "parser fell back to Opaque on:\n{}",
        bad.join("\n")
    );
}

fn find_opaque(
    items: &[dsaudit_lint::ast::Item],
    tokens: &[dsaudit_lint::lexer::Token],
    out: &mut String,
) {
    use dsaudit_lint::ast::ItemKind;
    for item in items {
        match &item.kind {
            ItemKind::Opaque if out.len() < 200 => {
                let (a, b) = item.span;
                let text: Vec<&str> = tokens[a..b.min(a + 6).min(tokens.len())]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect();
                let line = tokens.get(a).map_or(0, |t| t.line);
                out.push_str(&format!("[line {line}: {}] ", text.join(" ")));
            }
            ItemKind::Mod { items, .. } | ItemKind::Trait { items, .. } => {
                find_opaque(items, tokens, out);
            }
            ItemKind::Impl(imp) => find_opaque(&imp.items, tokens, out),
            _ => {}
        }
    }
}

#[test]
fn every_workspace_fn_is_in_the_call_graph() {
    // cross-check the graph against an independent token-level count
    // of `fn` keywords followed by a name (skipping `fn` in type
    // position is the parser's job; this bounds it from below)
    let files = dsaudit_lint::parse_workspace(&workspace_root()).expect("workspace walk");
    let graph = dsaudit_lint::callgraph::CallGraph::build(&files);
    let mut token_fns = 0usize;
    for (_, lexed, _) in &files {
        let toks = &lexed.tokens;
        for i in 0..toks.len() {
            use dsaudit_lint::lexer::TokenKind;
            if toks[i].kind == TokenKind::Ident
                && toks[i].text == "fn"
                && toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
                // `fn` pointer types (`fn(` / `fn() ->`) have no name after
                && (i == 0
                    || !(toks[i - 1].kind == TokenKind::Punct
                        && matches!(toks[i - 1].text.as_str(), ":" | "(" | "," | "<" | "&")))
            {
                token_fns += 1;
            }
        }
    }
    assert_eq!(
        graph.fns.len(),
        token_fns,
        "call graph has {} fns but the token stream shows {} `fn name` sites",
        graph.fns.len(),
        token_fns
    );
    assert!(graph.fns.len() > 500, "implausibly small graph");
}
