//! The telemetry registry: counters, histograms, events, spans, and
//! the pluggable clock behind them.
//!
//! All mutation goes through one internal mutex; lock poisoning is
//! recovered (telemetry must never take the process down), and the hot
//! recording paths avoid every panicking construct — no indexing, no
//! `unwrap`, saturating arithmetic throughout.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Number of histogram buckets: one per power of two a `u64` can hold,
/// plus a dedicated zero bucket.
pub const HIST_BUCKETS: usize = 65;

/// Retained point/span events before the oldest are dropped (the drop
/// count is reported in exports, so truncation is never silent).
const MAX_EVENTS: usize = 1 << 16;

/// Retained span records; spans opened past this cap are counted as
/// dropped and their guards become inert.
const MAX_SPANS: usize = 1 << 20;

/// A sentinel span id meaning "not recorded" (cap overflow).
const SPAN_DROPPED: usize = usize::MAX;

/// Where timestamps come from.
enum ClockSource {
    /// Nanoseconds elapsed since the registry was created.
    Wall(Instant),
    /// Caller-driven virtual nanoseconds (see [`Registry::set_virtual_ms`]).
    Virtual(AtomicU64),
}

/// A fixed-bucket histogram over `u64` samples. Bucket `0` holds the
/// value zero; bucket `i ≥ 1` holds values in `(2^(i-1), 2^i]`.
#[derive(Clone)]
pub struct Histogram {
    pub(crate) counts: [u64; HIST_BUCKETS],
    pub(crate) sum: u64,
    pub(crate) count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { counts: [0; HIST_BUCKETS], sum: 0, count: 0 }
    }
}

impl Histogram {
    /// Bucket index for `value`.
    fn bucket_of(value: u64) -> usize {
        if value <= 1 {
            value as usize
        } else {
            64 - (value - 1).leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    fn record(&mut self, value: u64) {
        if let Some(slot) = self.counts.get_mut(Self::bucket_of(value)) {
            *slot = slot.saturating_add(1);
        }
        self.sum = self.sum.saturating_add(value);
        self.count = self.count.saturating_add(1);
    }

    /// Total recorded samples.
    pub fn sample_count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sample_sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket (non-cumulative) counts, zero bucket first.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

/// What kind of occurrence an [`Event`] records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A span was opened.
    SpanOpen,
    /// A span was closed.
    SpanClose,
    /// A point event emitted via [`crate::point`].
    Point,
}

impl EventKind {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SpanOpen => "span_open",
            EventKind::SpanClose => "span_close",
            EventKind::Point => "point",
        }
    }
}

/// A timestamped occurrence in the bounded event log.
#[derive(Clone)]
pub struct Event {
    /// Clock reading when the event was recorded.
    pub at_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Event (or span) name.
    pub name: String,
    /// Free-form detail; empty for span open/close.
    pub detail: String,
}

/// One recorded span: a named interval with an optional parent.
#[derive(Clone)]
pub struct SpanRecord {
    /// Span name as passed to [`crate::span`].
    pub name: String,
    /// Index (into [`Snapshot::spans`]) of the enclosing span, if any.
    pub parent: Option<usize>,
    /// Clock reading when the span opened.
    pub start_ns: u64,
    /// Clock reading when the span closed; `None` if still open.
    pub end_ns: Option<u64>,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    spans: Vec<SpanRecord>,
    /// Indices of currently-open spans, innermost last.
    stack: Vec<usize>,
    events: VecDeque<Event>,
    dropped_events: u64,
    dropped_spans: u64,
}

impl Inner {
    fn push_event(&mut self, ev: Event) {
        if self.events.len() >= MAX_EVENTS {
            self.events.pop_front();
            self.dropped_events = self.dropped_events.saturating_add(1);
        }
        self.events.push_back(ev);
    }
}

/// A consistent copy of everything a [`Registry`] holds, taken under a
/// single lock acquisition by [`Registry::snapshot`].
#[derive(Clone)]
pub struct Snapshot {
    /// Counter name → value, in `BTreeMap` (sorted) order.
    pub counters: Vec<(String, u64)>,
    /// Histogram name → histogram, in sorted order.
    pub histograms: Vec<(String, Histogram)>,
    /// All retained spans, in open order.
    pub spans: Vec<SpanRecord>,
    /// The bounded event log, oldest first.
    pub events: Vec<Event>,
    /// Events discarded because the log was full.
    pub dropped_events: u64,
    /// Spans discarded because the span table was full.
    pub dropped_spans: u64,
    /// Clock reading when the snapshot was taken; exporters use it to
    /// assign a duration to spans that never closed.
    pub at_ns: u64,
}

impl Snapshot {
    /// Value of counter `name`, or 0 if it was never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }
}

/// The telemetry sink. See the crate docs for the model.
pub struct Registry {
    clock: ClockSource,
    inner: Mutex<Inner>,
}

impl Registry {
    /// A registry timestamping against the wall clock (nanoseconds
    /// since creation). Use on bench boxes, never in deterministic runs.
    pub fn new_wall() -> Self {
        Self { clock: ClockSource::Wall(Instant::now()), inner: Mutex::new(Inner::default()) }
    }

    /// A registry on a virtual clock starting at 0, advanced by the
    /// instrumented program via [`crate::tick_virtual`]. Telemetry from
    /// a deterministic run is itself byte-reproducible.
    pub fn new_virtual() -> Self {
        Self { clock: ClockSource::Virtual(AtomicU64::new(0)), inner: Mutex::new(Inner::default()) }
    }

    /// Whether this registry runs on the virtual clock.
    pub fn is_virtual(&self) -> bool {
        matches!(self.clock, ClockSource::Virtual(_))
    }

    fn locked(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current clock reading in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        match &self.clock {
            ClockSource::Wall(origin) => {
                let d = origin.elapsed();
                d.as_secs().saturating_mul(1_000_000_000).saturating_add(u64::from(d.subsec_nanos()))
            }
            ClockSource::Virtual(ns) => ns.load(Ordering::Relaxed),
        }
    }

    /// Advances the virtual clock to `now_ms` (scaled to nanoseconds).
    /// The clock is monotonic: a reading earlier than the current one
    /// is ignored. No-op on a wall-clock registry.
    pub fn set_virtual_ms(&self, now_ms: u64) {
        if let ClockSource::Virtual(ns) = &self.clock {
            let target = now_ms.saturating_mul(1_000_000);
            ns.fetch_max(target, Ordering::Relaxed);
        }
    }

    /// Adds `n` to counter `name` (saturating).
    pub fn counter_add(&self, name: &str, n: u64) {
        let mut inner = self.locked();
        if let Some(v) = inner.counters.get_mut(name) {
            *v = v.saturating_add(n);
        } else {
            inner.counters.insert(name.to_owned(), n);
        }
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.locked();
        if let Some(h) = inner.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::default();
            h.record(value);
            inner.histograms.insert(name.to_owned(), h);
        }
    }

    /// Records a point event.
    pub fn point(&self, name: &str, detail: &str) {
        let at_ns = self.now_ns();
        let mut inner = self.locked();
        inner.push_event(Event {
            at_ns,
            kind: EventKind::Point,
            name: name.to_owned(),
            detail: detail.to_owned(),
        });
    }

    /// Opens a span under the innermost open span and returns its id.
    /// Prefer the [`crate::span`] guard; this is the raw layer beneath
    /// it (and what exporter tests drive directly).
    pub fn begin_span(&self, name: &str) -> usize {
        let at_ns = self.now_ns();
        let mut inner = self.locked();
        if inner.spans.len() >= MAX_SPANS {
            inner.dropped_spans = inner.dropped_spans.saturating_add(1);
            return SPAN_DROPPED;
        }
        let id = inner.spans.len();
        let parent = inner.stack.last().copied();
        inner.spans.push(SpanRecord {
            name: name.to_owned(),
            parent,
            start_ns: at_ns,
            end_ns: None,
        });
        inner.stack.push(id);
        inner.push_event(Event {
            at_ns,
            kind: EventKind::SpanOpen,
            name: name.to_owned(),
            detail: String::new(),
        });
        id
    }

    /// Closes span `id`. Total under adversarial use: closing an
    /// unknown, dropped, or already-closed id is a no-op; closing a
    /// non-innermost span implicitly unwinds the open stack down to it
    /// (children keep whatever end their own guards later record).
    pub fn end_span(&self, id: usize) {
        let at_ns = self.now_ns();
        let mut inner = self.locked();
        let name = match inner.spans.get_mut(id) {
            Some(rec) if rec.end_ns.is_none() => {
                rec.end_ns = Some(at_ns.max(rec.start_ns));
                rec.name.clone()
            }
            _ => return,
        };
        if let Some(pos) = inner.stack.iter().rposition(|&open| open == id) {
            inner.stack.truncate(pos);
        }
        inner.push_event(Event { at_ns, kind: EventKind::SpanClose, name, detail: String::new() });
    }

    /// Copies out all recorded state under one lock acquisition.
    pub fn snapshot(&self) -> Snapshot {
        let at_ns = self.now_ns();
        let inner = self.locked();
        Snapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner.histograms.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            spans: inner.spans.clone(),
            events: inner.events.iter().cloned().collect(),
            dropped_events: inner.dropped_events,
            dropped_spans: inner.dropped_spans,
            at_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_accumulate() {
        let reg = Registry::new_virtual();
        reg.counter_add("a", 2);
        reg.counter_add("a", 3);
        reg.counter_add("b", 1);
        reg.observe("h", 0);
        reg.observe("h", 1);
        reg.observe("h", 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("b"), 1);
        let (_, h) = &snap.histograms[0];
        assert_eq!(h.sample_count(), 3);
        assert_eq!(h.sample_sum(), 6);
        // 0 → bucket 0, 1 → bucket 1 ((0,1]), 5 → bucket 3 ((4,8])
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[1], 1);
        assert_eq!(h.bucket_counts()[3], 1);
    }

    #[test]
    fn histogram_bucket_bounds_cover_u64() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::upper_bound(0), 0);
        assert_eq!(Histogram::upper_bound(1), 2);
        assert_eq!(Histogram::upper_bound(64), u64::MAX);
    }

    #[test]
    fn virtual_clock_is_monotonic() {
        let reg = Registry::new_virtual();
        assert!(reg.is_virtual());
        reg.set_virtual_ms(10);
        assert_eq!(reg.now_ns(), 10_000_000);
        reg.set_virtual_ms(4); // going backwards is ignored
        assert_eq!(reg.now_ns(), 10_000_000);
        reg.set_virtual_ms(11);
        assert_eq!(reg.now_ns(), 11_000_000);
    }

    #[test]
    fn wall_clock_advances() {
        let reg = Registry::new_wall();
        assert!(!reg.is_virtual());
        let a = reg.now_ns();
        let b = reg.now_ns();
        assert!(b >= a);
        reg.set_virtual_ms(99); // no-op on wall clock
    }

    #[test]
    fn spans_nest_and_misnesting_is_total() {
        let reg = Registry::new_virtual();
        let a = reg.begin_span("a");
        let b = reg.begin_span("b");
        let c = reg.begin_span("c");
        // Close the middle one first: stack unwinds past c.
        reg.end_span(b);
        // Closing c afterwards still records its end.
        reg.end_span(c);
        reg.end_span(b); // double close: no-op
        reg.end_span(usize::MAX); // dropped/unknown id: no-op
        reg.end_span(a);
        let snap = reg.snapshot();
        assert_eq!(snap.spans.len(), 3);
        assert!(snap.spans.iter().all(|s| s.end_ns.is_some()));
        assert_eq!(snap.spans[1].parent, Some(0));
        assert_eq!(snap.spans[2].parent, Some(1));
        // After the unwind, a new span nests under `a` again.
        let d = reg.begin_span("d");
        assert_eq!(reg.snapshot().spans[3].parent, None, "a was closed");
        reg.end_span(d);
    }

    #[test]
    fn event_log_is_bounded_and_counts_drops() {
        let reg = Registry::new_virtual();
        for i in 0..(MAX_EVENTS + 10) {
            reg.point("e", if i % 2 == 0 { "even" } else { "odd" });
        }
        let snap = reg.snapshot();
        assert_eq!(snap.events.len(), MAX_EVENTS);
        assert_eq!(snap.dropped_events, 10);
    }
}
