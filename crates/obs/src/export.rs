//! The three exporters: JSON-lines event log, aggregated span tree
//! ("text flamegraph"), and Prometheus-style text exposition.
//!
//! All three are **total**: they never panic, whatever the snapshot
//! holds — adversarial metric names (control characters, non-ASCII,
//! empty strings), mis-nested or unclosed spans, and out-of-range
//! parent indices all render to something well-formed. Reproducibility
//! matters as much as totality: output depends only on the snapshot,
//! so a virtual-clock run exports byte-identical artifacts.

use crate::registry::{EventKind, Histogram, Snapshot, HIST_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` as the body of a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Replaces control characters for fixed-width text output.
fn display_name(s: &str) -> String {
    if s.is_empty() {
        return "<unnamed>".to_owned();
    }
    s.chars().map(|c| if (c as u32) < 0x20 { '\u{fffd}' } else { c }).collect()
}

/// Renders `ns` as a short human duration (`950ns`, `12.3us`, `4.56ms`, `1.23s`).
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// JSON-lines event log: one JSON object per line — every retained
/// event in order, then counter and histogram summaries, then a
/// trailer recording drop counts. Every line is a complete JSON object.
pub fn export_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for ev in &snap.events {
        match ev.kind {
            EventKind::Point => {
                let _ = writeln!(
                    out,
                    "{{\"at_ns\":{},\"kind\":\"point\",\"name\":\"{}\",\"detail\":\"{}\"}}",
                    ev.at_ns,
                    json_escape(&ev.name),
                    json_escape(&ev.detail)
                );
            }
            kind => {
                let _ = writeln!(
                    out,
                    "{{\"at_ns\":{},\"kind\":\"{}\",\"name\":\"{}\"}}",
                    ev.at_ns,
                    kind.label(),
                    json_escape(&ev.name)
                );
            }
        }
    }
    for (name, value) in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            json_escape(name),
            value
        );
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(
            out,
            "{{\"kind\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{}}}",
            json_escape(name),
            h.sample_count(),
            h.sample_sum()
        );
    }
    let _ = writeln!(
        out,
        "{{\"kind\":\"trailer\",\"at_ns\":{},\"spans\":{},\"dropped_spans\":{},\"dropped_events\":{}}}",
        snap.at_ns,
        snap.spans.len(),
        snap.dropped_spans,
        snap.dropped_events
    );
    out
}

#[derive(Default, Clone)]
struct PathAgg {
    count: u64,
    total_ns: u64,
    open: u64,
}

/// Aggregated span tree: spans sharing the same root-to-leaf name path
/// are folded into one row with a call count and total duration —
/// a text flamegraph. Spans still open at snapshot time are charged up
/// to the snapshot clock and flagged with `open=N`.
pub fn export_span_tree(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# span tree: {} span(s), {} dropped",
        snap.spans.len(),
        snap.dropped_spans
    );
    if snap.spans.is_empty() {
        let _ = writeln!(out, "(no spans recorded)");
        return out;
    }
    // Name-path per span; a parent index that is not strictly earlier
    // is treated as "no parent" so corrupt input cannot cycle.
    let mut paths: Vec<Vec<String>> = Vec::with_capacity(snap.spans.len());
    for (i, s) in snap.spans.iter().enumerate() {
        let mut path = match s.parent {
            Some(p) if p < i => paths.get(p).cloned().unwrap_or_default(),
            _ => Vec::new(),
        };
        path.push(display_name(&s.name));
        paths.push(path);
    }
    let mut agg: BTreeMap<Vec<String>, PathAgg> = BTreeMap::new();
    for (s, path) in snap.spans.iter().zip(&paths) {
        let slot = agg.entry(path.clone()).or_default();
        slot.count = slot.count.saturating_add(1);
        let end = s.end_ns.unwrap_or(snap.at_ns);
        slot.total_ns = slot.total_ns.saturating_add(end.saturating_sub(s.start_ns));
        if s.end_ns.is_none() {
            slot.open = slot.open.saturating_add(1);
        }
    }
    for (path, a) in &agg {
        let depth = path.len().saturating_sub(1);
        let name = path.last().map(String::as_str).unwrap_or("<unnamed>");
        let indent = "  ".repeat(depth.min(64));
        let open = if a.open > 0 { format!("  open={}", a.open) } else { String::new() };
        let _ = writeln!(
            out,
            "{indent}{name}  count={}  total={}{open}",
            a.count,
            fmt_ns(a.total_ns)
        );
    }
    out
}

/// Maps `name` onto the Prometheus metric-name alphabet
/// (`[a-zA-Z0-9_:]`, not starting with a digit).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn merge_hist(into: &mut Histogram, from: &Histogram) {
    for (a, b) in into.counts.iter_mut().zip(from.counts.iter()) {
        *a = a.saturating_add(*b);
    }
    into.sum = into.sum.saturating_add(from.sum);
    into.count = into.count.saturating_add(from.count);
}

/// Prometheus-style text exposition of counters and histograms, plus
/// the registry's own meta-counters. Metric names are sanitized onto
/// the Prometheus alphabet; distinct raw names that collide after
/// sanitization are merged.
pub fn export_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    for (name, value) in &snap.counters {
        let key = prom_name(name);
        let slot = counters.entry(key).or_insert(0);
        *slot = slot.saturating_add(*value);
    }
    for (name, value) in &counters {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
    }
    let mut hists: BTreeMap<String, Histogram> = BTreeMap::new();
    for (name, h) in &snap.histograms {
        let key = prom_name(name);
        match hists.get_mut(&key) {
            Some(existing) => merge_hist(existing, h),
            None => {
                hists.insert(key, h.clone());
            }
        }
    }
    for (name, h) in &hists {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let counts = h.bucket_counts();
        let last_nonempty = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut cumulative: u64 = 0;
        // The top bucket (index 64) is covered by the +Inf line below.
        for (i, &c) in counts.iter().enumerate().take((last_nonempty + 1).min(HIST_BUCKETS - 1)) {
            cumulative = cumulative.saturating_add(c);
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                Histogram::upper_bound(i)
            );
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.sample_count());
        let _ = writeln!(out, "{name}_sum {}", h.sample_sum());
        let _ = writeln!(out, "{name}_count {}", h.sample_count());
    }
    let _ = writeln!(out, "# TYPE obs_spans_total counter\nobs_spans_total {}", snap.spans.len());
    let _ = writeln!(
        out,
        "# TYPE obs_spans_dropped_total counter\nobs_spans_dropped_total {}",
        snap.dropped_spans
    );
    let _ = writeln!(
        out,
        "# TYPE obs_events_dropped_total counter\nobs_events_dropped_total {}",
        snap.dropped_events
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let reg = Registry::new_virtual();
        reg.set_virtual_ms(1);
        let a = reg.begin_span("epoch");
        reg.set_virtual_ms(2);
        let b = reg.begin_span("verify");
        reg.counter_add("hits", 3);
        reg.observe("latency_ms", 5);
        reg.point("phase", "settle");
        reg.set_virtual_ms(4);
        reg.end_span(b);
        reg.end_span(a);
        let c = reg.begin_span("unclosed");
        let _ = c;
        reg.set_virtual_ms(6);
        reg.snapshot()
    }

    #[test]
    fn jsonl_lines_are_objects_and_balanced() {
        let text = export_jsonl(&sample());
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        assert!(text.contains("\"kind\":\"span_open\",\"name\":\"epoch\""));
        assert!(text.contains("\"kind\":\"counter\",\"name\":\"hits\",\"value\":3"));
        assert!(text.contains("\"kind\":\"trailer\""));
    }

    #[test]
    fn jsonl_escapes_adversarial_names() {
        let reg = Registry::new_virtual();
        reg.counter_add("quote\" slash\\ ctrl\u{1} nl\n", 1);
        let text = export_jsonl(&reg.snapshot());
        assert!(text.contains("quote\\\" slash\\\\ ctrl\\u0001 nl\\n"));
    }

    #[test]
    fn span_tree_nests_and_flags_open_spans() {
        let text = export_span_tree(&sample());
        assert!(text.contains("epoch  count=1  total=3.00ms"));
        assert!(text.contains("  verify  count=1  total=2.00ms"));
        assert!(text.contains("unclosed  count=1  total=2.00ms  open=1"));
    }

    #[test]
    fn span_tree_handles_empty_and_corrupt_parents() {
        let reg = Registry::new_virtual();
        assert!(export_span_tree(&reg.snapshot()).contains("(no spans recorded)"));
        let mut snap = sample();
        snap.spans[0].parent = Some(999); // out of range → treated as root
        let _ = export_span_tree(&snap);
        snap.spans[2].parent = Some(2); // self-parent → treated as root
        let _ = export_span_tree(&snap);
    }

    #[test]
    fn prometheus_sanitizes_and_exposes_histograms() {
        let text = export_prometheus(&sample());
        assert!(text.contains("# TYPE hits counter\nhits 3"));
        assert!(text.contains("# TYPE latency_ms histogram"));
        assert!(text.contains("latency_ms_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("latency_ms_sum 5"));
        assert!(text.contains("obs_spans_total 3"));

        let reg = Registry::new_virtual();
        reg.counter_add("9 weird·name", 1);
        reg.counter_add("", 2);
        let t = export_prometheus(&reg.snapshot());
        assert!(t.contains("_9_weird_name 1"), "got:\n{t}");
        assert!(t.contains("\n_ 2"));
    }
}
