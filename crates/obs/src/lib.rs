//! Offline structured observability for the dsaudit stack.
//!
//! This crate is the bottom of the dependency graph: it depends on
//! nothing in the workspace (and nothing outside `std`), so every other
//! layer — algebra kernels, core role handles, the contract VM, the
//! node daemons, the simulator — can emit telemetry through it without
//! creating cycles.
//!
//! # Model
//!
//! Telemetry flows into a [`Registry`]: monotonic **counters**,
//! fixed-bucket power-of-two **histograms**, bounded point **events**,
//! and hierarchical **spans** (opened by [`span`], closed when the
//! returned [`Span`] guard drops). The registry timestamps everything
//! through a pluggable clock: wall-clock ([`Registry::new_wall`]) on a
//! bench box, or a caller-driven virtual clock
//! ([`Registry::new_virtual`], advanced via [`tick_virtual`]) so that
//! deterministic runs — the simulator and the node harness both already
//! run on virtual time — produce byte-identical telemetry.
//!
//! # The no-op default
//!
//! Nothing is recorded until a registry is [`install`]ed. Every
//! recording entry point first checks one relaxed atomic load and
//! returns immediately when disabled, so instrumentation left in hot
//! paths (MSM, pairing product, verify) costs a load-and-branch and
//! never allocates. Instrumented code cannot observe whether obs is
//! enabled: every facade function returns `()` except [`span`], whose
//! guard is an opaque token. The `obs-purity` lint rule in
//! `dsaudit-lint` proves, over the interprocedural call graph, that no
//! verdict-, codec-, or `lint:ct`-reachable path consumes an obs return
//! value and that no `lint:ct` kernel calls into this crate.
//!
//! # Exporters
//!
//! A [`Snapshot`] (one consistent lock acquisition) feeds three
//! total, panic-free renderers in [`export`]: a JSON-lines event log,
//! an aggregated span tree ("text flamegraph"), and Prometheus-style
//! text exposition. See `docs/OBSERVABILITY.md` for the formats.

pub mod export;
mod registry;

pub use registry::{Event, EventKind, Histogram, Registry, Snapshot, SpanRecord, HIST_BUCKETS};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Fast-path gate: `true` only while a registry is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed registry, if any. Guarded by a mutex rather than an
/// `RwLock` because it is touched only on the (cheap) enabled path and
/// at install/uninstall time.
static SINK: Mutex<Option<Arc<Registry>>> = Mutex::new(None);

fn sink() -> Option<Arc<Registry>> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    SINK.lock().unwrap_or_else(PoisonError::into_inner).clone()
}

/// Installs `registry` as the process-wide telemetry sink and enables
/// recording. Replaces any previously installed registry.
pub fn install(registry: Arc<Registry>) {
    let mut guard = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    *guard = Some(registry);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables recording and removes the installed registry, returning it
/// so callers can snapshot and export after the run.
pub fn uninstall() -> Option<Arc<Registry>> {
    ENABLED.store(false, Ordering::SeqCst);
    let mut guard = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    guard.take()
}

/// Whether a registry is currently installed.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `n` to the counter `name`. No-op when disabled.
pub fn counter_add(name: &str, n: u64) {
    if let Some(reg) = sink() {
        reg.counter_add(name, n);
    }
}

/// Adds 1 to the counter `name`. No-op when disabled.
pub fn counter_inc(name: &str) {
    counter_add(name, 1);
}

/// Records `value` into the histogram `name`. No-op when disabled.
pub fn observe(name: &str, value: u64) {
    if let Some(reg) = sink() {
        reg.observe(name, value);
    }
}

/// Records a point event (a named, timestamped occurrence with a short
/// free-form detail string). No-op when disabled.
pub fn point(name: &str, detail: &str) {
    if let Some(reg) = sink() {
        reg.point(name, detail);
    }
}

/// Advances the installed registry's virtual clock to `now_ms`
/// (caller's virtual milliseconds). No-op when disabled or when the
/// installed registry uses the wall clock.
pub fn tick_virtual(now_ms: u64) {
    if let Some(reg) = sink() {
        reg.set_virtual_ms(now_ms);
    }
}

/// RAII guard for a hierarchical span opened by [`span`]. The span
/// closes when the guard drops. Inert (and free) when obs is disabled.
///
/// Bind it as `let _span = dsaudit_obs::span("...")` — the `obs-purity`
/// lint requires the binding to be underscore-prefixed so no program
/// logic can depend on it.
#[must_use = "a span closes when its guard drops; bind it as `let _span = ...`"]
pub struct Span {
    active: Option<(Arc<Registry>, usize)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((reg, id)) = self.active.take() {
            reg.end_span(id);
        }
    }
}

/// Opens a span named `name`, nested under the innermost span still
/// open on this registry. Returns an inert guard when disabled.
pub fn span(name: &str) -> Span {
    match sink() {
        Some(reg) => {
            let id = reg.begin_span(name);
            Span { active: Some((reg, id)) }
        }
        None => Span { active: None },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global facade is process-wide state; this single test owns
    // the whole install/record/uninstall cycle so no other test in this
    // binary touches the globals concurrently. Registry-level behavior
    // is tested (without globals) in `registry` and `export`.
    #[test]
    fn facade_roundtrip_and_noop_when_disabled() {
        // Disabled: everything is a no-op and span guards are inert.
        assert!(!is_enabled());
        counter_inc("never.recorded");
        observe("never.recorded", 7);
        {
            let _span = span("never.recorded");
        }
        tick_virtual(123);

        let reg = Arc::new(Registry::new_virtual());
        install(Arc::clone(&reg));
        assert!(is_enabled());
        tick_virtual(5);
        counter_inc("facade.hits");
        counter_add("facade.hits", 2);
        observe("facade.size", 64);
        point("facade.phase", "warmup");
        {
            let _outer = span("facade.outer");
            tick_virtual(6);
            let _inner = span("facade.inner");
            tick_virtual(9);
        }

        let back = uninstall().expect("registry was installed");
        assert!(!is_enabled());
        counter_inc("facade.hits"); // after uninstall: dropped
        let snap = back.snapshot();
        assert_eq!(snap.counter("facade.hits"), 3);
        assert_eq!(snap.counter("never.recorded"), 0);
        assert_eq!(snap.spans.len(), 2);
        let outer = &snap.spans[0];
        let inner = &snap.spans[1];
        assert_eq!(outer.name, "facade.outer");
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(0));
        assert_eq!(outer.start_ns, 5_000_000);
        assert_eq!(inner.start_ns, 6_000_000);
        assert_eq!(inner.end_ns, Some(9_000_000));
        assert_eq!(outer.end_ns, Some(9_000_000));
        assert!(Arc::ptr_eq(&reg, &back));
    }
}
