//! Property tests: the three exporters are total. Random operation
//! tapes — adversarial metric names (control characters, quotes,
//! non-ASCII, empty), mis-nested and unclosed spans, bogus span ids —
//! drive a registry, and every exporter must render without panicking
//! and keep its format invariants (JSONL line shape, Prometheus
//! alphabet).

use dsaudit_obs::export::{export_jsonl, export_prometheus, export_span_tree};
use dsaudit_obs::Registry;
use proptest::prelude::*;

/// One scripted operation against the registry.
fn apply_op(reg: &Registry, open: &mut Vec<usize>, op: u8, name: &str, value: u64) {
    match op % 7 {
        0 => reg.counter_add(name, value),
        1 => reg.observe(name, value),
        2 => reg.point(name, name),
        3 => open.push(reg.begin_span(name)),
        4 => {
            // close the innermost open span, if any
            if let Some(id) = open.pop() {
                reg.end_span(id);
            }
        }
        5 => {
            // close an arbitrary (possibly still-open, possibly bogus) id
            reg.end_span(value as usize);
        }
        _ => {
            // close a span out of nesting order
            if !open.is_empty() {
                let id = open.remove(value as usize % open.len());
                reg.end_span(id);
            }
        }
    }
}

/// Decodes a fuzz byte string into a hostile metric name: raw bytes
/// (lossily UTF-8), sprinkled with quotes, backslashes and newlines.
fn hostile_name(bytes: &[u8]) -> String {
    let mut s = String::from_utf8_lossy(bytes).into_owned();
    if bytes.first().copied().unwrap_or(0) % 3 == 0 {
        s.push('"');
        s.push('\\');
        s.push('\n');
        s.push('\u{1}');
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No operation tape makes any exporter panic, and the JSONL
    /// output stays one balanced object per line.
    #[test]
    fn exporters_are_total_on_random_tapes(
        ops in prop::collection::vec((any::<u8>(), any::<u64>()), 0..120),
        names in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..12), 1..8),
        virtual_clock in any::<bool>(),
    ) {
        let reg = if virtual_clock { Registry::new_virtual() } else { Registry::new_wall() };
        let names: Vec<String> = names.iter().map(|b| hostile_name(b)).collect();
        let mut open = Vec::new();
        for (i, &(op, value)) in ops.iter().enumerate() {
            if virtual_clock {
                reg.set_virtual_ms(i as u64);
            }
            let name = &names[i % names.len()];
            apply_op(&reg, &mut open, op, name, value);
        }
        // leave `open` unclosed on purpose: exporters must handle it
        let snap = reg.snapshot();

        let jsonl = export_jsonl(&snap);
        for line in jsonl.lines() {
            prop_assert!(line.starts_with('{') && line.ends_with('}'), "bad JSONL line: {line:?}");
            prop_assert!(!line.chars().any(|c| (c as u32) < 0x20), "raw control char leaked: {line:?}");
        }
        prop_assert!(jsonl.lines().last().unwrap_or("").contains("\"kind\":\"trailer\""));

        let tree = export_span_tree(&snap);
        prop_assert!(tree.starts_with("# span tree:"));

        let prom = export_prometheus(&snap);
        for line in prom.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let name_part = line.split_whitespace().next().unwrap_or("");
            let bare = name_part.split('{').next().unwrap_or("");
            prop_assert!(
                !bare.is_empty()
                    && bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
                    && !bare.starts_with(|c: char| c.is_ascii_digit()),
                "non-Prometheus metric name {bare:?} in line {line:?}"
            );
        }
    }

    /// Byte-reproducibility of the exporters themselves: the same tape
    /// on two virtual-clock registries renders identical artifacts.
    #[test]
    fn virtual_clock_exports_are_reproducible(
        ops in prop::collection::vec((any::<u8>(), any::<u64>()), 0..60),
    ) {
        let render = || {
            let reg = Registry::new_virtual();
            let mut open = Vec::new();
            for (i, &(op, value)) in ops.iter().enumerate() {
                reg.set_virtual_ms(i as u64);
                apply_op(&reg, &mut open, op, "metric", value);
            }
            let snap = reg.snapshot();
            (export_jsonl(&snap), export_span_tree(&snap), export_prometheus(&snap))
        };
        prop_assert_eq!(render(), render());
    }
}
