//! Systematic Reed–Solomon erasure coding over `GF(2^8)` (§III-A).
//!
//! `ErasureCode::new(k, n)` produces `n` shares of which any `k`
//! reconstruct the data (the paper's example: 3-out-of-10). Encoding uses
//! a systematic Vandermonde-derived matrix: the first `k` shares are the
//! data itself, the remaining `n - k` are parity.

use crate::gf256;

/// A `(k, n)` systematic Reed–Solomon code.
#[derive(Clone, Debug)]
pub struct ErasureCode {
    k: usize,
    n: usize,
    /// Full `n x k` encoding matrix (top `k` rows = identity).
    matrix: Vec<Vec<u8>>,
}

/// Errors from erasure coding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ErasureError {
    /// Fewer than `k` shares supplied.
    NotEnoughShares {
        /// Shares actually supplied.
        have: usize,
        /// Minimum shares required (`k`).
        need: usize,
    },
    /// Shares disagree in length.
    ShapeMismatch,
    /// A share index is out of range or duplicated.
    BadShareIndex(usize),
}

impl std::fmt::Display for ErasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErasureError::NotEnoughShares { have, need } => {
                write!(f, "need {need} shares to reconstruct, have {have}")
            }
            ErasureError::ShapeMismatch => write!(f, "shares have inconsistent lengths"),
            ErasureError::BadShareIndex(i) => write!(f, "bad share index {i}"),
        }
    }
}

impl std::error::Error for ErasureError {}

/// One coded share.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Share {
    /// Row index in the code (0..n).
    pub index: usize,
    /// Share payload.
    pub data: Vec<u8>,
}

impl ErasureCode {
    /// Builds a `(k, n)` code.
    ///
    /// # Panics
    /// Panics unless `0 < k <= n <= 255`.
    pub fn new(k: usize, n: usize) -> Self {
        assert!(k > 0 && k <= n && n <= 255, "need 0 < k <= n <= 255");
        // Vandermonde rows evaluated at distinct points; any k of them
        // are linearly independent. Post-multiplying by the inverse of
        // the top k x k block yields the systematic form (top block
        // becomes the identity) while preserving that property.
        let vand: Vec<Vec<u8>> = (0..n)
            .map(|r| (0..k).map(|c| gf256::pow((r + 1) as u8, c as u32)).collect())
            .collect();
        let top: Vec<Vec<u8>> = vand[..k].to_vec();
        // lint:allow(no-panic) — the top k x k Vandermonde block over distinct nonzero points is always invertible for 0 < k <= n <= 255; `new` is documented to panic on bad parameters (the assert above)
        let top_inv = invert_matrix(top).expect("Vandermonde top block invertible");
        let matrix: Vec<Vec<u8>> = (0..n)
            .map(|r| {
                (0..k)
                    .map(|c| {
                        let mut acc = 0u8;
                        for (j, inv_row) in top_inv.iter().enumerate() {
                            acc = gf256::add(acc, gf256::mul(vand[r][j], inv_row[c]));
                        }
                        acc
                    })
                    .collect()
            })
            .collect();
        Self { k, n, matrix }
    }

    /// Data shares required for reconstruction.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total shares produced.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Encodes `data` into `n` shares (the first `k` are systematic).
    /// The data is padded to a multiple of `k`.
    pub fn encode(&self, data: &[u8]) -> Vec<Share> {
        let share_len = data.len().div_ceil(self.k).max(1);
        let mut padded = data.to_vec();
        padded.resize(share_len * self.k, 0);
        // column-major data layout: share r byte b = sum_c M[r][c] * D[c][b]
        let mut shares: Vec<Share> = (0..self.n)
            .map(|index| Share {
                index,
                data: vec![0u8; share_len],
            })
            .collect();
        for (r, share) in shares.iter_mut().enumerate() {
            for c in 0..self.k {
                let coef = self.matrix[r][c];
                if coef == 0 {
                    continue;
                }
                let chunk = &padded[c * share_len..(c + 1) * share_len];
                for (out, inp) in share.data.iter_mut().zip(chunk) {
                    *out = gf256::add(*out, gf256::mul(coef, *inp));
                }
            }
        }
        shares
    }

    /// Reconstructs the original data (including padding) from any `k`
    /// distinct shares.
    ///
    /// # Errors
    /// Returns [`ErasureError`] on insufficient/inconsistent shares.
    pub fn decode(&self, shares: &[Share], original_len: usize) -> Result<Vec<u8>, ErasureError> {
        if shares.len() < self.k {
            return Err(ErasureError::NotEnoughShares {
                have: shares.len(),
                need: self.k,
            });
        }
        let use_shares = &shares[..self.k];
        let share_len = use_shares[0].data.len();
        // n <= 255, so a fixed bitmap replaces the hash set (and keeps
        // this crate free of nondeterministic collections)
        let mut seen = [false; 256];
        for s in use_shares {
            if s.data.len() != share_len {
                return Err(ErasureError::ShapeMismatch);
            }
            match seen.get_mut(s.index) {
                Some(slot) if s.index < self.n && !*slot => *slot = true,
                _ => return Err(ErasureError::BadShareIndex(s.index)),
            }
        }
        // invert the k x k submatrix of selected rows
        let sub: Vec<Vec<u8>> = use_shares
            .iter()
            .map(|s| self.matrix[s.index].clone())
            .collect();
        let inv = invert_matrix(sub).ok_or(ErasureError::ShapeMismatch)?;
        // data[c] = sum_r inv[c][r] * share[r]
        let mut out = vec![0u8; self.k * share_len];
        for c in 0..self.k {
            let dst = &mut out[c * share_len..(c + 1) * share_len];
            for (r, s) in use_shares.iter().enumerate() {
                let coef = inv[c][r];
                if coef == 0 {
                    continue;
                }
                for (o, i) in dst.iter_mut().zip(&s.data) {
                    *o = gf256::add(*o, gf256::mul(coef, *i));
                }
            }
        }
        out.truncate(original_len);
        Ok(out)
    }
}

/// Inverts a square matrix over GF(256); `None` if singular.
fn invert_matrix(mut m: Vec<Vec<u8>>) -> Option<Vec<Vec<u8>>> {
    let n = m.len();
    let mut inv: Vec<Vec<u8>> = (0..n)
        .map(|r| (0..n).map(|c| u8::from(r == c)).collect())
        .collect();
    for col in 0..n {
        let pivot = (col..n).find(|&r| m[r][col] != 0)?;
        m.swap(col, pivot);
        inv.swap(col, pivot);
        let pinv = gf256::inv(m[col][col]);
        for j in 0..n {
            m[col][j] = gf256::mul(m[col][j], pinv);
            inv[col][j] = gf256::mul(inv[col][j], pinv);
        }
        for r in 0..n {
            if r != col && m[r][col] != 0 {
                let f = m[r][col];
                for j in 0..n {
                    m[r][j] = gf256::add(m[r][j], gf256::mul(f, m[col][j]));
                    inv[r][j] = gf256::add(inv[r][j], gf256::mul(f, inv[col][j]));
                }
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_systematic_shares() {
        let code = ErasureCode::new(3, 10);
        let data = b"the quick brown fox jumps over the lazy dog";
        let shares = code.encode(data);
        assert_eq!(shares.len(), 10);
        let rec = code.decode(&shares[..3], data.len()).unwrap();
        assert_eq!(rec, data);
    }

    #[test]
    fn roundtrip_with_parity_only() {
        let code = ErasureCode::new(3, 10);
        let data: Vec<u8> = (0..1000).map(|i| (i * 13 % 251) as u8).collect();
        let shares = code.encode(&data);
        // lose all systematic shares; reconstruct from parity 7, 8, 9
        let rec = code.decode(&shares[7..10], data.len()).unwrap();
        assert_eq!(rec, data);
    }

    #[test]
    fn any_k_of_n_works() {
        let code = ErasureCode::new(4, 7);
        let data = vec![0xabu8; 333];
        let shares = code.encode(&data);
        for combo in [[0usize, 2, 4, 6], [1, 3, 5, 6], [0, 1, 5, 6]] {
            let picked: Vec<Share> = combo.iter().map(|&i| shares[i].clone()).collect();
            assert_eq!(code.decode(&picked, data.len()).unwrap(), data);
        }
    }

    #[test]
    fn systematic_prefix_is_raw_data() {
        let code = ErasureCode::new(2, 4);
        let data = b"abcdef";
        let shares = code.encode(data);
        assert_eq!(&shares[0].data, b"abc");
        assert_eq!(&shares[1].data, b"def");
    }

    #[test]
    fn too_few_shares_error() {
        let code = ErasureCode::new(3, 5);
        let shares = code.encode(b"xyz");
        assert!(matches!(
            code.decode(&shares[..2], 3),
            Err(ErasureError::NotEnoughShares { have: 2, need: 3 })
        ));
    }

    #[test]
    fn duplicate_share_rejected() {
        let code = ErasureCode::new(2, 4);
        let shares = code.encode(b"hello!");
        let dup = vec![shares[1].clone(), shares[1].clone()];
        assert!(matches!(
            code.decode(&dup, 6),
            Err(ErasureError::BadShareIndex(1))
        ));
    }

    #[test]
    fn corrupted_share_changes_output() {
        // RS erasure coding detects nothing by itself; integrity comes
        // from the audit layer. This documents that behavior.
        let code = ErasureCode::new(2, 4);
        let data = b"integrity is the audit layer's job";
        let mut shares = code.encode(data);
        shares[2].data[0] ^= 0xff;
        let rec = code
            .decode(&[shares[2].clone(), shares[3].clone()], data.len())
            .unwrap();
        assert_ne!(rec, data);
    }
}
