//! Wire formats and error alignment with the protocol layer.
//!
//! The storage substrate predates the role-oriented API of
//! `dsaudit-core`; this module closes the gap:
//!
//! * [`StorageError`] converts into the crate-wide
//!   [`DsAuditError`] so a pipeline that spans both layers (the
//!   `dsaudit-sim` network lifecycle, repair driven by audit verdicts)
//!   reports one error type. Reconstruction shortfalls keep their
//!   counts ([`DsAuditError::DimensionMismatch`]); everything else
//!   carries the storage detail.
//! * [`FileManifest`] and [`NodeId`] implement the canonical [`Codec`],
//!   so a manifest can be registered on chain or shipped to a repair
//!   agent byte-for-byte canonically, with the same panic-free decoding
//!   guarantees as every protocol wire type (truncation/bit-flip
//!   proptested in `tests/codec_proptests.rs`).

use dsaudit_core::{ByteReader, Codec, DsAuditError};

use crate::dht::NodeId;
use crate::erasure::ErasureError;
use crate::network::{FileManifest, StorageError};

impl From<StorageError> for DsAuditError {
    fn from(e: StorageError) -> Self {
        match e {
            StorageError::Erasure(ErasureError::NotEnoughShares { have, need }) => {
                DsAuditError::DimensionMismatch {
                    what: "live erasure shares for reconstruction",
                    expected: need,
                    got: have,
                }
            }
            other => DsAuditError::Storage {
                detail: other.to_string(),
            },
        }
    }
}

impl Codec for NodeId {
    const TYPE_NAME: &'static str = "NodeId";

    fn encoded_len(&self) -> usize {
        32
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, DsAuditError> {
        Ok(NodeId(r.array::<32>("node id")?))
    }
}

/// Bytes of one encoded placement entry: `index (2 B LE) || provider
/// (32 B) || share_key (32 B)`.
const PLACEMENT_BYTES: usize = 2 + 32 + 32;

/// The manifest's canonical wire format:
///
/// ```text
/// content_id (32 B) || plaintext_len (8 B LE) || ciphertext_len (8 B LE)
/// || nonce (12 B) || k (2 B LE) || n (2 B LE)
/// || placement count (4 B LE) || count x [index || provider || share_key]
/// ```
///
/// Decoding validates the erasure parameters (`0 < k <= n <= 255`) and
/// every placement index (`< n`, no duplicates), and bounds the
/// placement allocation by the bytes actually present, so forged
/// prefixes cannot trigger huge allocations.
impl Codec for FileManifest {
    const TYPE_NAME: &'static str = "FileManifest";

    fn encoded_len(&self) -> usize {
        32 + 8 + 8 + 12 + 2 + 2 + 4 + PLACEMENT_BYTES * self.placements.len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.content_id.0);
        out.extend_from_slice(&(self.plaintext_len as u64).to_le_bytes());
        out.extend_from_slice(&(self.ciphertext_len as u64).to_le_bytes());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&(self.code.0 as u16).to_le_bytes());
        out.extend_from_slice(&(self.code.1 as u16).to_le_bytes());
        out.extend_from_slice(&(self.placements.len() as u32).to_le_bytes());
        for (index, provider, share_key) in &self.placements {
            out.extend_from_slice(&(*index as u16).to_le_bytes());
            out.extend_from_slice(&provider.0);
            out.extend_from_slice(share_key);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, DsAuditError> {
        let content_id = NodeId(r.array::<32>("content id")?);
        let plaintext_len = u64::from_le_bytes(r.array::<8>("plaintext len")?);
        let ciphertext_len = u64::from_le_bytes(r.array::<8>("ciphertext len")?);
        let plaintext_len =
            usize::try_from(plaintext_len).map_err(|_| r.malformed("plaintext len"))?;
        let ciphertext_len =
            usize::try_from(ciphertext_len).map_err(|_| r.malformed("ciphertext len"))?;
        let nonce = r.array::<12>("nonce")?;
        let k = u16::from_le_bytes(r.array::<2>("erasure k")?) as usize;
        let n = u16::from_le_bytes(r.array::<2>("erasure n")?) as usize;
        if k == 0 || k > n || n > 255 {
            return Err(r.malformed("erasure code"));
        }
        let count = r.u32_le("placement count")? as usize;
        // the prefix must be consistent with the bytes actually present,
        // so a forged count cannot trigger a huge allocation
        if r.remaining() < PLACEMENT_BYTES * count {
            return Err(DsAuditError::Truncated {
                ty: Self::TYPE_NAME,
                field: "placements",
                expected: PLACEMENT_BYTES * count,
                got: r.remaining(),
            });
        }
        let mut placements = Vec::with_capacity(count);
        let mut seen = [false; 256];
        for _ in 0..count {
            let index = u16::from_le_bytes(r.array::<2>("share index")?) as usize;
            match seen.get_mut(index) {
                Some(slot) if index < n && !*slot => *slot = true,
                _ => return Err(r.malformed("share index")),
            }
            let provider = NodeId(r.array::<32>("placement provider")?);
            let share_key = r.array::<32>("share key")?;
            placements.push((index, provider, share_key));
        }
        Ok(FileManifest {
            content_id,
            plaintext_len,
            ciphertext_len,
            placements,
            code: (k, n),
            nonce,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_errors_convert_to_the_crate_wide_type() {
        let e: DsAuditError = StorageError::Erasure(ErasureError::NotEnoughShares {
            have: 2,
            need: 3,
        })
        .into();
        assert_eq!(
            e,
            DsAuditError::DimensionMismatch {
                what: "live erasure shares for reconstruction",
                expected: 3,
                got: 2
            }
        );
        let e: DsAuditError = StorageError::NoEligibleProvider { share: 4 }.into();
        assert!(matches!(e, DsAuditError::Storage { ref detail } if detail.contains("share 4")));
    }

    #[test]
    fn manifest_roundtrips_through_the_codec() {
        let mut net = crate::StorageNetwork::new(12, 2, 5);
        let manifest = net.upload([1u8; 32], [2u8; 12], &[9u8; 700]).expect("upload succeeds");
        let bytes = manifest.encode();
        assert_eq!(bytes.len(), manifest.encoded_len());
        let back = FileManifest::decode(&bytes).unwrap();
        assert_eq!(back.content_id, manifest.content_id);
        assert_eq!(back.placements, manifest.placements);
        assert_eq!(back.code, manifest.code);
        assert_eq!(back.nonce, manifest.nonce);
        assert_eq!(back.plaintext_len, manifest.plaintext_len);
        assert_eq!(back.ciphertext_len, manifest.ciphertext_len);
    }

    #[test]
    fn manifest_rejects_inconsistent_codes_and_duplicate_indices() {
        let mut net = crate::StorageNetwork::new(12, 2, 5);
        let manifest = net.upload([1u8; 32], [2u8; 12], &[9u8; 100]).expect("upload succeeds");
        let bytes = manifest.encode();
        // k > n
        let mut bad = bytes.clone();
        bad[60] = 9; // k lives at offset 60 (after 32 + 8 + 8 + 12)
        bad[62] = 3; // n
        assert!(matches!(
            FileManifest::decode(&bad),
            Err(DsAuditError::Malformed { field: "erasure code", .. })
        ));
        // duplicate share index
        let mut bad = bytes.clone();
        let first_placement = 32 + 8 + 8 + 12 + 2 + 2 + 4;
        let second_placement = first_placement + PLACEMENT_BYTES;
        let dup: [u8; 2] = bad[first_placement..first_placement + 2].try_into().unwrap();
        bad[second_placement..second_placement + 2].copy_from_slice(&dup);
        assert!(matches!(
            FileManifest::decode(&bad),
            Err(DsAuditError::Malformed { field: "share index", .. })
        ));
        // forged huge count fails the length check without allocating
        let mut bad = bytes;
        bad[first_placement - 4..first_placement].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            FileManifest::decode(&bad),
            Err(DsAuditError::Truncated { field: "placements", .. })
        ));
    }
}
