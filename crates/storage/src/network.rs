//! The DSN storage pipeline (§III-A): owner-side encryption, erasure
//! coding, DHT-routed placement on provider nodes, retrieval and repair.
//!
//! The stack mirrors Tahoe-LAFS (the paper's testbed): data is encrypted
//! *before* leaving the owner (mandatory in the paper's private-storage
//! setting), erasure-coded `k`-of-`n`, and each share is placed on the
//! provider whose DHT id is closest to the share's content address.

use std::collections::HashMap;

use dsaudit_crypto::chacha20::ChaCha20;
use dsaudit_crypto::sha256::sha256;

use crate::dht::{DhtNetwork, NodeId};
use crate::erasure::{ErasureCode, ErasureError, Share};

/// A storage provider node: DHT member plus a share store.
#[derive(Debug, Default)]
pub struct ProviderNode {
    shares: HashMap<[u8; 32], Vec<u8>>,
}

impl ProviderNode {
    /// Stores a share blob under its key.
    pub fn put(&mut self, key: [u8; 32], data: Vec<u8>) {
        self.shares.insert(key, data);
    }

    /// Retrieves a share blob.
    pub fn get(&self, key: &[u8; 32]) -> Option<&Vec<u8>> {
        self.shares.get(key)
    }

    /// Deletes a share (models data loss / reclamation).
    pub fn drop_share(&mut self, key: &[u8; 32]) -> bool {
        self.shares.remove(key).is_some()
    }

    /// Bytes currently stored.
    pub fn stored_bytes(&self) -> usize {
        self.shares.values().map(Vec::len).sum()
    }
}

/// Placement record for one uploaded file.
#[derive(Clone, Debug)]
pub struct FileManifest {
    /// Content address of the (encrypted) file.
    pub content_id: NodeId,
    /// Original plaintext length.
    pub plaintext_len: usize,
    /// Ciphertext length (= plaintext; stream cipher).
    pub ciphertext_len: usize,
    /// Where each share went: `(share_index, provider, share_key)`.
    pub placements: Vec<(usize, NodeId, [u8; 32])>,
    /// Erasure parameters `(k, n)`.
    pub code: (usize, usize),
    /// ChaCha20 nonce used for this file.
    pub nonce: [u8; 12],
}

/// Errors from the storage network.
#[derive(Debug)]
pub enum StorageError {
    /// Too few live shares to reconstruct.
    Erasure(ErasureError),
    /// A provider in the manifest no longer exists.
    UnknownProvider(NodeId),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Erasure(e) => write!(f, "erasure decode failed: {e}"),
            StorageError::UnknownProvider(id) => write!(f, "unknown provider {id:?}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<ErasureError> for StorageError {
    fn from(e: ErasureError) -> Self {
        StorageError::Erasure(e)
    }
}

/// The whole simulated DSN: DHT routing plus provider stores.
pub struct StorageNetwork {
    /// DHT routing layer.
    pub dht: DhtNetwork,
    providers: HashMap<NodeId, ProviderNode>,
    code: ErasureCode,
}

impl StorageNetwork {
    /// Builds a network of `n_providers` nodes with a `(k, n)` erasure
    /// code (paper example: 3-of-10).
    pub fn new(n_providers: usize, k: usize, n: usize) -> Self {
        let mut dht = DhtNetwork::new();
        let mut providers = HashMap::new();
        for i in 0..n_providers {
            let id = NodeId::from_label(&format!("provider-{i}"));
            dht.join(id);
            providers.insert(id, ProviderNode::default());
        }
        Self {
            dht,
            providers,
            code: ErasureCode::new(k, n),
        }
    }

    /// Access a provider node (e.g. to simulate data loss).
    pub fn provider_mut(&mut self, id: &NodeId) -> Option<&mut ProviderNode> {
        self.providers.get_mut(id)
    }

    /// Owner-side upload: encrypt, erasure-code, place shares on the
    /// `n` providers closest to the content id.
    pub fn upload(&mut self, key: [u8; 32], nonce: [u8; 12], plaintext: &[u8]) -> FileManifest {
        let mut ciphertext = plaintext.to_vec();
        ChaCha20::new(key, nonce).encrypt(&mut ciphertext);
        let content_id = NodeId::from_content(&ciphertext);
        let shares = self.code.encode(&ciphertext);
        let candidates = self.dht.providers_for(&content_id, self.code.n());
        let mut placements = Vec::with_capacity(shares.len());
        for share in &shares {
            let provider = candidates[share.index % candidates.len()];
            let share_key = share_key(&content_id, share.index);
            self.providers
                .get_mut(&provider)
                .expect("candidate providers exist")
                .put(share_key, share.data.clone());
            placements.push((share.index, provider, share_key));
        }
        FileManifest {
            content_id,
            plaintext_len: plaintext.len(),
            ciphertext_len: ciphertext.len(),
            placements,
            code: (self.code.k(), self.code.n()),
            nonce,
        }
    }

    /// Owner-side download: gather any `k` live shares, decode, decrypt.
    ///
    /// # Errors
    /// Fails when fewer than `k` shares survive.
    pub fn download(&self, manifest: &FileManifest, key: [u8; 32]) -> Result<Vec<u8>, StorageError> {
        let mut shares = Vec::new();
        for (index, provider, share_key) in &manifest.placements {
            let node = self
                .providers
                .get(provider)
                .ok_or(StorageError::UnknownProvider(*provider))?;
            if let Some(data) = node.get(share_key) {
                shares.push(Share {
                    index: *index,
                    data: data.clone(),
                });
                if shares.len() == manifest.code.0 {
                    break;
                }
            }
        }
        let mut ciphertext = self.code.decode(&shares, manifest.ciphertext_len)?;
        ChaCha20::new(key, manifest.nonce).decrypt(&mut ciphertext);
        Ok(ciphertext)
    }

    /// Repair: re-generate and re-place any missing shares from the
    /// survivors (requires `k` live shares).
    ///
    /// # Errors
    /// Fails when reconstruction is impossible.
    pub fn repair(&mut self, manifest: &FileManifest, key: [u8; 32]) -> Result<usize, StorageError> {
        let plaintext = self.download(manifest, key)?;
        let mut ciphertext = plaintext;
        ChaCha20::new(key, manifest.nonce).encrypt(&mut ciphertext);
        let shares = self.code.encode(&ciphertext);
        let mut repaired = 0;
        for (index, provider, share_key) in &manifest.placements {
            let node = self
                .providers
                .get_mut(provider)
                .ok_or(StorageError::UnknownProvider(*provider))?;
            if node.get(share_key).is_none() {
                node.put(*share_key, shares[*index].data.clone());
                repaired += 1;
            }
        }
        Ok(repaired)
    }

    /// How many of the manifest's shares are currently retrievable.
    pub fn live_shares(&self, manifest: &FileManifest) -> usize {
        manifest
            .placements
            .iter()
            .filter(|(_, provider, share_key)| {
                self.providers
                    .get(provider)
                    .map(|p| p.get(share_key).is_some())
                    .unwrap_or(false)
            })
            .count()
    }
}

fn share_key(content: &NodeId, index: usize) -> [u8; 32] {
    let mut buf = Vec::with_capacity(40);
    buf.extend_from_slice(&content.0);
    buf.extend_from_slice(&(index as u64).to_le_bytes());
    sha256(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> StorageNetwork {
        StorageNetwork::new(20, 3, 10)
    }

    #[test]
    fn upload_download_roundtrip() {
        let mut net = net();
        let data: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        let manifest = net.upload([1u8; 32], [2u8; 12], &data);
        assert_eq!(net.live_shares(&manifest), 10);
        let back = net.download(&manifest, [1u8; 32]).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn wrong_key_garbles_plaintext() {
        let mut net = net();
        let data = b"secret archive".to_vec();
        let manifest = net.upload([1u8; 32], [0u8; 12], &data);
        let wrong = net.download(&manifest, [9u8; 32]).unwrap();
        assert_ne!(wrong, data);
    }

    #[test]
    fn survives_n_minus_k_losses() {
        let mut net = net();
        let data = vec![0x5au8; 3000];
        let manifest = net.upload([3u8; 32], [4u8; 12], &data);
        // kill 7 of 10 shares (k = 3 survive)
        for (_, provider, share_key) in manifest.placements.iter().take(7) {
            assert!(net.provider_mut(provider).unwrap().drop_share(share_key));
        }
        assert_eq!(net.live_shares(&manifest), 3);
        assert_eq!(net.download(&manifest, [3u8; 32]).unwrap(), data);
    }

    #[test]
    fn too_many_losses_fail() {
        let mut net = net();
        let data = vec![1u8; 100];
        let manifest = net.upload([3u8; 32], [4u8; 12], &data);
        for (_, provider, share_key) in manifest.placements.iter().take(8) {
            net.provider_mut(provider).unwrap().drop_share(share_key);
        }
        assert!(net.download(&manifest, [3u8; 32]).is_err());
    }

    #[test]
    fn repair_restores_redundancy() {
        let mut net = net();
        let data = vec![7u8; 2222];
        let manifest = net.upload([8u8; 32], [9u8; 12], &data);
        for (_, provider, share_key) in manifest.placements.iter().take(6) {
            net.provider_mut(provider).unwrap().drop_share(share_key);
        }
        assert_eq!(net.live_shares(&manifest), 4);
        let repaired = net.repair(&manifest, [8u8; 32]).unwrap();
        assert_eq!(repaired, 6);
        assert_eq!(net.live_shares(&manifest), 10);
        assert_eq!(net.download(&manifest, [8u8; 32]).unwrap(), data);
    }

    #[test]
    fn ciphertext_on_providers_not_plaintext() {
        // the mandatory owner-side encryption of §III-A: no provider
        // ever sees plaintext bytes
        let mut net = net();
        let data = b"plaintext must never leave the owner".to_vec();
        let manifest = net.upload([5u8; 32], [6u8; 12], &data);
        // systematic share 0 holds the first ciphertext bytes
        let (_, provider, share_key) = &manifest.placements[0];
        let stored = net.providers[provider].get(share_key).unwrap();
        assert!(!stored
            .windows(8)
            .any(|w| data.windows(8).any(|d| d == w)));
    }
}
